"""Static CMOS NAND cells (2- and 3-input).

The 2-input NAND is the paper's main vehicle: its four transistors are the
defect sites ``NA``, ``NB`` (series pull-down) and ``PA``, ``PB`` (parallel
pull-up) referenced throughout Table 1 and Section 4.
"""

from __future__ import annotations

from typing import Sequence

from ..spice.netlist import Circuit
from .builder import CellInstance, TransistorSite, add_transistor, pin_names, register_cell
from .technology import Technology


def add_nand(
    circuit: Circuit,
    tech: Technology,
    name: str,
    inputs: Sequence[str],
    output: str,
    vdd: str = "vdd",
    gnd: str = "0",
    width_scale: float = 1.0,
) -> CellInstance:
    """Add an N-input CMOS NAND gate (N = 2 or 3).

    Pull-up: one PMOS per input, all in parallel between ``vdd`` and the
    output.  Pull-down: a series chain of NMOS devices from the output to
    ground; the device driven by pin A is adjacent to the output, matching
    the schematic of Figure 5 in the paper.
    """
    n = len(inputs)
    if n < 2 or n > 3:
        raise ValueError(f"NAND {name!r}: supported input counts are 2 and 3, got {n}")
    pins = pin_names(n)
    transistors: list[TransistorSite] = []
    internal: list[str] = []

    # Parallel PMOS pull-up network.
    for pin, node in zip(pins, inputs):
        mname = f"{name}.mp_{pin.lower()}"
        add_transistor(circuit, tech, mname, "p", output, node, vdd, vdd, width_scale)
        transistors.append(TransistorSite(mname, "p", pin, output, node, vdd, vdd, "pull_up"))

    # Series NMOS pull-down chain: output -> mid1 -> (mid2 ->) gnd.
    chain_nodes = [output]
    for i in range(1, n):
        mid = f"{name}.mid{i}"
        chain_nodes.append(mid)
        internal.append(mid)
    chain_nodes.append(gnd)

    series_scale = width_scale * tech.series_width_factor
    for i, (pin, node) in enumerate(zip(pins, inputs)):
        drain = chain_nodes[i]
        source = chain_nodes[i + 1]
        mname = f"{name}.mn_{pin.lower()}"
        add_transistor(circuit, tech, mname, "n", drain, node, source, gnd, series_scale)
        transistors.append(TransistorSite(mname, "n", pin, drain, node, source, gnd, "pull_down"))

    return CellInstance(
        name=name,
        cell_type=f"NAND{n}",
        inputs=dict(zip(pins, inputs)),
        output=output,
        vdd=vdd,
        gnd=gnd,
        transistors=transistors,
        internal_nodes=internal,
    )


register_cell("NAND2", add_nand)
register_cell("NAND3", add_nand)
register_cell("NAND", add_nand)
