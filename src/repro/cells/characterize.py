"""Characterization of transistor-level cells in the Figure-5 harness.

These routines run the harness built by :mod:`repro.cells.fixtures` and turn
the resulting waveforms into :class:`~repro.analysis.delay.TransitionMeasurement`
objects.  Fault injection is deliberately decoupled: callers that want to
characterize a defective gate pass a ``prepare`` callback (usually
:func:`repro.core.injection.inject_obd_defect`) that mutates the harness
circuit before simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from ..analysis.delay import TransitionMeasurement, measure_transition
from ..spice.analysis.transient import TransientOptions, TransientResult, transient
from .fixtures import GateHarness

#: Callback applied to a harness before simulation (e.g. defect injection).
HarnessPreparer = Callable[[GateHarness], None]


@dataclass
class HarnessCharacterization:
    """Simulation output plus the measured output transition."""

    harness: GateHarness
    result: TransientResult
    measurement: TransitionMeasurement
    switching_pin: Optional[str]

    @property
    def delay(self) -> Optional[float]:
        return self.measurement.delay

    @property
    def classification(self) -> str:
        return self.measurement.classification


def simulate_harness(
    harness: GateHarness,
    dt: float = 2e-12,
    extra_nodes: Iterable[str] = (),
    options: TransientOptions | None = None,
) -> TransientResult:
    """Run the transient simulation of a harness.

    Records the DUT inputs, the DUT output, the load nodes and any extra
    nodes the caller asks for (e.g. the internal breakdown node).
    """
    record = set(harness.input_nodes.values())
    record.add(harness.output_node)
    record.update(harness.load_nodes)
    record.update(extra_nodes)
    return transient(
        harness.circuit,
        t_stop=harness.t_stop,
        dt=dt,
        options=options,
        record_nodes=sorted(record),
    )


def measure_harness(
    harness: GateHarness,
    result: TransientResult,
    capture_window: Optional[float] = None,
    switching_pin: Optional[str] = None,
) -> TransitionMeasurement:
    """Measure the expected output transition of a simulated harness.

    The launching edge is taken from *switching_pin* (default: the first pin
    that toggles between the two patterns).  The expected output edge comes
    from the gate's Boolean function.
    """
    pins = harness.switching_pins
    if switching_pin is None:
        if not pins:
            raise ValueError("harness sequence does not switch any input")
        switching_pin = pins[0]
    elif switching_pin not in harness.input_nodes:
        raise ValueError(f"unknown pin {switching_pin!r}")

    input_node = harness.input_nodes[switching_pin]
    input_edge = harness.pin_edge(switching_pin)
    if input_edge is None:
        raise ValueError(f"pin {switching_pin!r} does not switch in this sequence")

    return measure_transition(
        result.waveform(input_node),
        result.waveform(harness.output_node),
        input_edge=input_edge,
        output_edge=harness.output_edge,
        threshold=harness.tech.half_vdd,
        launch_after=harness.launch_time * 0.5,
        capture_window=capture_window,
    )


def characterize_harness(
    harness: GateHarness,
    prepare: HarnessPreparer | None = None,
    dt: float = 2e-12,
    capture_window: Optional[float] = None,
    extra_nodes: Iterable[str] = (),
    options: TransientOptions | None = None,
) -> HarnessCharacterization:
    """Prepare (optionally inject a defect), simulate and measure a harness."""
    if prepare is not None:
        prepare(harness)
    result = simulate_harness(harness, dt=dt, extra_nodes=extra_nodes, options=options)
    pins = harness.switching_pins
    switching_pin = pins[0] if pins else None
    measurement = (
        measure_harness(harness, result, capture_window=capture_window)
        if switching_pin is not None
        else TransitionMeasurement(
            delay=None,
            classification="no-launch-edge",
            launch_time=None,
            capture_deadline=result.time[-1],
            output_start=result.waveform(harness.output_node).initial_value(),
            output_final=result.waveform(harness.output_node).final_value(),
        )
    )
    return HarnessCharacterization(
        harness=harness,
        result=result,
        measurement=measurement,
        switching_pin=switching_pin,
    )
