"""Static CMOS inverter cell."""

from __future__ import annotations

from typing import Sequence

from ..spice.netlist import Circuit
from .builder import CellInstance, TransistorSite, add_transistor, register_cell
from .technology import Technology


def add_inverter(
    circuit: Circuit,
    tech: Technology,
    name: str,
    inputs: Sequence[str],
    output: str,
    vdd: str = "vdd",
    gnd: str = "0",
    width_scale: float = 1.0,
) -> CellInstance:
    """Add a CMOS inverter: one PMOS (site ``PA``) and one NMOS (site ``NA``)."""
    if len(inputs) != 1:
        raise ValueError(f"inverter {name!r} takes exactly one input, got {len(inputs)}")
    (in_node,) = inputs

    pmos_name = f"{name}.mp_a"
    nmos_name = f"{name}.mn_a"
    add_transistor(circuit, tech, pmos_name, "p", output, in_node, vdd, vdd, width_scale)
    add_transistor(circuit, tech, nmos_name, "n", output, in_node, gnd, gnd, width_scale)

    transistors = [
        TransistorSite(pmos_name, "p", "A", output, in_node, vdd, vdd, "pull_up"),
        TransistorSite(nmos_name, "n", "A", output, in_node, gnd, gnd, "pull_down"),
    ]
    return CellInstance(
        name=name,
        cell_type="INV",
        inputs={"A": in_node},
        output=output,
        vdd=vdd,
        gnd=gnd,
        transistors=transistors,
    )


register_cell("INV", add_inverter)
register_cell("NOT", add_inverter)
