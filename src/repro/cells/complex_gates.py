"""Complex static CMOS gates: AOI21 and OAI21.

Section 5 of the paper notes that the electromigration-oriented test inputs
that happen to cover OBD defects in simple NAND gates "may not always be
true, especially for complex gates".  These two cells give the excitation
analysis and the ATPG engine complex-gate structures (mixed series/parallel
networks) to exercise that claim.
"""

from __future__ import annotations

from typing import Sequence

from ..spice.netlist import Circuit
from .builder import CellInstance, TransistorSite, add_transistor, register_cell
from .technology import Technology


def add_aoi21(
    circuit: Circuit,
    tech: Technology,
    name: str,
    inputs: Sequence[str],
    output: str,
    vdd: str = "vdd",
    gnd: str = "0",
    width_scale: float = 1.0,
) -> CellInstance:
    """AND-OR-INVERT: ``out = not((A and B) or C)``.

    Pull-down: (A series B) in parallel with C.
    Pull-up: (A parallel B) in series with C.
    """
    if len(inputs) != 3:
        raise ValueError(f"AOI21 {name!r} takes 3 inputs (A, B, C)")
    a, b, c = inputs
    mid_n = f"{name}.nmid"
    mid_p = f"{name}.pmid"
    series_scale = width_scale * tech.series_width_factor

    # Pull-down network.
    add_transistor(circuit, tech, f"{name}.mn_a", "n", output, a, mid_n, gnd, series_scale)
    add_transistor(circuit, tech, f"{name}.mn_b", "n", mid_n, b, gnd, gnd, series_scale)
    add_transistor(circuit, tech, f"{name}.mn_c", "n", output, c, gnd, gnd, width_scale)

    # Pull-up network.
    add_transistor(circuit, tech, f"{name}.mp_a", "p", mid_p, a, vdd, vdd, width_scale)
    add_transistor(circuit, tech, f"{name}.mp_b", "p", mid_p, b, vdd, vdd, width_scale)
    add_transistor(circuit, tech, f"{name}.mp_c", "p", output, c, mid_p, vdd, series_scale)

    transistors = [
        TransistorSite(f"{name}.mn_a", "n", "A", output, a, mid_n, gnd, "pull_down"),
        TransistorSite(f"{name}.mn_b", "n", "B", mid_n, b, gnd, gnd, "pull_down"),
        TransistorSite(f"{name}.mn_c", "n", "C", output, c, gnd, gnd, "pull_down"),
        TransistorSite(f"{name}.mp_a", "p", "A", mid_p, a, vdd, vdd, "pull_up"),
        TransistorSite(f"{name}.mp_b", "p", "B", mid_p, b, vdd, vdd, "pull_up"),
        TransistorSite(f"{name}.mp_c", "p", "C", output, c, mid_p, vdd, "pull_up"),
    ]
    return CellInstance(
        name=name,
        cell_type="AOI21",
        inputs={"A": a, "B": b, "C": c},
        output=output,
        vdd=vdd,
        gnd=gnd,
        transistors=transistors,
        internal_nodes=[mid_n, mid_p],
    )


def add_oai21(
    circuit: Circuit,
    tech: Technology,
    name: str,
    inputs: Sequence[str],
    output: str,
    vdd: str = "vdd",
    gnd: str = "0",
    width_scale: float = 1.0,
) -> CellInstance:
    """OR-AND-INVERT: ``out = not((A or B) and C)``.

    Pull-down: (A parallel B) in series with C.
    Pull-up: (A series B) in parallel with C.
    """
    if len(inputs) != 3:
        raise ValueError(f"OAI21 {name!r} takes 3 inputs (A, B, C)")
    a, b, c = inputs
    mid_n = f"{name}.nmid"
    mid_p = f"{name}.pmid"
    series_scale = width_scale * tech.series_width_factor

    # Pull-down network.
    add_transistor(circuit, tech, f"{name}.mn_a", "n", output, a, mid_n, gnd, series_scale)
    add_transistor(circuit, tech, f"{name}.mn_b", "n", output, b, mid_n, gnd, series_scale)
    add_transistor(circuit, tech, f"{name}.mn_c", "n", mid_n, c, gnd, gnd, series_scale)

    # Pull-up network.
    add_transistor(circuit, tech, f"{name}.mp_a", "p", mid_p, a, vdd, vdd, series_scale)
    add_transistor(circuit, tech, f"{name}.mp_b", "p", output, b, mid_p, vdd, series_scale)
    add_transistor(circuit, tech, f"{name}.mp_c", "p", output, c, vdd, vdd, width_scale)

    transistors = [
        TransistorSite(f"{name}.mn_a", "n", "A", output, a, mid_n, gnd, "pull_down"),
        TransistorSite(f"{name}.mn_b", "n", "B", output, b, mid_n, gnd, "pull_down"),
        TransistorSite(f"{name}.mn_c", "n", "C", mid_n, c, gnd, gnd, "pull_down"),
        TransistorSite(f"{name}.mp_a", "p", "A", mid_p, a, vdd, vdd, "pull_up"),
        TransistorSite(f"{name}.mp_b", "p", "B", output, b, mid_p, vdd, "pull_up"),
        TransistorSite(f"{name}.mp_c", "p", "C", output, c, vdd, vdd, "pull_up"),
    ]
    return CellInstance(
        name=name,
        cell_type="OAI21",
        inputs={"A": a, "B": b, "C": c},
        output=output,
        vdd=vdd,
        gnd=gnd,
        transistors=transistors,
        internal_nodes=[mid_n, mid_p],
    )


register_cell("AOI21", add_aoi21)
register_cell("OAI21", add_oai21)
