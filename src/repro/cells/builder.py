"""Transistor-level cell construction helpers.

Cells are built directly into a :class:`~repro.spice.netlist.Circuit`.  Every
builder returns a :class:`CellInstance` describing the logical pins and the
individual transistors, which is what the oxide-breakdown machinery needs to
enumerate and inject defect sites (the paper's ``NA``, ``NB``, ``PA``, ``PB``
site naming for a NAND gate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..spice.netlist import Circuit
from .technology import Technology


@dataclass(frozen=True)
class TransistorSite:
    """One transistor inside a cell, i.e. one potential OBD defect site.

    Attributes
    ----------
    element_name:
        Name of the :class:`~repro.spice.elements.mosfet.Mosfet` element in
        the circuit.
    polarity:
        ``"n"`` or ``"p"``.
    input_pin:
        Logical input pin of the cell that drives this transistor's gate
        (``"A"``, ``"B"``, ...).
    site:
        Paper-style site label: polarity letter + input pin, e.g. ``"NA"``.
    drain / gate / source / bulk:
        Circuit node names of the four terminals.
    network:
        ``"pull_down"`` for NMOS network devices, ``"pull_up"`` for PMOS.
    """

    element_name: str
    polarity: str
    input_pin: str
    drain: str
    gate: str
    source: str
    bulk: str
    network: str

    @property
    def site(self) -> str:
        return f"{self.polarity.upper()}{self.input_pin}"


@dataclass
class CellInstance:
    """A placed transistor-level cell."""

    name: str
    cell_type: str
    inputs: dict[str, str]
    output: str
    vdd: str
    gnd: str
    transistors: list[TransistorSite] = field(default_factory=list)
    internal_nodes: list[str] = field(default_factory=list)

    @property
    def input_pins(self) -> list[str]:
        """Logical input pin names in declaration order."""
        return list(self.inputs)

    def site(self, label: str) -> TransistorSite:
        """Look up a transistor by its paper-style site label (e.g. ``"NA"``)."""
        for t in self.transistors:
            if t.site == label.upper():
                return t
        raise KeyError(f"cell {self.name!r} has no transistor site {label!r}")

    def sites(self) -> list[str]:
        """All site labels of the cell."""
        return [t.site for t in self.transistors]


def add_transistor(
    circuit: Circuit,
    tech: Technology,
    name: str,
    polarity: str,
    drain: str,
    gate: str,
    source: str,
    bulk: str,
    width_scale: float = 1.0,
) -> None:
    """Add a single MOSFET (with its parasitic capacitors) to *circuit*."""
    if polarity == "n":
        model = tech.nmos
        width = tech.nmos_width * width_scale
    elif polarity == "p":
        model = tech.pmos
        width = tech.pmos_width * width_scale
    else:
        raise ValueError(f"polarity must be 'n' or 'p', got {polarity!r}")
    circuit.add_mosfet(name, drain, gate, source, bulk, model, width, tech.length)


# --------------------------------------------------------------------------- #
# Cell builder registry: cell_type -> callable(circuit, tech, name, inputs,
# output, vdd, gnd, width_scale) -> CellInstance.  Populated by the individual
# cell modules at import time (inverter, nand, nor, complex gates).
# --------------------------------------------------------------------------- #
CellBuilder = Callable[..., CellInstance]

_CELL_BUILDERS: dict[str, CellBuilder] = {}


def register_cell(cell_type: str, builder: CellBuilder) -> None:
    """Register a builder for a cell type (e.g. ``"NAND2"``)."""
    key = cell_type.upper()
    if key in _CELL_BUILDERS:
        raise ValueError(f"cell type {cell_type!r} already registered")
    _CELL_BUILDERS[key] = builder


def available_cells() -> list[str]:
    """Names of all registered cell types."""
    return sorted(_CELL_BUILDERS)


def build_cell(
    circuit: Circuit,
    tech: Technology,
    cell_type: str,
    name: str,
    inputs: Sequence[str],
    output: str,
    vdd: str = "vdd",
    gnd: str = "0",
    width_scale: float = 1.0,
) -> CellInstance:
    """Instantiate a registered cell type into *circuit*.

    ``inputs`` are the circuit nodes connected to the cell's logical inputs in
    pin order (A, B, C, ...).
    """
    key = cell_type.upper()
    if key not in _CELL_BUILDERS:
        raise KeyError(
            f"unknown cell type {cell_type!r}; available: {', '.join(available_cells())}"
        )
    return _CELL_BUILDERS[key](
        circuit,
        tech,
        name,
        list(inputs),
        output,
        vdd=vdd,
        gnd=gnd,
        width_scale=width_scale,
    )


INPUT_PIN_NAMES = ("A", "B", "C", "D", "E", "F", "G", "H")


def pin_names(count: int) -> list[str]:
    """Standard logical pin names for an *count*-input cell."""
    if count < 1 or count > len(INPUT_PIN_NAMES):
        raise ValueError(f"unsupported input count {count}")
    return list(INPUT_PIN_NAMES[:count])
