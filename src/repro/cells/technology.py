"""Process technology description used by the transistor-level cell library.

The paper does not name its technology; the 3.3 V waveforms and ~100 ps NAND
delays point at a 0.35 um-class process, which is what the default
:class:`Technology` models with Level-1 parameters.  All cell builders take a
technology instance, so experiments can explore other operating points
(e.g. supply scaling) without touching the cell code.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..spice.elements import MosfetModel


@dataclass(frozen=True)
class Technology:
    """Supply, device models and default geometry for cell construction.

    Attributes
    ----------
    name:
        Human-readable technology name.
    vdd:
        Supply voltage in volts.
    nmos / pmos:
        Level-1 model cards for the two device polarities.
    nmos_width / pmos_width:
        Default device widths in metres (PMOS wider to balance the weaker
        hole mobility).
    length:
        Drawn channel length in metres.
    series_width_factor:
        Width multiplier applied to stacked (series) devices so that e.g. the
        two series NMOS of a NAND roughly match a single inverter pull-down.
    """

    name: str = "generic-350nm-3p3v"
    vdd: float = 3.3
    nmos: MosfetModel = field(
        default_factory=lambda: MosfetModel(
            polarity="n", vto=0.6, kp=120e-6, lambda_=0.05, gamma=0.4, phi=0.7
        )
    )
    pmos: MosfetModel = field(
        default_factory=lambda: MosfetModel(
            polarity="p", vto=-0.7, kp=40e-6, lambda_=0.05, gamma=0.4, phi=0.7
        )
    )
    nmos_width: float = 0.5e-6
    pmos_width: float = 1.0e-6
    length: float = 0.35e-6
    series_width_factor: float = 1.0

    def __post_init__(self):
        if self.vdd <= 0.0:
            raise ValueError("vdd must be > 0")
        if self.nmos_width <= 0.0 or self.pmos_width <= 0.0 or self.length <= 0.0:
            raise ValueError("device geometry must be > 0")
        if self.nmos.polarity != "n" or self.pmos.polarity != "p":
            raise ValueError("technology nmos/pmos models have wrong polarity")

    # ------------------------------------------------------------------ #
    @property
    def half_vdd(self) -> float:
        """Logic threshold used for delay measurements (VDD / 2)."""
        return self.vdd / 2.0

    def logic_level(self, bit: int) -> float:
        """Voltage corresponding to logic 0 or 1."""
        if bit not in (0, 1):
            raise ValueError(f"logic level must be 0 or 1, got {bit}")
        return self.vdd if bit else 0.0

    def scaled(self, width_scale: float, name: str | None = None) -> "Technology":
        """Copy of the technology with all default widths scaled."""
        if width_scale <= 0.0:
            raise ValueError("width_scale must be > 0")
        return replace(
            self,
            name=name or f"{self.name}-x{width_scale:g}",
            nmos_width=self.nmos_width * width_scale,
            pmos_width=self.pmos_width * width_scale,
        )

    def with_supply(self, vdd: float) -> "Technology":
        """Copy of the technology with a different supply voltage."""
        return replace(self, vdd=vdd, name=f"{self.name}-{vdd:g}V")


def default_technology() -> Technology:
    """The 3.3 V / 0.35 um-class technology used throughout the reproduction."""
    return Technology()
