"""Measurement harnesses for transistor-level gate experiments.

The central fixture is the set-up of Figure 5 in the paper: the gate under
test must be *driven by other gates* (not by ideal voltage sources), because
the oxide-breakdown leakage path loads its driver and degrades the voltage at
the defective transistor's gate.  The harness therefore inserts an inverter
between each primary stimulus source and the corresponding input of the gate
under test, and loads the gate output with a two-inverter chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..logic.gates import GateType, evaluate_gate
from ..spice.elements import PiecewiseLinearWaveform
from ..spice.netlist import Circuit
from .builder import CellInstance, build_cell, pin_names
from .inverter import add_inverter
from .technology import Technology

#: Two input patterns applied back to back, e.g. ``((0, 1), (1, 1))`` for the
#: paper's (01, 11) sequence on a 2-input gate.
TwoPatternSequence = tuple[tuple[int, ...], tuple[int, ...]]


@dataclass
class GateHarness:
    """A gate under test embedded between real drivers and a real load."""

    circuit: Circuit
    tech: Technology
    dut: CellInstance
    gate_type: GateType
    sequence: TwoPatternSequence
    #: Node names of the DUT inputs, keyed by logical pin (A, B, ...).
    input_nodes: dict[str, str]
    #: Node names of the primary stimulus sources, keyed by logical pin.
    primary_nodes: dict[str, str]
    output_node: str
    launch_time: float
    transition_time: float
    t_stop: float
    load_nodes: list[str] = field(default_factory=list)

    @property
    def expected_outputs(self) -> tuple[int, int]:
        """Expected Boolean output for the initial and final pattern."""
        v1, v2 = self.sequence
        return (
            evaluate_gate(self.gate_type, v1),
            evaluate_gate(self.gate_type, v2),
        )

    @property
    def switching_pins(self) -> list[str]:
        """Logical pins whose value differs between the two patterns."""
        v1, v2 = self.sequence
        pins = pin_names(len(v1))
        return [pin for pin, b1, b2 in zip(pins, v1, v2) if b1 != b2]

    def pin_edge(self, pin: str) -> str | None:
        """Direction of the DUT-input edge on *pin*: 'rising', 'falling', None."""
        v1, v2 = self.sequence
        pins = pin_names(len(v1))
        index = pins.index(pin)
        if v1[index] == v2[index]:
            return None
        return "rising" if v2[index] > v1[index] else "falling"

    @property
    def output_edge(self) -> str | None:
        """Expected output edge direction, or None when the output holds."""
        out1, out2 = self.expected_outputs
        if out1 == out2:
            return None
        return "rising" if out2 > out1 else "falling"


def validate_sequence(gate_type: GateType | str, sequence: TwoPatternSequence) -> GateType:
    """Check a two-pattern sequence against the gate's input count."""
    gate_type = GateType(gate_type)
    v1, v2 = sequence
    if len(v1) != gate_type.num_inputs or len(v2) != gate_type.num_inputs:
        raise ValueError(
            f"sequence {sequence!r} does not match the {gate_type.num_inputs} inputs "
            f"of {gate_type.value}"
        )
    for bits in (v1, v2):
        if any(b not in (0, 1) for b in bits):
            raise ValueError(f"sequence patterns must contain 0/1 bits: {sequence!r}")
    return gate_type


def build_gate_harness(
    tech: Technology,
    gate_type: GateType | str,
    sequence: TwoPatternSequence,
    launch_time: float = 2e-9,
    transition_time: float = 50e-12,
    observation_window: float = 3e-9,
    driver_scale: float = 1.0,
    dut_scale: float = 1.0,
    load_stages: int = 2,
) -> GateHarness:
    """Build the Figure-5 style harness around a gate of the given type.

    Parameters
    ----------
    tech:
        Technology used for every device in the harness.
    gate_type:
        Cell type of the device under test (``NAND2``, ``NOR2``, ``INV``,
        ``AOI21``, ``OAI21``).
    sequence:
        Two-pattern stimulus applied at the *DUT inputs* (the harness
        compensates for the inverting drivers internally).
    launch_time:
        Time at which the second pattern is launched.
    transition_time:
        Primary-source edge ramp time.
    observation_window:
        How long after the launch the simulation keeps running.
    driver_scale / dut_scale:
        Width scale factors for the driver inverters and the DUT.
    load_stages:
        Number of inverters in the output load chain (>= 1).
    """
    gate_type = validate_sequence(gate_type, sequence)
    if load_stages < 1:
        raise ValueError("load_stages must be >= 1")
    v1, v2 = sequence
    n = gate_type.num_inputs
    pins = pin_names(n)
    vdd = tech.vdd
    t_stop = launch_time + observation_window

    circuit = Circuit(f"harness-{gate_type.value}")
    circuit.add_voltage_source("vdd", "vdd", "0", dc=vdd)

    input_nodes: dict[str, str] = {}
    primary_nodes: dict[str, str] = {}
    for pin, bit1, bit2 in zip(pins, v1, v2):
        primary = f"p{pin.lower()}"
        dut_input = f"in_{pin.lower()}"
        primary_nodes[pin] = primary
        input_nodes[pin] = dut_input
        # The driver inverter flips the stimulus, so the primary source must
        # apply the complement of the wanted DUT-input value.
        level1 = tech.logic_level(1 - bit1)
        level2 = tech.logic_level(1 - bit2)
        waveform = PiecewiseLinearWaveform(
            [
                (0.0, level1),
                (launch_time, level1),
                (launch_time + transition_time, level2),
                (t_stop, level2),
            ]
        )
        circuit.add_voltage_source(f"v{pin.lower()}", primary, "0", waveform=waveform)
        add_inverter(
            circuit,
            tech,
            f"drv_{pin.lower()}",
            [primary],
            dut_input,
            vdd="vdd",
            gnd="0",
            width_scale=driver_scale,
        )

    output_node = "out"
    dut = build_cell(
        circuit,
        tech,
        gate_type.value,
        "dut",
        [input_nodes[p] for p in pins],
        output_node,
        vdd="vdd",
        gnd="0",
        width_scale=dut_scale,
    )

    load_nodes: list[str] = []
    previous = output_node
    for stage in range(load_stages):
        load_out = f"load{stage + 1}"
        add_inverter(circuit, tech, f"load_{stage + 1}", [previous], load_out, vdd="vdd", gnd="0")
        load_nodes.append(load_out)
        previous = load_out

    return GateHarness(
        circuit=circuit,
        tech=tech,
        dut=dut,
        gate_type=gate_type,
        sequence=(tuple(v1), tuple(v2)),
        input_nodes=input_nodes,
        primary_nodes=primary_nodes,
        output_node=output_node,
        launch_time=launch_time,
        transition_time=transition_time,
        t_stop=t_stop,
        load_nodes=load_nodes,
    )


def build_nand_harness(
    tech: Technology,
    sequence: TwoPatternSequence,
    **kwargs,
) -> GateHarness:
    """The exact Figure-5 set-up: a 2-input NAND between drivers and a load."""
    return build_gate_harness(tech, GateType.NAND2, sequence, **kwargs)


def build_inverter_dc_circuit(
    tech: Technology,
    input_node: str = "in",
    output_node: str = "out",
) -> tuple[Circuit, CellInstance]:
    """Inverter driven by a DC source, for voltage-transfer-curve sweeps.

    This is the Figure-4 set-up: the static transfer characteristic only
    needs an ideal source at the input (the dynamic loading argument of
    Figure 5 does not apply to a DC sweep).
    """
    circuit = Circuit("inverter-vtc")
    circuit.add_voltage_source("vdd", "vdd", "0", dc=tech.vdd)
    circuit.add_voltage_source("vin", input_node, "0", dc=0.0)
    cell = add_inverter(circuit, tech, "dut", [input_node], output_node, vdd="vdd", gnd="0")
    return circuit, cell
