"""Transistor-level CMOS standard cells and measurement fixtures."""

from .builder import (
    CellInstance,
    TransistorSite,
    add_transistor,
    available_cells,
    build_cell,
    pin_names,
    register_cell,
)
from .characterize import (
    HarnessCharacterization,
    characterize_harness,
    measure_harness,
    simulate_harness,
)
from .complex_gates import add_aoi21, add_oai21
from .fixtures import (
    GateHarness,
    TwoPatternSequence,
    build_gate_harness,
    build_inverter_dc_circuit,
    build_nand_harness,
    validate_sequence,
)
from .inverter import add_inverter
from .nand import add_nand
from .nor import add_nor
from .technology import Technology, default_technology

__all__ = [
    "Technology",
    "default_technology",
    "CellInstance",
    "TransistorSite",
    "add_transistor",
    "register_cell",
    "available_cells",
    "build_cell",
    "pin_names",
    "add_inverter",
    "add_nand",
    "add_nor",
    "add_aoi21",
    "add_oai21",
    "GateHarness",
    "TwoPatternSequence",
    "build_gate_harness",
    "build_nand_harness",
    "build_inverter_dc_circuit",
    "validate_sequence",
    "HarnessCharacterization",
    "simulate_harness",
    "measure_harness",
    "characterize_harness",
]
