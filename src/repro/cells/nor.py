"""Static CMOS NOR cells (2- and 3-input).

Used by the Section-5 generalization: for a NOR gate, the roles of the NMOS
and PMOS networks are exchanged with respect to the NAND, so it is the NMOS
OBD defects that become input specific.
"""

from __future__ import annotations

from typing import Sequence

from ..spice.netlist import Circuit
from .builder import CellInstance, TransistorSite, add_transistor, pin_names, register_cell
from .technology import Technology


def add_nor(
    circuit: Circuit,
    tech: Technology,
    name: str,
    inputs: Sequence[str],
    output: str,
    vdd: str = "vdd",
    gnd: str = "0",
    width_scale: float = 1.0,
) -> CellInstance:
    """Add an N-input CMOS NOR gate (N = 2 or 3).

    Pull-up: a series chain of PMOS devices from ``vdd`` to the output (the
    device driven by pin A is adjacent to ``vdd``).  Pull-down: one NMOS per
    input, all in parallel between the output and ground.
    """
    n = len(inputs)
    if n < 2 or n > 3:
        raise ValueError(f"NOR {name!r}: supported input counts are 2 and 3, got {n}")
    pins = pin_names(n)
    transistors: list[TransistorSite] = []
    internal: list[str] = []

    # Series PMOS pull-up chain: vdd -> mid1 -> (mid2 ->) output.
    chain_nodes = [vdd]
    for i in range(1, n):
        mid = f"{name}.mid{i}"
        chain_nodes.append(mid)
        internal.append(mid)
    chain_nodes.append(output)

    series_scale = width_scale * tech.series_width_factor
    for i, (pin, node) in enumerate(zip(pins, inputs)):
        source = chain_nodes[i]
        drain = chain_nodes[i + 1]
        mname = f"{name}.mp_{pin.lower()}"
        add_transistor(circuit, tech, mname, "p", drain, node, source, vdd, series_scale)
        transistors.append(TransistorSite(mname, "p", pin, drain, node, source, vdd, "pull_up"))

    # Parallel NMOS pull-down network.
    for pin, node in zip(pins, inputs):
        mname = f"{name}.mn_{pin.lower()}"
        add_transistor(circuit, tech, mname, "n", output, node, gnd, gnd, width_scale)
        transistors.append(TransistorSite(mname, "n", pin, output, node, gnd, gnd, "pull_down"))

    return CellInstance(
        name=name,
        cell_type=f"NOR{n}",
        inputs=dict(zip(pins, inputs)),
        output=output,
        vdd=vdd,
        gnd=gnd,
        transistors=transistors,
        internal_nodes=internal,
    )


register_cell("NOR2", add_nor)
register_cell("NOR3", add_nor)
register_cell("NOR", add_nor)
