"""Fault models: stuck-at, transition and path-delay baselines plus OBD."""

from .base import Fault, FaultList
from .collapse import (
    collapse_ratio,
    collapse_stuck_at_dominance,
    collapse_stuck_at_faults,
    obd_equivalence_groups,
)
from .obd import ObdFault, obd_fault_universe
from .path_delay import FALLING, RISING, PathDelayFault, is_sensitized, path_delay_universe
from .stuck_at import StuckAtFault, stuck_at_universe
from .transition import (
    SLOW_TO_FALL,
    SLOW_TO_RISE,
    TransitionFault,
    transition_fault_universe,
)

__all__ = [
    "Fault",
    "FaultList",
    "StuckAtFault",
    "stuck_at_universe",
    "TransitionFault",
    "transition_fault_universe",
    "SLOW_TO_RISE",
    "SLOW_TO_FALL",
    "PathDelayFault",
    "path_delay_universe",
    "is_sensitized",
    "RISING",
    "FALLING",
    "ObdFault",
    "obd_fault_universe",
    "collapse_stuck_at_faults",
    "collapse_stuck_at_dominance",
    "collapse_ratio",
    "obd_equivalence_groups",
]
