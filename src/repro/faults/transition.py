"""Transition (slow-to-rise / slow-to-fall) fault model.

The paper contrasts OBD behaviour with this model: a transition fault only
cares about the direction of the edge at a net, not about *which* input
combination produced it, which is exactly why transition-fault test sets can
miss PMOS OBD defects (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..logic.netlist import LogicCircuit
from .base import Fault, FaultList

SLOW_TO_RISE = "slow-to-rise"
SLOW_TO_FALL = "slow-to-fall"


@dataclass(frozen=True)
class TransitionFault(Fault):
    """Net *net* is slow to rise or slow to fall."""

    net: str
    direction: str

    def __post_init__(self):
        if self.direction not in (SLOW_TO_RISE, SLOW_TO_FALL):
            raise ValueError(f"direction must be '{SLOW_TO_RISE}' or '{SLOW_TO_FALL}'")

    @property
    def key(self) -> str:
        suffix = "str" if self.direction == SLOW_TO_RISE else "stf"
        return f"{self.net}/{suffix}"

    def describe(self) -> str:
        return f"{self.direction} on net {self.net}"

    @property
    def launch_value(self) -> int:
        """Net value required in the first pattern (before the transition)."""
        return 0 if self.direction == SLOW_TO_RISE else 1

    @property
    def final_value(self) -> int:
        """Net value required in the second pattern (good machine)."""
        return 1 - self.launch_value


def transition_fault_universe(circuit: LogicCircuit) -> FaultList[TransitionFault]:
    """Both transition faults on every net of the circuit."""
    faults: list[TransitionFault] = []
    for net in circuit.nets():
        faults.append(TransitionFault(net, SLOW_TO_RISE))
        faults.append(TransitionFault(net, SLOW_TO_FALL))
    return FaultList(faults)
