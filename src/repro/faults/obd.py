"""Gate-level oxide-breakdown fault model.

An :class:`ObdFault` names a transistor of a gate instance in a gate-level
netlist.  Its behaviour at the gate level is a *transition* fault at the gate
output whose excitation, unlike the classical transition fault, is **input
specific**: only the two-pattern sequences returned by
:func:`repro.core.excitation.excitation_conditions` excite it.  This is the
fault object handed to the OBD ATPG engine and to the OBD fault simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable

from ..core.breakdown import BreakdownStage
from ..core.defect import OBDDefect
from ..core.excitation import Sequence2, excitation_conditions
from ..logic.expand import enumerate_obd_sites
from ..logic.gates import GateType
from ..logic.netlist import LogicCircuit
from .base import Fault, FaultList


@dataclass(frozen=True)
class ObdFault(Fault):
    """An oxide-breakdown defect in one transistor of one gate instance."""

    gate_name: str
    gate_type: GateType
    site: str

    @property
    def key(self) -> str:
        return f"{self.gate_name}/{self.site}"

    def describe(self) -> str:
        return f"OBD in transistor {self.site} of {self.gate_type.value} gate {self.gate_name}"

    @property
    def polarity(self) -> str:
        return self.site[0].lower()

    @property
    def input_pin(self) -> str:
        return self.site[1:]

    @cached_property
    def local_sequences(self) -> tuple[Sequence2, ...]:
        """Gate-input two-pattern sequences that excite this defect."""
        return tuple(excitation_conditions(self.gate_type, self.site, mode="obd"))

    @property
    def output_edge(self) -> str:
        """Direction of the output transition delayed by this defect.

        NMOS (pull-down) defects slow falling outputs, PMOS (pull-up) defects
        slow rising outputs.
        """
        return "falling" if self.polarity == "n" else "rising"

    def as_defect(self, stage: BreakdownStage = BreakdownStage.MBD2) -> OBDDefect:
        """Circuit-level defect description for transistor-level injection."""
        return OBDDefect(site=self.site, stage=stage, gate=self.gate_name)


def obd_fault_universe(
    circuit: LogicCircuit,
    gate_types: Iterable[GateType | str] | None = None,
) -> FaultList[ObdFault]:
    """All OBD faults of a gate-level netlist.

    ``gate_types`` restricts the universe (the paper's Section 4.3 counts
    only the NAND gates of the full-adder example: 14 gates x 4 transistors
    = 56 faults).
    """
    faults = []
    for site in enumerate_obd_sites(circuit, gate_types=gate_types):
        faults.append(ObdFault(site.gate_name, site.gate_type, site.site))
    return FaultList(faults)
