"""Structural fault collapsing.

* Stuck-at equivalence collapsing uses the textbook dominance-free
  equivalence rules for elementary gates (an input stuck at the controlling
  value is equivalent to the output stuck at the controlled response, and an
  inverter/buffer input fault is equivalent to the corresponding output
  fault).
* OBD faults collapse per gate: within one gate, the defects of transistors
  that are structurally interchangeable (same network, same excitation
  condition set) form an equivalence group for *test-set* purposes, although
  they remain physically distinct sites.
"""

from __future__ import annotations

from collections import defaultdict

from ..core.excitation import excitation_conditions
from ..logic.gates import GateType, controlling_value, evaluate_gate
from ..logic.netlist import LogicCircuit
from .base import FaultList
from .obd import ObdFault
from .stuck_at import StuckAtFault, stuck_at_universe


def collapse_stuck_at_faults(circuit: LogicCircuit) -> FaultList[StuckAtFault]:
    """Equivalence-collapsed stuck-at fault list.

    Collapsing rules applied per gate (output faults are kept as the class
    representatives):

    * INV / BUF: both input faults are equivalent to output faults.
    * AND/NAND: input stuck-at-0 faults are equivalent to the output
      stuck-at-(0 for AND / 1 for NAND) fault.
    * OR/NOR: input stuck-at-1 faults are equivalent to the output
      stuck-at-(1 for OR / 0 for NOR) fault.

    Faults on primary inputs that also feed gates stay in the list only when
    they are not absorbed by one of the rules above (standard practice keeps
    the output-side representative).
    """
    universe = stuck_at_universe(circuit)
    removed: set[str] = set()

    for gate in circuit:
        ctrl = controlling_value(gate.gate_type)
        if gate.gate_type in (GateType.INV, GateType.BUF):
            # Input faults equivalent to output faults.
            for value in (0, 1):
                removed.add(StuckAtFault(gate.inputs[0], value).key)
            continue
        if ctrl is None:
            continue
        for net in gate.inputs:
            removed.add(StuckAtFault(net, ctrl).key)

    survivors = [f for f in universe if f.key not in removed]
    return FaultList(survivors)


def collapse_ratio(circuit: LogicCircuit) -> float:
    """Collapsed / uncollapsed stuck-at fault count ratio."""
    total = len(stuck_at_universe(circuit))
    collapsed = len(collapse_stuck_at_faults(circuit))
    return collapsed / total if total else 1.0


def obd_equivalence_groups(faults: FaultList[ObdFault]) -> dict[str, list[ObdFault]]:
    """Group OBD faults of each gate by identical excitation-condition sets.

    Faults in the same group are detected by exactly the same local input
    sequences (e.g. NA and NB of a NAND), so a test set that covers one
    covers the other.  The group key is ``<gate>/<sorted site list>``.
    """
    by_gate: dict[str, list[ObdFault]] = defaultdict(list)
    for fault in faults:
        by_gate[fault.gate_name].append(fault)

    groups: dict[str, list[ObdFault]] = {}
    for gate_name, gate_faults in by_gate.items():
        by_conditions: dict[tuple, list[ObdFault]] = defaultdict(list)
        for fault in gate_faults:
            conditions = tuple(sorted(excitation_conditions(fault.gate_type, fault.site)))
            by_conditions[conditions].append(fault)
        for members in by_conditions.values():
            label = f"{gate_name}/" + "+".join(sorted(f.site for f in members))
            groups[label] = sorted(members, key=lambda f: f.site)
    return groups
