"""Structural fault collapsing.

* Stuck-at equivalence collapsing uses the textbook dominance-free
  equivalence rules for elementary gates (an input stuck at the controlling
  value is equivalent to the output stuck at the controlled response, and an
  inverter/buffer input fault is equivalent to the corresponding output
  fault).
* OBD faults collapse per gate: within one gate, the defects of transistors
  that are structurally interchangeable (same network, same excitation
  condition set) form an equivalence group for *test-set* purposes, although
  they remain physically distinct sites.
"""

from __future__ import annotations

from collections import defaultdict

from ..core.excitation import excitation_conditions
from ..logic.gates import GateType, controlling_value, evaluate_gate
from ..logic.netlist import LogicCircuit
from .base import FaultList
from .obd import ObdFault
from .stuck_at import StuckAtFault, stuck_at_universe


def collapse_stuck_at_faults(circuit: LogicCircuit) -> FaultList[StuckAtFault]:
    """Equivalence-collapsed stuck-at fault list.

    Collapsing rules applied per gate (output faults are kept as the class
    representatives):

    * INV / BUF: both input faults are equivalent to output faults.
    * AND/NAND: input stuck-at-0 faults are equivalent to the output
      stuck-at-(0 for AND / 1 for NAND) fault.
    * OR/NOR: input stuck-at-1 faults are equivalent to the output
      stuck-at-(1 for OR / 0 for NOR) fault.

    Faults on primary inputs that also feed gates stay in the list only when
    they are not absorbed by one of the rules above (standard practice keeps
    the output-side representative).
    """
    universe = stuck_at_universe(circuit)
    removed: set[str] = set()

    for gate in circuit:
        ctrl = controlling_value(gate.gate_type)
        if gate.gate_type in (GateType.INV, GateType.BUF):
            # Input faults equivalent to output faults.
            for value in (0, 1):
                removed.add(StuckAtFault(gate.inputs[0], value).key)
            continue
        if ctrl is None:
            continue
        for net in gate.inputs:
            removed.add(StuckAtFault(net, ctrl).key)

    survivors = [f for f in universe if f.key not in removed]
    return FaultList(survivors)


def collapse_stuck_at_dominance(circuit: LogicCircuit) -> FaultList[StuckAtFault]:
    """Equivalence *plus* guarded dominance-collapsed stuck-at fault list.

    On top of :func:`collapse_stuck_at_faults`, drops each gate-output fault
    that *dominates* the gate's input faults: for a gate with controlling
    value ``c``, every test for an input stuck at ``1 - c`` sets that input
    to ``c`` and the others to ``1 - c`` and observes the gate output, so it
    also detects the output stuck at the all-noncontrolling response (e.g.
    ``AND -> out/sa1``, ``OR -> out/sa0``).  Targeting only the dominated
    input faults therefore still covers the output fault.

    Dominance is only sound for the *per-net* fault model under structural
    guards; the drop is applied when

    * the gate has at least two distinct inputs and a controlling value,
    * every input net's only load is this gate (with other fan-out, an input
      difference can reach an output without sensitizing this gate, so the
      dominance argument breaks), and
    * no input net is itself a primary output (its fault is then observable
      without going through the gate at all).

    The remaining caveat is classical: in a redundant circuit every dominated
    input fault may be untestable while the dropped output fault is testable,
    in which case a test set targeting the collapsed list can miss it.  The
    property suite cross-checks full-universe coverage of collapsed-universe
    campaigns on the generator families.
    """
    base = collapse_stuck_at_faults(circuit)
    loads: dict[str, set[str]] = defaultdict(set)
    for gate in circuit:
        for net in gate.inputs:
            loads[net].add(gate.name)
    outputs = set(circuit.primary_outputs)

    removed: set[str] = set()
    for gate in circuit:
        ctrl = controlling_value(gate.gate_type)
        if ctrl is None:
            continue
        distinct = tuple(dict.fromkeys(gate.inputs))
        if len(distinct) < 2:
            continue
        if any(net in outputs for net in distinct):
            continue
        if any(loads[net] != {gate.name} for net in distinct):
            continue
        response = evaluate_gate(gate.gate_type, [1 - ctrl] * len(gate.inputs))
        removed.add(StuckAtFault(gate.output, response).key)

    return FaultList([f for f in base if f.key not in removed])


def collapse_ratio(circuit: LogicCircuit) -> float:
    """Collapsed / uncollapsed stuck-at fault count ratio."""
    total = len(stuck_at_universe(circuit))
    collapsed = len(collapse_stuck_at_faults(circuit))
    return collapsed / total if total else 1.0


def obd_equivalence_groups(faults: FaultList[ObdFault]) -> dict[str, list[ObdFault]]:
    """Group OBD faults of each gate by identical excitation-condition sets.

    Faults in the same group are detected by exactly the same local input
    sequences (e.g. NA and NB of a NAND), so a test set that covers one
    covers the other.  The group key is ``<gate>/<sorted site list>``.
    """
    by_gate: dict[str, list[ObdFault]] = defaultdict(list)
    for fault in faults:
        by_gate[fault.gate_name].append(fault)

    groups: dict[str, list[ObdFault]] = {}
    for gate_name, gate_faults in by_gate.items():
        by_conditions: dict[tuple, list[ObdFault]] = defaultdict(list)
        for fault in gate_faults:
            conditions = tuple(sorted(excitation_conditions(fault.gate_type, fault.site)))
            by_conditions[conditions].append(fault)
        for members in by_conditions.values():
            label = f"{gate_name}/" + "+".join(sorted(f.site for f in members))
            groups[label] = sorted(members, key=lambda f: f.site)
    return groups
