"""Fault abstractions shared by the classical and OBD fault models."""

from __future__ import annotations

from typing import Generic, Iterable, Iterator, TypeVar


class Fault:
    """Base class for all fault objects.

    Every fault exposes a stable ``key`` used in detection dictionaries and
    reports, and a human-readable ``describe()``.
    """

    @property
    def key(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError

    def describe(self) -> str:
        return self.key

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.key))

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.key == other.key  # type: ignore[attr-defined]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} {self.key}>"


F = TypeVar("F", bound=Fault)


class FaultList(Generic[F]):
    """An ordered, de-duplicated collection of faults."""

    def __init__(self, faults: Iterable[F] = ()):
        self._faults: dict[str, F] = {}
        for fault in faults:
            self.add(fault)

    def add(self, fault: F) -> F:
        self._faults.setdefault(fault.key, fault)
        return self._faults[fault.key]

    def __iter__(self) -> Iterator[F]:
        return iter(self._faults.values())

    def __len__(self) -> int:
        return len(self._faults)

    def __contains__(self, fault: F) -> bool:
        return fault.key in self._faults

    def keys(self) -> list[str]:
        return list(self._faults)

    def get(self, key: str) -> F:
        return self._faults[key]

    def filtered(self, predicate) -> "FaultList[F]":
        return FaultList(f for f in self if predicate(f))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<FaultList n={len(self)}>"
