"""Single stuck-at fault model (the classical baseline)."""

from __future__ import annotations

from dataclasses import dataclass

from ..logic.netlist import LogicCircuit
from .base import Fault, FaultList


@dataclass(frozen=True)
class StuckAtFault(Fault):
    """Net *net* permanently stuck at *value* (0 or 1)."""

    net: str
    value: int

    def __post_init__(self):
        if self.value not in (0, 1):
            raise ValueError(f"stuck-at value must be 0 or 1, got {self.value!r}")

    @property
    def key(self) -> str:
        return f"{self.net}/sa{self.value}"

    def describe(self) -> str:
        return f"stuck-at-{self.value} on net {self.net}"


def stuck_at_universe(circuit: LogicCircuit) -> FaultList[StuckAtFault]:
    """Both stuck-at faults on every net (primary inputs and gate outputs)."""
    faults: list[StuckAtFault] = []
    for net in circuit.nets():
        faults.append(StuckAtFault(net, 0))
        faults.append(StuckAtFault(net, 1))
    return FaultList(faults)
