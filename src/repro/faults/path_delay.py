"""Path-delay fault model (second classical baseline).

The paper lists the path-delay model alongside the transition model as the
existing dynamic fault models that OBD behaviour resembles but does not
match.  The implementation here provides the fault objects, path enumeration
and a (non-robust) sensitization check via two-pattern logic simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..logic.netlist import LogicCircuit
from ..logic.simulator import simulate_pattern
from ..logic.timing import enumerate_paths
from .base import Fault, FaultList

RISING = "rising"
FALLING = "falling"


@dataclass(frozen=True)
class PathDelayFault(Fault):
    """A structural path that is too slow for the given launch edge."""

    nets: tuple[str, ...]
    direction: str

    def __post_init__(self):
        if self.direction not in (RISING, FALLING):
            raise ValueError("direction must be 'rising' or 'falling'")
        if len(self.nets) < 2:
            raise ValueError("a path needs at least an input and an output net")

    @property
    def key(self) -> str:
        arrow = "->".join(self.nets)
        return f"{arrow}/{self.direction}"

    def describe(self) -> str:
        return f"{self.direction}-edge path delay along {' -> '.join(self.nets)}"

    @property
    def launch_net(self) -> str:
        return self.nets[0]

    @property
    def capture_net(self) -> str:
        return self.nets[-1]


def path_delay_universe(
    circuit: LogicCircuit, output: str | None = None, limit: int = 1000
) -> FaultList[PathDelayFault]:
    """Rising and falling path-delay faults along every structural path."""
    faults: list[PathDelayFault] = []
    for path in enumerate_paths(circuit, output=output, limit=limit):
        faults.append(PathDelayFault(path.nets, RISING))
        faults.append(PathDelayFault(path.nets, FALLING))
    return FaultList(faults)


def is_sensitized(
    circuit: LogicCircuit,
    fault: PathDelayFault,
    first: Sequence[int],
    second: Sequence[int],
) -> bool:
    """Non-robust sensitization check of a path-delay fault by a pattern pair.

    The launch net must make the fault's edge between the two patterns and
    every net along the path must toggle in the corresponding direction
    (functional sensitization; glitch-robustness is not checked).
    """
    values1 = simulate_pattern(circuit, first)
    values2 = simulate_pattern(circuit, second)
    launch_net = fault.nets[0]
    expected = 1 if fault.direction == RISING else 0
    if values2[launch_net] != expected or values1[launch_net] == values2[launch_net]:
        return False
    # Functional sensitization: every net along the path must toggle, so the
    # launched edge actually travels down the whole path.
    return all(values1[net] != values2[net] for net in fault.nets)
