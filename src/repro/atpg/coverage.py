"""Fault-coverage accounting and report formatting."""

from __future__ import annotations

from dataclasses import dataclass

from .fault_sim import DetectionReport


@dataclass(frozen=True)
class CoverageReport:
    """Summary of a fault-simulation or ATPG campaign."""

    model: str
    total_faults: int
    detected: int
    untestable: int = 0
    aborted: int = 0
    num_tests: int = 0
    #: How many of ``untestable`` were proven by the pre-simulation static
    #: phase (implication / observability analysis) rather than by an
    #: exhausted ATPG search.  Always ``<= untestable``.
    proven_static: int = 0

    @property
    def undetected(self) -> int:
        return self.total_faults - self.detected

    @property
    def coverage(self) -> float:
        """Detected / total (raw fault coverage)."""
        if self.total_faults == 0:
            return 1.0
        return self.detected / self.total_faults

    @property
    def test_efficiency(self) -> float:
        """(detected + proven untestable) / total."""
        if self.total_faults == 0:
            return 1.0
        return (self.detected + self.untestable) / self.total_faults

    def describe(self) -> str:
        untestable = f"{self.untestable} untestable"
        if self.proven_static:
            untestable += f" ({self.proven_static} proven statically)"
        return (
            f"{self.model}: {self.detected}/{self.total_faults} detected "
            f"({100.0 * self.coverage:.1f}%), {untestable}, "
            f"{self.aborted} aborted, {self.num_tests} tests"
        )


def coverage_from_report(model: str, report: DetectionReport, untestable: int = 0,
                         aborted: int = 0) -> CoverageReport:
    """Build a :class:`CoverageReport` from a fault-simulation detection report."""
    return CoverageReport(
        model=model,
        total_faults=len(report.detections),
        detected=len(report.detected_faults),
        untestable=untestable,
        aborted=aborted,
        num_tests=report.num_tests,
    )
