"""Five-valued logic (0, 1, X, D, D-bar) used by the PODEM engine.

A signal value carries the pair (good-machine value, faulty-machine value),
each of which is 0, 1 or unknown.  ``D`` is (1, 0) and ``D-bar`` is (0, 1);
a fault is observable when a primary output carries ``D`` or ``D-bar``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..logic.gates import GateType

Bit = Optional[int]  # 0, 1 or None (unknown)


@dataclass(frozen=True)
class LogicValue:
    """A (good, faulty) value pair."""

    good: Bit
    faulty: Bit

    @property
    def is_known(self) -> bool:
        return self.good is not None and self.faulty is not None

    @property
    def is_error(self) -> bool:
        """True for D or D-bar (good and faulty values are known and differ)."""
        return self.is_known and self.good != self.faulty

    def __str__(self) -> str:
        if self.good is None and self.faulty is None:
            return "X"
        if self.is_error:
            return "D" if self.good == 1 else "D'"
        if self.good is None or self.faulty is None:
            return f"({self.good},{self.faulty})"
        return str(self.good)


ZERO = LogicValue(0, 0)
ONE = LogicValue(1, 1)
X = LogicValue(None, None)
D = LogicValue(1, 0)
DBAR = LogicValue(0, 1)


def from_bit(bit: Bit) -> LogicValue:
    """Lift a plain 0/1/None bit into a fault-free five-valued value."""
    if bit is None:
        return X
    return ONE if bit else ZERO


def _and3(bits: Sequence[Bit]) -> Bit:
    """Three-valued AND."""
    if any(b == 0 for b in bits):
        return 0
    if any(b is None for b in bits):
        return None
    return 1


def _or3(bits: Sequence[Bit]) -> Bit:
    """Three-valued OR."""
    if any(b == 1 for b in bits):
        return 1
    if any(b is None for b in bits):
        return None
    return 0


def _not3(bit: Bit) -> Bit:
    return None if bit is None else 1 - bit


def _xor3(a: Bit, b: Bit) -> Bit:
    if a is None or b is None:
        return None
    return a ^ b


def _evaluate_three_valued(gate_type: GateType, bits: Sequence[Bit]) -> Bit:
    if gate_type == GateType.BUF:
        return bits[0]
    if gate_type == GateType.INV:
        return _not3(bits[0])
    if gate_type in (GateType.AND2, GateType.AND3):
        return _and3(bits)
    if gate_type in (GateType.OR2, GateType.OR3):
        return _or3(bits)
    if gate_type in (GateType.NAND2, GateType.NAND3):
        return _not3(_and3(bits))
    if gate_type in (GateType.NOR2, GateType.NOR3):
        return _not3(_or3(bits))
    if gate_type == GateType.XOR2:
        return _xor3(bits[0], bits[1])
    if gate_type == GateType.XNOR2:
        return _not3(_xor3(bits[0], bits[1]))
    if gate_type == GateType.AOI21:
        return _not3(_or3([_and3(bits[:2]), bits[2]]))
    if gate_type == GateType.OAI21:
        return _not3(_and3([_or3(bits[:2]), bits[2]]))
    raise ValueError(f"unhandled gate type {gate_type!r}")  # pragma: no cover


def evaluate_gate_values(gate_type: GateType | str, inputs: Sequence[LogicValue]) -> LogicValue:
    """Evaluate a gate on five-valued inputs (good and faulty rails separately)."""
    gate_type = GateType(gate_type)
    good = _evaluate_three_valued(gate_type, [v.good for v in inputs])
    faulty = _evaluate_three_valued(gate_type, [v.faulty for v in inputs])
    return LogicValue(good, faulty)


def noncontrolling_value(gate_type: GateType | str) -> Bit:
    """Non-controlling input value of a gate (None for XOR-type gates)."""
    gate_type = GateType(gate_type)
    if gate_type in (GateType.AND2, GateType.AND3, GateType.NAND2, GateType.NAND3):
        return 1
    if gate_type in (GateType.OR2, GateType.OR3, GateType.NOR2, GateType.NOR3):
        return 0
    if gate_type in (GateType.INV, GateType.BUF):
        return 1
    # Complex / XOR gates: no single non-controlling value.
    return None


def gate_inverts(gate_type: GateType | str) -> bool:
    """True when the gate's output polarity is inverted w.r.t. its inputs."""
    return GateType(gate_type).is_inverting
