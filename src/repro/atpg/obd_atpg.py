"""Two-pattern ATPG for oxide-breakdown faults.

Section 4.2 / 5 of the paper: once the gate-local excitation conditions are
known, generating a test for an OBD defect in an embedded gate is the same
kind of problem as classical ATPG -- justify the local two-pattern excitation
cube at the gate's inputs and propagate the resulting (delayed) output
transition to a primary output.

Concretely, for a defect with local excitation sequence ``(v1, v2)`` on gate
``g`` whose output switches from ``o1`` to ``o2``:

* the **capture** pattern must set ``g``'s inputs to exactly ``v2`` and
  propagate "``g`` output stuck at ``o1``" to a primary output (the slow gate
  still shows the old value at capture time);
* the **launch** pattern must set ``g``'s inputs to exactly ``v1``.

Both are solved with the constrained PODEM engine; a fault is reported
untestable only after every alternative excitation sequence has been
exhausted without an abort.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..core.excitation import Sequence2
from ..faults.obd import ObdFault
from ..faults.stuck_at import StuckAtFault
from ..logic.gates import evaluate_gate
from ..logic.netlist import LogicCircuit
from .podem import PodemOptions, generate_stuck_at_test, justify
from .two_pattern import TwoPatternTest, pattern_tuple


@dataclass
class ObdTestResult:
    """Outcome of OBD test generation for one fault."""

    fault: ObdFault
    success: bool
    test: Optional[TwoPatternTest]
    local_sequence: Optional[Sequence2]
    backtracks: int
    aborted: bool = False
    decisions: int = 0

    @property
    def untestable(self) -> bool:
        return not self.success and not self.aborted


def _consistent_constraints(nets, bits) -> dict[str, int] | None:
    """Map nets to required bits, or None when one net needs two values."""
    constraints: dict[str, int] = {}
    for net, bit in zip(nets, bits):
        if net in constraints and constraints[net] != bit:
            return None
        constraints[net] = int(bit)
    return constraints


def generate_obd_test(
    circuit: LogicCircuit,
    fault: ObdFault,
    options: PodemOptions | None = None,
) -> ObdTestResult:
    """Generate a two-pattern test for an OBD fault in a gate-level netlist."""
    options = options or PodemOptions()
    gate = circuit.gate(fault.gate_name)
    total_backtracks = 0
    total_decisions = 0
    aborted_any = False

    for v1, v2 in fault.local_sequences:
        o1 = evaluate_gate(gate.gate_type, v1)
        o2 = evaluate_gate(gate.gate_type, v2)
        if o1 == o2:  # pragma: no cover - excitation guarantees a switch
            continue

        # When the same net feeds several pins of the gate (e.g. a NAND used
        # as an inverter), an excitation cube requiring different values on
        # those pins is unrealizable.
        capture_constraints = _consistent_constraints(gate.inputs, v2)
        launch_cube = _consistent_constraints(gate.inputs, v1)
        if capture_constraints is None or launch_cube is None:
            continue

        capture = generate_stuck_at_test(
            circuit,
            StuckAtFault(gate.output, o1),
            constraints=capture_constraints,
            options=options,
        )
        total_backtracks += capture.backtracks
        total_decisions += capture.decisions
        aborted_any |= capture.aborted
        if not capture.success:
            continue

        launch = justify(circuit, launch_cube, options=options)
        total_backtracks += launch.backtracks
        total_decisions += launch.decisions
        aborted_any |= launch.aborted
        if not launch.success:
            continue

        test = TwoPatternTest(
            first=pattern_tuple(circuit, launch.pattern),
            second=pattern_tuple(circuit, capture.pattern),
        )
        return ObdTestResult(
            fault=fault,
            success=True,
            test=test,
            local_sequence=(v1, v2),
            backtracks=total_backtracks,
            decisions=total_decisions,
        )

    return ObdTestResult(
        fault=fault,
        success=False,
        test=None,
        local_sequence=None,
        backtracks=total_backtracks,
        aborted=aborted_any,
        decisions=total_decisions,
    )


@dataclass
class ObdAtpgSummary:
    """Aggregate result of running OBD ATPG over a fault universe.

    ``skipped`` lists the faults that were never handed to the PODEM engine
    because an earlier pattern phase had already detected them (cross-phase
    fault dropping); ``results`` covers only the attempted faults.
    """

    results: list[ObdTestResult]
    skipped: list[ObdFault] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def testable(self) -> list[ObdTestResult]:
        return [r for r in self.results if r.success]

    @property
    def untestable(self) -> list[ObdTestResult]:
        return [r for r in self.results if r.untestable]

    @property
    def aborted(self) -> list[ObdTestResult]:
        return [r for r in self.results if not r.success and r.aborted]

    @property
    def tests(self) -> list[TwoPatternTest]:
        return [r.test for r in self.results if r.test is not None]

    @property
    def backtracks(self) -> int:
        return sum(r.backtracks for r in self.results)

    @property
    def decisions(self) -> int:
        return sum(r.decisions for r in self.results)

    def describe(self) -> str:
        line = (
            f"OBD ATPG: {self.total} faults, {len(self.testable)} testable, "
            f"{len(self.untestable)} untestable, {len(self.aborted)} aborted, "
            f"{self.backtracks} backtracks"
        )
        if self.skipped:
            line += f", {len(self.skipped)} skipped (already detected)"
        return line


def run_obd_atpg(
    circuit: LogicCircuit,
    faults,
    options: PodemOptions | None = None,
    already_detected: Iterable[str] | None = None,
) -> ObdAtpgSummary:
    """Run :func:`generate_obd_test` over an iterable of OBD faults.

    Faults whose keys appear in *already_detected* (typically the detected
    set of an earlier pattern-phase fault simulation) are skipped instead of
    re-running PODEM for them; they are reported in the summary's
    ``skipped`` list.
    """
    skip = frozenset(already_detected or ())
    results: list[ObdTestResult] = []
    skipped: list[ObdFault] = []
    for fault in faults:
        if fault.key in skip:
            skipped.append(fault)
            continue
        results.append(generate_obd_test(circuit, fault, options=options))
    return ObdAtpgSummary(results=results, skipped=skipped)
