"""Test generation and fault simulation (stuck-at, transition, path-delay, OBD).

Campaign API (preferred)
------------------------

The recommended way to drive this package is the unified campaign API in
:mod:`repro.campaign`: every fault model is registered as a
:class:`~repro.campaign.FaultModel` (universe builder, pattern-source kind,
ATPG routine and packed/serial simulation hooks behind one interface), and a
declarative :class:`~repro.campaign.CampaignSpec` runs the whole pipeline --
universe, optional collapsing, random/exhaustive/SIC pattern phase with
fault dropping, deterministic ATPG top-up for the still-undetected faults,
greedy compaction and a unified :class:`~repro.campaign.CampaignResult`::

    from repro.campaign import CampaignSpec, run_campaign
    from repro.logic import full_adder_sum

    result = run_campaign(full_adder_sum(), CampaignSpec(model="obd"))
    print(result.describe())

Compatibility wrappers
----------------------

The per-model free functions exported here (``simulate_stuck_at`` /
``simulate_transition`` / ``simulate_path_delay`` / ``simulate_obd``, the
per-model ``generate_*_test`` routines and ``run_obd_atpg``) predate the
registry and are kept as thin wrappers over it; existing callers keep
working unchanged.

Fault-simulation engines
------------------------

Four engines produce identical :class:`~repro.atpg.fault_sim.DetectionReport`
objects behind the ``simulate_*`` entry points:

* **packed** (default) -- the bit-parallel engine in
  :mod:`repro.atpg.parallel_sim` running per-circuit generated code
  (:mod:`repro.logic.compiled`).  Patterns are packed hundreds per wide
  integer word, the good machine is evaluated once per pattern block by an
  ``exec``-compiled straight-line function and shared across all faults, and
  each fault costs one call into a per-cone specialized kernel.  Use it
  everywhere; it is the engine that makes ISCAS-scale workloads practical.
* **numpy** (``engine="numpy"``) -- the same generated code over
  little-endian ``uint64`` ndarray words (thousands of patterns per block)
  with PPSFP fault batching: faults sharing a fault-site net stack their
  forced words and broadcast through one cone-kernel call.  The fastest
  engine on large pattern sets; needs the optional numpy dependency
  (``pip install repro[numpy]``).
* **interp** -- the same packed algorithm through the tuple-dispatch
  interpreter at the legacy 64-bit width (``engine="interp"``): the
  in-process baseline the generated code is benchmarked and CI-smoked
  against.
* **serial** -- the reference engine in :mod:`repro.atpg.fault_sim`
  (``serial_simulate_*``, or ``engine="serial"``).  One full circuit walk per
  (fault, pattern): easy to read and to instrument, and the executable
  specification every packed variant is property-tested against.  Reach for
  it when debugging a coverage discrepancy or adding a new fault model.

All four models support ``drop_detected`` (stop simulating a fault after its
first detection) in every engine with identical first-detection indices, at
any ``word_bits``.
"""

from .compaction import (
    CompactionResult,
    compact_tests,
    concat_phase_reports,
    greedy_compaction,
    merge_fault_shards,
)
from .coverage import CoverageReport, coverage_from_report
from .fault_sim import (
    DetectionReport,
    obd_fault_detected,
    path_delay_fault_detected,
    serial_simulate_obd,
    serial_simulate_path_delay,
    serial_simulate_stuck_at,
    serial_simulate_transition,
    simulate_obd,
    simulate_path_delay,
    simulate_stuck_at,
    simulate_transition,
    simulate_with_forced_net,
    transition_fault_detected,
)
from .obd_atpg import ObdAtpgSummary, ObdTestResult, generate_obd_test, run_obd_atpg
from .parallel_sim import (
    ENGINE_BACKENDS,
    NUMPY_SIMULATORS,
    PACKED_SIMULATORS,
    SIMULATOR_BACKENDS,
    compile_for_engine,
    compiled_matches_engine,
    numpy_simulate_obd,
    numpy_simulate_path_delay,
    numpy_simulate_stuck_at,
    numpy_simulate_transition,
    packed_simulate_obd,
    packed_simulate_path_delay,
    packed_simulate_shard,
    packed_simulate_stuck_at,
    packed_simulate_transition,
)
from .path_delay_atpg import PathDelayTestResult, generate_path_delay_test
from .podem import PodemOptions, PodemResult, generate_stuck_at_test, justify
from .random_tpg import (
    exhaustive_pairs,
    exhaustive_patterns,
    random_pairs,
    random_patterns,
    single_input_change_pairs,
)
from .structural import (
    ATPG_ENGINES,
    StructuralAtpg,
    StructuralAtpgError,
    StructuralResult,
    atpg_engine_names,
    get_atpg_engine,
    register_atpg_engine,
)
from .two_pattern import TwoPatternResult, TwoPatternTest, generate_transition_test
from .values import D, DBAR, ONE, X, ZERO, LogicValue, evaluate_gate_values, from_bit

__all__ = [
    "LogicValue",
    "ZERO",
    "ONE",
    "X",
    "D",
    "DBAR",
    "from_bit",
    "evaluate_gate_values",
    "PodemOptions",
    "PodemResult",
    "generate_stuck_at_test",
    "justify",
    "ATPG_ENGINES",
    "StructuralAtpg",
    "StructuralAtpgError",
    "StructuralResult",
    "atpg_engine_names",
    "get_atpg_engine",
    "register_atpg_engine",
    "TwoPatternTest",
    "TwoPatternResult",
    "generate_transition_test",
    "ObdTestResult",
    "ObdAtpgSummary",
    "generate_obd_test",
    "run_obd_atpg",
    "PathDelayTestResult",
    "generate_path_delay_test",
    "DetectionReport",
    "simulate_stuck_at",
    "simulate_transition",
    "simulate_path_delay",
    "simulate_obd",
    "serial_simulate_stuck_at",
    "serial_simulate_transition",
    "serial_simulate_path_delay",
    "serial_simulate_obd",
    "packed_simulate_stuck_at",
    "packed_simulate_transition",
    "packed_simulate_path_delay",
    "packed_simulate_obd",
    "packed_simulate_shard",
    "numpy_simulate_stuck_at",
    "numpy_simulate_transition",
    "numpy_simulate_path_delay",
    "numpy_simulate_obd",
    "PACKED_SIMULATORS",
    "NUMPY_SIMULATORS",
    "SIMULATOR_BACKENDS",
    "ENGINE_BACKENDS",
    "compile_for_engine",
    "compiled_matches_engine",
    "simulate_with_forced_net",
    "transition_fault_detected",
    "path_delay_fault_detected",
    "obd_fault_detected",
    "exhaustive_patterns",
    "exhaustive_pairs",
    "random_patterns",
    "random_pairs",
    "single_input_change_pairs",
    "greedy_compaction",
    "compact_tests",
    "merge_fault_shards",
    "concat_phase_reports",
    "CompactionResult",
    "CoverageReport",
    "coverage_from_report",
]
