"""Test generation and fault simulation (stuck-at, transition, OBD)."""

from .compaction import CompactionResult, compact_tests, greedy_compaction
from .coverage import CoverageReport, coverage_from_report
from .fault_sim import (
    DetectionReport,
    obd_fault_detected,
    simulate_obd,
    simulate_stuck_at,
    simulate_transition,
    simulate_with_forced_net,
    transition_fault_detected,
)
from .obd_atpg import ObdAtpgSummary, ObdTestResult, generate_obd_test, run_obd_atpg
from .podem import PodemOptions, PodemResult, generate_stuck_at_test, justify
from .random_tpg import (
    exhaustive_pairs,
    exhaustive_patterns,
    random_pairs,
    random_patterns,
    single_input_change_pairs,
)
from .two_pattern import TwoPatternResult, TwoPatternTest, generate_transition_test
from .values import DBAR, D, LogicValue, ONE, X, ZERO, evaluate_gate_values, from_bit

__all__ = [
    "LogicValue",
    "ZERO",
    "ONE",
    "X",
    "D",
    "DBAR",
    "from_bit",
    "evaluate_gate_values",
    "PodemOptions",
    "PodemResult",
    "generate_stuck_at_test",
    "justify",
    "TwoPatternTest",
    "TwoPatternResult",
    "generate_transition_test",
    "ObdTestResult",
    "ObdAtpgSummary",
    "generate_obd_test",
    "run_obd_atpg",
    "DetectionReport",
    "simulate_stuck_at",
    "simulate_transition",
    "simulate_obd",
    "simulate_with_forced_net",
    "transition_fault_detected",
    "obd_fault_detected",
    "exhaustive_patterns",
    "exhaustive_pairs",
    "random_patterns",
    "random_pairs",
    "single_input_change_pairs",
    "greedy_compaction",
    "compact_tests",
    "CompactionResult",
    "CoverageReport",
    "coverage_from_report",
]
