"""Static test-set compaction (greedy set cover) and report merging.

Used to reproduce the Section-4.3 statistic that a small subset of the
possible input transitions (the paper quotes 18) suffices to detect every
testable OBD fault of the full-adder example.

The two merge helpers are the determinism backbone of the sharded campaign
executor (:mod:`repro.campaign.sharded`): per-shard
:class:`~repro.atpg.fault_sim.DetectionReport`\\ s are recombined into the
single report the unsharded pipeline would have produced **before** the
greedy cover runs, so compaction quality (and the selected test indices)
are independent of how the fault universe was partitioned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .fault_sim import DetectionReport


def merge_fault_shards(
    reports: Sequence[DetectionReport],
    fault_order: Iterable[str] | None = None,
) -> DetectionReport:
    """Union of reports over **disjoint fault shards** of one test list.

    Every shard must have simulated the same tests (``num_tests`` must
    agree) over a disjoint slice of the fault universe; the merged report
    contains each fault's detection list unchanged.  *fault_order* restores
    the original universe order of the detections dict (shards may have run
    out of order), so downstream JSON reports are byte-identical to the
    unsharded run; without it, shards are concatenated in the given order.
    """
    if not reports:
        return DetectionReport(detections={}, num_tests=0)
    num_tests = reports[0].num_tests
    merged: dict[str, list[int]] = {}
    for report in reports:
        if report.num_tests != num_tests:
            raise ValueError(
                f"fault shards disagree on the test list: {report.num_tests} "
                f"tests vs {num_tests}; shard merging needs one shared test list"
            )
        for key, indices in report.detections.items():
            if key in merged:
                raise ValueError(f"fault {key!r} appears in more than one shard")
            merged[key] = list(indices)
    if fault_order is None:
        return DetectionReport(detections=merged, num_tests=num_tests)
    ordered: dict[str, list[int]] = {}
    for key in fault_order:
        try:
            ordered[key] = merged.pop(key)
        except KeyError:
            raise ValueError(f"fault {key!r} missing from every shard report") from None
    if merged:
        extra = next(iter(merged))
        raise ValueError(f"fault {extra!r} not in the requested fault order")
    return DetectionReport(detections=ordered, num_tests=num_tests)


def concat_phase_reports(
    fault_keys: Iterable[str],
    reports: Sequence[DetectionReport],
) -> DetectionReport:
    """Concatenate per-phase reports into one test-index space.

    Each report covers a (subset of the) same fault universe but a
    *different* test list; test indices of later reports are offset by the
    number of tests in earlier ones (pattern-phase tests first, then ATPG
    tests -- the convention of :class:`~repro.campaign.CampaignResult`).
    Faults absent from a report (e.g. dropped before the ATPG re-simulation)
    simply contribute no indices from it.
    """
    detections: dict[str, list[int]] = {key: [] for key in fault_keys}
    offset = 0
    for report in reports:
        for key, indices in report.detections.items():
            detections[key].extend(offset + index for index in indices)
        offset += report.num_tests
    return DetectionReport(detections=detections, num_tests=offset)


@dataclass(frozen=True)
class CompactionResult:
    """A compacted test subset and what it covers."""

    selected_indices: tuple[int, ...]
    covered_faults: tuple[str, ...]
    uncovered_faults: tuple[str, ...]

    @property
    def size(self) -> int:
        return len(self.selected_indices)


def greedy_compaction(report: DetectionReport) -> CompactionResult:
    """Greedy minimum-cover selection of tests from a detection report.

    Repeatedly picks the test detecting the largest number of still-uncovered
    faults; ties on gain break deterministically toward the **lowest** test
    index, independent of the order faults appear in the report.  Faults
    never detected by any test are reported as uncovered.
    """
    detectable = {key for key, tests in report.detections.items() if tests}
    fault_sets: dict[int, set[str]] = {}
    for key, tests in report.detections.items():
        for index in tests:
            fault_sets.setdefault(index, set()).add(key)
    candidate_order = sorted(fault_sets)

    uncovered = set(detectable)
    selected: list[int] = []
    chosen: set[int] = set()
    while uncovered:
        best_index, best_gain = None, 0
        for index in candidate_order:
            if index in chosen:
                continue
            gain = len(fault_sets[index] & uncovered)
            if gain > best_gain:
                best_index, best_gain = index, gain
        if best_index is None:
            break
        selected.append(best_index)
        chosen.add(best_index)
        uncovered -= fault_sets[best_index]

    never_detected = tuple(sorted(set(report.detections) - detectable))
    return CompactionResult(
        selected_indices=tuple(selected),
        covered_faults=tuple(sorted(detectable - uncovered)),
        uncovered_faults=tuple(sorted(uncovered | set(never_detected))),
    )


def compact_tests(report: DetectionReport, tests: Sequence) -> tuple[list, CompactionResult]:
    """Return the compacted subset of *tests* plus the compaction record."""
    result = greedy_compaction(report)
    return [tests[i] for i in result.selected_indices], result
