"""Static test-set compaction (greedy set cover).

Used to reproduce the Section-4.3 statistic that a small subset of the
possible input transitions (the paper quotes 18) suffices to detect every
testable OBD fault of the full-adder example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .fault_sim import DetectionReport


@dataclass(frozen=True)
class CompactionResult:
    """A compacted test subset and what it covers."""

    selected_indices: tuple[int, ...]
    covered_faults: tuple[str, ...]
    uncovered_faults: tuple[str, ...]

    @property
    def size(self) -> int:
        return len(self.selected_indices)


def greedy_compaction(report: DetectionReport) -> CompactionResult:
    """Greedy minimum-cover selection of tests from a detection report.

    Repeatedly picks the test detecting the largest number of still-uncovered
    faults; ties on gain break deterministically toward the **lowest** test
    index, independent of the order faults appear in the report.  Faults
    never detected by any test are reported as uncovered.
    """
    detectable = {key for key, tests in report.detections.items() if tests}
    fault_sets: dict[int, set[str]] = {}
    for key, tests in report.detections.items():
        for index in tests:
            fault_sets.setdefault(index, set()).add(key)
    candidate_order = sorted(fault_sets)

    uncovered = set(detectable)
    selected: list[int] = []
    chosen: set[int] = set()
    while uncovered:
        best_index, best_gain = None, 0
        for index in candidate_order:
            if index in chosen:
                continue
            gain = len(fault_sets[index] & uncovered)
            if gain > best_gain:
                best_index, best_gain = index, gain
        if best_index is None:
            break
        selected.append(best_index)
        chosen.add(best_index)
        uncovered -= fault_sets[best_index]

    never_detected = tuple(sorted(set(report.detections) - detectable))
    return CompactionResult(
        selected_indices=tuple(selected),
        covered_faults=tuple(sorted(detectable - uncovered)),
        uncovered_faults=tuple(sorted(uncovered | set(never_detected))),
    )


def compact_tests(report: DetectionReport, tests: Sequence) -> tuple[list, CompactionResult]:
    """Return the compacted subset of *tests* plus the compaction record."""
    result = greedy_compaction(report)
    return [tests[i] for i in result.selected_indices], result
