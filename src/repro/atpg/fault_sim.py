"""Fault simulation for the stuck-at, transition, path-delay and OBD models.

Four engines sit behind one API.  The default is the **packed** bit-parallel
engine (:mod:`repro.atpg.parallel_sim`): patterns are simulated hundreds at a
time over wide bit-vectors by per-circuit generated straight-line code
(:mod:`repro.logic.compiled`), the good machine is computed once per block
and shared across all faults, and each fault costs one per-cone kernel call.
``engine="numpy"`` runs the same generated code over ``uint64`` ndarray
words (thousands of patterns per block) with PPSFP fault batching -- the
fastest engine on large pattern sets, needing the optional numpy dependency.
``engine="interp"`` runs the packed algorithm through the tuple-dispatch
interpreter at the legacy 64-bit width -- the in-process baseline the
generated code is benchmarked against.  The **serial** engine in this module
re-walks the circuit one (fault, pattern) at a time; it is the executable
specification the packed variants are property-tested against, and remains
available via ``engine="serial"`` for debugging and for cross-checking.

The ``simulate_*`` entry points are thin compatibility wrappers over the
fault-model registry (:mod:`repro.campaign`): each registered
:class:`~repro.campaign.FaultModel` packages the serial and packed hooks of
one model, and :class:`~repro.campaign.Campaign` drives them through the full
universe -> patterns -> ATPG -> compaction pipeline.  The models are:
classical stuck-at, classical transition, path-delay (non-robust functional
sensitization) and the paper's OBD model whose *input-specific* excitation
conditions are enforced before checking propagation -- the behavioural
difference from transition-fault simulation that Section 4.1 is about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.excitation import Sequence2
from ..faults.obd import ObdFault
from ..faults.path_delay import RISING, PathDelayFault
from ..faults.stuck_at import StuckAtFault
from ..faults.transition import TransitionFault
from ..logic.compiled import CompiledCircuit
from ..logic.netlist import LogicCircuit
from ..logic.simulator import simulate_pattern

Pattern = tuple[int, ...]
PatternPair = tuple[Pattern, Pattern]

#: Engine names accepted by the ``simulate_*`` entry points: ``"packed"``
#: (generated code, wide big-int words -- the default), ``"numpy"``
#: (generated code over uint64 ndarray words with PPSFP fault batching;
#: needs the optional numpy dependency), ``"interp"`` (the packed
#: interpreter baseline at the legacy 64-bit width) and ``"serial"`` (the
#: one-(fault, pattern)-at-a-time reference).
ENGINES = ("packed", "numpy", "interp", "serial")


def _check_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise ValueError(f"unknown fault-simulation engine {engine!r}; expected one of {ENGINES}")


def simulate_with_forced_net(
    circuit: LogicCircuit,
    pattern: Sequence[int],
    net: str,
    value: int,
) -> dict[str, int]:
    """Zero-delay simulation with one net forced to a fixed value."""
    inputs = circuit.primary_inputs
    values = dict(zip(inputs, (int(b) for b in pattern)))
    if net in values:
        values[net] = value
    for gate in circuit.topological_order():
        if gate.output == net:
            values[gate.output] = value
        else:
            values[gate.output] = gate.evaluate(values)
    return values


def _outputs(circuit: LogicCircuit, values: dict[str, int]) -> tuple[int, ...]:
    return tuple(values[n] for n in circuit.primary_outputs)


# --------------------------------------------------------------------------- #
# Detection reports.
# --------------------------------------------------------------------------- #
@dataclass
class DetectionReport:
    """Which tests detect which faults."""

    detections: dict[str, list[int]]
    num_tests: int

    @property
    def detected_faults(self) -> list[str]:
        return [key for key, tests in self.detections.items() if tests]

    @property
    def undetected_faults(self) -> list[str]:
        return [key for key, tests in self.detections.items() if not tests]

    @property
    def coverage(self) -> float:
        if not self.detections:
            return 1.0
        return len(self.detected_faults) / len(self.detections)

    def detecting_tests(self, fault_key: str) -> list[int]:
        return self.detections[fault_key]


# --------------------------------------------------------------------------- #
# Stuck-at faults.
# --------------------------------------------------------------------------- #
def simulate_stuck_at(
    circuit: LogicCircuit,
    patterns: Sequence[Pattern],
    faults: Iterable[StuckAtFault],
    drop_detected: bool = False,
    engine: str = "packed",
    compiled: CompiledCircuit | None = None,
    word_bits: int | None = None,
) -> DetectionReport:
    """Stuck-at fault simulation of a pattern set (packed engine by default).

    Compatibility wrapper over ``get_model("stuck-at").simulate``; pass a
    prebuilt *compiled* circuit to skip recompilation across calls.
    """
    from ..campaign import get_model

    return get_model("stuck-at").simulate(
        circuit, patterns, faults, drop_detected=drop_detected, engine=engine,
        compiled=compiled, word_bits=word_bits,
    )


def serial_simulate_stuck_at(
    circuit: LogicCircuit,
    patterns: Sequence[Pattern],
    faults: Iterable[StuckAtFault],
    drop_detected: bool = False,
) -> DetectionReport:
    """Serial reference engine: one forced re-simulation per (fault, pattern)."""
    fault_list = list(faults)
    detections: dict[str, list[int]] = {f.key: [] for f in fault_list}
    remaining = set(detections)
    for index, pattern in enumerate(patterns):
        good = simulate_pattern(circuit, pattern)
        good_outputs = _outputs(circuit, good)
        for fault in fault_list:
            if drop_detected and fault.key not in remaining:
                continue
            if good[fault.net] == fault.value:
                continue  # not activated by this pattern
            faulty = simulate_with_forced_net(circuit, pattern, fault.net, fault.value)
            if _outputs(circuit, faulty) != good_outputs:
                detections[fault.key].append(index)
                remaining.discard(fault.key)
    return DetectionReport(detections=detections, num_tests=len(patterns))


# --------------------------------------------------------------------------- #
# Transition faults.
# --------------------------------------------------------------------------- #
def _transition_detected_with_values(
    circuit: LogicCircuit,
    fault: TransitionFault,
    second: Pattern,
    values1: dict[str, int],
    values2: dict[str, int],
    good_outputs: tuple[int, ...],
) -> bool:
    """Transition-fault check against precomputed good-machine values."""
    if values1[fault.net] != fault.launch_value or values2[fault.net] != fault.final_value:
        return False
    faulty = simulate_with_forced_net(circuit, second, fault.net, fault.launch_value)
    return _outputs(circuit, faulty) != good_outputs


def transition_fault_detected(
    circuit: LogicCircuit,
    fault: TransitionFault,
    pair: PatternPair,
) -> bool:
    """Does the two-pattern *pair* detect the transition fault?"""
    first, second = pair
    values1 = simulate_pattern(circuit, first)
    values2 = simulate_pattern(circuit, second)
    return _transition_detected_with_values(
        circuit, fault, second, values1, values2, _outputs(circuit, values2)
    )


def simulate_transition(
    circuit: LogicCircuit,
    pairs: Sequence[PatternPair],
    faults: Iterable[TransitionFault],
    drop_detected: bool = False,
    engine: str = "packed",
    compiled: CompiledCircuit | None = None,
    word_bits: int | None = None,
) -> DetectionReport:
    """Transition-fault simulation of a two-pattern test set (packed default).

    Compatibility wrapper over ``get_model("transition").simulate``; pass a
    prebuilt *compiled* circuit to skip recompilation across calls.
    """
    from ..campaign import get_model

    return get_model("transition").simulate(
        circuit, pairs, faults, drop_detected=drop_detected, engine=engine,
        compiled=compiled, word_bits=word_bits,
    )


def serial_simulate_transition(
    circuit: LogicCircuit,
    pairs: Sequence[PatternPair],
    faults: Iterable[TransitionFault],
    drop_detected: bool = False,
) -> DetectionReport:
    """Serial reference engine; good machine computed once per pair."""
    fault_list = list(faults)
    detections: dict[str, list[int]] = {f.key: [] for f in fault_list}
    remaining = set(detections)
    for index, (first, second) in enumerate(pairs):
        values1 = simulate_pattern(circuit, first)
        values2 = simulate_pattern(circuit, second)
        good_outputs = _outputs(circuit, values2)
        for fault in fault_list:
            if drop_detected and fault.key not in remaining:
                continue
            if _transition_detected_with_values(
                circuit, fault, second, values1, values2, good_outputs
            ):
                detections[fault.key].append(index)
                remaining.discard(fault.key)
    return DetectionReport(detections=detections, num_tests=len(pairs))


# --------------------------------------------------------------------------- #
# Path-delay faults.
# --------------------------------------------------------------------------- #
def _path_delay_sensitized_with_values(
    fault: PathDelayFault,
    values1: dict[str, int],
    values2: dict[str, int],
) -> bool:
    """Non-robust sensitization check against precomputed good-machine values.

    Same criterion as :func:`repro.faults.path_delay.is_sensitized`: the
    launch net makes the fault's edge and every net along the path toggles.
    """
    expected = 1 if fault.direction == RISING else 0
    if values2[fault.launch_net] != expected:
        return False
    return all(values1[net] != values2[net] for net in fault.nets)


def path_delay_fault_detected(
    circuit: LogicCircuit,
    fault: PathDelayFault,
    pair: PatternPair,
) -> bool:
    """Does the two-pattern *pair* detect (sensitize) the path-delay fault?

    A path-delay fault is detected by any pair that functionally sensitizes
    the path: the slow edge launched at the path input then arrives late at
    the capture net, which for paths from :func:`~repro.faults.path_delay.
    path_delay_universe` is a primary output.
    """
    first, second = pair
    values1 = simulate_pattern(circuit, first)
    values2 = simulate_pattern(circuit, second)
    return _path_delay_sensitized_with_values(fault, values1, values2)


def simulate_path_delay(
    circuit: LogicCircuit,
    pairs: Sequence[PatternPair],
    faults: Iterable[PathDelayFault],
    drop_detected: bool = False,
    engine: str = "packed",
    compiled: CompiledCircuit | None = None,
    word_bits: int | None = None,
) -> DetectionReport:
    """Path-delay fault simulation of a two-pattern test set (packed default).

    Compatibility wrapper over ``get_model("path-delay").simulate``; pass a
    prebuilt *compiled* circuit to skip recompilation across calls.
    """
    from ..campaign import get_model

    return get_model("path-delay").simulate(
        circuit, pairs, faults, drop_detected=drop_detected, engine=engine,
        compiled=compiled, word_bits=word_bits,
    )


def serial_simulate_path_delay(
    circuit: LogicCircuit,
    pairs: Sequence[PatternPair],
    faults: Iterable[PathDelayFault],
    drop_detected: bool = False,
) -> DetectionReport:
    """Serial reference engine; good machine computed once per pair."""
    fault_list = list(faults)
    detections: dict[str, list[int]] = {f.key: [] for f in fault_list}
    remaining = set(detections)
    for index, (first, second) in enumerate(pairs):
        values1 = simulate_pattern(circuit, first)
        values2 = simulate_pattern(circuit, second)
        for fault in fault_list:
            if drop_detected and fault.key not in remaining:
                continue
            if _path_delay_sensitized_with_values(fault, values1, values2):
                detections[fault.key].append(index)
                remaining.discard(fault.key)
    return DetectionReport(detections=detections, num_tests=len(pairs))


# --------------------------------------------------------------------------- #
# OBD faults.
# --------------------------------------------------------------------------- #
def _obd_detected_with_values(
    circuit: LogicCircuit,
    fault: ObdFault,
    second: Pattern,
    values1: dict[str, int],
    values2: dict[str, int],
    good_outputs: tuple[int, ...],
) -> bool:
    """OBD check against precomputed good-machine values of both patterns."""
    gate = circuit.gate(fault.gate_name)
    local_sequence: Sequence2 = (
        tuple(values1[n] for n in gate.inputs),
        tuple(values2[n] for n in gate.inputs),
    )
    if local_sequence not in fault.local_sequences:
        return False
    faulty = simulate_with_forced_net(circuit, second, gate.output, values1[gate.output])
    return _outputs(circuit, faulty) != good_outputs


def obd_fault_detected(
    circuit: LogicCircuit,
    fault: ObdFault,
    pair: PatternPair,
) -> bool:
    """Does the two-pattern *pair* detect the OBD fault?

    Detection requires (a) the gate-local input sequence to be one of the
    fault's excitation sequences and (b) the delayed output value (the gate's
    first-pattern output held into the second pattern) to reach a primary
    output.
    """
    first, second = pair
    values1 = simulate_pattern(circuit, first)
    values2 = simulate_pattern(circuit, second)
    return _obd_detected_with_values(
        circuit, fault, second, values1, values2, _outputs(circuit, values2)
    )


def simulate_obd(
    circuit: LogicCircuit,
    pairs: Sequence[PatternPair],
    faults: Iterable[ObdFault],
    drop_detected: bool = False,
    engine: str = "packed",
    compiled: CompiledCircuit | None = None,
    word_bits: int | None = None,
) -> DetectionReport:
    """OBD fault simulation of a two-pattern test set (packed engine default).

    Compatibility wrapper over ``get_model("obd").simulate``; pass a prebuilt
    *compiled* circuit to skip recompilation across calls.
    """
    from ..campaign import get_model

    return get_model("obd").simulate(
        circuit, pairs, faults, drop_detected=drop_detected, engine=engine,
        compiled=compiled, word_bits=word_bits,
    )


def serial_simulate_obd(
    circuit: LogicCircuit,
    pairs: Sequence[PatternPair],
    faults: Iterable[ObdFault],
    drop_detected: bool = False,
) -> DetectionReport:
    """Serial reference engine; good machine computed once per pair."""
    fault_list = list(faults)
    detections: dict[str, list[int]] = {f.key: [] for f in fault_list}
    remaining = set(detections)
    for index, (first, second) in enumerate(pairs):
        values1 = simulate_pattern(circuit, first)
        values2 = simulate_pattern(circuit, second)
        good_outputs = _outputs(circuit, values2)
        for fault in fault_list:
            if drop_detected and fault.key not in remaining:
                continue
            if _obd_detected_with_values(
                circuit, fault, second, values1, values2, good_outputs
            ):
                detections[fault.key].append(index)
                remaining.discard(fault.key)
    return DetectionReport(detections=detections, num_tests=len(pairs))
