"""Fault simulation for stuck-at, transition and OBD fault models.

Serial fault simulation over zero-delay logic: small circuits (the paper's
full adder, C17, ripple-carry adders) simulate in milliseconds, which is all
the reproduction needs.  The OBD simulator enforces the *input-specific*
excitation conditions before checking propagation, which is the behavioural
difference from classical transition-fault simulation that Section 4.1 is
about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.excitation import Sequence2
from ..faults.obd import ObdFault
from ..faults.stuck_at import StuckAtFault
from ..faults.transition import TransitionFault
from ..logic.netlist import LogicCircuit
from ..logic.simulator import simulate_pattern

Pattern = tuple[int, ...]
PatternPair = tuple[Pattern, Pattern]


def simulate_with_forced_net(
    circuit: LogicCircuit,
    pattern: Sequence[int],
    net: str,
    value: int,
) -> dict[str, int]:
    """Zero-delay simulation with one net forced to a fixed value."""
    inputs = circuit.primary_inputs
    values = dict(zip(inputs, (int(b) for b in pattern)))
    if net in values:
        values[net] = value
    for gate in circuit.topological_order():
        if gate.output == net:
            values[gate.output] = value
        else:
            values[gate.output] = gate.evaluate(values)
    return values


def _outputs(circuit: LogicCircuit, values: dict[str, int]) -> tuple[int, ...]:
    return tuple(values[n] for n in circuit.primary_outputs)


# --------------------------------------------------------------------------- #
# Stuck-at faults.
# --------------------------------------------------------------------------- #
@dataclass
class DetectionReport:
    """Which tests detect which faults."""

    detections: dict[str, list[int]]
    num_tests: int

    @property
    def detected_faults(self) -> list[str]:
        return [key for key, tests in self.detections.items() if tests]

    @property
    def undetected_faults(self) -> list[str]:
        return [key for key, tests in self.detections.items() if not tests]

    @property
    def coverage(self) -> float:
        if not self.detections:
            return 1.0
        return len(self.detected_faults) / len(self.detections)

    def detecting_tests(self, fault_key: str) -> list[int]:
        return self.detections[fault_key]


def simulate_stuck_at(
    circuit: LogicCircuit,
    patterns: Sequence[Pattern],
    faults: Iterable[StuckAtFault],
    drop_detected: bool = False,
) -> DetectionReport:
    """Serial stuck-at fault simulation of a pattern set."""
    fault_list = list(faults)
    detections: dict[str, list[int]] = {f.key: [] for f in fault_list}
    remaining = set(detections)
    for index, pattern in enumerate(patterns):
        good = simulate_pattern(circuit, pattern)
        good_outputs = _outputs(circuit, good)
        for fault in fault_list:
            if drop_detected and fault.key not in remaining:
                continue
            if good[fault.net] == fault.value:
                continue  # not activated by this pattern
            faulty = simulate_with_forced_net(circuit, pattern, fault.net, fault.value)
            if _outputs(circuit, faulty) != good_outputs:
                detections[fault.key].append(index)
                remaining.discard(fault.key)
    return DetectionReport(detections=detections, num_tests=len(patterns))


# --------------------------------------------------------------------------- #
# Transition faults.
# --------------------------------------------------------------------------- #
def transition_fault_detected(
    circuit: LogicCircuit,
    fault: TransitionFault,
    pair: PatternPair,
) -> bool:
    """Does the two-pattern *pair* detect the transition fault?"""
    first, second = pair
    values1 = simulate_pattern(circuit, first)
    values2 = simulate_pattern(circuit, second)
    if values1[fault.net] != fault.launch_value or values2[fault.net] != fault.final_value:
        return False
    faulty = simulate_with_forced_net(circuit, second, fault.net, fault.launch_value)
    return _outputs(circuit, faulty) != _outputs(circuit, values2)


def simulate_transition(
    circuit: LogicCircuit,
    pairs: Sequence[PatternPair],
    faults: Iterable[TransitionFault],
) -> DetectionReport:
    """Serial transition-fault simulation of a two-pattern test set."""
    fault_list = list(faults)
    detections: dict[str, list[int]] = {f.key: [] for f in fault_list}
    for index, pair in enumerate(pairs):
        for fault in fault_list:
            if transition_fault_detected(circuit, fault, pair):
                detections[fault.key].append(index)
    return DetectionReport(detections=detections, num_tests=len(pairs))


# --------------------------------------------------------------------------- #
# OBD faults.
# --------------------------------------------------------------------------- #
def obd_fault_detected(
    circuit: LogicCircuit,
    fault: ObdFault,
    pair: PatternPair,
) -> bool:
    """Does the two-pattern *pair* detect the OBD fault?

    Detection requires (a) the gate-local input sequence to be one of the
    fault's excitation sequences and (b) the delayed output value (the gate's
    first-pattern output held into the second pattern) to reach a primary
    output.
    """
    first, second = pair
    gate = circuit.gate(fault.gate_name)
    values1 = simulate_pattern(circuit, first)
    values2 = simulate_pattern(circuit, second)
    local_sequence: Sequence2 = (
        tuple(values1[n] for n in gate.inputs),
        tuple(values2[n] for n in gate.inputs),
    )
    if local_sequence not in fault.local_sequences:
        return False
    faulty = simulate_with_forced_net(circuit, second, gate.output, values1[gate.output])
    return _outputs(circuit, faulty) != _outputs(circuit, values2)


def simulate_obd(
    circuit: LogicCircuit,
    pairs: Sequence[PatternPair],
    faults: Iterable[ObdFault],
) -> DetectionReport:
    """Serial OBD fault simulation of a two-pattern test set."""
    fault_list = list(faults)
    detections: dict[str, list[int]] = {f.key: [] for f in fault_list}
    for index, pair in enumerate(pairs):
        for fault in fault_list:
            if obd_fault_detected(circuit, fault, pair):
                detections[fault.key].append(index)
    return DetectionReport(detections=detections, num_tests=len(pairs))
