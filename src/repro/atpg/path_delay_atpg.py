"""Two-pattern ATPG for path-delay faults.

A (non-robust) path-delay test is a pattern pair that functionally sensitizes
the path: the launch net makes the fault's edge and every net along the path
toggles between the two patterns (the criterion of
:func:`repro.faults.path_delay.is_sensitized`).

Because the circuit is combinational, the two patterns can be justified
independently: fix a value for every path net in the *second* pattern (the
launch net's value is dictated by the edge direction, interior values are
free in a non-robust test), require the complement of each value in the
*first* pattern, and hand both cubes to the PODEM justification engine.  The
branch tried first assigns interior values by the inversion parity of the
driving gates -- the assignment a glitch-free single-path propagation would
produce -- so typical paths succeed without backtracking over branches; the
remaining ``2**(len(path) - 1)`` assignments are explored in increasing
Hamming distance from that preference.  A fault is reported untestable only
after every branch has been exhausted without an abort.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Optional

from ..faults.path_delay import RISING, PathDelayFault
from ..logic.netlist import LogicCircuit
from .podem import PodemOptions, justify
from .two_pattern import TwoPatternTest, pattern_tuple

#: Cap on the number of interior value assignments explored per fault.
DEFAULT_MAX_BRANCHES = 256


@dataclass
class PathDelayTestResult:
    """Outcome of path-delay test generation for one fault."""

    fault: PathDelayFault
    success: bool
    test: Optional[TwoPatternTest]
    backtracks: int
    aborted: bool = False
    branches: int = 0
    decisions: int = 0

    @property
    def untestable(self) -> bool:
        return not self.success and not self.aborted


def _preferred_values(circuit: LogicCircuit, nets, launch_value: int) -> list[int]:
    """Second-pattern path-net values under single-path inversion parity."""
    values = [launch_value]
    for net in nets[1:]:
        driver = circuit.driver_of(net)
        invert = driver is not None and driver.gate_type.is_inverting
        values.append(1 - values[-1] if invert else values[-1])
    return values


def _value_candidates(circuit: LogicCircuit, nets, launch_value: int, limit: int):
    """Candidate second-pattern assignments, parity-preferred branch first.

    Assignments are generated lazily in increasing Hamming distance from the
    parity preference (never materializing the ``2**(len(nets)-1)`` space),
    so the ``limit`` cap bounds the work even for very long paths.
    """
    preferred = _preferred_values(circuit, nets, launch_value)
    free = len(nets) - 1
    emitted = 0
    for distance in range(free + 1):
        for flip_positions in combinations(range(free), distance):
            if emitted >= limit:
                return
            values = list(preferred)
            for position in flip_positions:
                values[position + 1] = 1 - values[position + 1]
            emitted += 1
            yield tuple(values)


def generate_path_delay_test(
    circuit: LogicCircuit,
    fault: PathDelayFault,
    options: PodemOptions | None = None,
    max_branches: int = DEFAULT_MAX_BRANCHES,
) -> PathDelayTestResult:
    """Generate a two-pattern (non-robust) test for a path-delay fault."""
    options = options or PodemOptions()
    launch_value = 1 if fault.direction == RISING else 0
    total_backtracks = 0
    total_decisions = 0
    aborted_any = False
    branches = 0
    truncated = 2 ** (len(fault.nets) - 1) > max_branches

    for second_values in _value_candidates(circuit, fault.nets, launch_value, max_branches):
        branches += 1
        capture_cube = dict(zip(fault.nets, second_values))
        launch_cube = {net: 1 - value for net, value in capture_cube.items()}

        capture = justify(circuit, capture_cube, options=options)
        total_backtracks += capture.backtracks
        total_decisions += capture.decisions
        aborted_any |= capture.aborted
        if not capture.success:
            continue

        launch = justify(circuit, launch_cube, options=options)
        total_backtracks += launch.backtracks
        total_decisions += launch.decisions
        aborted_any |= launch.aborted
        if not launch.success:
            continue

        test = TwoPatternTest(
            first=pattern_tuple(circuit, launch.pattern),
            second=pattern_tuple(circuit, capture.pattern),
        )
        return PathDelayTestResult(
            fault=fault,
            success=True,
            test=test,
            backtracks=total_backtracks,
            branches=branches,
            decisions=total_decisions,
        )

    return PathDelayTestResult(
        fault=fault,
        success=False,
        test=None,
        backtracks=total_backtracks,
        aborted=aborted_any or truncated,
        branches=branches,
        decisions=total_decisions,
    )
