"""Hardened PODEM over the five-valued calculus.

The classical decision discipline -- decisions only on primary inputs,
objective/backtrace to pick them, five-valued forward simulation as the
implication step -- hardened in four ways over the legacy engine in
:mod:`repro.atpg.podem`:

* **Static implications.**  The excitation closure (everything the learned
  implication engine derives from ``fault.net = 1 - v``) is applied before
  the search: its primary-input literals become *necessary assignments*
  (never backtracked), and every other closure literal is re-checked after
  each simulation -- a settled good value contradicting the closure kills
  the branch immediately, long before the mismatch would surface at the
  fault site.
* **Testability-guided backtrace.**  SCOAP numbers steer the walk from an
  objective to a primary input: when one controlling-side input suffices
  the cheapest is taken, when every input must hold the non-controlling
  value the most expensive is taken first (fail fast on the hardest
  obligation).
* **Sound three-way outcome.**  Exhausting the decision tree with only
  sound prunes (monotone five-valued simulation: a value settled under a
  partial assignment persists under every completion) is a *proof* of
  redundancy; crossing the backtrack budget is reported as ``aborted``,
  never conflated with a proof.
* **Loud invariants.**  The legacy engine silently "flipped the search"
  when backtrace landed on an assigned input; here that would be an
  internal-consistency error and raises.
"""

from __future__ import annotations

from ...faults.stuck_at import StuckAtFault
from ...logic.gates import controlling_value
from ..podem import PodemOptions
from .engine import (
    ABORTED,
    PROVEN_REDUNDANT,
    TESTED,
    CircuitContext,
    StructuralAtpg,
    StructuralAtpgError,
    StructuralResult,
    register_atpg_engine,
)
from .logic5 import (
    ERRORS,
    V0,
    V1,
    VD,
    VDB,
    VX,
    from_good_bit,
    gate_table,
    good_bit,
)


class StructuralPodem(StructuralAtpg):
    """PODEM with SCOAP backtrace, closure pruning and sound exhaustion."""

    name = "podem"
    complete = True

    def _search(
        self,
        context: CircuitContext,
        fault: StuckAtFault,
        closure: dict[str, int],
        options: PodemOptions,
    ) -> StructuralResult:
        return _PodemSearch(context, fault, closure, options).run()


class _PodemSearch:
    def __init__(
        self,
        context: CircuitContext,
        fault: StuckAtFault,
        closure: dict[str, int],
        options: PodemOptions,
    ):
        self.context = context
        self.circuit = context.circuit
        self.fault = fault
        self.closure = closure
        self.options = options
        self.site_value = VD if fault.value == 0 else VDB
        self.pi_set = set(self.circuit.primary_inputs)
        # Closure literals on primary inputs hold in every test: assign them
        # up front, outside the decision stack, so they are never flipped.
        self.assignments: dict[str, int] = {
            net: value for net, value in closure.items() if net in self.pi_set
        }
        self.values: dict[str, int] = {}
        self.backtracks = 0
        self.decisions = 0
        self.implications = len(closure)

    # ------------------------------------------------------------------ #
    # Implication: five-valued forward simulation with fault injection.
    # ------------------------------------------------------------------ #
    def simulate(self) -> None:
        values: dict[str, int] = {}
        fault = self.fault
        for net in self.circuit.primary_inputs:
            value = from_good_bit(self.assignments.get(net))
            if net == fault.net:
                value = self._inject(value)
            values[net] = value
        for gate in self.context.order:
            value = gate_table(gate.gate_type)[tuple(values[n] for n in gate.inputs)]
            if gate.output == fault.net:
                value = self._inject(value)
            values[gate.output] = value
        self.values = values
        self.implications += 1

    def _inject(self, value: int) -> int:
        """Five-valued value at the fault site given its fault-free value."""
        good = good_bit(value)
        if good is None:
            return VX
        if good == self.fault.value:
            return value  # not excited: both machines agree
        return self.site_value

    # ------------------------------------------------------------------ #
    # Status predicates (all prunes are sound under monotone simulation).
    # ------------------------------------------------------------------ #
    def detected(self) -> bool:
        return any(self.values[po] in ERRORS for po in self.circuit.primary_outputs)

    def failed(self) -> bool:
        for net, needed in self.closure.items():
            good = good_bit(self.values[net])
            if good is not None and good != needed:
                return True  # a necessary excitation condition is violated
        site = self.values[self.fault.net]
        if site in (V0, V1):
            return True  # fault site settled to the stuck value: blocked
        if site == VX:
            return False  # activation still open
        return not self._x_path()

    def _d_frontier(self) -> list:
        frontier = []
        values = self.values
        for gate in self.context.order:
            if values[gate.output] != VX:
                continue
            if any(values[n] in ERRORS for n in gate.inputs):
                frontier.append(gate)
        co = self.context.scoap.co
        frontier.sort(key=lambda g: co[g.output])
        return frontier

    def _x_path(self) -> bool:
        """Unknown-valued path from some D-frontier gate to a primary output."""
        frontier = self._d_frontier()
        if not frontier:
            return self.detected()
        targets = set(self.circuit.primary_outputs)
        values = self.values
        for gate in frontier:
            stack = [gate.output]
            seen: set[str] = set()
            while stack:
                net = stack.pop()
                if net in seen:
                    continue
                seen.add(net)
                if values[net] in (V0, V1):
                    continue
                if net in targets:
                    return True
                stack.extend(self.context.fanout_nets(net))
        return False

    # ------------------------------------------------------------------ #
    # Objective and SCOAP-guided backtrace.
    # ------------------------------------------------------------------ #
    def objective(self) -> tuple[str, int] | None:
        if self.values[self.fault.net] == VX:
            return self.fault.net, 1 - self.fault.value
        for gate in self._d_frontier():
            for net in gate.inputs:
                if good_bit(self.values[net]) is None:
                    control = controlling_value(gate.gate_type)
                    return net, 1 - control if control is not None else 1
        return None

    def backtrace(self, net: str, value: int) -> tuple[str, int]:
        """SCOAP-guided walk from an objective to an unassigned primary input.

        A net whose good value is unknown always has a good-unknown fan-in
        (five-valued simulation determines outputs from fully known inputs),
        so the walk terminates at an unassigned input by construction.
        """
        scoap = self.context.scoap
        current, target = net, value
        bound = 2 * (len(self.circuit) + len(self.circuit.primary_inputs)) + 4
        for _ in range(bound):
            driver = self.circuit.driver_of(current)
            if driver is None:
                if current in self.assignments:
                    raise StructuralAtpgError(
                        f"backtrace reached assigned input {current!r} "
                        f"(objective {net}={value})"
                    )
                return current, target
            unknown = [
                n for n in driver.inputs if good_bit(self.values[n]) is None
            ]
            if not unknown:
                raise StructuralAtpgError(
                    f"backtrace stuck at justified gate {driver.name!r}"
                )
            target = 1 - target if driver.gate_type.is_inverting else target
            control = controlling_value(driver.gate_type)
            if control is not None and target != control:
                # Every input must hold the non-controlling value: take the
                # hardest obligation first so conflicts surface early.
                current = max(
                    unknown, key=lambda n: scoap.controllability(n, target)
                )
            else:
                # One input suffices (or no controlling structure): take the
                # cheapest.
                current = min(
                    unknown, key=lambda n: scoap.controllability(n, target)
                )
        raise StructuralAtpgError("backtrace exceeded its structural bound")

    # ------------------------------------------------------------------ #
    # Main loop.
    # ------------------------------------------------------------------ #
    def run(self) -> StructuralResult:
        self.simulate()
        stack: list[tuple[str, int, bool]] = []
        while True:
            if self.detected():
                return self._result(TESTED, self._pattern())
            if self.failed() or (objective := self.objective()) is None:
                if not self._backtrack(stack):
                    return self._result(PROVEN_REDUNDANT, None)
                continue
            if self.backtracks >= self.options.max_backtracks:
                return self._result(ABORTED, None)
            pi, pi_value = self.backtrace(*objective)
            self.assignments[pi] = pi_value
            self.decisions += 1
            stack.append((pi, pi_value, False))
            self.simulate()

    def _backtrack(self, stack: list[tuple[str, int, bool]]) -> bool:
        while stack:
            pi, value, tried_alternative = stack.pop()
            del self.assignments[pi]
            self.backtracks += 1
            if not tried_alternative:
                alternative = 1 - value
                self.assignments[pi] = alternative
                stack.append((pi, alternative, True))
                self.simulate()
                return True
        return False

    def _pattern(self) -> dict[str, int]:
        fill = self.options.fill_value
        return {
            net: self.assignments.get(net, fill)
            for net in self.circuit.primary_inputs
        }

    def _result(self, status: str, pattern: dict[str, int] | None) -> StructuralResult:
        return StructuralResult(
            status,
            pattern,
            backtracks=self.backtracks,
            decisions=self.decisions,
            implications=self.implications,
            engine=StructuralPodem.name,
        )


register_atpg_engine(StructuralPodem())
