"""Roth's five-valued logic (0, 1, X, D, D') for structural ATPG.

Unlike :mod:`repro.atpg.values`, which carries the (good, faulty) rails as
two independent three-valued bits, this module treats each signal as one of
exactly five symbolic values -- the calculus the D-algorithm and PODEM
frontiers are defined over:

======  ============================  =========================
value   meaning                       (good, faulty) pairs
======  ============================  =========================
``V0``  0 in both machines            {(0, 0)}
``V1``  1 in both machines            {(1, 1)}
``VD``  D: 1 good / 0 faulty          {(1, 0)}
``VDB`` D': 0 good / 1 faulty         {(0, 1)}
``VX``  unknown                       all four
======  ============================  =========================

Gate evaluation is the exact set semantics: evaluate the gate's Boolean
function on every concrete (good, faulty) pair combination the inputs
admit, and map the result set back to a five-valued symbol (a non-singleton
set is ``VX``).  That recovers every classical identity -- ``AND(D, D') = 0``,
``XOR(D, D) = 0``, ``NAND(D, 1) = D'`` -- for *all* gate types, complex
AOI/OAI cells included, from one generic construction.

The per-gate-type tables are built once and cached, so evaluation during
search is a single tuple-indexed dict lookup.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import product
from typing import Iterable, Optional, Sequence

from ...logic.gates import GateType, evaluate_gate

#: The five values.  Small ints so they pack into tuples cheaply.
V0, V1, VX, VD, VDB = 0, 1, 2, 3, 4

FIVE_VALUES = (V0, V1, VX, VD, VDB)

#: Display names, indexed by value.
NAMES = ("0", "1", "X", "D", "D'")

#: Concrete (good, faulty) bit pairs each symbolic value stands for.
PAIRS: tuple[tuple[tuple[int, int], ...], ...] = (
    ((0, 0),),
    ((1, 1),),
    ((0, 0), (1, 1), (1, 0), (0, 1)),
    ((1, 0),),
    ((0, 1),),
)

#: Map a concrete (good, faulty) pair back to its symbolic value.
_PAIR_TO_VALUE = {(0, 0): V0, (1, 1): V1, (1, 0): VD, (0, 1): VDB}

#: Error values: good and faulty machines disagree.
ERRORS = (VD, VDB)


def name_of(value: int) -> str:
    """Human-readable name of a five-valued symbol."""
    return NAMES[value]


def is_error(value: int) -> bool:
    """True for D and D'."""
    return value == VD or value == VDB


def is_known(value: int) -> bool:
    """True for every value except X."""
    return value != VX


def good_bit(value: int) -> Optional[int]:
    """The good-machine bit (None for X)."""
    if value == VX:
        return None
    return 1 if value in (V1, VD) else 0


def faulty_bit(value: int) -> Optional[int]:
    """The faulty-machine bit (None for X)."""
    if value == VX:
        return None
    return 1 if value in (V1, VDB) else 0


def from_good_bit(bit: Optional[int]) -> int:
    """Lift a fault-free 0/1/None bit into the five-valued domain."""
    if bit is None:
        return VX
    return V1 if bit else V0


def invert(value: int) -> int:
    """Five-valued inversion (D and D' swap)."""
    return {V0: V1, V1: V0, VX: VX, VD: VDB, VDB: VD}[value]


@lru_cache(maxsize=64)
def gate_table(gate_type: GateType) -> dict[tuple[int, ...], int]:
    """The full five-valued truth table of one gate type.

    Keys are input-value tuples over :data:`FIVE_VALUES`; the value is the
    exact five-valued output (set semantics over the concrete pairs).
    """
    gate_type = GateType(gate_type)
    arity = gate_type.num_inputs
    table: dict[tuple[int, ...], int] = {}
    for values in product(FIVE_VALUES, repeat=arity):
        outputs = set()
        for pairs in product(*(PAIRS[v] for v in values)):
            good = evaluate_gate(gate_type, [p[0] for p in pairs])
            faulty = evaluate_gate(gate_type, [p[1] for p in pairs])
            outputs.add((good, faulty))
            if len(outputs) > 1:
                break
        table[values] = _PAIR_TO_VALUE[outputs.pop()] if len(outputs) == 1 else VX
    return table


def evaluate5(gate_type: GateType, inputs: Sequence[int]) -> int:
    """Evaluate a gate on five-valued inputs."""
    return gate_table(gate_type)[tuple(inputs)]


@lru_cache(maxsize=4096)
def justification_cubes(
    gate_type: GateType, required: int, domains: tuple[tuple[int, ...], ...]
) -> tuple[tuple[int, ...], ...]:
    """All input-value tuples producing *required* at the gate output.

    ``domains[i]`` restricts input *i* to the given candidate values (a
    known value is a singleton domain; an unknown input outside the fault
    cone ranges over ``(V0, V1)``, inside the cone over ``(V0, V1, VD,
    VDB)``).  The result enumerates every completion whose exact
    five-valued evaluation equals *required* -- the branch set a complete
    justification decision must explore.
    """
    table = gate_table(gate_type)
    return tuple(
        combo for combo in product(*domains) if table[combo] == required
    )


def propagation_cubes(
    gate_type: GateType,
    inputs: Sequence[int],
    domains: Sequence[Iterable[int]],
) -> tuple[tuple[int, ...], ...]:
    """Completions of the unknown inputs that put an error on the output.

    *inputs* holds the gate's current five-valued input values; every ``VX``
    entry ranges over its entry of *domains*, the rest stay fixed.  Returns
    the completions whose output evaluates to D or D' -- the alternatives a
    D-frontier propagation decision branches over.
    """
    table = gate_table(gate_type)
    choice = [
        tuple(domain) if value == VX else (value,)
        for value, domain in zip(inputs, domains)
    ]
    return tuple(
        combo for combo in product(*choice) if table[combo] in ERRORS
    )
