"""The :class:`StructuralAtpg` interface, engine registry and shared context.

Every structural test generator resolves one stuck-at fault to exactly one
of three outcomes:

* ``tested`` -- a primary-input pattern was found (and is verified against
  the forced-net reference simulation before being returned);
* ``proven_redundant`` -- the complete search space was exhausted without a
  test, so the fault is redundant.  Only *complete* searches may claim this;
* ``aborted`` -- the backtrack budget ran out (or the engine gave up
  heuristically) before either of the above.

Engines register themselves in :data:`ATPG_ENGINES` -- the ATPG counterpart
of :data:`repro.atpg.parallel_sim.PACKED_SIMULATORS` -- and campaigns select
one via ``CampaignSpec.atpg_engine``.

The :class:`CircuitContext` carries everything the searches share per
circuit: topological order, levels, fan-out maps, SCOAP testability numbers
(guiding PODEM's backtrace and the D-algorithm's frontier ordering) and the
static-learning implication engine whose excitation closures both prune the
search and prove ``unexcitable`` / ``dead-cone`` faults outright.  Contexts
are cached per circuit object, so a campaign pays for SCOAP and static
learning once, not once per fault.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional

from ...analysis_static.implication import ImplicationEngine, learn_implications
from ...analysis_static.scoap import ScoapMeasures, scoap_measures
from ...faults.stuck_at import StuckAtFault
from ...logic.netlist import Gate, LogicCircuit
from ..fault_sim import simulate_with_forced_net
from ..podem import PodemOptions

#: The three structural ATPG outcomes.
TESTED = "tested"
PROVEN_REDUNDANT = "proven_redundant"
ABORTED = "aborted"

STATUSES = (TESTED, PROVEN_REDUNDANT, ABORTED)


@dataclass(frozen=True)
class StructuralResult:
    """Outcome of one structural test-generation attempt."""

    status: str
    pattern: Optional[dict[str, int]]
    backtracks: int = 0
    decisions: int = 0
    #: Net values derived by implication (forward five-valued propagation,
    #: backward unique justification, learned-closure assignments).
    implications: int = 0
    engine: str = ""

    # Compatibility with the PodemResult vocabulary used by campaign code.
    @property
    def success(self) -> bool:
        return self.status == TESTED

    @property
    def aborted(self) -> bool:
        return self.status == ABORTED

    @property
    def untestable(self) -> bool:
        """The fault is proven redundant (complete search exhausted)."""
        return self.status == PROVEN_REDUNDANT

    def describe(self) -> str:
        return (
            f"[{self.engine}] {self.status}: {self.backtracks} backtracks, "
            f"{self.decisions} decisions, {self.implications} implications"
        )


class StructuralAtpgError(Exception):
    """Raised for internal consistency violations (a generated vector that
    fails verification, an unknown engine name)."""


@dataclass
class CircuitContext:
    """Per-circuit derived structure shared by every fault's search."""

    circuit: LogicCircuit
    order: list[Gate] = field(init=False)
    levels: dict[str, int] = field(init=False)
    #: Gates reading each net (structural fan-out).
    loads: dict[str, list[Gate]] = field(init=False)
    #: Nets from which at least one primary output is reachable.
    observable: set[str] = field(init=False)

    def __post_init__(self) -> None:
        circuit = self.circuit
        self.order = circuit.topological_order()
        self.levels = circuit.levelize()
        loads: dict[str, list[Gate]] = {net: [] for net in circuit.nets()}
        for gate in self.order:
            for net in dict.fromkeys(gate.inputs):
                loads[net].append(gate)
        self.loads = loads
        observable = set(circuit.primary_outputs)
        for gate in reversed(self.order):
            if gate.output in observable:
                observable.update(gate.inputs)
        self.observable = observable

    def fanout_nets(self, net: str) -> list[str]:
        """Output nets of the gates reading *net* (precomputed loads)."""
        return [gate.output for gate in self.loads[net]]

    def fanout_cone(self, net: str) -> set[str]:
        """Transitive fan-out of *net*, itself included."""
        cone: set[str] = set()
        stack = [net]
        while stack:
            current = stack.pop()
            if current in cone:
                continue
            cone.add(current)
            stack.extend(gate.output for gate in self.loads[current])
        return cone

    @cached_property
    def scoap(self) -> ScoapMeasures:
        """SCOAP controllability / observability (computed lazily, once)."""
        return scoap_measures(self.circuit)

    @cached_property
    def implication_engine(self) -> ImplicationEngine:
        """Static-learning implication engine over the good machine."""
        learning = learn_implications(self.circuit)
        return ImplicationEngine(
            self.circuit, learned=learning.implications, constants=learning.constants
        )

    def excitation_closure(self, fault: StuckAtFault) -> Optional[dict[str, int]]:
        """Necessary good-machine values of every test exciting *fault*.

        The implication closure of ``{fault.net: 1 - fault.value}`` under
        the learned implications; None means the activating value is
        unreachable (the fault is statically proven unexcitable).
        """
        return self.implication_engine.imply({fault.net: 1 - fault.value})


_CONTEXTS: "weakref.WeakKeyDictionary[LogicCircuit, CircuitContext]" = (
    weakref.WeakKeyDictionary()
)


def circuit_context(circuit: LogicCircuit) -> CircuitContext:
    """The (cached) shared context for *circuit*."""
    context = _CONTEXTS.get(circuit)
    if context is None:
        context = CircuitContext(circuit)
        _CONTEXTS[circuit] = context
    return context


class StructuralAtpg:
    """Base class: static screening, pattern fill and verification.

    Subclasses implement :meth:`_search` and may assume the fault is
    neither dead-cone nor statically unexcitable -- :meth:`generate`
    resolves those outright (they are sound proofs, and resolving them here
    keeps every engine at least as strong as the static prover's
    excitation/observability screens).
    """

    #: Registry name; subclasses override.
    name = ""
    #: Whether an exhausted search is a completeness proof.  Engines that
    #: can give up heuristically must keep this False and report ``aborted``.
    complete = True

    def generate(
        self,
        circuit: LogicCircuit,
        fault: StuckAtFault,
        options: PodemOptions | None = None,
    ) -> StructuralResult:
        """Resolve *fault* to tested / proven_redundant / aborted."""
        options = options or PodemOptions()
        context = circuit_context(circuit)
        if fault.net not in context.loads:
            raise ValueError(f"fault net {fault.net!r} is not in the circuit")
        if fault.net not in context.observable:
            return StructuralResult(
                PROVEN_REDUNDANT, None, implications=1, engine=self.name
            )
        closure = context.excitation_closure(fault)
        if closure is None:
            return StructuralResult(
                PROVEN_REDUNDANT, None, implications=1, engine=self.name
            )
        result = self._search(context, fault, closure, options)
        if result.status == TESTED:
            self._verify(circuit, fault, result.pattern)
        return result

    __call__ = generate

    def _search(
        self,
        context: CircuitContext,
        fault: StuckAtFault,
        closure: dict[str, int],
        options: PodemOptions,
    ) -> StructuralResult:
        raise NotImplementedError  # pragma: no cover - abstract

    def _fill(
        self,
        context: CircuitContext,
        assignments: dict[str, int],
        options: PodemOptions,
    ) -> dict[str, int]:
        """Complete a partial primary-input cube with the fill value."""
        return {
            net: assignments.get(net, options.fill_value)
            for net in context.circuit.primary_inputs
        }

    def _verify(
        self, circuit: LogicCircuit, fault: StuckAtFault, pattern: dict[str, int]
    ) -> None:
        """Check the generated vector really detects the fault (fail loud).

        One forced-net reference simulation per successful fault: cheap next
        to the search, and it turns any engine soundness bug into an
        immediate, attributable error instead of silently corrupting
        campaign coverage.
        """
        bits = [pattern[n] for n in circuit.primary_inputs]
        good = simulate_with_forced_net(circuit, bits, fault.net, 1 - fault.value)
        bad = simulate_with_forced_net(circuit, bits, fault.net, fault.value)
        if all(good[n] == bad[n] for n in circuit.primary_outputs):
            raise StructuralAtpgError(
                f"engine {self.name!r} produced a non-detecting vector for "
                f"{fault.key}: {pattern!r}"
            )


#: Registered structural ATPG engines, keyed by name (the values accepted
#: by ``CampaignSpec.atpg_engine``).  Mirrors ``PACKED_SIMULATORS``.
ATPG_ENGINES: dict[str, StructuralAtpg] = {}


def register_atpg_engine(engine: StructuralAtpg, replace: bool = False) -> StructuralAtpg:
    """Register *engine* under ``engine.name``; returns it for chaining."""
    if engine.name in ATPG_ENGINES and not replace:
        raise ValueError(
            f"ATPG engine {engine.name!r} is already registered; "
            f"pass replace=True to override"
        )
    ATPG_ENGINES[engine.name] = engine
    return engine


def get_atpg_engine(name: str) -> StructuralAtpg:
    """Look up a registered engine by name."""
    try:
        return ATPG_ENGINES[name]
    except KeyError:
        raise StructuralAtpgError(
            f"unknown ATPG engine {name!r}; registered engines: {atpg_engine_names()}"
        ) from None


def atpg_engine_names() -> tuple[str, ...]:
    """Names of all registered engines, sorted."""
    return tuple(sorted(ATPG_ENGINES))
