"""The legacy two-rail PODEM behind the structural interface.

Registered as ``atpg_engine="legacy"`` so campaigns and the differential
cross-check harness can run the pre-rewrite engine side by side with the
frontier-based core.  The adapter maps the legacy three-way outcome onto
:class:`~repro.atpg.structural.engine.StructuralResult` verbatim: after the
silent-failure fix in :mod:`repro.atpg.podem`, ``untestable`` means the
legacy search really exhausted its decision tree without abandoning any
branch, so it is safe to translate into ``proven_redundant``.

The base-class screens and vector verification still apply, so a legacy
"success" pattern gets the same forced-net re-simulation check as the new
engines.
"""

from __future__ import annotations

from ...faults.stuck_at import StuckAtFault
from ..podem import PodemOptions, generate_stuck_at_test
from .engine import (
    ABORTED,
    PROVEN_REDUNDANT,
    TESTED,
    CircuitContext,
    StructuralAtpg,
    StructuralResult,
    register_atpg_engine,
)


class LegacyPodem(StructuralAtpg):
    """Adapter over :func:`repro.atpg.podem.generate_stuck_at_test`."""

    name = "legacy"
    complete = True

    def _search(
        self,
        context: CircuitContext,
        fault: StuckAtFault,
        closure: dict[str, int],
        options: PodemOptions,
    ) -> StructuralResult:
        result = generate_stuck_at_test(context.circuit, fault, options=options)
        if result.success:
            status = TESTED
        elif result.aborted:
            status = ABORTED
        else:
            status = PROVEN_REDUNDANT
        return StructuralResult(
            status,
            result.pattern,
            backtracks=result.backtracks,
            decisions=result.decisions,
            implications=len(closure),
            engine=self.name,
        )


register_atpg_engine(LegacyPodem())
