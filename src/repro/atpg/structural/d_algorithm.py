"""Roth's D-algorithm with explicit D-frontier / J-frontier bookkeeping.

Unlike PODEM, decisions are made on *internal* nets: a propagation decision
picks a D-frontier gate and a side-input completion that pushes the error
through it; a justification decision picks a J-frontier gate (assigned
output, inputs not yet implying it) and one of its justification cubes.
Between decisions an implication fixpoint runs forward (gate tables) and
backward (unique-cube consequences), recording every derived value on a
trail so chronological backtracking is an O(undone) pop.

Completeness -- what makes ``proven_redundant`` a proof -- rests on three
properties, each load-bearing:

* a propagation decision branches over **all** D-frontier gates times all
  error-producing side-input completions (any test propagates through some
  currently-frontier gate with some concrete side-input cube, so the test
  survives into at least one branch);
* a justification decision branches over **all** cubes of one gate (every
  gate must be justified eventually, so fixing the gate order loses
  nothing);
* justification domains range over {0, 1, D, D'} for nets inside the
  fault's fan-out cone and {0, 1} outside -- restricting cone nets to
  Boolean values would wrongly prune tests whose justification itself
  carries the error, and is the classic way D-algorithm implementations
  lose their redundancy proofs.

The backtrack budget turns an over-long search into ``aborted``; only full
exhaustion claims ``proven_redundant``.
"""

from __future__ import annotations

from typing import Optional

from ...faults.stuck_at import StuckAtFault
from ..podem import PodemOptions
from .engine import (
    ABORTED,
    PROVEN_REDUNDANT,
    TESTED,
    CircuitContext,
    StructuralAtpg,
    StructuralResult,
    register_atpg_engine,
)
from .logic5 import (
    ERRORS,
    V0,
    V1,
    VD,
    VDB,
    VX,
    from_good_bit,
    gate_table,
    good_bit,
    justification_cubes,
    propagation_cubes,
)

#: Justification domains: Boolean outside the fault cone, full inside.
_BOOL = (V0, V1)
_FULL = (V0, V1, VD, VDB)


class DAlgorithm(StructuralAtpg):
    """The D-algorithm: complete search over net-value decisions."""

    name = "d-alg"
    complete = True

    def _search(
        self,
        context: CircuitContext,
        fault: StuckAtFault,
        closure: dict[str, int],
        options: PodemOptions,
    ) -> StructuralResult:
        return _DAlgSearch(context, fault, closure, options).run()


#: One decision alternative: the (gate, input-cube) pair to apply.
_Alternative = tuple[object, tuple[int, ...]]


class _DAlgSearch:
    def __init__(
        self,
        context: CircuitContext,
        fault: StuckAtFault,
        closure: dict[str, int],
        options: PodemOptions,
    ):
        self.context = context
        self.circuit = context.circuit
        self.fault = fault
        self.options = options
        self.cone = context.fanout_cone(fault.net)
        self.fault_driver = context.circuit.driver_of(fault.net)
        self.site_value = VD if fault.value == 0 else VDB
        self.values: dict[str, int] = {}
        self.trail: list[str] = []
        self.backtracks = 0
        self.decisions = 0
        self.implications = 0
        self.conflict = False
        # Seed: the fault site carries the error, and every closure literal
        # on a net outside the cone (where good == faulty) is a necessary
        # assignment of any test.
        self._assign(fault.net, self.site_value)
        for net, value in closure.items():
            if net != fault.net and net not in self.cone:
                self._assign(net, from_good_bit(value))
        self.implications += len(closure)

    # ------------------------------------------------------------------ #
    # Assignment trail.
    # ------------------------------------------------------------------ #
    def _assign(self, net: str, value: int) -> bool:
        current = self.values.get(net)
        if current is not None:
            if current != value:
                self.conflict = True
                return False
            return True
        self.values[net] = value
        self.trail.append(net)
        return True

    def _undo_to(self, mark: int) -> None:
        while len(self.trail) > mark:
            del self.values[self.trail.pop()]
        self.conflict = False

    def _domain(self, net: str) -> tuple[int, ...]:
        value = self.values.get(net)
        if value is not None:
            return (value,)
        return _FULL if net in self.cone else _BOOL

    def _required(self, gate) -> int:
        """The five-valued output value *gate* must justify.

        The fault-site driver is special: the net carries D/D' but the gate
        itself lives in the good machine, so it must justify the good value
        ``1 - fault.value``.
        """
        if gate is self.fault_driver:
            return from_good_bit(1 - self.fault.value)
        return self.values[gate.output]

    # ------------------------------------------------------------------ #
    # Implication fixpoint: forward tables + backward unique cubes.
    # ------------------------------------------------------------------ #
    def imply(self) -> bool:
        changed = True
        while changed and not self.conflict:
            changed = False
            for gate in self.context.order:
                table = gate_table(gate.gate_type)
                computed = table[tuple(self.values.get(n, VX) for n in gate.inputs)]
                if gate is self.fault_driver:
                    required = self._required(gate)
                    if computed != VX:
                        if computed != required:
                            self.conflict = True
                            return False
                        continue
                elif (required := self.values.get(gate.output)) is None:
                    if computed != VX:
                        self._assign(gate.output, computed)
                        self.implications += 1
                        changed = True
                    continue
                elif computed != VX:
                    if computed != required:
                        self.conflict = True
                        return False
                    continue
                # Output required but not implied: backward unique-cube pass.
                domains = tuple(self._domain(n) for n in gate.inputs)
                cubes = justification_cubes(gate.gate_type, required, domains)
                if not cubes:
                    self.conflict = True
                    return False
                for position, net in enumerate(gate.inputs):
                    if self.values.get(net) is not None:
                        continue
                    first = cubes[0][position]
                    if all(cube[position] == first for cube in cubes):
                        self._assign(net, first)
                        self.implications += 1
                        changed = True
                        if self.conflict:
                            return False
        return not self.conflict

    # ------------------------------------------------------------------ #
    # Frontiers and prunes.
    # ------------------------------------------------------------------ #
    def _d_frontier(self) -> list:
        frontier = []
        for gate in self.context.order:
            if self.values.get(gate.output) is not None:
                continue
            if any(self.values.get(n, VX) in ERRORS for n in gate.inputs):
                frontier.append(gate)
        co = self.context.scoap.co
        frontier.sort(key=lambda g: co[g.output])
        return frontier

    def _j_frontier(self) -> list:
        frontier = []
        for gate in self.context.order:
            if gate is not self.fault_driver and self.values.get(gate.output) is None:
                continue
            computed = gate_table(gate.gate_type)[
                tuple(self.values.get(n, VX) for n in gate.inputs)
            ]
            if computed == VX:
                frontier.append(gate)
        levels = self.context.levels
        frontier.sort(key=lambda g: -levels[g.output])
        return frontier

    def _error_at_output(self) -> bool:
        return any(
            self.values.get(po, VX) in ERRORS for po in self.circuit.primary_outputs
        )

    def _pruned(self) -> bool:
        """Sound dead-branch checks (error masked, or no X-path left)."""
        if self._error_at_output():
            return False
        frontier = self._d_frontier()
        if not frontier:
            return True  # the site error is masked on every path
        targets = set(self.circuit.primary_outputs)
        for gate in frontier:
            stack = [gate.output]
            seen: set[str] = set()
            while stack:
                net = stack.pop()
                if net in seen:
                    continue
                seen.add(net)
                if self.values.get(net, VX) in (V0, V1):
                    continue
                if net in targets:
                    return False
                stack.extend(self.context.fanout_nets(net))
        return True

    # ------------------------------------------------------------------ #
    # Decisions.
    # ------------------------------------------------------------------ #
    def _alternatives(self) -> Optional[list[_Alternative]]:
        """The complete branch set of the next decision (None when solved)."""
        if not self._error_at_output():
            alternatives: list[_Alternative] = []
            for gate in self._d_frontier():
                inputs = tuple(self.values.get(n, VX) for n in gate.inputs)
                domains = tuple(
                    _FULL if n in self.cone else _BOOL for n in gate.inputs
                )
                for cube in propagation_cubes(gate.gate_type, inputs, domains):
                    alternatives.append((gate, cube))
            return alternatives
        j_frontier = self._j_frontier()
        if not j_frontier:
            return None  # detected and fully justified: a test
        gate = j_frontier[0]
        domains = tuple(self._domain(n) for n in gate.inputs)
        cubes = justification_cubes(gate.gate_type, self._required(gate), domains)
        return [(gate, cube) for cube in cubes]

    def _apply(self, alternative: _Alternative) -> None:
        gate, cube = alternative
        self.decisions += 1
        for net, value in zip(gate.inputs, cube):
            if not self._assign(net, value):
                return

    # ------------------------------------------------------------------ #
    # Main loop.
    # ------------------------------------------------------------------ #
    def run(self) -> StructuralResult:
        if self.conflict:  # contradictory seed: closure vs. site error
            return self._result(PROVEN_REDUNDANT, None)
        stack: list[tuple[list[_Alternative], int, int]] = []
        while True:
            if self.imply() and not self._pruned():
                alternatives = self._alternatives()
                if alternatives is None:
                    return self._result(TESTED, self._pattern())
                if alternatives:
                    mark = len(self.trail)
                    stack.append((alternatives, 0, mark))
                    self._apply(alternatives[0])
                    continue
            # Dead branch: chronological backtrack to the next alternative.
            while stack:
                alternatives, index, mark = stack[-1]
                self._undo_to(mark)
                self.backtracks += 1
                if self.backtracks >= self.options.max_backtracks:
                    return self._result(ABORTED, None)
                index += 1
                if index < len(alternatives):
                    stack[-1] = (alternatives, index, mark)
                    self._apply(alternatives[index])
                    break
                stack.pop()
            else:
                return self._result(PROVEN_REDUNDANT, None)

    def _pattern(self) -> dict[str, int]:
        fill = self.options.fill_value
        pattern = {}
        for net in self.circuit.primary_inputs:
            bit = good_bit(self.values.get(net, VX))
            pattern[net] = fill if bit is None else bit
        return pattern

    def _result(self, status: str, pattern: dict[str, int] | None) -> StructuralResult:
        return StructuralResult(
            status,
            pattern,
            backtracks=self.backtracks,
            decisions=self.decisions,
            implications=self.implications,
            engine=DAlgorithm.name,
        )


register_atpg_engine(DAlgorithm())
