"""Frontier-based structural ATPG: D-algorithm and hardened PODEM.

The package exposes one interface -- :class:`StructuralAtpg` -- with three
registered engines (the registry mirrors ``PACKED_SIMULATORS``):

========== ==================================================================
``d-alg``  Roth's D-algorithm: decisions on internal nets via D-frontier
           propagation cubes and J-frontier justification cubes
           (:mod:`repro.atpg.structural.d_algorithm`).
``podem``  PODEM with SCOAP-guided backtrace, static excitation closures and
           sound exhaustion (:mod:`repro.atpg.structural.podem`).
``legacy`` The pre-rewrite two-rail PODEM, adapted
           (:mod:`repro.atpg.structural.legacy`).
========== ==================================================================

Every engine resolves a stuck-at fault to ``tested`` (vector verified by
forced-net re-simulation before it is returned), ``proven_redundant``
(complete search exhausted -- a proof) or ``aborted`` (budget ran out), with
backtrack / decision / implication counters.  Campaigns select an engine via
``CampaignSpec.atpg_engine``.
"""

from .d_algorithm import DAlgorithm
from .engine import (
    ABORTED,
    ATPG_ENGINES,
    PROVEN_REDUNDANT,
    STATUSES,
    TESTED,
    CircuitContext,
    StructuralAtpg,
    StructuralAtpgError,
    StructuralResult,
    atpg_engine_names,
    circuit_context,
    get_atpg_engine,
    register_atpg_engine,
)
from .legacy import LegacyPodem
from .podem import StructuralPodem

__all__ = [
    "ABORTED",
    "ATPG_ENGINES",
    "PROVEN_REDUNDANT",
    "STATUSES",
    "TESTED",
    "CircuitContext",
    "DAlgorithm",
    "LegacyPodem",
    "StructuralAtpg",
    "StructuralAtpgError",
    "StructuralPodem",
    "StructuralResult",
    "atpg_engine_names",
    "circuit_context",
    "get_atpg_engine",
    "register_atpg_engine",
]
