"""Two-pattern (launch/capture) test generation for transition faults.

A transition fault test is a pair of patterns: the first sets the fault net
to its pre-transition value, the second both launches the opposite value and
propagates the (slow) transition to a primary output -- the latter is exactly
a stuck-at test for the pre-transition value at the fault net.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..faults.stuck_at import StuckAtFault
from ..faults.transition import TransitionFault
from ..logic.netlist import LogicCircuit
from .podem import PodemOptions, generate_stuck_at_test, justify


@dataclass(frozen=True)
class TwoPatternTest:
    """A launch/capture pattern pair for a delay-type fault."""

    first: tuple[int, ...]
    second: tuple[int, ...]

    def as_dicts(self, circuit: LogicCircuit) -> tuple[dict[str, int], dict[str, int]]:
        inputs = circuit.primary_inputs
        return dict(zip(inputs, self.first)), dict(zip(inputs, self.second))


@dataclass
class TwoPatternResult:
    """Outcome of two-pattern test generation for one fault."""

    success: bool
    test: Optional[TwoPatternTest]
    backtracks: int
    aborted: bool = False
    decisions: int = 0
    implications: int = 0

    @property
    def untestable(self) -> bool:
        return not self.success and not self.aborted


def pattern_tuple(circuit: LogicCircuit, pattern: dict[str, int]) -> tuple[int, ...]:
    """A PODEM pattern dict as a tuple in primary-input order."""
    return tuple(pattern[n] for n in circuit.primary_inputs)


def generate_transition_test(
    circuit: LogicCircuit,
    fault: TransitionFault,
    options: PodemOptions | None = None,
    atpg_engine: str | None = None,
) -> TwoPatternResult:
    """Generate a two-pattern test for a slow-to-rise / slow-to-fall fault.

    *atpg_engine* selects the structural engine for the capture half (the
    stuck-at search); None keeps the legacy two-rail PODEM.  The launch
    pattern is pure justification either way.
    """
    options = options or PodemOptions()

    # Capture pattern: detect "net stuck at the pre-transition value".
    capture_implications = 0
    if atpg_engine is None:
        capture = generate_stuck_at_test(
            circuit, StuckAtFault(fault.net, fault.launch_value), options=options
        )
    else:
        # Imported here: structural sits on top of this module's sibling.
        from .structural import get_atpg_engine

        capture = get_atpg_engine(atpg_engine).generate(
            circuit, StuckAtFault(fault.net, fault.launch_value), options
        )
        capture_implications = capture.implications
    if not capture.success:
        return TwoPatternResult(
            False,
            None,
            capture.backtracks,
            aborted=capture.aborted,
            decisions=capture.decisions,
            implications=capture_implications,
        )

    # Launch pattern: justify the pre-transition value at the fault net.
    launch = justify(circuit, {fault.net: fault.launch_value}, options=options)
    backtracks = capture.backtracks + launch.backtracks
    decisions = capture.decisions + launch.decisions
    if not launch.success:
        return TwoPatternResult(
            False, None, backtracks, aborted=launch.aborted, decisions=decisions,
            implications=capture_implications,
        )

    test = TwoPatternTest(
        first=pattern_tuple(circuit, launch.pattern),
        second=pattern_tuple(circuit, capture.pattern),
    )
    return TwoPatternResult(
        True, test, backtracks, decisions=decisions,
        implications=capture_implications,
    )
