"""Baseline pattern sources: exhaustive and pseudo-random generators.

Section 4.1's point that "traditional pattern generators fail to exercise all
of these defects" is evaluated by feeding these baseline sources to the OBD
fault simulator and comparing their coverage against the OBD-aware ATPG.
"""

from __future__ import annotations

import random

from ..logic.netlist import LogicCircuit, LogicCircuitError

Pattern = tuple[int, ...]
PatternPair = tuple[Pattern, Pattern]


def exhaustive_patterns(circuit: LogicCircuit) -> list[Pattern]:
    """All 2**n input patterns of the circuit (n = number of primary inputs)."""
    n = len(circuit.primary_inputs)
    return [tuple((value >> (n - 1 - i)) & 1 for i in range(n)) for value in range(2**n)]


def exhaustive_pairs(circuit: LogicCircuit) -> list[PatternPair]:
    """All ordered two-pattern sequences with distinct patterns."""
    patterns = exhaustive_patterns(circuit)
    return [(v1, v2) for v1 in patterns for v2 in patterns if v1 != v2]


def random_patterns(circuit: LogicCircuit, count: int, seed: int = 0) -> list[Pattern]:
    """Pseudo-random single patterns (uniform over inputs)."""
    rng = random.Random(seed)
    n = len(circuit.primary_inputs)
    return [tuple(rng.randint(0, 1) for _ in range(n)) for _ in range(count)]


def random_pairs(circuit: LogicCircuit, count: int, seed: int = 0) -> list[PatternPair]:
    """Pseudo-random two-pattern sequences (patterns drawn independently).

    Pairs with identical patterns are rejected (they cannot launch a
    transition).  A zero-input circuit has no distinct pairs at all and
    raises :class:`~repro.logic.netlist.LogicCircuitError`; for tiny input
    counts the rejection loop is capped, and any shortfall is filled by
    direct construction (a random pattern plus a random non-zero offset),
    which draws uniformly over ordered distinct pairs without retrying.
    """
    n = len(circuit.primary_inputs)
    if n == 0:
        raise LogicCircuitError(
            "cannot draw two-pattern sequences for a circuit with no primary inputs"
        )
    rng = random.Random(seed)
    pairs: list[PatternPair] = []
    attempts = 0
    max_attempts = 32 * count + 64
    while len(pairs) < count and attempts < max_attempts:
        attempts += 1
        v1 = tuple(rng.randint(0, 1) for _ in range(n))
        v2 = tuple(rng.randint(0, 1) for _ in range(n))
        if v1 != v2:
            pairs.append((v1, v2))
    space = 2**n
    while len(pairs) < count:
        first = rng.randrange(space)
        second = (first + rng.randrange(1, space)) % space
        pairs.append(
            (
                tuple((first >> (n - 1 - i)) & 1 for i in range(n)),
                tuple((second >> (n - 1 - i)) & 1 for i in range(n)),
            )
        )
    return pairs


def single_input_change_pairs(circuit: LogicCircuit) -> list[PatternPair]:
    """All pairs in which exactly one primary input toggles.

    This is the launch-on-capture style pattern family many traditional
    transition-fault flows restrict themselves to; it is a strict subset of
    the sequences OBD testing may require.
    """
    pairs: list[PatternPair] = []
    for v1 in exhaustive_patterns(circuit):
        for position in range(len(v1)):
            v2 = list(v1)
            v2[position] = 1 - v2[position]
            pairs.append((v1, tuple(v2)))
    return pairs
