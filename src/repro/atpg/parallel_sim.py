"""Bit-parallel (word-packed) fault simulation over generated code.

This is the fast engine behind :mod:`repro.atpg.fault_sim`: patterns are
packed into wide bit-vectors (:mod:`repro.logic.compiled`, ``word_bits``
patterns per word, :data:`~repro.logic.compiled.DEFAULT_WORD_BITS` by
default), the good machine is evaluated **once per pattern block** by a
per-circuit ``exec``-compiled straight-line function and shared across every
fault, and each fault costs only one call into a per-cone specialized kernel
that returns the detection word directly -- no value-list copy, no output
loop.  Passing a ``compiled`` circuit built with ``codegen=False`` selects
the tuple-dispatch interpreter baseline instead; results are bit-identical.

All four fault models of the reproduction are supported and produce
:class:`~repro.atpg.fault_sim.DetectionReport`s that are bit-identical to
the serial reference engine:

* **stuck-at** -- clamp the faulty net to the stuck value; a pattern detects
  the fault where a reachable output word differs from the good machine
  (un-activated bit positions clamp to their good value and can never
  differ, so activation falls out of the arithmetic);
* **transition** -- evaluate both patterns of each pair, require
  launch/final values at the faulty net, and clamp the net to the launch
  value during the second-pattern re-simulation;
* **path-delay** -- non-robust functional sensitization: the detection word
  is the AND over the path nets of the per-net toggle words (with the launch
  edge direction enforced), so no forced re-simulation is needed at all;
* **OBD** -- the input-specific model of the paper: the excitation word is
  the OR over the fault's local sequences of per-pin match words, and the
  faulty machine holds the gate output at its *first-pattern* value (a
  per-bit word, not a constant) into the second pattern.

With ``drop_detected`` a fault stops being simulated after its first
detection; the recorded index is the lowest set bit of the first non-zero
detection word, which is exactly the pattern the serial engine would have
stopped at.  Detection indices are independent of ``word_bits``: blocks run
in ascending pattern order at every width.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..faults.obd import ObdFault
from ..faults.path_delay import RISING, PathDelayFault
from ..faults.stuck_at import StuckAtFault
from ..faults.transition import TransitionFault
from ..logic.compiled import (
    CompiledCircuit,
    compile_circuit,
    decode_into,
    pack_pair_blocks,
    pack_pattern_blocks,
)
from ..logic.netlist import LogicCircuit, LogicCircuitError
from .fault_sim import DetectionReport, Pattern, PatternPair


def _record(
    detections: dict[str, list[int]],
    remaining: set[str],
    key: str,
    base: int,
    detected_word: int,
    drop_detected: bool,
) -> None:
    """Append the pattern indices encoded by *detected_word* for one fault."""
    if drop_detected:
        low = detected_word & -detected_word
        detections[key].append(base + low.bit_length() - 1)
        remaining.discard(key)
    else:
        decode_into(detections[key], detected_word, base)


def _compiled_for(
    circuit: LogicCircuit,
    compiled: CompiledCircuit | None,
    word_bits: int | None,
) -> CompiledCircuit:
    """Reuse *compiled* when given, else compile with the requested width.

    Passing both is allowed only when they agree -- a prebuilt circuit's
    width always wins, so a conflicting *word_bits* is an error rather than
    a silent override.
    """
    if compiled is not None:
        if word_bits is not None and word_bits != compiled.word_bits:
            raise LogicCircuitError(
                f"word_bits={word_bits} conflicts with the prebuilt compiled "
                f"circuit (word_bits={compiled.word_bits}); pass one or the other"
            )
        return compiled
    if word_bits is not None:
        return compile_circuit(circuit, word_bits=word_bits)
    return compile_circuit(circuit)


def packed_simulate_stuck_at(
    circuit: LogicCircuit,
    patterns: Sequence[Pattern],
    faults: Iterable[StuckAtFault],
    drop_detected: bool = False,
    compiled: CompiledCircuit | None = None,
    word_bits: int | None = None,
) -> DetectionReport:
    """Bit-parallel stuck-at fault simulation of a pattern set."""
    cc = _compiled_for(circuit, compiled, word_bits)
    fault_list = list(faults)
    detections: dict[str, list[int]] = {f.key: [] for f in fault_list}
    remaining = set(detections)
    # Everything per-fault is resolved once: key (a property), net id, stuck
    # value -- the block loop then runs over plain tuples and kernel calls.
    sites = [(fault.key, cc.net_index[fault.net], fault.value) for fault in fault_list]
    kernel_for = cc.cone_kernel
    for base, mask, words in pack_pattern_blocks(
        patterns, len(cc.input_indices), cc.word_bits
    ):
        if drop_detected and not remaining:
            break
        good = cc.evaluate(words, mask)
        for key, net, value in sites:
            if drop_detected and key not in remaining:
                continue
            forced = mask if value else 0
            if not (good[net] ^ forced):
                continue  # never activated in this block
            detected = kernel_for(net)(good, forced, mask)
            if detected:
                _record(detections, remaining, key, base, detected, drop_detected)
    return DetectionReport(detections=detections, num_tests=len(patterns))


def packed_simulate_transition(
    circuit: LogicCircuit,
    pairs: Sequence[PatternPair],
    faults: Iterable[TransitionFault],
    drop_detected: bool = False,
    compiled: CompiledCircuit | None = None,
    word_bits: int | None = None,
) -> DetectionReport:
    """Bit-parallel transition-fault simulation of a two-pattern test set."""
    cc = _compiled_for(circuit, compiled, word_bits)
    fault_list = list(faults)
    detections: dict[str, list[int]] = {f.key: [] for f in fault_list}
    remaining = set(detections)
    sites = [
        (fault.key, cc.net_index[fault.net], fault.launch_value, fault.final_value)
        for fault in fault_list
    ]
    kernel_for = cc.cone_kernel
    for base, mask, words1, words2 in pack_pair_blocks(
        pairs, len(cc.input_indices), cc.word_bits
    ):
        if drop_detected and not remaining:
            break
        good1 = cc.evaluate(words1, mask)
        good2 = cc.evaluate(words2, mask)
        for key, net, launch_value, final_value in sites:
            if drop_detected and key not in remaining:
                continue
            launch = mask if launch_value else 0
            final = mask if final_value else 0
            excited = ~(good1[net] ^ launch) & ~(good2[net] ^ final) & mask
            if not excited:
                continue
            detected = kernel_for(net)(good2, launch, mask) & excited
            if detected:
                _record(detections, remaining, key, base, detected, drop_detected)
    return DetectionReport(detections=detections, num_tests=len(pairs))


def packed_simulate_path_delay(
    circuit: LogicCircuit,
    pairs: Sequence[PatternPair],
    faults: Iterable[PathDelayFault],
    drop_detected: bool = False,
    compiled: CompiledCircuit | None = None,
    word_bits: int | None = None,
) -> DetectionReport:
    """Bit-parallel path-delay fault simulation of a two-pattern test set.

    Detection is non-robust functional sensitization (the criterion of
    :func:`repro.faults.path_delay.is_sensitized`): the launch net reaches the
    fault's post-edge value in the second pattern and every net along the path
    toggles between the two patterns, so the slow edge arrives late at the
    path's capture net.  The sensitization word is the AND over the path nets
    of the per-net toggle words -- no forced re-simulation is needed.
    """
    cc = _compiled_for(circuit, compiled, word_bits)
    fault_list = list(faults)
    detections: dict[str, list[int]] = {f.key: [] for f in fault_list}
    remaining = set(detections)
    sites = [
        (fault.key, tuple(cc.net_index[net] for net in fault.nets), fault.direction == RISING)
        for fault in fault_list
    ]
    for base, mask, words1, words2 in pack_pair_blocks(
        pairs, len(cc.input_indices), cc.word_bits
    ):
        if drop_detected and not remaining:
            break
        good1 = cc.evaluate(words1, mask)
        good2 = cc.evaluate(words2, mask)
        for key, nets, rising in sites:
            if drop_detected and key not in remaining:
                continue
            word = ~(good2[nets[0]] ^ (mask if rising else 0)) & mask
            for net in nets:
                if not word:
                    break
                word &= good1[net] ^ good2[net]
            if word:
                _record(detections, remaining, key, base, word, drop_detected)
    return DetectionReport(detections=detections, num_tests=len(pairs))


#: Per-model packed drivers keyed by fault-model registry name; the sharded
#: campaign workers dispatch through this table instead of hard-coding one
#: driver per model.
PACKED_SIMULATORS: dict[str, object] = {}


def packed_simulate_shard(
    model: str,
    circuit: LogicCircuit,
    tests: Sequence,
    faults: Iterable,
    *,
    compiled: CompiledCircuit | None = None,
    drop_detected: bool = False,
    word_bits: int | None = None,
) -> DetectionReport:
    """Packed simulation of one **fault sublist** for the named model.

    This is the shard-aware entry point of the engine: pass the same
    prebuilt *compiled* circuit for every shard and nothing per-circuit is
    re-derived between calls -- the good-machine evaluator is reused as-is
    and the per-cone kernels accumulate lazily in the
    :class:`~repro.logic.compiled.CompiledCircuit` cache, so simulating a
    fault universe in k slices costs the same kernel compilations as
    simulating it whole.
    """
    try:
        driver = PACKED_SIMULATORS[model]
    except KeyError:
        raise ValueError(
            f"unknown packed fault-simulation model {model!r}; "
            f"expected one of {tuple(sorted(PACKED_SIMULATORS))}"
        ) from None
    return driver(
        circuit,
        tests,
        faults,
        drop_detected=drop_detected,
        compiled=compiled,
        word_bits=word_bits,
    )


def packed_simulate_obd(
    circuit: LogicCircuit,
    pairs: Sequence[PatternPair],
    faults: Iterable[ObdFault],
    drop_detected: bool = False,
    compiled: CompiledCircuit | None = None,
    word_bits: int | None = None,
) -> DetectionReport:
    """Bit-parallel OBD fault simulation of a two-pattern test set."""
    cc = _compiled_for(circuit, compiled, word_bits)
    fault_list = list(faults)
    detections: dict[str, list[int]] = {f.key: [] for f in fault_list}
    remaining = set(detections)
    # Per fault: output-net id, input-pin net ids, excitation sequences.
    sites = []
    for fault in fault_list:
        gate = circuit.gate(fault.gate_name)
        sites.append(
            (
                fault.key,
                cc.net_index[gate.output],
                tuple(cc.net_index[n] for n in gate.inputs),
                fault.local_sequences,
            )
        )
    kernel_for = cc.cone_kernel
    for base, mask, words1, words2 in pack_pair_blocks(
        pairs, len(cc.input_indices), cc.word_bits
    ):
        if drop_detected and not remaining:
            break
        good1 = cc.evaluate(words1, mask)
        good2 = cc.evaluate(words2, mask)
        for key, out_net, pins, sequences in sites:
            if drop_detected and key not in remaining:
                continue
            excited = 0
            for first, second in sequences:
                word = mask
                for pin, v1, v2 in zip(pins, first, second):
                    word &= ~(good1[pin] ^ (mask if v1 else 0))
                    word &= ~(good2[pin] ^ (mask if v2 else 0))
                    if not word:
                        break
                excited |= word & mask
            if not excited:
                continue
            # The slow gate holds its first-pattern output into pattern two.
            detected = kernel_for(out_net)(good2, good1[out_net], mask) & excited
            if detected:
                _record(detections, remaining, key, base, detected, drop_detected)
    return DetectionReport(detections=detections, num_tests=len(pairs))


PACKED_SIMULATORS.update(
    {
        "stuck-at": packed_simulate_stuck_at,
        "transition": packed_simulate_transition,
        "path-delay": packed_simulate_path_delay,
        "obd": packed_simulate_obd,
    }
)
