"""Bit-parallel (word-packed) fault simulation over generated code.

This is the fast engine behind :mod:`repro.atpg.fault_sim`: patterns are
packed into wide bit-vectors (:mod:`repro.logic.compiled`, ``word_bits``
patterns per word, :data:`~repro.logic.compiled.DEFAULT_WORD_BITS` by
default), the good machine is evaluated **once per pattern block** by a
per-circuit ``exec``-compiled straight-line function and shared across every
fault, and each fault costs only one call into a per-cone specialized kernel
that returns the detection word directly -- no value-list copy, no output
loop.  Passing a ``compiled`` circuit built with ``codegen=False`` selects
the tuple-dispatch interpreter baseline instead; results are bit-identical.

All four fault models of the reproduction are supported and produce
:class:`~repro.atpg.fault_sim.DetectionReport`s that are bit-identical to
the serial reference engine:

* **stuck-at** -- clamp the faulty net to the stuck value; a pattern detects
  the fault where a reachable output word differs from the good machine
  (un-activated bit positions clamp to their good value and can never
  differ, so activation falls out of the arithmetic);
* **transition** -- evaluate both patterns of each pair, require
  launch/final values at the faulty net, and clamp the net to the launch
  value during the second-pattern re-simulation;
* **path-delay** -- non-robust functional sensitization: the detection word
  is the AND over the path nets of the per-net toggle words (with the launch
  edge direction enforced), so no forced re-simulation is needed at all;
* **OBD** -- the input-specific model of the paper: the excitation word is
  the OR over the fault's local sequences of per-pin match words, and the
  faulty machine holds the gate output at its *first-pattern* value (a
  per-bit word, not a constant) into the second pattern.

The packed word type itself is pluggable (:data:`SIMULATOR_BACKENDS`): the
``numpy_simulate_*`` drivers run the identical algorithm over little-endian
``uint64`` ndarrays (:data:`~repro.logic.compiled.DEFAULT_NUMPY_WORD_BITS`
patterns per block by default) and additionally batch faults **PPSFP**-style
(parallel-pattern single-fault propagation): faults sharing a fault-site net
stack their forced words into one ``(g, n_words)`` array and broadcast
through a single cone-kernel call, and OBD faults of one gate -- whose
forced word, the gate's first-pattern output, is identical -- share one
kernel call outright.  Every backend/engine combination is bit-identical;
:func:`compile_for_engine` maps an engine name to the right
:class:`~repro.logic.compiled.CompiledCircuit` flavor.

With ``drop_detected`` a fault stops being simulated after its first
detection; the recorded index is the lowest set bit of the first non-zero
detection word, which is exactly the pattern the serial engine would have
stopped at.  Detection indices are independent of ``word_bits`` and of the
backend: blocks run in ascending pattern order at every width.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..faults.obd import ObdFault
from ..faults.path_delay import RISING, PathDelayFault
from ..faults.stuck_at import StuckAtFault
from ..faults.transition import TransitionFault
from ..logic.compiled import (
    DEFAULT_NUMPY_WORD_BITS,
    DEFAULT_WORD_BITS,
    WORD_BITS,
    CompiledCircuit,
    compile_circuit,
    decode_into,
    decode_words_into,
    first_set_bit,
    pack_pair_blocks,
    pack_pair_blocks_array,
    pack_pattern_blocks,
    pack_pattern_blocks_array,
)
from ..logic.netlist import LogicCircuit, LogicCircuitError
from .fault_sim import DetectionReport, Pattern, PatternPair

try:  # Optional dependency of the "numpy" backend drivers.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via HAVE_NUMPY monkeypatching
    _np = None


def _record(
    detections: dict[str, list[int]],
    remaining: set[str],
    key: str,
    base: int,
    detected_word: int,
    drop_detected: bool,
) -> None:
    """Append the pattern indices encoded by *detected_word* for one fault."""
    if drop_detected:
        low = detected_word & -detected_word
        detections[key].append(base + low.bit_length() - 1)
        remaining.discard(key)
    else:
        decode_into(detections[key], detected_word, base)


def _record_words(
    detections: dict[str, list[int]],
    remaining: set[str],
    key: str,
    base: int,
    detected_words,
    drop_detected: bool,
) -> None:
    """Array-backend counterpart of :func:`_record` for one nonzero word array."""
    if drop_detected:
        detections[key].append(base + first_set_bit(detected_words))
        remaining.discard(key)
    else:
        decode_words_into(detections[key], detected_words, base)


def _record_rows(
    detections: dict[str, list[int]],
    remaining: set[str],
    hits: list,
    base: int,
    drop_detected: bool,
) -> None:
    """Record one block's ``(key, detection_row)`` pairs.

    Fault dropping records only the first set bit per fault, so it decodes
    row by row; the dense no-drop path stacks every detected row and decodes
    the whole block in **one** ``unpackbits`` + ``flatnonzero`` pass --
    per-row decode calls would otherwise dominate dense workloads.
    """
    if not hits:
        return
    if drop_detected:
        for key, row in hits:
            detections[key].append(base + first_set_bit(row))
            remaining.discard(key)
        return
    stacked = _np.stack([row for _key, row in hits])
    row_bits = stacked.shape[1] << 6
    bits = _np.unpackbits(stacked.view(_np.uint8), bitorder="little")
    # flatnonzero on a bool view hits numpy's fast path (~7x over uint8).
    positions = _np.flatnonzero(bits.view(_np.bool_))
    boundaries = _np.searchsorted(
        positions, _np.arange(1, len(hits)) * row_bits
    )
    # Detection indices repeat heavily across faults, so gather shared int
    # objects from a per-block pool instead of materializing a fresh PyLong
    # per index (``.tolist()`` on the raw positions) -- the lists still
    # compare equal, they just alias the pool's objects.
    pool = _np.fromiter(range(base, base + row_bits), dtype=object, count=row_bits)
    for offset, chunk in enumerate(_np.split(positions, boundaries)):
        if chunk.size:
            detections[hits[offset][0]].extend(
                pool[chunk - offset * row_bits].tolist()
            )


def _compiled_for(
    circuit: LogicCircuit,
    compiled: CompiledCircuit | None,
    word_bits: int | None,
    backend: str = "int",
) -> CompiledCircuit:
    """Reuse *compiled* when given, else compile with the requested width.

    Passing both is allowed only when they agree -- a prebuilt circuit's
    width always wins, so a conflicting *word_bits* is an error rather than
    a silent override.  The prebuilt circuit must also carry the *backend*
    the calling driver packs words for.
    """
    if compiled is not None:
        if compiled.backend != backend:
            raise LogicCircuitError(
                f"the prebuilt compiled circuit has backend "
                f"{compiled.backend!r} but this driver packs {backend!r} "
                f"words; compile with backend={backend!r}"
            )
        if word_bits is not None and word_bits != compiled.word_bits:
            raise LogicCircuitError(
                f"word_bits={word_bits} conflicts with the prebuilt compiled "
                f"circuit (word_bits={compiled.word_bits}); pass one or the other"
            )
        return compiled
    if backend == "numpy":
        return compile_circuit(
            circuit, word_bits=word_bits or DEFAULT_NUMPY_WORD_BITS, backend="numpy"
        )
    if word_bits is not None:
        return compile_circuit(circuit, word_bits=word_bits)
    return compile_circuit(circuit)


def packed_simulate_stuck_at(
    circuit: LogicCircuit,
    patterns: Sequence[Pattern],
    faults: Iterable[StuckAtFault],
    drop_detected: bool = False,
    compiled: CompiledCircuit | None = None,
    word_bits: int | None = None,
) -> DetectionReport:
    """Bit-parallel stuck-at fault simulation of a pattern set."""
    cc = _compiled_for(circuit, compiled, word_bits)
    fault_list = list(faults)
    detections: dict[str, list[int]] = {f.key: [] for f in fault_list}
    remaining = set(detections)
    # Everything per-fault is resolved once: key (a property), net id, stuck
    # value -- the block loop then runs over plain tuples and kernel calls.
    sites = [(fault.key, cc.net_index[fault.net], fault.value) for fault in fault_list]
    kernel_for = cc.cone_kernel
    for base, mask, words in pack_pattern_blocks(
        patterns, len(cc.input_indices), cc.word_bits
    ):
        if drop_detected and not remaining:
            break
        good = cc.evaluate(words, mask)
        for key, net, value in sites:
            if drop_detected and key not in remaining:
                continue
            forced = mask if value else 0
            if not (good[net] ^ forced):
                continue  # never activated in this block
            detected = kernel_for(net)(good, forced, mask)
            if detected:
                _record(detections, remaining, key, base, detected, drop_detected)
    return DetectionReport(detections=detections, num_tests=len(patterns))


def packed_simulate_transition(
    circuit: LogicCircuit,
    pairs: Sequence[PatternPair],
    faults: Iterable[TransitionFault],
    drop_detected: bool = False,
    compiled: CompiledCircuit | None = None,
    word_bits: int | None = None,
) -> DetectionReport:
    """Bit-parallel transition-fault simulation of a two-pattern test set."""
    cc = _compiled_for(circuit, compiled, word_bits)
    fault_list = list(faults)
    detections: dict[str, list[int]] = {f.key: [] for f in fault_list}
    remaining = set(detections)
    sites = [
        (fault.key, cc.net_index[fault.net], fault.launch_value, fault.final_value)
        for fault in fault_list
    ]
    kernel_for = cc.cone_kernel
    for base, mask, words1, words2 in pack_pair_blocks(
        pairs, len(cc.input_indices), cc.word_bits
    ):
        if drop_detected and not remaining:
            break
        good1 = cc.evaluate(words1, mask)
        good2 = cc.evaluate(words2, mask)
        for key, net, launch_value, final_value in sites:
            if drop_detected and key not in remaining:
                continue
            launch = mask if launch_value else 0
            final = mask if final_value else 0
            excited = ~(good1[net] ^ launch) & ~(good2[net] ^ final) & mask
            if not excited:
                continue
            detected = kernel_for(net)(good2, launch, mask) & excited
            if detected:
                _record(detections, remaining, key, base, detected, drop_detected)
    return DetectionReport(detections=detections, num_tests=len(pairs))


def packed_simulate_path_delay(
    circuit: LogicCircuit,
    pairs: Sequence[PatternPair],
    faults: Iterable[PathDelayFault],
    drop_detected: bool = False,
    compiled: CompiledCircuit | None = None,
    word_bits: int | None = None,
) -> DetectionReport:
    """Bit-parallel path-delay fault simulation of a two-pattern test set.

    Detection is non-robust functional sensitization (the criterion of
    :func:`repro.faults.path_delay.is_sensitized`): the launch net reaches the
    fault's post-edge value in the second pattern and every net along the path
    toggles between the two patterns, so the slow edge arrives late at the
    path's capture net.  The sensitization word is the AND over the path nets
    of the per-net toggle words -- no forced re-simulation is needed.
    """
    cc = _compiled_for(circuit, compiled, word_bits)
    fault_list = list(faults)
    detections: dict[str, list[int]] = {f.key: [] for f in fault_list}
    remaining = set(detections)
    sites = [
        (fault.key, tuple(cc.net_index[net] for net in fault.nets), fault.direction == RISING)
        for fault in fault_list
    ]
    for base, mask, words1, words2 in pack_pair_blocks(
        pairs, len(cc.input_indices), cc.word_bits
    ):
        if drop_detected and not remaining:
            break
        good1 = cc.evaluate(words1, mask)
        good2 = cc.evaluate(words2, mask)
        for key, nets, rising in sites:
            if drop_detected and key not in remaining:
                continue
            word = ~(good2[nets[0]] ^ (mask if rising else 0)) & mask
            for net in nets:
                if not word:
                    break
                word &= good1[net] ^ good2[net]
            if word:
                _record(detections, remaining, key, base, word, drop_detected)
    return DetectionReport(detections=detections, num_tests=len(pairs))


#: Per-model packed drivers keyed by fault-model registry name; the sharded
#: campaign workers dispatch through this table instead of hard-coding one
#: driver per model.
PACKED_SIMULATORS: dict[str, object] = {}

#: Per-model drivers of the uint64-ndarray backend, same keys as
#: :data:`PACKED_SIMULATORS`.
NUMPY_SIMULATORS: dict[str, object] = {}

#: The engine-backend registry: packed word backend name -> per-model driver
#: table.  Extends :data:`PACKED_SIMULATORS` along the backend axis; new
#: backends register a driver table here and an engine name in
#: :data:`ENGINE_BACKENDS`.
SIMULATOR_BACKENDS: dict[str, dict[str, object]] = {
    "int": PACKED_SIMULATORS,
    "numpy": NUMPY_SIMULATORS,
}

#: Compiled-engine name -> packed word backend (``"serial"`` has neither a
#: compiled circuit nor a backend and is absent on purpose).
ENGINE_BACKENDS: dict[str, str] = {"packed": "int", "interp": "int", "numpy": "numpy"}


def compile_for_engine(
    circuit: LogicCircuit, engine: str, word_bits: int | None
) -> CompiledCircuit | None:
    """One compile per campaign (or per worker process) for a spec's engine.

    Codegen over big-int words for ``"packed"``, the interpreter baseline at
    the legacy width for ``"interp"``, codegen over uint64 arrays for
    ``"numpy"``; the serial engine needs no compiled circuit at all.  A
    ``word_bits`` of None keeps each engine's default width
    (:data:`~repro.logic.compiled.DEFAULT_WORD_BITS`,
    :data:`~repro.logic.compiled.WORD_BITS`,
    :data:`~repro.logic.compiled.DEFAULT_NUMPY_WORD_BITS` respectively).
    """
    if engine == "serial":
        return None
    try:
        backend = ENGINE_BACKENDS[engine]
    except KeyError:
        raise ValueError(
            f"unknown fault-simulation engine {engine!r}; "
            f"expected 'serial' or one of {tuple(ENGINE_BACKENDS)}"
        ) from None
    if word_bits is not None:
        bits = word_bits
    elif engine == "numpy":
        bits = DEFAULT_NUMPY_WORD_BITS
    elif engine == "packed":
        bits = DEFAULT_WORD_BITS
    else:
        bits = WORD_BITS
    return compile_circuit(
        circuit, word_bits=bits, codegen=engine != "interp", backend=backend
    )


def compiled_matches_engine(
    compiled: CompiledCircuit | None,
    engine: str,
    word_bits: int | None = None,
) -> bool:
    """Is *compiled* the flavor (backend, codegen, width) *engine* needs?

    A None *word_bits* accepts any width; a concrete one must match exactly.
    Callers recompile via :func:`compile_for_engine` on a mismatch instead
    of silently running a different engine than requested.
    """
    if engine == "serial" or compiled is None:
        return (compiled is None) == (engine == "serial")
    backend = ENGINE_BACKENDS.get(engine)
    return (
        compiled.backend == backend
        and compiled.codegen == (engine != "interp")
        and (word_bits is None or compiled.word_bits == word_bits)
    )


def packed_simulate_shard(
    model: str,
    circuit: LogicCircuit,
    tests: Sequence,
    faults: Iterable,
    *,
    compiled: CompiledCircuit | None = None,
    drop_detected: bool = False,
    word_bits: int | None = None,
    backend: str | None = None,
) -> DetectionReport:
    """Packed simulation of one **fault sublist** for the named model.

    This is the shard-aware entry point of the engine: pass the same
    prebuilt *compiled* circuit for every shard and nothing per-circuit is
    re-derived between calls -- the good-machine evaluator is reused as-is
    and the per-cone kernels accumulate lazily in the
    :class:`~repro.logic.compiled.CompiledCircuit` cache, so simulating a
    fault universe in k slices costs the same kernel compilations as
    simulating it whole.

    *backend* picks the driver table from :data:`SIMULATOR_BACKENDS`; when
    None it follows the prebuilt circuit's backend (``"int"`` if compiling
    fresh), so sharded workers need only hand back the compiled circuit
    :func:`compile_for_engine` gave them.
    """
    if backend is None:
        backend = compiled.backend if compiled is not None else "int"
    try:
        table = SIMULATOR_BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown packed word backend {backend!r}; "
            f"expected one of {tuple(sorted(SIMULATOR_BACKENDS))}"
        ) from None
    try:
        driver = table[model]
    except KeyError:
        raise ValueError(
            f"unknown packed fault-simulation model {model!r}; "
            f"expected one of {tuple(sorted(table))}"
        ) from None
    return driver(
        circuit,
        tests,
        faults,
        drop_detected=drop_detected,
        compiled=compiled,
        word_bits=word_bits,
    )


def packed_simulate_obd(
    circuit: LogicCircuit,
    pairs: Sequence[PatternPair],
    faults: Iterable[ObdFault],
    drop_detected: bool = False,
    compiled: CompiledCircuit | None = None,
    word_bits: int | None = None,
) -> DetectionReport:
    """Bit-parallel OBD fault simulation of a two-pattern test set."""
    cc = _compiled_for(circuit, compiled, word_bits)
    fault_list = list(faults)
    detections: dict[str, list[int]] = {f.key: [] for f in fault_list}
    remaining = set(detections)
    # Per fault: output-net id, input-pin net ids, excitation sequences.
    sites = []
    for fault in fault_list:
        gate = circuit.gate(fault.gate_name)
        sites.append(
            (
                fault.key,
                cc.net_index[gate.output],
                tuple(cc.net_index[n] for n in gate.inputs),
                fault.local_sequences,
            )
        )
    kernel_for = cc.cone_kernel
    for base, mask, words1, words2 in pack_pair_blocks(
        pairs, len(cc.input_indices), cc.word_bits
    ):
        if drop_detected and not remaining:
            break
        good1 = cc.evaluate(words1, mask)
        good2 = cc.evaluate(words2, mask)
        for key, out_net, pins, sequences in sites:
            if drop_detected and key not in remaining:
                continue
            excited = 0
            for first, second in sequences:
                word = mask
                for pin, v1, v2 in zip(pins, first, second):
                    word &= ~(good1[pin] ^ (mask if v1 else 0))
                    word &= ~(good2[pin] ^ (mask if v2 else 0))
                    if not word:
                        break
                excited |= word & mask
            if not excited:
                continue
            # The slow gate holds its first-pattern output into pattern two.
            detected = kernel_for(out_net)(good2, good1[out_net], mask) & excited
            if detected:
                _record(detections, remaining, key, base, detected, drop_detected)
    return DetectionReport(detections=detections, num_tests=len(pairs))


PACKED_SIMULATORS.update(
    {
        "stuck-at": packed_simulate_stuck_at,
        "transition": packed_simulate_transition,
        "path-delay": packed_simulate_path_delay,
        "obd": packed_simulate_obd,
    }
)


# --------------------------------------------------------------------------- #
# NumPy-backend drivers with PPSFP fault batching.
#
# Same block structure and arithmetic as the int drivers above -- every
# detection word is bit-identical by construction -- but words are uint64
# arrays and faults are batched PPSFP-style: each block's still-live,
# activated faults are chunked into groups of PPSFP_BATCH, and one
# :meth:`~repro.logic.compiled.CompiledCircuit.batch_cone_detect` pass per
# group re-evaluates the union fan-out cone over (group, n_words) stacked
# arrays with per-row fault clamping.  The numpy ufunc dispatch cost is paid
# once per *batch* instead of once per fault, which is what lets the array
# backend beat the big-int engine despite identical generated code.
# --------------------------------------------------------------------------- #
#: Stacked array rows per batched union-cone pass.  Row-packing puts many
#: disjoint-cone faults on one row, so a chunk usually holds far more
#: *faults* than this.  Wide enough to amortize ufunc dispatch across the
#: batch axis, small enough that the stacked value arrays stay cache- and
#: allocator-friendly and that a chunk's union cone stays local (chunks are
#: carved from the cone-sorted fault list, so fewer rows also means tighter
#: unions on deep circuits).  Empirically flat between 24 and 48 on both
#: shallow and deep benchmark circuits.
PPSFP_BATCH = 24


def _cone_order(cc, site):
    """Sort key clustering fault sites whose fan-out cones overlap.

    Batches are carved from the sorted fault list, so sites with nearby
    cone spans land in the same batch and the batch's *union* cone stays
    close to each member's own cone -- output-side faults batch into tiny
    unions instead of being dragged through an input-side fault's
    near-full-circuit cone.
    """
    positions = cc.cone_positions(site)
    return (positions[0], positions[-1]) if positions else (len(cc.ops), len(cc.ops))


def _batched_detect(cc, good, keys, sites, forced, mask):
    """Yield ``(key, detection_row)`` for every detected fault in the lists.

    Carves the cone-sorted fault list into PPSFP chunks, packing faults with
    disjoint :meth:`~repro.logic.compiled.CompiledCircuit.cone_mask` bitmasks
    into shared batch rows (greedy first-fit), so a chunk of *n* faults costs
    ``|union cone| * n_rows`` row-ops with ``n_rows`` well below *n* on
    shallow circuits.  A chunk closes when its row count hits
    :data:`PPSFP_BATCH`.  Zero detection rows are filtered in one vectorized
    ``any(axis=1)`` pass, so undetected faults cost nothing downstream.
    """
    count = len(keys)
    start = 0
    while start < count:
        row_masks: list[int] = []
        row_of: list[int] = []
        stop = start
        while stop < count:
            fault_mask = cc.cone_mask(sites[stop])
            placed = -1
            for index, existing in enumerate(row_masks):
                if not existing & fault_mask:
                    placed = index
                    break
            if placed < 0:
                if len(row_masks) >= PPSFP_BATCH:
                    break
                placed = len(row_masks)
                row_masks.append(fault_mask)
            else:
                row_masks[placed] |= fault_mask
            row_of.append(placed)
            stop += 1
        detected = cc.batch_cone_detect(
            good, sites[start:stop], forced[start:stop], mask, rows=row_of
        )
        for offset in _np.flatnonzero(detected.any(axis=1)):
            yield keys[start + offset], detected[offset]
        start = stop


def numpy_simulate_stuck_at(
    circuit: LogicCircuit,
    patterns: Sequence[Pattern],
    faults: Iterable[StuckAtFault],
    drop_detected: bool = False,
    compiled: CompiledCircuit | None = None,
    word_bits: int | None = None,
) -> DetectionReport:
    """uint64-array stuck-at simulation, PPSFP-batched across fault sites."""
    cc = _compiled_for(circuit, compiled, word_bits, backend="numpy")
    fault_list = list(faults)
    detections: dict[str, list[int]] = {f.key: [] for f in fault_list}
    remaining = set(detections)
    entries = [(f.key, cc.net_index[f.net], f.value) for f in fault_list]
    entries.sort(key=lambda e: _cone_order(cc, e[1]))
    for base, mask, words in pack_pattern_blocks_array(
        patterns, len(cc.input_indices), cc.word_bits
    ):
        if drop_detected and not remaining:
            break
        good = cc.evaluate(words, mask)
        zero = _np.zeros_like(mask)
        live = [e for e in entries if not drop_detected or e[0] in remaining]
        if not live:
            continue
        # One vectorized activation pass over all live faults: a fault is
        # active in the block iff the good machine ever differs from its
        # forced value.
        site_words = _np.stack([good[net] for _key, net, _value in live])
        forced_words = _np.where(
            _np.array([value for _key, _net, value in live], dtype=bool)[:, None],
            mask,
            zero,
        )
        active = (site_words ^ forced_words).any(axis=1)
        keys: list[str] = []
        sites: list[int] = []
        rows: list = []
        for offset in _np.flatnonzero(active):
            key, net, _value = live[offset]
            keys.append(key)
            sites.append(net)
            rows.append(forced_words[offset])
        hits = list(_batched_detect(cc, good, keys, sites, rows, mask))
        _record_rows(detections, remaining, hits, base, drop_detected)
    return DetectionReport(detections=detections, num_tests=len(patterns))


def numpy_simulate_transition(
    circuit: LogicCircuit,
    pairs: Sequence[PatternPair],
    faults: Iterable[TransitionFault],
    drop_detected: bool = False,
    compiled: CompiledCircuit | None = None,
    word_bits: int | None = None,
) -> DetectionReport:
    """uint64-array transition simulation, PPSFP-batched across fault sites."""
    cc = _compiled_for(circuit, compiled, word_bits, backend="numpy")
    fault_list = list(faults)
    detections: dict[str, list[int]] = {f.key: [] for f in fault_list}
    remaining = set(detections)
    entries = [
        (f.key, cc.net_index[f.net], f.launch_value, f.final_value) for f in fault_list
    ]
    entries.sort(key=lambda e: _cone_order(cc, e[1]))
    for base, mask, words1, words2 in pack_pair_blocks_array(
        pairs, len(cc.input_indices), cc.word_bits
    ):
        if drop_detected and not remaining:
            break
        good1 = cc.evaluate(words1, mask)
        good2 = cc.evaluate(words2, mask)
        zero = _np.zeros_like(mask)
        live = [e for e in entries if not drop_detected or e[0] in remaining]
        if not live:
            continue
        # One vectorized excitation pass over all live faults: the launch
        # pattern must set the site to the launch value and the capture
        # pattern to the final value.
        site1 = _np.stack([good1[net] for _key, net, _lv, _fv in live])
        site2 = _np.stack([good2[net] for _key, net, _lv, _fv in live])
        launch_bits = _np.array([lv for _key, _net, lv, _fv in live], dtype=bool)
        final_bits = _np.array([fv for _key, _net, _lv, fv in live], dtype=bool)
        launch_words = _np.where(launch_bits[:, None], mask, zero)
        final_words = _np.where(final_bits[:, None], mask, zero)
        excitation = (site1 ^ launch_words) | (site2 ^ final_words)
        excitation = excitation ^ mask  # pad bits stay zero: ~x & mask == x ^ mask
        excited_rows = excitation.any(axis=1)
        keys: list[str] = []
        sites: list[int] = []
        rows: list = []
        excited_for: dict[str, object] = {}
        for offset in _np.flatnonzero(excited_rows):
            key, net, _lv, _fv = live[offset]
            keys.append(key)
            sites.append(net)
            rows.append(launch_words[offset])
            excited_for[key] = excitation[offset]
        # The slow net holds its launch value into pattern two, so the
        # faulty machine is pattern two with the site clamped to launch.
        # Gate propagation by excitation in one stacked pass per block.
        prop_keys: list[str] = []
        prop_rows: list = []
        for key, propagated in _batched_detect(cc, good2, keys, sites, rows, mask):
            prop_keys.append(key)
            prop_rows.append(propagated)
        hits = []
        if prop_keys:
            detected = _np.stack(prop_rows) & _np.stack(
                [excited_for[key] for key in prop_keys]
            )
            for offset in _np.flatnonzero(detected.any(axis=1)):
                hits.append((prop_keys[offset], detected[offset]))
        _record_rows(detections, remaining, hits, base, drop_detected)
    return DetectionReport(detections=detections, num_tests=len(pairs))


def numpy_simulate_path_delay(
    circuit: LogicCircuit,
    pairs: Sequence[PatternPair],
    faults: Iterable[PathDelayFault],
    drop_detected: bool = False,
    compiled: CompiledCircuit | None = None,
    word_bits: int | None = None,
) -> DetectionReport:
    """uint64-array path-delay simulation (pure word arithmetic, no kernels)."""
    cc = _compiled_for(circuit, compiled, word_bits, backend="numpy")
    fault_list = list(faults)
    detections: dict[str, list[int]] = {f.key: [] for f in fault_list}
    remaining = set(detections)
    sites = [
        (fault.key, tuple(cc.net_index[net] for net in fault.nets), fault.direction == RISING)
        for fault in fault_list
    ]
    for base, mask, words1, words2 in pack_pair_blocks_array(
        pairs, len(cc.input_indices), cc.word_bits
    ):
        if drop_detected and not remaining:
            break
        good1 = cc.evaluate(words1, mask)
        good2 = cc.evaluate(words2, mask)
        zero = _np.zeros_like(mask)
        for key, nets, rising in sites:
            if drop_detected and key not in remaining:
                continue
            word = ~(good2[nets[0]] ^ (mask if rising else zero)) & mask
            for net in nets:
                if not _np.any(word):
                    break
                word = word & (good1[net] ^ good2[net])
            if _np.any(word):
                _record_words(detections, remaining, key, base, word, drop_detected)
    return DetectionReport(detections=detections, num_tests=len(pairs))


def numpy_simulate_obd(
    circuit: LogicCircuit,
    pairs: Sequence[PatternPair],
    faults: Iterable[ObdFault],
    drop_detected: bool = False,
    compiled: CompiledCircuit | None = None,
    word_bits: int | None = None,
) -> DetectionReport:
    """uint64-array OBD simulation; PPSFP rows = gates, shared by their faults.

    Every OBD fault of a gate forces the same word -- the gate's
    first-pattern output -- so each gate with at least one excited fault
    contributes **one** row to the batched union-cone pass, and all its
    faults share that row's propagation word (differing only in their
    excitation ANDs).
    """
    cc = _compiled_for(circuit, compiled, word_bits, backend="numpy")
    fault_list = list(faults)
    detections: dict[str, list[int]] = {f.key: [] for f in fault_list}
    remaining = set(detections)
    groups: dict[int, list[tuple[str, tuple[int, ...], tuple]]] = {}
    for fault in fault_list:
        gate = circuit.gate(fault.gate_name)
        groups.setdefault(cc.net_index[gate.output], []).append(
            (
                fault.key,
                tuple(cc.net_index[n] for n in gate.inputs),
                fault.local_sequences,
            )
        )
    ordered_groups = sorted(groups.items(), key=lambda g: _cone_order(cc, g[0]))
    for base, mask, words1, words2 in pack_pair_blocks_array(
        pairs, len(cc.input_indices), cc.word_bits
    ):
        if drop_detected and not remaining:
            break
        good1 = cc.evaluate(words1, mask)
        good2 = cc.evaluate(words2, mask)
        zero = _np.zeros_like(mask)
        gate_keys: list[int] = []
        gate_rows: list = []
        gate_faults: list[list[tuple[str, object]]] = []
        for out_net, entries in ordered_groups:
            active: list[tuple[str, object]] = []
            for key, pins, sequences in entries:
                if drop_detected and key not in remaining:
                    continue
                excited = zero
                for first, second in sequences:
                    word = mask
                    for pin, v1, v2 in zip(pins, first, second):
                        word = word & ~(good1[pin] ^ (mask if v1 else zero))
                        word = word & ~(good2[pin] ^ (mask if v2 else zero))
                        if not _np.any(word):
                            break
                    excited = excited | (word & mask)
                if _np.any(excited):
                    active.append((key, excited))
            if active:
                # The slow gate holds its first-pattern output into pattern
                # two: one shared forced row for the whole gate.
                gate_keys.append(out_net)
                gate_rows.append(good1[out_net])
                gate_faults.append(active)
        faults_for = dict(zip(gate_keys, gate_faults))
        # Gate propagation by per-fault excitation in one stacked pass:
        # every fault of a gate group shares the group's propagated row.
        prop_of: list[int] = []
        prop_rows: list = []
        exc_keys: list[str] = []
        exc_rows: list = []
        for out_net, propagated in _batched_detect(
            cc, good2, gate_keys, gate_keys, gate_rows, mask
        ):
            for key, excited in faults_for[out_net]:
                exc_keys.append(key)
                exc_rows.append(excited)
                prop_of.append(len(prop_rows))
            prop_rows.append(propagated)
        hits = []
        if exc_keys:
            detected = _np.stack(prop_rows)[prop_of] & _np.stack(exc_rows)
            for offset in _np.flatnonzero(detected.any(axis=1)):
                hits.append((exc_keys[offset], detected[offset]))
        _record_rows(detections, remaining, hits, base, drop_detected)
    return DetectionReport(detections=detections, num_tests=len(pairs))


NUMPY_SIMULATORS.update(
    {
        "stuck-at": numpy_simulate_stuck_at,
        "transition": numpy_simulate_transition,
        "path-delay": numpy_simulate_path_delay,
        "obd": numpy_simulate_obd,
    }
)
