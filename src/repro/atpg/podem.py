"""PODEM test generation for stuck-at faults, with value constraints.

The engine serves three callers:

* classical stuck-at ATPG (``generate_stuck_at_test``);
* pure justification of net-value objectives (``justify``), used for the
  first pattern of two-pattern tests;
* constrained stuck-at ATPG, where specific nets must settle to required
  good-machine values in addition to detecting the fault -- this is how the
  OBD ATPG pins the defective gate's inputs to the excitation cube.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..faults.stuck_at import StuckAtFault
from ..logic.gates import GateType
from ..logic.netlist import Gate, LogicCircuit
from .values import LogicValue, evaluate_gate_values, from_bit, noncontrolling_value


@dataclass
class PodemOptions:
    """Search controls for the PODEM engine."""

    max_backtracks: int = 20_000
    #: Value used to fill unassigned primary inputs in the returned pattern.
    fill_value: int = 0


@dataclass
class PodemResult:
    """Outcome of one test-generation attempt."""

    success: bool
    pattern: Optional[dict[str, int]]
    backtracks: int
    aborted: bool = False
    decisions: int = 0

    @property
    def untestable(self) -> bool:
        """Search exhausted without aborting: the fault is proven untestable.

        ``aborted`` covers both the backtrack budget running out and the
        engine abandoning a branch heuristically (backtrace landing on an
        already-assigned input); either way the search was incomplete, so
        exhaustion does *not* prove anything and this property stays False.
        """
        return not self.success and not self.aborted


class _PodemEngine:
    """One PODEM search over a circuit with an optional fault and constraints."""

    def __init__(
        self,
        circuit: LogicCircuit,
        fault: Optional[StuckAtFault],
        constraints: Mapping[str, int],
        options: PodemOptions,
    ):
        self.circuit = circuit
        self.fault = fault
        self.constraints = dict(constraints)
        self.options = options
        self.order = circuit.topological_order()
        self.assignments: dict[str, int] = {}
        self.values: dict[str, LogicValue] = {}
        self.backtracks = 0
        self.decisions = 0
        #: Set when a branch is abandoned without exploring it (backtrace
        #: landing on an assigned or non-input net).  Once set, exhausting
        #: the stack no longer proves untestability: the result is reported
        #: as aborted, never as "no test exists".
        self.gave_up = False
        self._pi_set = frozenset(circuit.primary_inputs)
        self._validate()

    def _validate(self) -> None:
        nets = set(self.circuit.nets())
        if self.fault is not None and self.fault.net not in nets:
            raise ValueError(f"fault net {self.fault.net!r} is not in the circuit")
        for net, value in self.constraints.items():
            if net not in nets:
                raise ValueError(f"constraint net {net!r} is not in the circuit")
            if value not in (0, 1):
                raise ValueError(f"constraint value for {net!r} must be 0/1")

    # ------------------------------------------------------------------ #
    # Implication (five-valued forward simulation).
    # ------------------------------------------------------------------ #
    def imply(self) -> None:
        values: dict[str, LogicValue] = {}
        fault = self.fault
        for net in self.circuit.primary_inputs:
            value = from_bit(self.assignments.get(net))
            if fault is not None and net == fault.net:
                value = LogicValue(value.good, fault.value)
            values[net] = value
        for gate in self.order:
            value = evaluate_gate_values(gate.gate_type, [values[n] for n in gate.inputs])
            if fault is not None and gate.output == fault.net:
                value = LogicValue(value.good, fault.value)
            values[gate.output] = value
        self.values = values

    # ------------------------------------------------------------------ #
    # Status predicates.
    # ------------------------------------------------------------------ #
    def fault_detected(self) -> bool:
        if self.fault is None:
            return False
        return any(self.values[net].is_error for net in self.circuit.primary_outputs)

    def constraints_satisfied(self) -> bool:
        return all(self.values[net].good == value for net, value in self.constraints.items())

    def constraints_violated(self) -> bool:
        for net, value in self.constraints.items():
            good = self.values[net].good
            if good is not None and good != value:
                return True
        return False

    def fault_activation_blocked(self) -> bool:
        """Fault site already settled to the stuck value in the good machine."""
        if self.fault is None:
            return False
        good = self.values[self.fault.net].good
        return good is not None and good == self.fault.value

    def d_frontier(self) -> list[Gate]:
        frontier = []
        for gate in self.order:
            if self.values[gate.output].is_known:
                continue
            if any(self.values[n].is_error for n in gate.inputs):
                frontier.append(gate)
        return frontier

    def fault_activated(self) -> bool:
        """The fault site carries an error value (D or D-bar)."""
        if self.fault is None:
            return False
        return self.values[self.fault.net].is_error

    def x_path_exists(self) -> bool:
        """Is there a path of unknown-valued nets from the D-frontier to a PO?"""
        if self.fault is None:
            return True
        frontier = self.d_frontier()
        if not frontier:
            # Either already detected, or nothing left to propagate.
            return self.fault_detected()
        targets = set(self.circuit.primary_outputs)
        for gate in frontier:
            stack = [gate.output]
            seen: set[str] = set()
            while stack:
                net = stack.pop()
                if net in seen:
                    continue
                seen.add(net)
                if self.values[net].is_known and not self.values[net].is_error:
                    continue
                if net in targets:
                    return True
                stack.extend(self.circuit.fanout_nets(net))
        return False

    def done(self) -> bool:
        if not self.constraints_satisfied():
            return False
        if self.fault is None:
            return True
        return self.fault_detected()

    def failed(self) -> bool:
        if self.constraints_violated():
            return True
        if self.fault is None:
            return False
        if self.fault_detected():
            return False
        if self.fault_activation_blocked():
            return True
        if not self.fault_activated():
            # The fault site is still unassigned; activation remains possible.
            return False
        # The error exists somewhere: it must still have a way to reach a PO.
        return not self.x_path_exists()

    # ------------------------------------------------------------------ #
    # Objective selection and backtrace.
    # ------------------------------------------------------------------ #
    def objective(self) -> Optional[tuple[str, int]]:
        # 1. Unsatisfied constraints.
        for net, value in self.constraints.items():
            if self.values[net].good is None:
                return net, value
        # 2. Fault activation.
        if self.fault is not None:
            good = self.values[self.fault.net].good
            if good is None:
                return self.fault.net, 1 - self.fault.value
            # 3. Fault propagation through the D-frontier.
            frontier = self.d_frontier()
            if frontier:
                gate = frontier[0]
                for net in gate.inputs:
                    if self.values[net].good is None:
                        value = noncontrolling_value(gate.gate_type)
                        return net, value if value is not None else 1
        return None

    def backtrace(self, net: str, value: int) -> tuple[str, int]:
        """Walk backwards from an objective to an unassigned primary input."""
        current, target = net, value
        for _ in range(10 * (len(self.circuit) + len(self.circuit.primary_inputs)) + 10):
            driver = self.circuit.driver_of(current)
            if driver is None:
                return current, target
            inputs_x = [n for n in driver.inputs if self.values[n].good is None]
            if not inputs_x:
                # Everything justified below; fall back to the first input.
                inputs_x = [driver.inputs[0]]
            chosen = inputs_x[0]
            target = self._backtrace_value(driver.gate_type, target)
            current = chosen
        return current, target  # pragma: no cover - safety net

    @staticmethod
    def _backtrace_value(gate_type: GateType, target: int) -> int:
        """Input value most likely to produce *target* at the gate output."""
        if gate_type in (GateType.INV, GateType.NAND2, GateType.NAND3, GateType.NOR2,
                         GateType.NOR3, GateType.XNOR2, GateType.AOI21, GateType.OAI21):
            return 1 - target
        return target

    # ------------------------------------------------------------------ #
    # Main search loop.
    # ------------------------------------------------------------------ #
    def run(self) -> PodemResult:
        self.imply()
        stack: list[tuple[str, int, bool]] = []  # (pi, value, alternative tried)
        while True:
            if self.done():
                return self._success()
            if self.failed() or self.objective() is None:
                if not self._backtrack(stack):
                    return self._exhausted()
                continue
            if self.backtracks > self.options.max_backtracks:
                return PodemResult(False, None, self.backtracks, aborted=True,
                                   decisions=self.decisions)
            net, value = self.objective()
            pi, pi_value = self.backtrace(net, value)
            if pi in self.assignments or pi not in self._pi_set:
                # Backtrace landed on an assigned (or non-input) net: the
                # branch is abandoned *heuristically*, not refuted, so a
                # later stack exhaustion must be reported as aborted rather
                # than as a proof that no test exists.
                self.gave_up = True
                if not self._backtrack(stack):
                    return self._exhausted()
                continue
            self.assignments[pi] = pi_value
            self.decisions += 1
            stack.append((pi, pi_value, False))
            self.imply()

    def _exhausted(self) -> PodemResult:
        """Decision stack exhausted: a proof only if no branch was abandoned."""
        return PodemResult(False, None, self.backtracks, aborted=self.gave_up,
                           decisions=self.decisions)

    def _backtrack(self, stack: list[tuple[str, int, bool]]) -> bool:
        while stack:
            pi, value, tried_alternative = stack.pop()
            del self.assignments[pi]
            self.backtracks += 1
            if not tried_alternative:
                alternative = 1 - value
                self.assignments[pi] = alternative
                stack.append((pi, alternative, True))
                self.imply()
                return True
        self.imply()
        return False

    def _success(self) -> PodemResult:
        pattern = {
            net: self.assignments.get(net, self.options.fill_value)
            for net in self.circuit.primary_inputs
        }
        return PodemResult(True, pattern, self.backtracks, decisions=self.decisions)


# --------------------------------------------------------------------------- #
# Public entry points.
# --------------------------------------------------------------------------- #
def generate_stuck_at_test(
    circuit: LogicCircuit,
    fault: StuckAtFault,
    constraints: Mapping[str, int] | None = None,
    options: PodemOptions | None = None,
) -> PodemResult:
    """Generate a single test pattern detecting *fault* (or prove it untestable)."""
    engine = _PodemEngine(circuit, fault, constraints or {}, options or PodemOptions())
    return engine.run()


def justify(
    circuit: LogicCircuit,
    objectives: Mapping[str, int],
    options: PodemOptions | None = None,
) -> PodemResult:
    """Find a primary-input pattern that sets every objective net to its value."""
    engine = _PodemEngine(circuit, None, objectives, options or PodemOptions())
    return engine.run()
