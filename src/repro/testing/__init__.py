"""Concurrent-testing support: capture models, windows, schedules."""

from .capture import CaptureModel
from .scheduler import (
    TestSchedule,
    attempts_with_period,
    maximum_test_period,
    required_periods,
    schedule_for_window,
)
from .window import (
    DetectionWindow,
    StageDelay,
    detectability_threshold,
    detection_window,
    first_detectable_stage,
    window_versus_slack,
)

__all__ = [
    "StageDelay",
    "DetectionWindow",
    "detectability_threshold",
    "first_detectable_stage",
    "detection_window",
    "window_versus_slack",
    "CaptureModel",
    "TestSchedule",
    "maximum_test_period",
    "schedule_for_window",
    "attempts_with_period",
    "required_periods",
]
