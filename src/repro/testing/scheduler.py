"""Scheduling of concurrent test / diagnose / repair intervals.

The paper's closing argument of Section 4.2: the diode-resistor model
predicts the delay at every progression stage, and that prediction "helps the
scheduling of test/diagnosis/repair intervals of fault-tolerance schemes".
Given a detection window, the scheduler below answers the operational
question: how often must the concurrent test run so that any defect is caught
inside its window with the required number of opportunities?
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from .window import DetectionWindow


@dataclass(frozen=True)
class TestSchedule:
    """A periodic concurrent-test schedule."""

    period: float
    test_duration: float
    detection_attempts: int

    @property
    def overhead(self) -> float:
        """Fraction of time spent testing."""
        if self.period <= 0.0:
            return 1.0
        return min(self.test_duration / self.period, 1.0)

    def describe(self) -> str:
        return (
            f"test every {self.period / 3600.0:.2f} h "
            f"({self.detection_attempts} attempts per window, "
            f"{100.0 * self.overhead:.4f}% time overhead)"
        )


def maximum_test_period(window: DetectionWindow, attempts: int = 1) -> float:
    """Largest test period guaranteeing *attempts* test runs inside the window."""
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    if not window.exists:
        return 0.0
    return window.duration / attempts


def schedule_for_window(
    window: DetectionWindow,
    test_duration: float,
    attempts: int = 2,
    safety_factor: float = 1.0,
) -> TestSchedule:
    """Build a periodic schedule that catches defects inside *window*.

    ``attempts`` is the number of test opportunities required inside the
    window (2 by default: one to detect, one to confirm/diagnose);
    ``safety_factor`` > 1 shrinks the period further.
    """
    if test_duration < 0.0:
        raise ValueError("test_duration must be >= 0")
    if safety_factor < 1.0:
        raise ValueError("safety_factor must be >= 1")
    period = maximum_test_period(window, attempts) / safety_factor
    return TestSchedule(period=period, test_duration=test_duration, detection_attempts=attempts)


def attempts_with_period(window: DetectionWindow, period: float) -> int:
    """Number of guaranteed test opportunities inside the window for a period."""
    if period <= 0.0:
        raise ValueError("period must be > 0")
    if not window.exists:
        return 0
    return int(math.floor(window.duration / period))


def required_periods(windows: Sequence[DetectionWindow], attempts: int = 1) -> float:
    """Largest test period valid for *every* window in a collection.

    Use over all defect sites / slack corners of a design: the tightest
    window dictates the schedule.
    """
    periods = [maximum_test_period(w, attempts) for w in windows if w.exists]
    if not periods:
        return 0.0
    return min(periods)
