"""Detection window-of-opportunity analysis (Section 4.2).

The paper argues that because OBD leakage grows exponentially, the usable
window for concurrent detection is bounded by (a) the moment the extra delay
first exceeds the slack seen by the capture mechanism and (b) the moment of
hard breakdown.  This module combines

* a progression model (time -> breakdown stage / parameters),
* per-stage measured delays (from the Table-1 style characterization), and
* the timing slack of the observing path / capture mechanism

into the concrete detection window and its sensitivity to the capture slack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.breakdown import BreakdownStage
from ..core.progression import ProgressionModel


@dataclass(frozen=True)
class StageDelay:
    """Measured gate (or path) delay at one breakdown stage."""

    stage: BreakdownStage
    delay: Optional[float]
    stuck: bool = False

    @property
    def effective_delay(self) -> float:
        """Delay used for comparisons (stuck outputs count as infinite)."""
        if self.stuck or self.delay is None:
            return float("inf")
        return self.delay


@dataclass(frozen=True)
class DetectionWindow:
    """The usable time window for catching a progressing defect."""

    opens_at: float
    closes_at: float
    opening_stage: Optional[BreakdownStage]
    nominal_delay: float
    threshold_delay: float

    @property
    def duration(self) -> float:
        return max(self.closes_at - self.opens_at, 0.0)

    @property
    def exists(self) -> bool:
        return self.opening_stage is not None and self.duration > 0.0

    def describe(self) -> str:
        if not self.exists:
            return "no detection window (defect never exceeds the observable threshold)"
        hours = self.duration / 3600.0
        return (
            f"window opens at stage {self.opening_stage.value} "
            f"({self.opens_at / 3600.0:.2f} h after SBD onset), closes at hard breakdown "
            f"({self.closes_at / 3600.0:.2f} h): {hours:.2f} h available"
        )


def detectability_threshold(nominal_delay: float, slack: float) -> float:
    """Smallest faulty delay that produces an observable timing failure.

    With a capture instant ``nominal_delay + slack`` after the launch edge,
    a defect is observable once its delay exceeds that sum.
    """
    if nominal_delay < 0.0 or slack < 0.0:
        raise ValueError("nominal delay and slack must be >= 0")
    return nominal_delay + slack


def first_detectable_stage(
    stage_delays: Sequence[StageDelay],
    nominal_delay: float,
    slack: float,
) -> Optional[BreakdownStage]:
    """Earliest stage whose delay exceeds the detectability threshold."""
    threshold = detectability_threshold(nominal_delay, slack)
    ordered = sorted(stage_delays, key=lambda s: s.stage.order)
    for entry in ordered:
        if entry.stage == BreakdownStage.FAULT_FREE:
            continue
        if entry.effective_delay > threshold:
            return entry.stage
    return None


def detection_window(
    progression: ProgressionModel,
    stage_delays: Sequence[StageDelay],
    nominal_delay: float,
    slack: float,
) -> DetectionWindow:
    """Compute the concrete detection window for one defect site.

    ``stage_delays`` is the per-stage delay characterization of the defective
    gate (e.g. one column of the reproduced Table 1); ``nominal_delay`` is
    the fault-free delay and ``slack`` the additional timing margin before
    the output is captured.
    """
    threshold = detectability_threshold(nominal_delay, slack)
    stage = first_detectable_stage(stage_delays, nominal_delay, slack)
    closes = progression.hbd_time
    if stage is None:
        return DetectionWindow(
            opens_at=closes,
            closes_at=closes,
            opening_stage=None,
            nominal_delay=nominal_delay,
            threshold_delay=threshold,
        )
    opens = progression.time_of_stage(stage)
    return DetectionWindow(
        opens_at=opens,
        closes_at=closes,
        opening_stage=stage,
        nominal_delay=nominal_delay,
        threshold_delay=threshold,
    )


def window_versus_slack(
    progression: ProgressionModel,
    stage_delays: Sequence[StageDelay],
    nominal_delay: float,
    slacks: Sequence[float],
) -> dict[float, DetectionWindow]:
    """Detection windows for a sweep of capture slacks.

    Larger slack (later capture) shrinks the window: the defect must progress
    further before it is visible, which is the quantitative form of the
    paper's statement that "the window of opportunity depends on the timing
    slack in the detection mechanism".
    """
    return {
        float(s): detection_window(progression, stage_delays, nominal_delay, s) for s in slacks
    }
