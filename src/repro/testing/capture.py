"""Early-capture modeling for concurrent delay-fault detection.

Section 4.2 notes that detecting the OBD-induced delay "may necessitate
output capture earlier than the designated clock frequency of the digital
circuit", the same trick used by scan-based transition-fault testing.  The
:class:`CaptureModel` captures the arithmetic of that statement: given a
clock period and an early-capture fraction, which extra delays are visible?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.breakdown import BreakdownStage
from .window import StageDelay


@dataclass(frozen=True)
class CaptureModel:
    """Observation timing of a concurrent checker.

    Attributes
    ----------
    clock_period:
        Functional clock period of the circuit.
    capture_fraction:
        When the checker samples the output, as a fraction of the clock
        period (1.0 = capture at the functional clock edge, smaller values
        model early capture).
    checker_latency:
        Additional latency before the checker's verdict is available; it does
        not change visibility, only the diagnosis turnaround.
    """

    clock_period: float
    capture_fraction: float = 1.0
    checker_latency: float = 0.0

    def __post_init__(self):
        if self.clock_period <= 0.0:
            raise ValueError("clock_period must be > 0")
        if not 0.0 < self.capture_fraction <= 1.0:
            raise ValueError("capture_fraction must be in (0, 1]")
        if self.checker_latency < 0.0:
            raise ValueError("checker_latency must be >= 0")

    @property
    def capture_time(self) -> float:
        """Absolute capture instant after the launch edge."""
        return self.clock_period * self.capture_fraction

    def slack_for_path(self, path_delay: float) -> float:
        """Timing slack of a path against this capture instant."""
        return max(self.capture_time - path_delay, 0.0)

    def observes(self, path_delay: float, extra_delay: float) -> bool:
        """Is an extra delay on the path visible at the capture instant?"""
        return path_delay + extra_delay > self.capture_time

    def first_observable_stage(
        self,
        stage_delays: Sequence[StageDelay],
        nominal_delay: float,
        path_delay: Optional[float] = None,
    ) -> Optional[BreakdownStage]:
        """Earliest breakdown stage whose delay this capture scheme can see.

        ``stage_delays`` holds the defective gate's delay per stage,
        ``nominal_delay`` its fault-free delay, and ``path_delay`` the total
        nominal delay of the observing path (defaults to the gate delay
        itself, i.e. the gate drives the capture point directly).
        """
        path = path_delay if path_delay is not None else nominal_delay
        ordered = sorted(stage_delays, key=lambda s: s.stage.order)
        for entry in ordered:
            if entry.stage == BreakdownStage.FAULT_FREE:
                continue
            extra = entry.effective_delay - nominal_delay
            if self.observes(path, extra):
                return entry.stage
        return None
