"""A small, self-contained SPICE-like circuit simulator.

This package is the analog substrate of the reproduction: the paper's
experiments were run in HSPICE; here they run on a from-scratch modified
nodal analysis (MNA) engine with Level-1 MOSFETs, Shockley diodes, linear
resistors/capacitors and time-dependent independent sources.

Public entry points
-------------------
* :class:`Circuit` -- netlist container with convenience builders.
* :func:`operating_point` -- DC solution.
* :func:`dc_sweep` -- DC transfer curves (e.g. inverter VTC, Figure 4).
* :func:`transient` -- time-domain simulation (Table 1, Figures 6, 7, 9).
* :class:`Waveform` / :func:`propagation_delay` -- measurement primitives.
"""

from .analysis import (
    DcSweepResult,
    MnaSystem,
    OperatingPoint,
    SolverOptions,
    TransientOptions,
    TransientResult,
    dc_sweep,
    operating_point,
    transient,
)
from .elements import (
    Capacitor,
    CurrentSource,
    DCWaveform,
    Diode,
    DiodeModel,
    Element,
    Mosfet,
    MosfetModel,
    PiecewiseLinearWaveform,
    PulseWaveform,
    Resistor,
    VoltageSource,
    two_pattern_waveform,
)
from .errors import AnalysisError, CircuitError, ConvergenceError, SpiceError
from .netlist import Circuit
from .waveform import Waveform, propagation_delay

__all__ = [
    "Circuit",
    "Element",
    "Resistor",
    "Capacitor",
    "Diode",
    "DiodeModel",
    "Mosfet",
    "MosfetModel",
    "VoltageSource",
    "CurrentSource",
    "DCWaveform",
    "PiecewiseLinearWaveform",
    "PulseWaveform",
    "two_pattern_waveform",
    "MnaSystem",
    "SolverOptions",
    "operating_point",
    "OperatingPoint",
    "dc_sweep",
    "DcSweepResult",
    "transient",
    "TransientOptions",
    "TransientResult",
    "Waveform",
    "propagation_delay",
    "SpiceError",
    "CircuitError",
    "ConvergenceError",
    "AnalysisError",
]
