"""Circuit container: a named collection of elements plus convenience builders."""

from __future__ import annotations

from typing import Iterator

from .elements import (
    Capacitor,
    CurrentSource,
    Diode,
    DiodeModel,
    Element,
    Mosfet,
    MosfetModel,
    Resistor,
    VoltageSource,
    is_ground,
)
from .errors import CircuitError


class Circuit:
    """A flat netlist of circuit elements.

    The circuit is the unit handed to every analysis
    (:func:`repro.spice.analysis.op.operating_point`,
    :func:`repro.spice.analysis.dc_sweep.dc_sweep`,
    :func:`repro.spice.analysis.transient.transient`).

    Elements are stored by unique name; node names are plain strings, and any
    of ``"0"``, ``"gnd"``, ``"GND"``, ``"ground"`` denotes the reference node.
    """

    def __init__(self, title: str = ""):
        self.title = title
        self._elements: dict[str, Element] = {}

    # ------------------------------------------------------------------ #
    # Container protocol.
    # ------------------------------------------------------------------ #
    def __contains__(self, name: str) -> bool:
        return name in self._elements

    def __getitem__(self, name: str) -> Element:
        try:
            return self._elements[name]
        except KeyError:
            raise CircuitError(f"no element named {name!r} in circuit {self.title!r}") from None

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements.values())

    def __len__(self) -> int:
        return len(self._elements)

    @property
    def elements(self) -> list[Element]:
        """All elements in insertion order."""
        return list(self._elements.values())

    def nodes(self) -> list[str]:
        """Sorted list of all non-ground node names."""
        names = {n for el in self._elements.values() for n in el.nodes if not is_ground(n)}
        return sorted(names)

    def elements_at(self, node: str) -> list[Element]:
        """All elements with a terminal connected to *node*."""
        return [el for el in self._elements.values() if node in el.nodes]

    def has_node(self, node: str) -> bool:
        """True if any element connects to *node* (or *node* is ground)."""
        if is_ground(node):
            return True
        return any(node in el.nodes for el in self._elements.values())

    # ------------------------------------------------------------------ #
    # Mutation.
    # ------------------------------------------------------------------ #
    def add(self, element: Element) -> Element:
        """Add an element, enforcing unique names."""
        if element.name in self._elements:
            raise CircuitError(f"duplicate element name {element.name!r}")
        self._elements[element.name] = element
        return element

    def remove(self, name: str) -> Element:
        """Remove and return the element called *name*."""
        if name not in self._elements:
            raise CircuitError(f"cannot remove unknown element {name!r}")
        return self._elements.pop(name)

    def clone(self, title: str | None = None) -> "Circuit":
        """Deep copy of the circuit (elements lose their MNA indices)."""
        other = Circuit(title if title is not None else self.title)
        for el in self._elements.values():
            other.add(el.clone())
        return other

    def merge(self, other: "Circuit", rename: str | None = None) -> None:
        """Add every element of *other* into this circuit.

        When *rename* is given, element names are prefixed with ``rename + ':'``
        (node names are left untouched, so the caller controls sharing).
        """
        for el in other.elements:
            el = el.clone()
            if rename:
                el.name = f"{rename}:{el.name}"
            self.add(el)

    # ------------------------------------------------------------------ #
    # Convenience builders.
    # ------------------------------------------------------------------ #
    def add_resistor(self, name: str, a: str, b: str, resistance: float) -> Resistor:
        return self.add(Resistor(name, a, b, resistance))

    def add_capacitor(self, name: str, a: str, b: str, capacitance: float) -> Capacitor:
        return self.add(Capacitor(name, a, b, capacitance))

    def add_diode(self, name: str, anode: str, cathode: str, model: DiodeModel) -> Diode:
        return self.add(Diode(name, anode, cathode, model))

    def add_voltage_source(
        self, name: str, p: str, n: str = "0", dc: float = 0.0, waveform=None
    ) -> VoltageSource:
        return self.add(VoltageSource(name, p, n, dc=dc, waveform=waveform))

    def add_current_source(
        self, name: str, p: str, n: str = "0", dc: float = 0.0, waveform=None
    ) -> CurrentSource:
        return self.add(CurrentSource(name, p, n, dc=dc, waveform=waveform))

    def add_mosfet(
        self,
        name: str,
        drain: str,
        gate: str,
        source: str,
        bulk: str,
        model: MosfetModel,
        width: float,
        length: float,
        with_caps: bool = True,
    ) -> Mosfet:
        """Add a MOSFET and (by default) its constant parasitic capacitors.

        The Level-1 device itself only models the channel current; the gate
        and junction capacitances returned by
        :meth:`repro.spice.elements.mosfet.MosfetModel.capacitances` are added
        as explicit capacitor elements named ``<name>:cgs`` etc.  These
        capacitances are what the oxide-breakdown leakage path competes with,
        so they must be present for the dynamic experiments of the paper.
        """
        device = Mosfet(name, drain, gate, source, bulk, model, width, length)
        self.add(device)
        if with_caps:
            caps = model.capacitances(width, length)
            pairs = {
                "cgs": (gate, source),
                "cgd": (gate, drain),
                "cgb": (gate, bulk),
                "cdb": (drain, bulk),
                "csb": (source, bulk),
            }
            for key, (node_a, node_b) in pairs.items():
                value = caps[key]
                if value <= 0.0 or node_a == node_b:
                    continue
                self.add_capacitor(f"{name}:{key}", node_a, node_b, value)
        return device

    # ------------------------------------------------------------------ #
    # Queries used by higher layers.
    # ------------------------------------------------------------------ #
    def voltage_sources(self) -> list[VoltageSource]:
        """All voltage sources in the circuit."""
        return [el for el in self._elements.values() if isinstance(el, VoltageSource)]

    def mosfets(self) -> list[Mosfet]:
        """All MOSFET devices in the circuit."""
        return [el for el in self._elements.values() if isinstance(el, Mosfet)]

    def is_nonlinear(self) -> bool:
        """True when any element requires Newton iterations."""
        return any(el.is_nonlinear for el in self._elements.values())

    def summary(self) -> str:
        """One-line human readable summary (element and node counts)."""
        counts: dict[str, int] = {}
        for el in self._elements.values():
            counts[type(el).__name__] = counts.get(type(el).__name__, 0) + 1
        parts = ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
        return f"Circuit {self.title!r}: {len(self)} elements ({parts}), {len(self.nodes())} nodes"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Circuit {self.title!r} with {len(self)} elements>"
