"""Fixed-step transient analysis with local step refinement on Newton failure."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from ..elements import StampContext
from ..errors import AnalysisError, ConvergenceError
from ..netlist import Circuit
from ..waveform import Waveform
from .op import operating_point
from .solver import SolverOptions, newton_solve


@dataclass
class TransientResult:
    """Sampled node voltages (and source branch currents) over time."""

    time: np.ndarray
    voltages: dict[str, np.ndarray]
    branch_currents: dict[str, np.ndarray] = field(default_factory=dict)

    def waveform(self, node: str) -> Waveform:
        """Waveform of a recorded node."""
        if node not in self.voltages:
            raise AnalysisError(f"node {node!r} was not recorded")
        return Waveform(self.time, self.voltages[node], name=node)

    def current_waveform(self, source_name: str) -> Waveform:
        """Waveform of a voltage-source branch current."""
        if source_name not in self.branch_currents:
            raise AnalysisError(f"source {source_name!r} current was not recorded")
        return Waveform(self.time, self.branch_currents[source_name], name=source_name)

    @property
    def nodes(self) -> list[str]:
        return sorted(self.voltages)


@dataclass
class TransientOptions:
    """Transient analysis controls."""

    method: str = "backward_euler"
    solver: SolverOptions = field(default_factory=SolverOptions)
    #: Maximum number of times a failing step is halved before giving up.
    max_step_refinements: int = 6
    #: Record every ``decimation``-th accepted step (1 records everything).
    decimation: int = 1

    def __post_init__(self):
        if self.method not in ("backward_euler", "trapezoidal"):
            raise AnalysisError(f"unknown integration method {self.method!r}")
        if self.decimation < 1:
            raise AnalysisError("decimation must be >= 1")


def transient(
    circuit: Circuit,
    t_stop: float,
    dt: float,
    options: TransientOptions | None = None,
    record_nodes: Optional[Iterable[str]] = None,
    record_currents: Optional[Iterable[str]] = None,
) -> TransientResult:
    """Simulate *circuit* from t=0 to *t_stop* with nominal step *dt*.

    The initial condition is the DC operating point with all time-dependent
    sources evaluated at t=0.  Integration uses backward Euler by default
    (robust for the stiff breakdown circuits); trapezoidal integration is
    available via :class:`TransientOptions`.

    When a time step fails to converge it is retried with successively halved
    sub-steps before the analysis gives up.
    """
    if t_stop <= 0.0:
        raise AnalysisError("t_stop must be > 0")
    if dt <= 0.0 or dt > t_stop:
        raise AnalysisError("dt must satisfy 0 < dt <= t_stop")
    options = options or TransientOptions()

    # Initial condition: DC operating point at t = 0.
    op0 = operating_point(circuit, time=0.0, options=options.solver)
    system = op0.system

    nodes = list(record_nodes) if record_nodes is not None else list(system.node_names)
    currents = list(record_currents) if record_currents is not None else []

    times: list[float] = [0.0]
    samples: dict[str, list[float]] = {n: [system.voltage(op0.x, n)] for n in nodes}
    current_samples: dict[str, list[float]] = {
        s: [float(op0.x[system.branch_index(s)])] for s in currents
    }

    ctx = StampContext(
        mode="tran",
        time=0.0,
        dt=dt,
        x_prev=op0.x,
        method=options.method,
        gmin=options.solver.gmin,
    )

    x_prev = op0.x
    t = 0.0
    num_steps = int(round(t_stop / dt))
    accepted = 0

    for step in range(1, num_steps + 1):
        t_target = min(step * dt, t_stop)
        x_prev, t = _advance(system, circuit, ctx, x_prev, t, t_target, options)
        accepted += 1
        if accepted % options.decimation == 0 or t >= t_stop:
            times.append(t)
            for n in nodes:
                samples[n].append(system.voltage(x_prev, n))
            for s in currents:
                current_samples[s].append(float(x_prev[system.branch_index(s)]))

    return TransientResult(
        time=np.asarray(times),
        voltages={n: np.asarray(v) for n, v in samples.items()},
        branch_currents={s: np.asarray(v) for s, v in current_samples.items()},
    )


def _advance(system, circuit, ctx, x_prev, t_from, t_to, options) -> tuple[np.ndarray, float]:
    """Advance the solution from *t_from* to *t_to*, refining on failure."""
    stack = [(t_from, t_to, 0)]
    x = x_prev
    t = t_from
    while stack:
        start, target, depth = stack.pop()
        h = target - start
        ctx.time = target
        ctx.dt = h
        ctx.x_prev = x
        result = newton_solve(system, ctx, x, options.solver)
        if result.converged:
            for element in circuit:
                element.update_state(ctx)
            x = result.x
            t = target
            continue
        if depth >= options.max_step_refinements:
            raise ConvergenceError(
                f"transient step at t={target:.4e}s failed after "
                f"{options.max_step_refinements} refinements",
                iterations=result.iterations,
                residual=result.max_delta,
            )
        midpoint = start + h / 2.0
        # Solve the two halves in order (stack is LIFO, push second half first).
        stack.append((midpoint, target, depth + 1))
        stack.append((start, midpoint, depth + 1))
    return x, t
