"""Modified nodal analysis bookkeeping: node/branch index assignment."""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..elements import is_ground
from ..errors import CircuitError
from ..netlist import Circuit


class MnaSystem:
    """Assigns MNA matrix rows to a circuit's nodes and source branches.

    Row layout: all non-ground nodes (in sorted order) followed by one row per
    branch-current unknown, in element insertion order.
    """

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        node_names = circuit.nodes()
        if not node_names:
            raise CircuitError("circuit has no non-ground nodes")
        self._node_index: dict[str, int] = {name: i for i, name in enumerate(node_names)}
        self.node_names = node_names
        self.num_nodes = len(node_names)

        branch = self.num_nodes
        self._branch_owner: dict[str, int] = {}
        for element in circuit:
            indices = tuple(
                -1 if is_ground(node) else self._node_index[node] for node in element.nodes
            )
            if element.num_branches > 0:
                element.assign_indices(indices, branch)
                self._branch_owner[element.name] = branch
                branch += element.num_branches
            else:
                element.assign_indices(indices, -1)
        self.num_branches = branch - self.num_nodes
        self.size = branch

    # ------------------------------------------------------------------ #
    def node_index(self, name: str) -> int:
        """MNA row of a node name (-1 for ground)."""
        if is_ground(name):
            return -1
        try:
            return self._node_index[name]
        except KeyError:
            raise CircuitError(f"unknown node {name!r}") from None

    def branch_index(self, element_name: str) -> int:
        """MNA row holding the branch current of the named element."""
        try:
            return self._branch_owner[element_name]
        except KeyError:
            raise CircuitError(f"element {element_name!r} has no branch current") from None

    def voltage(self, x: np.ndarray, node: str) -> float:
        """Node voltage extracted from a solution vector."""
        idx = self.node_index(node)
        if idx < 0:
            return 0.0
        return float(x[idx])

    def voltages(self, x: np.ndarray) -> dict[str, float]:
        """All node voltages as a dictionary."""
        return {name: float(x[i]) for name, i in self._node_index.items()}

    def branch_currents(self, x: np.ndarray) -> dict[str, float]:
        """Branch currents (one per voltage source) as a dictionary."""
        return {name: float(x[row]) for name, row in self._branch_owner.items()}

    def initial_guess(self, hints: Mapping[str, float] | None = None) -> np.ndarray:
        """Zero vector, optionally seeded with per-node voltage hints."""
        x0 = np.zeros(self.size)
        if hints:
            for node, value in hints.items():
                idx = self.node_index(node)
                if idx >= 0:
                    x0[idx] = value
        return x0
