"""DC transfer-curve (sweep) analysis.

Used to reproduce the inverter voltage-transfer characteristics of Figure 4
of the paper: the swept source is the inverter input, and the recorded node
is the inverter output, for each oxide-breakdown stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..elements import StampContext, VoltageSource
from ..errors import AnalysisError
from ..netlist import Circuit
from ..waveform import Waveform
from .mna import MnaSystem
from .solver import SolverOptions, newton_solve, robust_solve


@dataclass
class DcSweepResult:
    """Result of a DC sweep: node voltages versus the swept source value."""

    sweep_values: np.ndarray
    voltages: dict[str, np.ndarray]
    source_name: str

    def transfer_curve(self, node: str) -> Waveform:
        """The node voltage as a function of the swept value.

        Returned as a :class:`~repro.spice.waveform.Waveform` whose "time"
        axis is the swept source value, so the usual crossing/threshold
        machinery can be reused for VTC measurements.
        """
        if node not in self.voltages:
            raise AnalysisError(f"node {node!r} was not recorded in the sweep")
        return Waveform(self.sweep_values, self.voltages[node], name=node)


def dc_sweep(
    circuit: Circuit,
    source_name: str,
    values: Sequence[float] | np.ndarray,
    options: SolverOptions | None = None,
    record_nodes: Iterable[str] | None = None,
) -> DcSweepResult:
    """Sweep the DC value of a voltage source and record node voltages.

    The circuit is modified in place during the sweep and the original source
    value is restored afterwards.  Each sweep point starts from the previous
    point's solution, which keeps Newton iterations short and follows the
    curve through high-gain regions.
    """
    options = options or SolverOptions()
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        raise AnalysisError("dc_sweep requires at least one sweep value")

    source = circuit[source_name]
    if not isinstance(source, VoltageSource):
        raise AnalysisError(f"{source_name!r} is not a voltage source")
    if source.waveform is not None:
        raise AnalysisError("cannot DC-sweep a source that has a time waveform")

    system = MnaSystem(circuit)
    nodes = list(record_nodes) if record_nodes is not None else system.node_names
    recorded = {node: np.zeros(values.size) for node in nodes}

    original_dc = source.dc
    x = system.initial_guess()
    try:
        for i, value in enumerate(values):
            source.dc = float(value)
            ctx = StampContext(mode="dc", time=0.0, gmin=options.gmin)
            result = newton_solve(system, ctx, x, options)
            if not result.converged:
                result = robust_solve(system, ctx, x, options)
            x = result.x
            for node in nodes:
                recorded[node][i] = system.voltage(x, node)
    finally:
        source.dc = original_dc

    return DcSweepResult(sweep_values=values, voltages=recorded, source_name=source_name)
