"""Damped Newton-Raphson solver for the nonlinear MNA system."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..elements import StampContext, Stamper
from ..errors import ConvergenceError
from .mna import MnaSystem


@dataclass
class SolverOptions:
    """Newton iteration controls.

    Attributes
    ----------
    max_iterations:
        Iteration limit per solve.
    reltol / vntol:
        Relative and absolute voltage convergence tolerances (SPICE style):
        the solve converges when every solution entry changes by less than
        ``vntol + reltol * |x|``.
    max_step:
        Largest allowed per-iteration change of any node voltage (damping).
        Branch currents are not damped.
    gmin:
        Conductance tied from every node to ground.
    """

    max_iterations: int = 200
    reltol: float = 1e-3
    vntol: float = 1e-6
    max_step: float = 0.5
    gmin: float = 1e-12


@dataclass
class SolveResult:
    """Outcome of one Newton solve."""

    x: np.ndarray
    converged: bool
    iterations: int
    max_delta: float = 0.0


def newton_solve(
    system: MnaSystem,
    ctx: StampContext,
    x0: np.ndarray,
    options: SolverOptions | None = None,
) -> SolveResult:
    """Solve the MNA system by damped Newton iteration.

    The context's ``x`` field is updated in place with each iterate; the
    caller decides what to do with non-convergence (the function returns the
    best iterate rather than raising, so homotopy strategies can chain
    solves).
    """
    options = options or SolverOptions()
    circuit = system.circuit
    x = np.array(x0, dtype=float, copy=True)
    num_nodes = system.num_nodes
    max_delta = np.inf

    for iteration in range(1, options.max_iterations + 1):
        ctx.x = x
        stamper = Stamper(system.size)
        stamper.gmin_to_ground(num_nodes, max(options.gmin, ctx.gmin))
        for element in circuit:
            element.stamp(stamper, ctx)
        try:
            x_new = np.linalg.solve(stamper.matrix, stamper.rhs)
        except np.linalg.LinAlgError:
            x_new, *_ = np.linalg.lstsq(stamper.matrix, stamper.rhs, rcond=None)
        if not np.all(np.isfinite(x_new)):
            return SolveResult(x=x, converged=False, iterations=iteration, max_delta=np.inf)

        delta = x_new - x
        max_delta = float(np.max(np.abs(delta[:num_nodes]))) if num_nodes else 0.0

        # Damp node-voltage updates only.
        limited = delta.copy()
        if num_nodes and options.max_step > 0.0:
            np.clip(
                limited[:num_nodes], -options.max_step, options.max_step, out=limited[:num_nodes]
            )
        x = x + limited

        tolerance = options.vntol + options.reltol * np.abs(x_new)
        if np.all(np.abs(delta) <= tolerance):
            ctx.x = x
            return SolveResult(x=x, converged=True, iterations=iteration, max_delta=max_delta)

    ctx.x = x
    return SolveResult(
        x=x, converged=False, iterations=options.max_iterations, max_delta=max_delta
    )


def solve_with_gmin_stepping(
    system: MnaSystem,
    ctx: StampContext,
    x0: np.ndarray,
    options: SolverOptions | None = None,
    gmin_ladder: tuple[float, ...] = (1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-8, 1e-10, 1e-12),
) -> SolveResult:
    """Gmin-stepping homotopy: solve with large gmin, then relax it.

    Each rung of the ladder is solved starting from the previous rung's
    solution.  The final rung uses the caller's own gmin.
    """
    options = options or SolverOptions()
    x = np.array(x0, dtype=float, copy=True)
    result = SolveResult(x=x, converged=False, iterations=0)
    for gmin in gmin_ladder:
        ctx.gmin = gmin
        result = newton_solve(system, ctx, x, options)
        # Even without convergence the iterate is usually a better start for
        # the next rung -- unless it diverged to non-finite values, in which
        # case the previous rung's iterate is kept.
        if np.all(np.isfinite(result.x)):
            x = result.x
    ctx.gmin = options.gmin
    final = newton_solve(system, ctx, x, options)
    return final


def solve_with_source_stepping(
    system: MnaSystem,
    ctx: StampContext,
    x0: np.ndarray,
    options: SolverOptions | None = None,
    steps: int = 10,
) -> SolveResult:
    """Source-stepping homotopy: ramp all independent sources from 0 to 100 %."""
    options = options or SolverOptions()
    x = np.array(x0, dtype=float, copy=True)
    result = SolveResult(x=x, converged=False, iterations=0)
    for k in range(1, steps + 1):
        ctx.source_scale = k / steps
        result = newton_solve(system, ctx, x, options)
        x = result.x
        if not result.converged and k == steps:
            break
    ctx.source_scale = 1.0
    return result


def robust_solve(
    system: MnaSystem,
    ctx: StampContext,
    x0: np.ndarray,
    options: SolverOptions | None = None,
    raise_on_failure: bool = True,
) -> SolveResult:
    """Plain Newton, then gmin stepping, then source stepping.

    Raises :class:`~repro.spice.errors.ConvergenceError` when everything
    fails (unless ``raise_on_failure`` is False).
    """
    options = options or SolverOptions()
    result = newton_solve(system, ctx, x0, options)
    if result.converged:
        return result
    result = solve_with_gmin_stepping(system, ctx, x0, options)
    if result.converged:
        return result
    result = solve_with_source_stepping(system, ctx, x0, options)
    if result.converged:
        return result
    if raise_on_failure:
        raise ConvergenceError(
            f"Newton iteration failed to converge for circuit {system.circuit.title!r} "
            f"(max node-voltage change {result.max_delta:.3e} V)",
            iterations=result.iterations,
            residual=result.max_delta,
        )
    return result
