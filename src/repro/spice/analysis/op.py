"""DC operating-point analysis."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..elements import StampContext
from ..netlist import Circuit
from .mna import MnaSystem
from .solver import SolverOptions, robust_solve


@dataclass
class OperatingPoint:
    """Result of a DC operating-point solve."""

    voltages: dict[str, float]
    branch_currents: dict[str, float]
    iterations: int
    x: np.ndarray
    system: MnaSystem

    def voltage(self, node: str) -> float:
        """Voltage of *node* (0.0 for ground)."""
        if node in self.voltages:
            return self.voltages[node]
        return self.system.voltage(self.x, node)

    def current(self, source_name: str) -> float:
        """Branch current of a voltage source (positive from + to - inside)."""
        return self.branch_currents[source_name]


def operating_point(
    circuit: Circuit,
    time: float = 0.0,
    options: SolverOptions | None = None,
    initial_guess: Mapping[str, float] | None = None,
) -> OperatingPoint:
    """Solve the DC operating point of *circuit*.

    Time-dependent sources are evaluated at *time*, which lets the transient
    analysis reuse this function to establish its initial condition.
    ``initial_guess`` maps node names to starting voltages (helpful for
    bistable circuits).
    """
    options = options or SolverOptions()
    system = MnaSystem(circuit)
    ctx = StampContext(mode="dc", time=time, gmin=options.gmin)
    x0 = system.initial_guess(initial_guess)
    result = robust_solve(system, ctx, x0, options)
    return OperatingPoint(
        voltages=system.voltages(result.x),
        branch_currents=system.branch_currents(result.x),
        iterations=result.iterations,
        x=result.x,
        system=system,
    )
