"""Analyses: operating point, DC sweep and transient simulation."""

from .dc_sweep import DcSweepResult, dc_sweep
from .mna import MnaSystem
from .op import OperatingPoint, operating_point
from .solver import SolveResult, SolverOptions, newton_solve, robust_solve
from .transient import TransientOptions, TransientResult, transient

__all__ = [
    "MnaSystem",
    "SolverOptions",
    "SolveResult",
    "newton_solve",
    "robust_solve",
    "OperatingPoint",
    "operating_point",
    "DcSweepResult",
    "dc_sweep",
    "TransientOptions",
    "TransientResult",
    "transient",
]
