"""Level-1 (Shichman-Hodges) MOSFET element.

The model implements the classic square-law characteristic with channel-length
modulation and (optional) body effect.  Intrinsic and overlap capacitances are
*not* stamped by the element itself; :meth:`MosfetModel.capacitances` reports
the constant capacitances a cell builder should attach as explicit
:class:`~repro.spice.elements.capacitor.Capacitor` elements (see
:meth:`repro.spice.netlist.Circuit.add_mosfet`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .base import Element, StampContext, Stamper


@dataclass(frozen=True)
class MosfetModel:
    """Level-1 MOSFET model card.

    Attributes
    ----------
    polarity:
        ``"n"`` for NMOS, ``"p"`` for PMOS.
    vto:
        Zero-bias threshold voltage in volts (positive for NMOS, negative for
        PMOS, following SPICE convention).
    kp:
        Transconductance parameter ``mu * Cox`` in A/V^2.
    lambda_:
        Channel-length modulation coefficient in 1/V.
    gamma:
        Body-effect coefficient in sqrt(V).
    phi:
        Surface potential ``2*phi_F`` in volts.
    cox:
        Gate-oxide capacitance per unit area in F/m^2 (used only for the
        reported constant capacitances).
    overlap_cap:
        Gate-drain / gate-source overlap capacitance per metre of width (F/m).
    junction_cap:
        Source/drain junction capacitance per unit area (F/m^2); the junction
        area is approximated as ``width * 2.5 * length``.
    """

    polarity: str = "n"
    vto: float = 0.6
    kp: float = 120e-6
    lambda_: float = 0.05
    gamma: float = 0.0
    phi: float = 0.7
    cox: float = 4.6e-3
    overlap_cap: float = 3.0e-10
    junction_cap: float = 1.0e-3

    def __post_init__(self):
        if self.polarity not in ("n", "p"):
            raise ValueError(f"polarity must be 'n' or 'p', got {self.polarity!r}")
        if self.kp <= 0.0:
            raise ValueError("kp must be > 0")
        if self.phi <= 0.0:
            raise ValueError("phi must be > 0")

    @property
    def sign(self) -> float:
        """+1 for NMOS, -1 for PMOS (voltage transformation factor)."""
        return 1.0 if self.polarity == "n" else -1.0

    def capacitances(self, width: float, length: float) -> dict[str, float]:
        """Constant terminal capacitances for a device of the given geometry.

        Returns a mapping with keys ``cgs``, ``cgd``, ``cgb``, ``cdb``,
        ``csb`` in farads.  The intrinsic gate capacitance ``Cox * W * L`` is
        split 40/40/20 between source, drain and bulk, which is a reasonable
        average over the operating regions for delay estimation.
        """
        c_gate = self.cox * width * length
        c_overlap = self.overlap_cap * width
        c_junction = self.junction_cap * width * 2.5 * length
        return {
            "cgs": 0.4 * c_gate + c_overlap,
            "cgd": 0.4 * c_gate + c_overlap,
            "cgb": 0.2 * c_gate,
            "cdb": c_junction,
            "csb": c_junction,
        }


@dataclass
class MosfetOperatingPoint:
    """Small-signal snapshot of a MOSFET at one bias point."""

    ids: float = 0.0
    gm: float = 0.0
    gds: float = 0.0
    gmb: float = 0.0
    vgs: float = 0.0
    vds: float = 0.0
    vbs: float = 0.0
    region: str = "cutoff"
    reversed: bool = False


class Mosfet(Element):
    """Four-terminal Level-1 MOSFET (drain, gate, source, bulk)."""

    #: Minimum drain-source conductance stamped in every region; keeps the
    #: MNA matrix well conditioned when entire stacks are cut off.
    GDS_MIN = 1e-12

    def __init__(
        self,
        name: str,
        drain: str,
        gate: str,
        source: str,
        bulk: str,
        model: MosfetModel,
        width: float,
        length: float,
    ):
        super().__init__(name, (drain, gate, source, bulk))
        if width <= 0.0 or length <= 0.0:
            raise ValueError(f"mosfet {name}: width and length must be > 0")
        self.model = model
        self.width = float(width)
        self.length = float(length)

    @property
    def is_nonlinear(self) -> bool:
        return True

    @property
    def beta(self) -> float:
        """Device transconductance factor ``kp * W / L``."""
        return self.model.kp * self.width / self.length

    # ------------------------------------------------------------------ #
    def evaluate(self, vd: float, vg: float, vs: float, vb: float) -> MosfetOperatingPoint:
        """Evaluate drain current and small-signal conductances.

        Voltages are the actual terminal voltages.  The returned ``ids`` is
        the current flowing *into the drain terminal* (out of the source).
        """
        model = self.model
        sign = model.sign
        # Transform to NMOS-equivalent voltages.
        vds = sign * (vd - vs)
        vgs = sign * (vg - vs)
        vbs = sign * (vb - vs)

        swapped = False
        if vds < 0.0:
            # Operate with source and drain exchanged so that vds >= 0.
            swapped = True
            vds = -vds
            vgs = sign * (vg - vd)
            vbs = sign * (vb - vd)

        vto = sign * model.vto
        if model.gamma > 0.0:
            sqrt_arg = max(model.phi - vbs, 1e-6)
            vth = vto + model.gamma * (math.sqrt(sqrt_arg) - math.sqrt(model.phi))
            dvth_dvbs = -model.gamma / (2.0 * math.sqrt(sqrt_arg))
        else:
            vth = vto
            dvth_dvbs = 0.0

        beta = self.beta
        vov = vgs - vth
        lam = model.lambda_

        if vov <= 0.0:
            ids = 0.0
            gm = 0.0
            gds = self.GDS_MIN
            gmb = 0.0
            region = "cutoff"
        elif vds < vov:
            clm = 1.0 + lam * vds
            ids = beta * (vov * vds - 0.5 * vds * vds) * clm
            gm = beta * vds * clm
            gds = beta * (vov - vds) * clm + beta * (vov * vds - 0.5 * vds * vds) * lam
            gmb = gm * (-dvth_dvbs)
            region = "linear"
        else:
            clm = 1.0 + lam * vds
            ids = 0.5 * beta * vov * vov * clm
            gm = beta * vov * clm
            gds = 0.5 * beta * vov * vov * lam
            gmb = gm * (-dvth_dvbs)
            region = "saturation"

        gds = max(gds, self.GDS_MIN)

        op = MosfetOperatingPoint(
            ids=ids,
            gm=gm,
            gds=gds,
            gmb=gmb,
            vgs=vgs,
            vds=vds,
            vbs=vbs,
            region=region,
            reversed=swapped,
        )
        return op

    # ------------------------------------------------------------------ #
    def stamp(self, stamper: Stamper, ctx: StampContext) -> None:
        d, g, s, b = self._indices
        vd = self.terminal_voltage(ctx, 0)
        vg = self.terminal_voltage(ctx, 1)
        vs = self.terminal_voltage(ctx, 2)
        vb = self.terminal_voltage(ctx, 3)

        op = self.evaluate(vd, vg, vs, vb)

        # Effective drain/source assignment after a potential swap.
        if op.reversed:
            eff_d, eff_s = s, d
        else:
            eff_d, eff_s = d, s

        sign = self.model.sign
        # The device current flowing from the effective drain to the effective
        # source, expressed in *real* terminal voltages, linearizes to
        #   I = gds (vD - vS) + gm (vG - vS) + gmb (vB - vS) + sign * ieq
        # because the polarity sign cancels in every derivative term (it
        # multiplies both the current and the controlling voltage) but not in
        # the constant term.
        ieq = op.ids - op.gm * op.vgs - op.gds * op.vds - op.gmb * op.vbs

        stamper.conductance(eff_d, eff_s, op.gds)
        stamper.vccs(eff_d, eff_s, g, eff_s, op.gm)
        if op.gmb != 0.0:
            stamper.vccs(eff_d, eff_s, b, eff_s, op.gmb)
        stamper.current(eff_d, eff_s, sign * ieq)

    def drain_current(self, vd: float, vg: float, vs: float, vb: float) -> float:
        """Signed current into the drain terminal at the given voltages."""
        op = self.evaluate(vd, vg, vs, vb)
        sign = self.model.sign
        ids = op.ids
        if op.reversed:
            ids = -ids
        return sign * ids
