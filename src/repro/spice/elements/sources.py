"""Independent voltage and current sources with time-dependent waveforms."""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, Sequence

from .base import Element, StampContext, Stamper

WaveformFunction = Callable[[float], float]


@dataclass(frozen=True)
class DCWaveform:
    """Constant value waveform."""

    value: float = 0.0

    def __call__(self, time: float) -> float:
        return self.value


class PiecewiseLinearWaveform:
    """SPICE-style PWL waveform defined by (time, value) breakpoints.

    The value is held constant before the first breakpoint and after the last
    one, and linearly interpolated in between.
    """

    def __init__(self, points: Sequence[tuple[float, float]]):
        if not points:
            raise ValueError("PWL waveform needs at least one point")
        times = [float(t) for t, _ in points]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("PWL breakpoint times must be non-decreasing")
        self.times = times
        self.values = [float(v) for _, v in points]

    def __call__(self, time: float) -> float:
        times, values = self.times, self.values
        if time <= times[0]:
            return values[0]
        if time >= times[-1]:
            return values[-1]
        hi = bisect.bisect_right(times, time)
        lo = hi - 1
        t0, t1 = times[lo], times[hi]
        v0, v1 = values[lo], values[hi]
        if t1 == t0:
            return v1
        frac = (time - t0) / (t1 - t0)
        return v0 + frac * (v1 - v0)


class PulseWaveform:
    """SPICE-style PULSE waveform.

    Parameters mirror the SPICE ``PULSE`` source: initial value, pulsed value,
    delay, rise time, fall time, pulse width and period.
    """

    def __init__(
        self,
        initial: float,
        pulsed: float,
        delay: float = 0.0,
        rise: float = 1e-12,
        fall: float = 1e-12,
        width: float = 1e-9,
        period: float = 2e-9,
    ):
        if rise <= 0.0 or fall <= 0.0:
            raise ValueError("pulse rise and fall times must be > 0")
        if period <= 0.0:
            raise ValueError("pulse period must be > 0")
        self.initial = float(initial)
        self.pulsed = float(pulsed)
        self.delay = float(delay)
        self.rise = float(rise)
        self.fall = float(fall)
        self.width = float(width)
        self.period = float(period)

    def __call__(self, time: float) -> float:
        if time < self.delay:
            return self.initial
        t = (time - self.delay) % self.period
        if t < self.rise:
            frac = t / self.rise
            return self.initial + frac * (self.pulsed - self.initial)
        t -= self.rise
        if t < self.width:
            return self.pulsed
        t -= self.width
        if t < self.fall:
            frac = t / self.fall
            return self.pulsed + frac * (self.initial - self.pulsed)
        return self.initial


def two_pattern_waveform(
    first: float,
    second: float,
    switch_time: float,
    transition_time: float = 20e-12,
) -> PiecewiseLinearWaveform:
    """Waveform applying *first* until *switch_time*, then ramping to *second*.

    This is the building block for the two-pattern (launch/capture) input
    sequences used throughout the paper's experiments.
    """
    if switch_time <= 0.0:
        raise ValueError("switch_time must be > 0")
    if transition_time <= 0.0:
        raise ValueError("transition_time must be > 0")
    return PiecewiseLinearWaveform(
        [
            (0.0, first),
            (switch_time, first),
            (switch_time + transition_time, second),
        ]
    )


class VoltageSource(Element):
    """Ideal independent voltage source between ``p`` and ``n``.

    The source introduces one MNA branch-current unknown.  The value may be a
    constant (``dc``) or any callable of time (``waveform``); when both are
    given the waveform wins.
    """

    num_branches = 1

    def __init__(
        self,
        name: str,
        p: str,
        n: str,
        dc: float = 0.0,
        waveform: WaveformFunction | None = None,
    ):
        super().__init__(name, (p, n))
        self.dc = float(dc)
        self.waveform = waveform

    def value(self, time: float) -> float:
        """Source voltage at the given time."""
        if self.waveform is not None:
            return float(self.waveform(time))
        return self.dc

    def stamp(self, stamper: Stamper, ctx: StampContext) -> None:
        p, n = self._indices
        value = self.value(ctx.time) * ctx.source_scale
        stamper.voltage_source(self._branch, p, n, value)


class CurrentSource(Element):
    """Ideal independent current source pushing current from ``p`` to ``n``."""

    def __init__(
        self,
        name: str,
        p: str,
        n: str,
        dc: float = 0.0,
        waveform: WaveformFunction | None = None,
    ):
        super().__init__(name, (p, n))
        self.dc = float(dc)
        self.waveform = waveform

    def value(self, time: float) -> float:
        """Source current at the given time."""
        if self.waveform is not None:
            return float(self.waveform(time))
        return self.dc

    def stamp(self, stamper: Stamper, ctx: StampContext) -> None:
        p, n = self._indices
        stamper.current(p, n, self.value(ctx.time) * ctx.source_scale)
