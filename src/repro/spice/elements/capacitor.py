"""Linear capacitor element with backward-Euler and trapezoidal companions."""

from __future__ import annotations

from .base import Element, StampContext, Stamper


class Capacitor(Element):
    """Ideal linear capacitor between nodes ``a`` and ``b``.

    In DC analyses the capacitor is an open circuit.  In transient analyses it
    is replaced by its integration-method companion model:

    * backward Euler:   ``i_n = (C/h) (v_n - v_{n-1})``
    * trapezoidal:      ``i_n = (2C/h) (v_n - v_{n-1}) - i_{n-1}``

    The trapezoidal rule requires the element to remember its branch current
    from the previous accepted step, which is kept in ``ctx.state``.
    """

    def __init__(self, name: str, a: str, b: str, capacitance: float, ic: float | None = None):
        super().__init__(name, (a, b))
        if capacitance < 0.0:
            raise ValueError(f"capacitor {name}: capacitance must be >= 0, got {capacitance}")
        self.capacitance = float(capacitance)
        #: Optional initial voltage across the capacitor (a minus b).
        self.initial_voltage = ic

    # ------------------------------------------------------------------ #
    def _previous_voltage(self, ctx: StampContext) -> float:
        a, b = self._indices
        if ctx.x_prev is None:
            return self.initial_voltage or 0.0
        va = ctx.x_prev[a] if a >= 0 else 0.0
        vb = ctx.x_prev[b] if b >= 0 else 0.0
        return float(va - vb)

    def stamp(self, stamper: Stamper, ctx: StampContext) -> None:
        if ctx.mode != "tran" or ctx.dt <= 0.0 or self.capacitance == 0.0:
            return
        a, b = self._indices
        v_prev = self._previous_voltage(ctx)
        if ctx.method == "trapezoidal":
            geq = 2.0 * self.capacitance / ctx.dt
            i_prev = float(ctx.state.get(self.name, {}).get("current", 0.0))
            i_rhs = geq * v_prev + i_prev
        else:  # backward Euler
            geq = self.capacitance / ctx.dt
            i_rhs = geq * v_prev
        stamper.conductance(a, b, geq)
        # Element current (a -> b) is geq * v_ab - i_rhs; the constant term is
        # an injection of i_rhs into node a (see Stamper.current convention).
        stamper.current(a, b, -i_rhs)

    def update_state(self, ctx: StampContext) -> None:
        """Record the branch current of the accepted step (trapezoidal)."""
        if ctx.mode != "tran" or ctx.dt <= 0.0 or self.capacitance == 0.0:
            return
        a, b = self._indices
        va = ctx.x[a] if a >= 0 else 0.0
        vb = ctx.x[b] if b >= 0 else 0.0
        v_now = float(va - vb)
        v_prev = self._previous_voltage(ctx)
        if ctx.method == "trapezoidal":
            geq = 2.0 * self.capacitance / ctx.dt
            i_prev = float(ctx.state.get(self.name, {}).get("current", 0.0))
            i_now = geq * (v_now - v_prev) - i_prev
        else:
            i_now = self.capacitance / ctx.dt * (v_now - v_prev)
        ctx.state.setdefault(self.name, {})["current"] = i_now
