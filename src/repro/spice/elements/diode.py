"""Junction diode element (exponential Shockley model with junction limiting)."""

from __future__ import annotations

import math
from dataclasses import dataclass

from .base import Element, StampContext, Stamper

#: Thermal voltage kT/q at 300 K, in volts.
THERMAL_VOLTAGE = 0.025852


@dataclass(frozen=True)
class DiodeModel:
    """Parameters of the Shockley diode equation.

    Attributes
    ----------
    saturation_current:
        Reverse saturation current ``Is`` in amperes.
    ideality:
        Emission coefficient ``n`` (dimensionless).
    series_resistance:
        Optional ohmic series resistance folded into the companion model as a
        separate internal drop is *not* modeled; callers that need it should
        add an explicit :class:`~repro.spice.elements.resistor.Resistor`.
        Retained as metadata only.
    """

    saturation_current: float = 1e-14
    ideality: float = 1.0
    series_resistance: float = 0.0

    def __post_init__(self):
        if self.saturation_current <= 0.0:
            raise ValueError("diode saturation current must be > 0")
        if self.ideality <= 0.0:
            raise ValueError("diode ideality factor must be > 0")

    @property
    def thermal_voltage(self) -> float:
        """``n * kT/q`` used by the exponential."""
        return self.ideality * THERMAL_VOLTAGE

    @property
    def critical_voltage(self) -> float:
        """Voltage above which the exponential is linearized for stability."""
        nvt = self.thermal_voltage
        return nvt * math.log(nvt / (math.sqrt(2.0) * self.saturation_current))


class Diode(Element):
    """PN junction diode from ``anode`` to ``cathode``.

    The forward characteristic is the Shockley equation
    ``I = Is (exp(V / nVt) - 1)``.  Above the model's critical voltage the
    exponential is continued linearly (first-order Taylor expansion) so that
    Newton iterations cannot overflow; combined with the solver's step
    damping this provides robust convergence even for the extremely small
    saturation currents used by the oxide-breakdown model (1e-30 A).
    """

    def __init__(self, name: str, anode: str, cathode: str, model: DiodeModel):
        super().__init__(name, (anode, cathode))
        self.model = model

    @property
    def is_nonlinear(self) -> bool:
        return True

    # ------------------------------------------------------------------ #
    def evaluate(self, vd: float) -> tuple[float, float]:
        """Return ``(current, conductance)`` at junction voltage *vd*."""
        isat = self.model.saturation_current
        nvt = self.model.thermal_voltage
        vcrit = self.model.critical_voltage
        if vd > vcrit:
            # Linear continuation beyond the critical voltage.
            exp_crit = math.exp(vcrit / nvt)
            g_crit = isat * exp_crit / nvt
            i_crit = isat * (exp_crit - 1.0)
            current = i_crit + g_crit * (vd - vcrit)
            conductance = g_crit
        elif vd < -5.0 * nvt:
            # Deep reverse bias: constant -Is with a small slope for stability.
            current = -isat
            conductance = isat / nvt * math.exp(-5.0)
        else:
            e = math.exp(vd / nvt)
            current = isat * (e - 1.0)
            conductance = isat * e / nvt
        # Never stamp an exactly-zero conductance (keeps the matrix regular).
        conductance = max(conductance, 1e-18)
        return current, conductance

    def stamp(self, stamper: Stamper, ctx: StampContext) -> None:
        a, c = self._indices
        va = self.terminal_voltage(ctx, 0)
        vc = self.terminal_voltage(ctx, 1)
        vd = va - vc
        current, conductance = self.evaluate(vd)
        ieq = current - conductance * vd
        stamper.conductance(a, c, conductance)
        stamper.current(a, c, ieq)

    def current(self, va: float, vc: float) -> float:
        """Diode current (anode to cathode) at the given terminal voltages."""
        return self.evaluate(va - vc)[0]
