"""Circuit elements understood by the MNA engine."""

from .base import GROUND_NAMES, Element, StampContext, Stamper, is_ground
from .capacitor import Capacitor
from .diode import THERMAL_VOLTAGE, Diode, DiodeModel
from .mosfet import Mosfet, MosfetModel, MosfetOperatingPoint
from .resistor import Resistor
from .sources import (
    CurrentSource,
    DCWaveform,
    PiecewiseLinearWaveform,
    PulseWaveform,
    VoltageSource,
    two_pattern_waveform,
)

__all__ = [
    "Element",
    "StampContext",
    "Stamper",
    "GROUND_NAMES",
    "is_ground",
    "Resistor",
    "Capacitor",
    "Diode",
    "DiodeModel",
    "THERMAL_VOLTAGE",
    "Mosfet",
    "MosfetModel",
    "MosfetOperatingPoint",
    "VoltageSource",
    "CurrentSource",
    "DCWaveform",
    "PiecewiseLinearWaveform",
    "PulseWaveform",
    "two_pattern_waveform",
]
