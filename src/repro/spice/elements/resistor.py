"""Linear resistor element."""

from __future__ import annotations

from .base import Element, StampContext, Stamper


class Resistor(Element):
    """Ideal linear resistor between nodes ``a`` and ``b``.

    Parameters
    ----------
    name:
        Unique element name.
    a, b:
        Terminal node names.
    resistance:
        Resistance in ohms; must be positive.
    """

    def __init__(self, name: str, a: str, b: str, resistance: float):
        super().__init__(name, (a, b))
        if resistance <= 0.0:
            raise ValueError(f"resistor {name}: resistance must be > 0, got {resistance}")
        self.resistance = float(resistance)

    @property
    def conductance(self) -> float:
        """Conductance in siemens."""
        return 1.0 / self.resistance

    def stamp(self, stamper: Stamper, ctx: StampContext) -> None:
        a, b = self._indices
        stamper.conductance(a, b, self.conductance)

    def current(self, va: float, vb: float) -> float:
        """Current flowing from ``a`` to ``b`` for the given terminal voltages."""
        return (va - vb) / self.resistance
