"""Element base class and the stamping context shared by all analyses.

Every circuit element knows how to *stamp* its (linearized) companion model
into a modified-nodal-analysis (MNA) system.  The convention used throughout
the simulator is::

    G @ x = b

where ``x`` holds the node voltages followed by the branch currents of the
elements that require one (voltage sources).  The ground node is excluded
from the system and is represented by index ``-1``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

#: Node names treated as the reference (ground) node.
GROUND_NAMES = frozenset({"0", "gnd", "GND", "ground"})


def is_ground(node: str) -> bool:
    """Return True when *node* names the reference node."""
    return node in GROUND_NAMES


@dataclass
class StampContext:
    """Per-iteration information handed to :meth:`Element.stamp`.

    Attributes
    ----------
    mode:
        ``"dc"`` for operating-point / DC-sweep analyses (capacitors open),
        ``"tran"`` for transient analysis (capacitors use companion models).
    x:
        Current Newton iterate of the full MNA solution vector.
    time:
        Simulation time of the step being solved (seconds).
    dt:
        Time-step size (seconds); only meaningful in transient mode.
    x_prev:
        Accepted solution of the previous time point (transient only).
    method:
        Integration method, ``"backward_euler"`` or ``"trapezoidal"``.
    source_scale:
        Scale factor applied to independent sources (used by source-stepping
        homotopy during difficult operating-point solves).
    gmin:
        Minimum conductance tied from every node to ground for convergence.
    state:
        Per-element persistent state (e.g. capacitor branch currents for the
        trapezoidal rule), keyed by element name.  Owned by the analysis.
    """

    mode: str = "dc"
    x: np.ndarray = field(default_factory=lambda: np.zeros(0))
    time: float = 0.0
    dt: float = 0.0
    x_prev: Optional[np.ndarray] = None
    method: str = "backward_euler"
    source_scale: float = 1.0
    gmin: float = 1e-12
    state: dict = field(default_factory=dict)


class Element(ABC):
    """Abstract two-or-more terminal circuit element.

    Parameters
    ----------
    name:
        Unique element name within its circuit.
    nodes:
        Node names in element-specific terminal order.
    """

    #: Number of extra MNA branch-current unknowns the element introduces.
    num_branches: int = 0

    def __init__(self, name: str, nodes: Sequence[str]):
        if not name:
            raise ValueError("element name must be a non-empty string")
        self.name = str(name)
        self.nodes = tuple(str(n) for n in nodes)
        self._indices: tuple[int, ...] = ()
        self._branch: int = -1

    # ------------------------------------------------------------------ #
    # Index bookkeeping (filled in by MnaSystem).
    # ------------------------------------------------------------------ #
    def assign_indices(self, indices: Sequence[int], branch: int = -1) -> None:
        """Record the MNA row indices of this element's nodes and branch."""
        self._indices = tuple(indices)
        self._branch = branch

    @property
    def indices(self) -> tuple[int, ...]:
        """MNA indices of the element terminals (-1 means ground)."""
        return self._indices

    @property
    def branch_index(self) -> int:
        """MNA row of the first branch-current unknown (-1 if none)."""
        return self._branch

    def terminal_voltage(self, ctx: StampContext, terminal: int) -> float:
        """Voltage of the *terminal*-th node at the current iterate."""
        idx = self._indices[terminal]
        if idx < 0:
            return 0.0
        return float(ctx.x[idx])

    # ------------------------------------------------------------------ #
    # Behaviour.
    # ------------------------------------------------------------------ #
    @property
    def is_nonlinear(self) -> bool:
        """True when the element's stamp depends on the solution vector."""
        return False

    @abstractmethod
    def stamp(self, stamper: "Stamper", ctx: StampContext) -> None:
        """Add the element's companion model to the MNA system."""

    def update_state(self, ctx: StampContext) -> None:
        """Commit per-step state after a transient step is accepted."""

    def clone(self) -> "Element":
        """Return a deep, index-free copy of the element."""
        import copy

        other = copy.deepcopy(self)
        other._indices = ()
        other._branch = -1
        return other

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        nodes = ",".join(self.nodes)
        return f"<{type(self).__name__} {self.name} ({nodes})>"


class Stamper:
    """Accumulates MNA matrix and right-hand-side contributions.

    Sign conventions (all indices may be ``-1`` for ground, in which case the
    corresponding row/column is dropped):

    * :meth:`conductance` -- conductance ``g`` between nodes ``a`` and ``b``.
    * :meth:`current` -- independent current ``value`` flowing *from* node
      ``a`` *to* node ``b`` (leaves ``a``, enters ``b``).
    * :meth:`vccs` -- current ``g * (v(cp) - v(cn))`` flowing from ``p``
      to ``n``.
    * :meth:`voltage_source` -- ideal source ``v(p) - v(n) = value`` using
      branch row ``branch``.
    """

    def __init__(self, size: int):
        self.size = size
        self.matrix = np.zeros((size, size))
        self.rhs = np.zeros(size)

    # -- raw access ----------------------------------------------------- #
    def add_matrix(self, row: int, col: int, value: float) -> None:
        if row >= 0 and col >= 0:
            self.matrix[row, col] += value

    def add_rhs(self, row: int, value: float) -> None:
        if row >= 0:
            self.rhs[row] += value

    # -- stamps ---------------------------------------------------------- #
    def conductance(self, a: int, b: int, g: float) -> None:
        self.add_matrix(a, a, g)
        self.add_matrix(b, b, g)
        self.add_matrix(a, b, -g)
        self.add_matrix(b, a, -g)

    def current(self, a: int, b: int, value: float) -> None:
        self.add_rhs(a, -value)
        self.add_rhs(b, value)

    def vccs(self, p: int, n: int, cp: int, cn: int, g: float) -> None:
        self.add_matrix(p, cp, g)
        self.add_matrix(p, cn, -g)
        self.add_matrix(n, cp, -g)
        self.add_matrix(n, cn, g)

    def voltage_source(self, branch: int, p: int, n: int, value: float) -> None:
        self.add_matrix(p, branch, 1.0)
        self.add_matrix(n, branch, -1.0)
        self.add_matrix(branch, p, 1.0)
        self.add_matrix(branch, n, -1.0)
        self.add_rhs(branch, value)

    def gmin_to_ground(self, node_count: int, gmin: float) -> None:
        """Tie every node to ground with a small conductance."""
        if gmin <= 0.0:
            return
        for i in range(node_count):
            self.matrix[i, i] += gmin
