"""Waveform container and measurement primitives.

The classes here are the raw material of the paper's evaluation: transition
delays (Table 1, Figures 6, 7, 9) are 50 %-crossing differences between an
input and an output :class:`Waveform`, and the "sa-0" / "sa-1" entries of
Table 1 correspond to waveforms that never cross the measurement threshold
within the observation window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class Waveform:
    """A sampled signal ``values(time)``.

    Attributes
    ----------
    time:
        Monotonically non-decreasing sample times in seconds.
    values:
        Sample values (volts or amperes), same length as ``time``.
    name:
        Optional label used in reports.
    """

    time: np.ndarray
    values: np.ndarray
    name: str = ""

    def __post_init__(self):
        self.time = np.asarray(self.time, dtype=float)
        self.values = np.asarray(self.values, dtype=float)
        if self.time.shape != self.values.shape:
            raise ValueError("time and values must have the same shape")
        if self.time.ndim != 1:
            raise ValueError("waveforms are one-dimensional")
        if self.time.size >= 2 and np.any(np.diff(self.time) < 0):
            raise ValueError("waveform time axis must be non-decreasing")

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self.time.size)

    def at(self, t: float) -> float:
        """Linearly interpolated value at time *t*."""
        return float(np.interp(t, self.time, self.values))

    @property
    def t_start(self) -> float:
        return float(self.time[0]) if len(self) else 0.0

    @property
    def t_stop(self) -> float:
        return float(self.time[-1]) if len(self) else 0.0

    def initial_value(self) -> float:
        return float(self.values[0])

    def final_value(self) -> float:
        return float(self.values[-1])

    def minimum(self) -> float:
        return float(np.min(self.values))

    def maximum(self) -> float:
        return float(np.max(self.values))

    def slice(self, t0: float, t1: float) -> "Waveform":
        """Sub-waveform restricted to ``t0 <= t <= t1`` (endpoints interpolated)."""
        if t1 < t0:
            raise ValueError("slice requires t1 >= t0")
        mask = (self.time > t0) & (self.time < t1)
        times = np.concatenate(([t0], self.time[mask], [t1]))
        values = np.concatenate(([self.at(t0)], self.values[mask], [self.at(t1)]))
        return Waveform(times, values, name=self.name)

    # ------------------------------------------------------------------ #
    # Threshold crossings.
    # ------------------------------------------------------------------ #
    def crossings(self, threshold: float, direction: str = "any") -> list[float]:
        """Times at which the waveform crosses *threshold*.

        ``direction`` selects ``"rising"``, ``"falling"`` or ``"any"``
        crossings.  Crossing times are linearly interpolated.
        """
        if direction not in ("any", "rising", "falling"):
            raise ValueError(f"unknown direction {direction!r}")
        v = self.values - threshold
        out: list[float] = []
        for i in range(1, len(self)):
            v0, v1 = v[i - 1], v[i]
            if v0 == v1:
                continue
            if v0 < 0.0 <= v1:
                kind = "rising"
            elif v0 >= 0.0 > v1:
                kind = "falling"
            else:
                continue
            if direction != "any" and kind != direction:
                continue
            t0, t1 = self.time[i - 1], self.time[i]
            frac = -v0 / (v1 - v0)
            out.append(float(t0 + frac * (t1 - t0)))
        return out

    def first_crossing(
        self, threshold: float, direction: str = "any", after: float = 0.0
    ) -> Optional[float]:
        """First crossing of *threshold* at or after time *after*, or None."""
        for t in self.crossings(threshold, direction):
            if t >= after:
                return t
        return None

    def crosses(self, threshold: float, direction: str = "any", after: float = 0.0) -> bool:
        """True when the waveform crosses *threshold* after time *after*."""
        return self.first_crossing(threshold, direction, after) is not None

    # ------------------------------------------------------------------ #
    # Edge measurements.
    # ------------------------------------------------------------------ #
    def rise_time(self, vlow: float, vhigh: float, after: float = 0.0) -> Optional[float]:
        """10/90-style rise time between the two given absolute levels."""
        t_lo = self.first_crossing(vlow, "rising", after)
        if t_lo is None:
            return None
        t_hi = self.first_crossing(vhigh, "rising", t_lo)
        if t_hi is None:
            return None
        return t_hi - t_lo

    def fall_time(self, vhigh: float, vlow: float, after: float = 0.0) -> Optional[float]:
        """90/10-style fall time between the two given absolute levels."""
        t_hi = self.first_crossing(vhigh, "falling", after)
        if t_hi is None:
            return None
        t_lo = self.first_crossing(vlow, "falling", t_hi)
        if t_lo is None:
            return None
        return t_lo - t_hi

    def settled_value(self, window: float = 0.0) -> float:
        """Mean value over the last *window* seconds (final value if 0)."""
        if window <= 0.0 or len(self) < 2:
            return self.final_value()
        mask = self.time >= (self.t_stop - window)
        return float(np.mean(self.values[mask]))

    def shifted(self, dt: float) -> "Waveform":
        """Copy with the time axis shifted by *dt*."""
        return Waveform(self.time + dt, self.values.copy(), name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Waveform {self.name!r} n={len(self)} [{self.t_start:g},{self.t_stop:g}]s>"


def propagation_delay(
    input_waveform: Waveform,
    output_waveform: Waveform,
    threshold: float,
    input_edge: str,
    output_edge: str,
    after: float = 0.0,
) -> Optional[float]:
    """50 %-to-50 % propagation delay between an input and an output edge.

    Returns None when either waveform never crosses *threshold* in the
    requested direction after *after* -- the situation reported as a stuck
    output ("sa-0" / "sa-1") in Table 1 of the paper.
    """
    t_in = input_waveform.first_crossing(threshold, input_edge, after)
    if t_in is None:
        return None
    t_out = output_waveform.first_crossing(threshold, output_edge, t_in)
    if t_out is None:
        return None
    return t_out - t_in
