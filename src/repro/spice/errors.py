"""Exception types raised by the :mod:`repro.spice` simulator."""


class SpiceError(Exception):
    """Base class for all simulator errors."""


class CircuitError(SpiceError):
    """Raised for malformed circuits (duplicate names, bad connections)."""


class ConvergenceError(SpiceError):
    """Raised when the nonlinear solver fails to converge."""

    def __init__(self, message, iterations=None, residual=None):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class AnalysisError(SpiceError):
    """Raised for invalid analysis requests (bad sweep ranges, step sizes)."""
