"""Atomic file-write helpers shared by reports, checkpoints and caches.

Every durable artifact this package writes (campaign checkpoints, cached
results, suite reports, benchmark records) goes through these helpers: the
payload lands in a temporary file in the destination directory and is moved
into place with :func:`os.replace`, so readers -- including a resumed
campaign scanning its checkpoint directory after a SIGKILL -- only ever see
either the previous complete file or the new complete file, never a
truncated one.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any


def atomic_write_bytes(path: str | os.PathLike, payload: bytes) -> Path:
    """Write *payload* to *path* atomically (temp file + ``os.replace``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path: str | os.PathLike, text: str, encoding: str = "utf-8") -> Path:
    """Write *text* to *path* atomically."""
    return atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path: str | os.PathLike, payload: Any, indent: int | None = 2) -> Path:
    """Serialize *payload* as JSON and write it atomically (trailing newline)."""
    return atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")
