"""Measurement helpers shared by the experiments: delays and VTC metrics."""

from .delay import (
    TransitionMeasurement,
    delay_degradation,
    measure_from_result,
    measure_transition,
)
from .vtc import VtcMetrics, analyze_vtc, voh_shift, vol_shift

__all__ = [
    "TransitionMeasurement",
    "measure_transition",
    "measure_from_result",
    "delay_degradation",
    "VtcMetrics",
    "analyze_vtc",
    "vol_shift",
    "voh_shift",
]
