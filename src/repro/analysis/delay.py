"""Transition-delay extraction and stuck-output classification.

Table 1 of the paper reports, for each breakdown stage and input sequence,
either a transition delay in picoseconds or a stuck classification ("sa-1",
"sa-0") when the output never completes the expected transition.  This module
turns raw transient waveforms into exactly those entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..spice.analysis.transient import TransientResult
from ..spice.waveform import Waveform


@dataclass(frozen=True)
class TransitionMeasurement:
    """Outcome of observing one expected output transition.

    Attributes
    ----------
    delay:
        50 %-to-50 % propagation delay in seconds, or None when the output
        never crossed the threshold in the expected direction within the
        capture window.
    classification:
        ``"transition"`` when a delay was measured; ``"sa-1"`` / ``"sa-0"``
        when the output stayed (logically) high / low instead of completing
        the expected falling / rising transition; ``"no-transition-expected"``
        when the stimulus does not toggle the output.
    launch_time:
        Time of the input edge that was supposed to launch the transition
        (None when no input edge was found).
    capture_deadline:
        End of the capture window used for the stuck classification.
    output_start / output_final:
        Output voltage at the launch instant and at the capture deadline.
    """

    delay: Optional[float]
    classification: str
    launch_time: Optional[float]
    capture_deadline: float
    output_start: float
    output_final: float

    @property
    def is_stuck(self) -> bool:
        return self.classification in ("sa-0", "sa-1")

    @property
    def delay_ps(self) -> Optional[float]:
        """Delay in picoseconds (convenience for report tables)."""
        if self.delay is None:
            return None
        return self.delay * 1e12

    def table_entry(self) -> str:
        """Format the measurement the way Table 1 of the paper does."""
        if self.classification == "transition" and self.delay is not None:
            return f"{self.delay * 1e12:.0f}ps"
        if self.is_stuck:
            return self.classification
        return self.classification


def measure_transition(
    input_waveform: Waveform,
    output_waveform: Waveform,
    input_edge: str,
    output_edge: Optional[str],
    threshold: float,
    launch_after: float = 0.0,
    capture_window: Optional[float] = None,
) -> TransitionMeasurement:
    """Measure the output transition launched by an input edge.

    Parameters
    ----------
    input_waveform / output_waveform:
        Waveforms of the switching input and of the observed output.
    input_edge:
        ``"rising"`` or ``"falling"`` -- the direction of the launching edge.
    output_edge:
        Expected output edge direction, or None when the stimulus is not
        supposed to change the output.
    threshold:
        Logic threshold (typically VDD / 2).
    launch_after:
        Only consider input edges at or after this time (skips the settling
        of the first pattern).
    capture_window:
        How long after the launching edge the output is observed before a
        missing transition is classified as stuck.  Defaults to the remainder
        of the waveform.
    """
    if output_edge is None:
        final = output_waveform.final_value()
        return TransitionMeasurement(
            delay=None,
            classification="no-transition-expected",
            launch_time=None,
            capture_deadline=output_waveform.t_stop,
            output_start=output_waveform.at(launch_after),
            output_final=final,
        )

    t_launch = input_waveform.first_crossing(threshold, input_edge, after=launch_after)
    if t_launch is None:
        # The stimulus itself never switched -- report it as unobservable.
        return TransitionMeasurement(
            delay=None,
            classification="no-launch-edge",
            launch_time=None,
            capture_deadline=output_waveform.t_stop,
            output_start=output_waveform.at(launch_after),
            output_final=output_waveform.final_value(),
        )

    deadline = output_waveform.t_stop
    if capture_window is not None:
        deadline = min(deadline, t_launch + capture_window)

    t_out = output_waveform.first_crossing(threshold, output_edge, after=t_launch)
    output_start = output_waveform.at(t_launch)
    output_final = output_waveform.at(deadline)

    if t_out is not None and t_out <= deadline:
        return TransitionMeasurement(
            delay=t_out - t_launch,
            classification="transition",
            launch_time=t_launch,
            capture_deadline=deadline,
            output_start=output_start,
            output_final=output_final,
        )

    # No transition inside the capture window: the output looks stuck at its
    # pre-transition logic value.
    stuck = "sa-1" if output_edge == "falling" else "sa-0"
    return TransitionMeasurement(
        delay=None,
        classification=stuck,
        launch_time=t_launch,
        capture_deadline=deadline,
        output_start=output_start,
        output_final=output_final,
    )


def measure_from_result(
    result: TransientResult,
    input_node: str,
    output_node: str,
    input_edge: str,
    output_edge: Optional[str],
    threshold: float,
    launch_after: float = 0.0,
    capture_window: Optional[float] = None,
) -> TransitionMeasurement:
    """Convenience wrapper extracting the waveforms from a transient result."""
    return measure_transition(
        result.waveform(input_node),
        result.waveform(output_node),
        input_edge,
        output_edge,
        threshold,
        launch_after=launch_after,
        capture_window=capture_window,
    )


def delay_degradation(nominal: TransitionMeasurement, faulty: TransitionMeasurement) -> Optional[float]:
    """Ratio of faulty to nominal delay (None when either is not a transition)."""
    if nominal.delay is None or faulty.delay is None or nominal.delay <= 0.0:
        return None
    return faulty.delay / nominal.delay
