"""Voltage-transfer-characteristic (VTC) measurements.

Figure 4 of the paper shows the inverter input/output characteristic for the
fault-free case and for soft, medium and hard NMOS breakdown: the visible
effect is an upward shift of the output-low level (VOL).  The helpers here
extract VOL, VOH, the switching threshold and the noise margins from a DC
sweep so that the experiment can report those shifts numerically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..spice.waveform import Waveform


@dataclass(frozen=True)
class VtcMetrics:
    """Summary metrics of an inverter voltage transfer curve.

    Attributes
    ----------
    vol:
        Output voltage with the input at the highest swept value.
    voh:
        Output voltage with the input at the lowest swept value.
    switching_threshold:
        Input voltage at which the output crosses VDD / 2 (None when the
        curve never crosses it, e.g. for a hard breakdown).
    vil / vih:
        Unity-gain input voltages (slope = -1) bounding the transition
        region; None when the curve has no such point.
    noise_margin_low / noise_margin_high:
        ``NML = VIL - VOL`` and ``NMH = VOH - VIH`` (None when undefined).
    """

    vol: float
    voh: float
    switching_threshold: float | None
    vil: float | None
    vih: float | None
    noise_margin_low: float | None
    noise_margin_high: float | None


def analyze_vtc(curve: Waveform, vdd: float) -> VtcMetrics:
    """Compute :class:`VtcMetrics` from a transfer curve.

    The curve's "time" axis is the swept input voltage (as produced by
    :meth:`repro.spice.analysis.dc_sweep.DcSweepResult.transfer_curve`).
    """
    vin = np.asarray(curve.time)
    vout = np.asarray(curve.values)
    if vin.size < 3:
        raise ValueError("VTC analysis needs at least 3 sweep points")

    voh = float(vout[0])
    vol = float(vout[-1])

    threshold = curve.first_crossing(vdd / 2.0, direction="falling")
    if threshold is None:
        threshold = curve.first_crossing(vdd / 2.0, direction="any")

    # Unity-gain points: where dVout/dVin crosses -1.
    gain = np.gradient(vout, vin)
    vil = _first_gain_crossing(vin, gain, direction="entering")
    vih = _first_gain_crossing(vin, gain, direction="leaving")

    nml = (vil - vol) if vil is not None else None
    nmh = (voh - vih) if vih is not None else None

    return VtcMetrics(
        vol=vol,
        voh=voh,
        switching_threshold=threshold,
        vil=vil,
        vih=vih,
        noise_margin_low=nml,
        noise_margin_high=nmh,
    )


def _first_gain_crossing(vin: np.ndarray, gain: np.ndarray, direction: str) -> float | None:
    """Input voltage where the VTC gain first crosses -1.

    ``direction="entering"`` finds the crossing into the high-gain region
    (gain dropping below -1, defines VIL); ``direction="leaving"`` finds the
    crossing back out of it (defines VIH).
    """
    below = gain < -1.0
    if direction == "entering":
        for i in range(1, len(vin)):
            if below[i] and not below[i - 1]:
                return float(vin[i - 1])
        return None
    for i in range(len(vin) - 1, 0, -1):
        if below[i - 1] and not below[i]:
            return float(vin[i])
    return None


def vol_shift(nominal: VtcMetrics, degraded: VtcMetrics) -> float:
    """Upward shift of VOL caused by a defect (positive = degradation)."""
    return degraded.vol - nominal.vol


def voh_shift(nominal: VtcMetrics, degraded: VtcMetrics) -> float:
    """Downward shift of VOH caused by a defect (positive = degradation)."""
    return nominal.voh - degraded.voh
