"""Experiment E9: electromigration versus OBD test requirements (Section 5).

The paper warns that test inputs chosen to exercise intra-gate EM defects do
not necessarily detect OBD defects, "especially for complex gates".  The
experiment quantifies this per gate type: it derives the minimal EM-oriented
test set, the minimal OBD test set, and checks whether the former covers the
OBD faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.detection import EmObdComparison, compare_em_and_obd
from ..logic.gates import GateType

DEFAULT_GATES = (GateType.NAND2, GateType.NOR2, GateType.NAND3, GateType.AOI21, GateType.OAI21)


@dataclass
class EmComparisonResult:
    """Per-gate comparison table."""

    comparisons: dict[GateType, EmObdComparison]

    def rows(self) -> list[str]:
        lines = ["=== Section 5 reproduction: EM-oriented vs OBD-oriented test sets ==="]
        for gate_type, comparison in self.comparisons.items():
            lines.append(comparison.describe())
        return lines

    def gates_where_em_misses_obd(self) -> list[GateType]:
        return [g for g, c in self.comparisons.items() if not c.em_set_covers_obd]


def run_em_comparison(gates: Sequence[GateType | str] = DEFAULT_GATES) -> EmComparisonResult:
    """Run the EM-vs-OBD comparison over the supported gate types."""
    comparisons = {GateType(g): compare_em_and_obd(g) for g in gates}
    return EmComparisonResult(comparisons=comparisons)
