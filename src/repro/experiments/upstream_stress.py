"""Experiment E12: hard breakdown endangers the upstream driver (Figure 2).

The paper's motivation for catching OBD *before* hard breakdown: once the
gate oxide is shorted, the upstream driver sources a large static current
into the breakdown path, potentially damaging the driver and the supply.
The experiment measures the DC current delivered by the driving gate of the
Figure-5 harness (with the defective transistor's gate held at logic 1) for
every breakdown stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..cells.fixtures import build_nand_harness
from ..cells.technology import Technology, default_technology
from ..core.breakdown import TABLE1_NMOS_STAGES, BreakdownStage
from ..core.defect import OBDDefect
from ..core.injection import inject_into_harness
from ..spice.analysis.op import operating_point


@dataclass
class UpstreamStressResult:
    """Supply current and degraded input level per breakdown stage."""

    tech_name: str
    site: str
    #: Static supply current of the whole harness per stage, in amperes.
    supply_current: dict[BreakdownStage, float]
    #: Voltage at the defective transistor's gate node per stage.
    input_level: dict[BreakdownStage, float]

    def rows(self) -> list[str]:
        lines = ["=== Figure 2 motivation: static stress on the upstream driver ==="]
        lines.append(f"{'stage':<12} {'supply current':>16} {'defective gate node':>20}")
        for stage in self.supply_current:
            lines.append(
                f"{stage.value:<12} {self.supply_current[stage] * 1e3:>13.3f} mA "
                f"{self.input_level[stage]:>17.3f} V"
            )
        return lines

    def current_grows_monotonically(self) -> bool:
        values = [self.supply_current[s] for s in sorted(self.supply_current, key=lambda s: s.order)]
        return all(b >= a - 1e-9 for a, b in zip(values, values[1:]))


def run_upstream_stress(
    tech: Technology | None = None,
    stages: Sequence[BreakdownStage] = TABLE1_NMOS_STAGES,
    site: str = "NA",
) -> UpstreamStressResult:
    """DC supply current of the harness with the defective gate input held high."""
    tech = tech or default_technology()
    supply: dict[BreakdownStage, float] = {}
    level: dict[BreakdownStage, float] = {}

    for stage in stages:
        # Both NAND inputs at logic 1 (static worst case for an NMOS defect).
        harness = build_nand_harness(tech, ((1, 1), (1, 1)))
        if stage != BreakdownStage.FAULT_FREE:
            inject_into_harness(harness, OBDDefect(site=site, stage=stage))
        op = operating_point(harness.circuit)
        # The vdd source current flows from + to - inside the source, i.e. a
        # negative branch current corresponds to current delivered to the
        # circuit; report its magnitude.
        supply[stage] = abs(op.current("vdd"))
        pin = site[1:]
        level[stage] = op.voltage(harness.input_nodes[pin])

    return UpstreamStressResult(
        tech_name=tech.name,
        site=site,
        supply_current=supply,
        input_level=level,
    )
