"""Experiment E3: Figure 6 -- progression of NMOS OBD in the NAND harness.

One falling-output sequence, the NA defect, all breakdown stages: the output
waveform degrades from the nominal fall to a slow fall and finally to a
stuck-high response.  The experiment returns both the waveforms (the figure)
and the extracted delays (the quantitative series).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..analysis.delay import TransitionMeasurement
from ..cells.characterize import characterize_harness
from ..cells.fixtures import build_nand_harness
from ..cells.technology import Technology, default_technology
from ..core.breakdown import TABLE1_NMOS_STAGES, BreakdownStage
from ..core.defect import OBDDefect
from ..core.injection import harness_preparer
from ..spice.waveform import Waveform
from .common import DEFAULT_CAPTURE_WINDOW, DEFAULT_DT

#: The input sequence used for the Figure-6 style progression plot.
FIGURE6_SEQUENCE = ((0, 1), (1, 1))


@dataclass
class Fig6Result:
    """Waveforms and measurements per stage for the NA defect."""

    tech_name: str
    site: str
    sequence: tuple
    output_waveforms: dict[BreakdownStage, Waveform]
    input_waveform: Waveform
    measurements: dict[BreakdownStage, TransitionMeasurement]

    def delays_ps(self) -> dict[BreakdownStage, Optional[float]]:
        return {
            stage: (m.delay * 1e12 if m.delay is not None else None)
            for stage, m in self.measurements.items()
        }

    def rows(self) -> list[str]:
        lines = [f"=== Figure 6 reproduction: NMOS OBD progression ({self.site}) ==="]
        for stage, measurement in self.measurements.items():
            lines.append(f"{stage.value:<12} {measurement.table_entry():>9}")
        return lines

    def monotonic_degradation(self) -> bool:
        """Delays grow (or become stuck) with every progression step."""
        previous = 0.0
        for stage, measurement in sorted(self.measurements.items(), key=lambda kv: kv[0].order):
            current = measurement.delay if measurement.delay is not None else float("inf")
            if current < previous - 1e-12:
                return False
            previous = current
        return True


def run_fig6(
    tech: Technology | None = None,
    stages: Sequence[BreakdownStage] = TABLE1_NMOS_STAGES,
    site: str = "NA",
    sequence=FIGURE6_SEQUENCE,
    dt: float = DEFAULT_DT,
    capture_window: float = DEFAULT_CAPTURE_WINDOW,
) -> Fig6Result:
    """Simulate the NAND harness for each stage and collect output waveforms."""
    tech = tech or default_technology()
    waveforms: dict[BreakdownStage, Waveform] = {}
    measurements: dict[BreakdownStage, TransitionMeasurement] = {}
    input_waveform: Waveform | None = None

    for stage in stages:
        harness = build_nand_harness(tech, sequence)
        defect = None if stage == BreakdownStage.FAULT_FREE else OBDDefect(site=site, stage=stage)
        run = characterize_harness(
            harness,
            prepare=harness_preparer(defect),
            dt=dt,
            capture_window=capture_window,
        )
        waveforms[stage] = run.result.waveform(harness.output_node)
        measurements[stage] = run.measurement
        if input_waveform is None:
            switching_pin = harness.switching_pins[0]
            input_waveform = run.result.waveform(harness.input_nodes[switching_pin])

    return Fig6Result(
        tech_name=tech.name,
        site=site,
        sequence=sequence,
        output_waveforms=waveforms,
        input_waveform=input_waveform,
        measurements=measurements,
    )
