"""Reproduction experiments, one module per paper table / figure.

See DESIGN.md for the experiment index (E1..E12) and EXPERIMENTS.md for the
recorded paper-versus-measured comparison.  The ``benchmarks/`` tree drives
these modules and prints their report rows.
"""

from .adder_stats import AdderStatsResult, run_adder_stats
from .atpg_complexity import AtpgComplexityResult, run_atpg_complexity
from .common import GateDelayEntry, measure_gate_obd_delay
from .em_comparison import EmComparisonResult, run_em_comparison
from .fig4_vtc import FIGURE4_STAGES, Fig4Result, run_fig4
from .fig6_nmos_nand import Fig6Result, run_fig6
from .fig7_pmos_nand import Fig7Result, run_fig7
from .fig9_full_adder import Fig9Result, run_fig9
from .gate_conditions import GateConditionsResult, run_nand_conditions, run_nor_conditions
from .progression_window import ProgressionWindowResult, run_progression_window
from .table1 import (
    NMOS_SEQUENCES,
    PAPER_TABLE1_NMOS,
    PAPER_TABLE1_PMOS,
    PMOS_SEQUENCES,
    Table1Result,
    run_table1,
)
from .upstream_stress import UpstreamStressResult, run_upstream_stress

__all__ = [
    "GateDelayEntry",
    "measure_gate_obd_delay",
    "Table1Result",
    "run_table1",
    "NMOS_SEQUENCES",
    "PMOS_SEQUENCES",
    "PAPER_TABLE1_NMOS",
    "PAPER_TABLE1_PMOS",
    "Fig4Result",
    "FIGURE4_STAGES",
    "run_fig4",
    "Fig6Result",
    "run_fig6",
    "Fig7Result",
    "run_fig7",
    "Fig9Result",
    "run_fig9",
    "GateConditionsResult",
    "run_nand_conditions",
    "run_nor_conditions",
    "AdderStatsResult",
    "run_adder_stats",
    "EmComparisonResult",
    "run_em_comparison",
    "ProgressionWindowResult",
    "run_progression_window",
    "AtpgComplexityResult",
    "run_atpg_complexity",
    "UpstreamStressResult",
    "run_upstream_stress",
]
