"""Experiment E7: full-adder OBD statistics (Section 4.3).

The paper reports, for its 14-NAND / 11-inverter sum circuit:

* 56 distinct OBD defect locations in the 14 NAND gates,
* 32 of them testable (the rest untestable due to intentional redundancy),
* 18 of the 72 possible input transitions sufficient to detect all testable
  faults.

The reproduction runs the OBD fault universe, the OBD ATPG, exhaustive
two-pattern fault simulation and greedy compaction on the reconstructed
circuit and reports the same quantities (the reconstruction carries less
redundancy than the original netlist, so the absolute testable count is
higher; the shape -- a subset untestable, a small compacted test set -- is
what is compared).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..atpg.compaction import greedy_compaction
from ..atpg.fault_sim import simulate_obd
from ..atpg.obd_atpg import ObdAtpgSummary, run_obd_atpg
from ..atpg.random_tpg import exhaustive_pairs
from ..faults.obd import obd_fault_universe
from ..logic.circuits import full_adder_sum
from ..logic.gates import GateType
from ..logic.netlist import LogicCircuit

#: Paper-reported values for the original netlist.
PAPER_NAND_GATES = 14
PAPER_SITES = 56
PAPER_TESTABLE = 32
PAPER_COMPACT_TESTS = 18
PAPER_TRANSITIONS = 72


@dataclass
class AdderStatsResult:
    """Measured statistics for the reconstructed full-adder sum circuit."""

    circuit_summary: str
    nand_gates: int
    total_sites: int
    atpg: ObdAtpgSummary
    exhaustive_detected: int
    compacted_test_count: int
    total_transitions: int

    @property
    def testable(self) -> int:
        return len(self.atpg.testable)

    @property
    def untestable(self) -> int:
        return len(self.atpg.untestable)

    def rows(self) -> list[str]:
        return [
            "=== Section 4.3 reproduction: full-adder OBD statistics ===",
            self.circuit_summary,
            f"NAND gates:                 measured {self.nand_gates:>4}   paper {PAPER_NAND_GATES}",
            f"OBD sites in NAND gates:    measured {self.total_sites:>4}   paper {PAPER_SITES}",
            f"testable OBD faults:        measured {self.testable:>4}   paper {PAPER_TESTABLE}",
            f"untestable (redundancy):    measured {self.untestable:>4}   paper {PAPER_SITES - PAPER_TESTABLE}",
            f"input transitions examined: measured {self.total_transitions:>4}   paper {PAPER_TRANSITIONS}",
            f"compacted detecting subset: measured {self.compacted_test_count:>4}   paper {PAPER_COMPACT_TESTS}",
        ]


def run_adder_stats(circuit: LogicCircuit | None = None) -> AdderStatsResult:
    """Compute the Section-4.3 statistics on the (reconstructed) sum circuit."""
    logic = circuit or full_adder_sum()
    faults = obd_fault_universe(logic, gate_types=[GateType.NAND2])
    atpg = run_obd_atpg(logic, faults)

    pairs = exhaustive_pairs(logic)
    report = simulate_obd(logic, pairs, faults)
    compaction = greedy_compaction(report)

    return AdderStatsResult(
        circuit_summary=logic.summary(),
        nand_gates=logic.gate_count(GateType.NAND2),
        total_sites=len(faults),
        atpg=atpg,
        exhaustive_detected=len(report.detected_faults),
        compacted_test_count=compaction.size,
        total_transitions=len(pairs),
    )
