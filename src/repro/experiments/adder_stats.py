"""Experiment E7: full-adder OBD statistics (Section 4.3).

The paper reports, for its 14-NAND / 11-inverter sum circuit:

* 56 distinct OBD defect locations in the 14 NAND gates,
* 32 of them testable (the rest untestable due to intentional redundancy),
* 18 of the 72 possible input transitions sufficient to detect all testable
  faults.

The reproduction runs one declarative :class:`~repro.campaign.Campaign` on
the reconstructed circuit: exhaustive two-pattern fault simulation as the
pattern phase, an OBD ATPG top-up that only attempts the faults the
exhaustive phase left undetected (cross-phase fault dropping -- those
attempts prove the redundancy-induced untestability), and greedy compaction
of the detecting transitions.  The reconstruction carries less redundancy
than the original netlist, so the absolute testable count is higher; the
shape -- a subset untestable, a small compacted test set -- is what is
compared.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..campaign import Campaign, CampaignResult, CampaignSpec
from ..logic.circuits import full_adder_sum
from ..logic.gates import GateType
from ..logic.netlist import LogicCircuit

#: Paper-reported values for the original netlist.
PAPER_NAND_GATES = 14
PAPER_SITES = 56
PAPER_TESTABLE = 32
PAPER_COMPACT_TESTS = 18
PAPER_TRANSITIONS = 72


@dataclass
class AdderStatsResult:
    """Measured statistics for the reconstructed full-adder sum circuit."""

    circuit_summary: str
    nand_gates: int
    campaign: CampaignResult

    @property
    def total_sites(self) -> int:
        return len(self.campaign.faults)

    @property
    def testable(self) -> int:
        """Faults detected by the exhaustive transitions or an ATPG test."""
        return len(self.campaign.detected_faults)

    @property
    def untestable(self) -> int:
        """Faults the ATPG top-up proved untestable (circuit redundancy)."""
        return len(self.campaign.atpg_phase.untestable)

    @property
    def atpg_skipped(self) -> int:
        """Faults never handed to PODEM: the pattern phase already detected them."""
        return len(self.campaign.atpg_phase.skipped)

    @property
    def exhaustive_detected(self) -> int:
        return self.campaign.pattern_phase.coverage.detected

    @property
    def compacted_test_count(self) -> int:
        return self.campaign.compaction.size

    @property
    def total_transitions(self) -> int:
        return len(self.campaign.pattern_phase.tests)

    def rows(self) -> list[str]:
        return [
            "=== Section 4.3 reproduction: full-adder OBD statistics ===",
            self.circuit_summary,
            f"NAND gates:                 measured {self.nand_gates:>4}   paper {PAPER_NAND_GATES}",
            f"OBD sites in NAND gates:    measured {self.total_sites:>4}   paper {PAPER_SITES}",
            f"testable OBD faults:        measured {self.testable:>4}   paper {PAPER_TESTABLE}",
            f"untestable (redundancy):    measured {self.untestable:>4}   paper {PAPER_SITES - PAPER_TESTABLE}",
            f"input transitions examined: measured {self.total_transitions:>4}   paper {PAPER_TRANSITIONS}",
            f"compacted detecting subset: measured {self.compacted_test_count:>4}   paper {PAPER_COMPACT_TESTS}",
            f"ATPG attempts after fault dropping: {self.campaign.atpg_phase.attempted} "
            f"({self.atpg_skipped} skipped as already detected)",
        ]


def run_adder_stats(circuit: LogicCircuit | None = None) -> AdderStatsResult:
    """Compute the Section-4.3 statistics on the (reconstructed) sum circuit."""
    logic = circuit or full_adder_sum()
    spec = CampaignSpec(
        model="obd",
        universe_options={"gate_types": [GateType.NAND2]},
        pattern_source="exhaustive",
        run_atpg=True,
        compact=True,
        drop_detected=False,
    )
    return AdderStatsResult(
        circuit_summary=logic.summary(),
        nand_gates=logic.gate_count(GateType.NAND2),
        campaign=Campaign(spec).run(logic),
    )
