"""Experiments E6 and E8: necessary-and-sufficient gate test sets.

E6 reproduces the Section-4.1 result for the NAND gate; E8 reproduces the
Section-5 generalization for the NOR gate.  Both compare the derived
conditions with the sets stated in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.detection import (
    NAND2_PAPER_FALLING_ALTERNATIVES,
    NAND2_PAPER_PA_SEQUENCE,
    NAND2_PAPER_PB_SEQUENCE,
    NOR2_PAPER_NA_SEQUENCE,
    NOR2_PAPER_NB_SEQUENCE,
    NOR2_PAPER_RISING_ALTERNATIVES,
    GateTestSet,
    analyze_gate,
    paper_nand_test_set,
    paper_nor_test_set,
)


@dataclass
class GateConditionsResult:
    """Derived versus paper-stated conditions for one gate type."""

    analysis: GateTestSet
    paper_set_covers_all: bool
    matches_paper_structure: bool

    def rows(self) -> list[str]:
        lines = [self.analysis.describe()]
        lines.append(f"paper's stated test set covers every defect: {self.paper_set_covers_all}")
        lines.append(f"derived per-site conditions match the paper: {self.matches_paper_structure}")
        return lines


def run_nand_conditions() -> GateConditionsResult:
    """Derive and check the NAND conditions of Section 4.1."""
    analysis = analyze_gate("NAND2", mode="obd")
    expected_falling = set(NAND2_PAPER_FALLING_ALTERNATIVES)
    matches = (
        set(analysis.site_conditions["NA"]) == expected_falling
        and set(analysis.site_conditions["NB"]) == expected_falling
        and set(analysis.site_conditions["PA"]) == {NAND2_PAPER_PA_SEQUENCE}
        and set(analysis.site_conditions["PB"]) == {NAND2_PAPER_PB_SEQUENCE}
    )
    return GateConditionsResult(
        analysis=analysis,
        paper_set_covers_all=analysis.covers_all(paper_nand_test_set()),
        matches_paper_structure=matches,
    )


def run_nor_conditions() -> GateConditionsResult:
    """Derive and check the NOR conditions of Section 5."""
    analysis = analyze_gate("NOR2", mode="obd")
    expected_rising = set(NOR2_PAPER_RISING_ALTERNATIVES)
    matches = (
        set(analysis.site_conditions["PA"]) == expected_rising
        and set(analysis.site_conditions["PB"]) == expected_rising
        and set(analysis.site_conditions["NA"]) == {NOR2_PAPER_NA_SEQUENCE}
        and set(analysis.site_conditions["NB"]) == {NOR2_PAPER_NB_SEQUENCE}
    )
    return GateConditionsResult(
        analysis=analysis,
        paper_set_covers_all=analysis.covers_all(paper_nor_test_set()),
        matches_paper_structure=matches,
    )
