"""Shared helpers for the reproduction experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis.delay import TransitionMeasurement
from ..cells.characterize import characterize_harness
from ..cells.fixtures import TwoPatternSequence, build_gate_harness
from ..cells.technology import Technology, default_technology
from ..core.breakdown import BreakdownStage
from ..core.defect import OBDDefect
from ..core.injection import harness_preparer
from ..logic.gates import GateType

#: Default transient time step for the experiment simulations.  4 ps keeps a
#: full Table-1 sweep under a couple of minutes while resolving ~60 ps gate
#: delays to a few percent.
DEFAULT_DT = 4e-12

#: Capture window after the launching edge; transitions that have not
#: completed by then are classified as stuck ("sa-0" / "sa-1"), mirroring the
#: observation windows of Figures 6 and 7.
DEFAULT_CAPTURE_WINDOW = 1.5e-9


@dataclass(frozen=True)
class GateDelayEntry:
    """One measured Table-1 style entry."""

    sequence: TwoPatternSequence
    site: Optional[str]
    stage: Optional[BreakdownStage]
    measurement: TransitionMeasurement

    @property
    def label(self) -> str:
        site = self.site or "fault-free"
        stage = self.stage.value if self.stage else "none"
        return f"{site}@{stage}"

    @property
    def table_entry(self) -> str:
        return self.measurement.table_entry()


def measure_gate_obd_delay(
    gate_type: GateType | str,
    sequence: TwoPatternSequence,
    site: Optional[str] = None,
    stage: Optional[BreakdownStage] = None,
    tech: Technology | None = None,
    dt: float = DEFAULT_DT,
    capture_window: float = DEFAULT_CAPTURE_WINDOW,
    observation_window: float = 2.5e-9,
) -> GateDelayEntry:
    """Measure one entry of a Table-1 style characterization.

    Builds the Figure-5 harness for *gate_type*, optionally injects the OBD
    defect at *site* with the parameters of *stage*, simulates the two-pattern
    sequence and measures the output transition.
    """
    tech = tech or default_technology()
    harness = build_gate_harness(
        tech,
        gate_type,
        sequence,
        observation_window=observation_window,
    )
    defect = None
    if site is not None:
        defect = OBDDefect(site=site, stage=stage or BreakdownStage.MBD1)
    run = characterize_harness(
        harness,
        prepare=harness_preparer(defect),
        dt=dt,
        capture_window=capture_window,
    )
    return GateDelayEntry(
        sequence=sequence,
        site=site,
        stage=stage,
        measurement=run.measurement,
    )


def picoseconds(delay: Optional[float]) -> Optional[float]:
    """Convert seconds to picoseconds (None-preserving)."""
    return None if delay is None else delay * 1e12
