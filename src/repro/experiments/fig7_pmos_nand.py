"""Experiment E4: Figure 7 -- input-specific detection of PMOS OBD defects.

Two rising-output sequences, two PMOS defect sites: the defect in the
transistor driven by input A only slows the output when A is the switching
input (and B is held at 1), and symmetrically for B.  The result is the 2x2
delay matrix whose diagonal is degraded and whose off-diagonal equals the
fault-free delay -- the structural reason OBD testing is input specific.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis.delay import TransitionMeasurement
from ..cells.technology import Technology, default_technology
from ..core.breakdown import BreakdownStage
from ..core.excitation import format_sequence
from .common import DEFAULT_CAPTURE_WINDOW, DEFAULT_DT, measure_gate_obd_delay

#: (11,01): input A falls while B stays 1 -> PA is the sole charger.
SEQUENCE_A_SWITCHES = ((1, 1), (0, 1))
#: (11,10): input B falls while A stays 1 -> PB is the sole charger.
SEQUENCE_B_SWITCHES = ((1, 1), (1, 0))


@dataclass
class Fig7Result:
    """Delay matrix: defect site x input sequence."""

    tech_name: str
    stage: BreakdownStage
    fault_free: dict[str, TransitionMeasurement]
    matrix: dict[str, dict[str, TransitionMeasurement]]

    def rows(self) -> list[str]:
        lines = [f"=== Figure 7 reproduction: PMOS OBD input specificity ({self.stage.value}) ==="]
        seq_a = format_sequence(SEQUENCE_A_SWITCHES)
        seq_b = format_sequence(SEQUENCE_B_SWITCHES)
        lines.append(f"{'site':<6} {seq_a:>12} {seq_b:>12}")
        lines.append(
            f"{'none':<6} {self.fault_free[seq_a].table_entry():>12} "
            f"{self.fault_free[seq_b].table_entry():>12}"
        )
        for site, per_seq in self.matrix.items():
            lines.append(
                f"{site:<6} {per_seq[seq_a].table_entry():>12} {per_seq[seq_b].table_entry():>12}"
            )
        return lines

    def excited_delay(self, site: str) -> Optional[float]:
        """Delay of the defective gate under its exciting sequence."""
        key = format_sequence(SEQUENCE_A_SWITCHES if site == "PA" else SEQUENCE_B_SWITCHES)
        return self.matrix[site][key].delay

    def unexcited_delay(self, site: str) -> Optional[float]:
        """Delay of the defective gate under the non-exciting sequence."""
        key = format_sequence(SEQUENCE_B_SWITCHES if site == "PA" else SEQUENCE_A_SWITCHES)
        return self.matrix[site][key].delay

    def input_specific(self, tolerance: float = 0.15) -> bool:
        """True when only the exciting sequence shows significant degradation."""
        for site in self.matrix:
            excited = self.excited_delay(site)
            unexcited = self.unexcited_delay(site)
            seq_key = format_sequence(
                SEQUENCE_B_SWITCHES if site == "PA" else SEQUENCE_A_SWITCHES
            )
            nominal = self.fault_free[seq_key].delay
            if excited is None:
                # Stuck output under excitation still counts as degradation.
                excited_degraded = True
            else:
                excited_degraded = excited > (nominal or 0.0) * (1.0 + tolerance)
            unexcited_close = (
                unexcited is not None
                and nominal is not None
                and abs(unexcited - nominal) <= tolerance * nominal
            )
            if not (excited_degraded and unexcited_close):
                return False
        return True


def run_fig7(
    tech: Technology | None = None,
    stage: BreakdownStage = BreakdownStage.MBD2,
    dt: float = DEFAULT_DT,
    capture_window: float = DEFAULT_CAPTURE_WINDOW,
) -> Fig7Result:
    """Measure the 2x2 (site x sequence) PMOS OBD delay matrix."""
    tech = tech or default_technology()
    sequences = (SEQUENCE_A_SWITCHES, SEQUENCE_B_SWITCHES)

    fault_free = {}
    for seq in sequences:
        entry = measure_gate_obd_delay("NAND2", seq, None, None, tech=tech, dt=dt,
                                       capture_window=capture_window)
        fault_free[format_sequence(seq)] = entry.measurement

    matrix: dict[str, dict[str, TransitionMeasurement]] = {}
    for site in ("PA", "PB"):
        per_seq = {}
        for seq in sequences:
            entry = measure_gate_obd_delay("NAND2", seq, site, stage, tech=tech, dt=dt,
                                           capture_window=capture_window)
            per_seq[format_sequence(seq)] = entry.measurement
        matrix[site] = per_seq

    return Fig7Result(tech_name=tech.name, stage=stage, fault_free=fault_free, matrix=matrix)
