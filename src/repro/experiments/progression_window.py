"""Experiment E10: progression timeline and detection window (Sections 3.1, 4.2).

Combines the exponential progression model (27 h SBD-to-HBD, per the Linder
data quoted by the paper) with a per-stage delay characterization to compute
when the defect becomes observable and how much time remains before hard
breakdown, as a function of the capture slack of the detection mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.breakdown import BreakdownStage
from ..core.progression import ProgressionModel
from ..testing.scheduler import TestSchedule, schedule_for_window
from ..testing.window import DetectionWindow, StageDelay, window_versus_slack

#: Stage delays (seconds) used when the caller does not supply a measured
#: characterization.  These are the measured NA-column values of the
#: reproduced Table 1 with the default technology (see EXPERIMENTS.md); the
#: experiment accepts a freshly measured set for full fidelity.
DEFAULT_STAGE_DELAYS = (
    StageDelay(BreakdownStage.FAULT_FREE, 75e-12),
    StageDelay(BreakdownStage.SBD, 95e-12),
    StageDelay(BreakdownStage.MBD1, 190e-12),
    StageDelay(BreakdownStage.MBD2, 280e-12),
    StageDelay(BreakdownStage.MBD3, 350e-12),
    StageDelay(BreakdownStage.HBD, None, stuck=True),
)

DEFAULT_SLACKS = (25e-12, 50e-12, 100e-12, 200e-12, 400e-12)


@dataclass
class ProgressionWindowResult:
    """Windows and schedules over a sweep of capture slacks."""

    model: ProgressionModel
    nominal_delay: float
    windows: dict[float, DetectionWindow]
    schedules: dict[float, TestSchedule]

    def rows(self) -> list[str]:
        lines = ["=== Section 4.2 reproduction: detection window vs capture slack ==="]
        lines.append(
            f"progression: SBD->HBD in {self.model.time_to_hbd / 3600.0:.1f} h "
            f"(exponential leakage growth)"
        )
        for slack, window in self.windows.items():
            schedule = self.schedules[slack]
            lines.append(
                f"slack {slack * 1e12:6.0f} ps: {window.describe()}; {schedule.describe()}"
            )
        return lines

    def window_shrinks_with_slack(self) -> bool:
        """Larger capture slack never enlarges the detection window."""
        ordered = sorted(self.windows.items())
        durations = [w.duration for _, w in ordered]
        return all(b <= a + 1e-9 for a, b in zip(durations, durations[1:]))


def run_progression_window(
    stage_delays: Sequence[StageDelay] = DEFAULT_STAGE_DELAYS,
    nominal_delay: Optional[float] = None,
    slacks: Sequence[float] = DEFAULT_SLACKS,
    polarity: str = "n",
    test_duration: float = 1e-6,
) -> ProgressionWindowResult:
    """Compute detection windows and test schedules for a slack sweep."""
    model = ProgressionModel(polarity=polarity)
    if nominal_delay is None:
        nominal_delay = next(
            s.delay for s in stage_delays if s.stage == BreakdownStage.FAULT_FREE
        )
    windows = window_versus_slack(model, list(stage_delays), nominal_delay, list(slacks))
    schedules = {
        slack: schedule_for_window(window, test_duration=test_duration)
        for slack, window in windows.items()
    }
    return ProgressionWindowResult(
        model=model,
        nominal_delay=nominal_delay,
        windows=windows,
        schedules=schedules,
    )
