"""Experiment E2: Figure 4 -- inverter VTC under NMOS oxide breakdown.

DC-sweep the inverter input from 0 to VDD for the fault-free device and for
soft, medium and hard NMOS breakdown; the paper's observation is that the
output-low level (VOL) shifts upward with progression while VOH is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..analysis.vtc import VtcMetrics, analyze_vtc
from ..cells.fixtures import build_inverter_dc_circuit
from ..cells.technology import Technology, default_technology
from ..core.breakdown import BreakdownStage
from ..core.defect import OBDDefect
from ..core.injection import inject_into_cell
from ..spice.analysis.dc_sweep import dc_sweep
from ..spice.waveform import Waveform

#: The four curves shown in Figure 4.
FIGURE4_STAGES = (
    BreakdownStage.FAULT_FREE,
    BreakdownStage.SBD,
    BreakdownStage.MBD2,
    BreakdownStage.HBD,
)


@dataclass
class Fig4Result:
    """Transfer curves and metrics per breakdown stage."""

    tech_name: str
    curves: dict[BreakdownStage, Waveform]
    metrics: dict[BreakdownStage, VtcMetrics]
    polarity: str = "n"

    def vol_by_stage(self) -> dict[BreakdownStage, float]:
        return {stage: m.vol for stage, m in self.metrics.items()}

    def voh_by_stage(self) -> dict[BreakdownStage, float]:
        return {stage: m.voh for stage, m in self.metrics.items()}

    def rows(self) -> list[str]:
        lines = ["=== Figure 4 reproduction: inverter VTC under NMOS OBD ==="]
        lines.append(f"{'stage':<12} {'VOL (V)':>9} {'VOH (V)':>9} {'Vth (V)':>9}")
        for stage, metrics in self.metrics.items():
            threshold = metrics.switching_threshold
            lines.append(
                f"{stage.value:<12} {metrics.vol:>9.3f} {metrics.voh:>9.3f} "
                f"{threshold if threshold is None else round(threshold, 3)!s:>9}"
            )
        return lines


def run_fig4(
    tech: Technology | None = None,
    stages: Sequence[BreakdownStage] = FIGURE4_STAGES,
    polarity: str = "n",
    points: int = 67,
) -> Fig4Result:
    """Sweep the inverter VTC for each breakdown stage.

    ``polarity`` selects whether the defect sits in the NMOS (Figure 4 of the
    paper) or the PMOS (the paper's text notes the dual effect on VOH).
    """
    tech = tech or default_technology()
    curves: dict[BreakdownStage, Waveform] = {}
    metrics: dict[BreakdownStage, VtcMetrics] = {}
    site = "NA" if polarity == "n" else "PA"
    sweep_values = np.linspace(0.0, tech.vdd, points)

    for stage in stages:
        circuit, cell = build_inverter_dc_circuit(tech)
        if stage != BreakdownStage.FAULT_FREE:
            inject_into_cell(circuit, cell, OBDDefect(site=site, stage=stage))
        result = dc_sweep(circuit, "vin", sweep_values, record_nodes=["out"])
        curve = result.transfer_curve("out")
        curves[stage] = curve
        metrics[stage] = analyze_vtc(curve, tech.vdd)

    return Fig4Result(tech_name=tech.name, curves=curves, metrics=metrics, polarity=polarity)
