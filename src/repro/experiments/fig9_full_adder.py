"""Experiment E5: Figure 9 -- propagation of OBD effects through the full adder.

A single OBD defect is injected into one NAND gate sitting in the middle of
the full-adder sum circuit (several logic stages of upstream and downstream
logic on both sides).  The primary-input sequence that excites the defect is
obtained from the OBD ATPG engine (the paper justified it by hand); the
transistor-level simulation then shows the delayed transition arriving at the
sum output, even though the degraded internal level is restored on the way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..analysis.delay import TransitionMeasurement, measure_transition
from ..atpg.obd_atpg import generate_obd_test
from ..cells.technology import Technology, default_technology
from ..core.breakdown import BreakdownStage
from ..core.injection import inject_into_cell
from ..faults.obd import ObdFault
from ..logic.circuits import full_adder_sum
from ..logic.expand import expand_to_transistors, two_pattern_input_waveforms
from ..logic.gates import GateType
from ..logic.netlist import LogicCircuit
from ..logic.simulator import simulate_pattern
from ..spice.analysis.transient import transient
from ..spice.waveform import Waveform

#: Default target gate: a minterm NAND with several stages of upstream and
#: downstream logic (level 4 of the depth-9 circuit).
DEFAULT_TARGET_GATE = "nand_m4"

#: The four defects injected one at a time, as in Figure 9.
DEFAULT_SITES = ("NA", "NB", "PA", "PB")


@dataclass
class Fig9Case:
    """One injected defect and its observed effect at the sum output."""

    site: str
    stage: BreakdownStage
    sequence: tuple
    measurement: TransitionMeasurement
    sum_waveform: Waveform
    fault_free_measurement: TransitionMeasurement

    @property
    def extra_delay(self) -> Optional[float]:
        if self.measurement.delay is None or self.fault_free_measurement.delay is None:
            return None
        return self.measurement.delay - self.fault_free_measurement.delay

    @property
    def observable(self) -> bool:
        """The defect visibly changes the primary-output behaviour."""
        if self.measurement.is_stuck:
            return True
        extra = self.extra_delay
        nominal = self.fault_free_measurement.delay
        if extra is None or nominal is None:
            return False
        return extra > 0.05 * nominal


@dataclass
class Fig9Result:
    """All injected cases for the chosen target gate."""

    tech_name: str
    target_gate: str
    cases: dict[str, Fig9Case]

    def rows(self) -> list[str]:
        lines = [f"=== Figure 9 reproduction: OBD propagation through {self.target_gate} ==="]
        for site, case in self.cases.items():
            nominal = case.fault_free_measurement.table_entry()
            lines.append(
                f"{site:<4} stage={case.stage.value:<5} seq={case.sequence} "
                f"sum delay: fault-free {nominal}, defective {case.measurement.table_entry()}"
            )
        return lines

    def all_observable(self) -> bool:
        return all(case.observable for case in self.cases.values())


def _launch_measurement(
    result,
    logic: LogicCircuit,
    sequence,
    tech: Technology,
    launch_time: float,
    capture_window: float,
) -> TransitionMeasurement:
    """Measure the SUM transition for a primary-input two-pattern sequence."""
    first, second = sequence
    out1 = simulate_pattern(logic, first)["SUM"]
    out2 = simulate_pattern(logic, second)["SUM"]
    output_edge = None if out1 == out2 else ("rising" if out2 > out1 else "falling")
    switching = [
        (net, b1, b2)
        for net, b1, b2 in zip(logic.primary_inputs, first, second)
        if b1 != b2
    ]
    input_net, b1, b2 = switching[0]
    input_edge = "rising" if b2 > b1 else "falling"
    return measure_transition(
        result.waveform(input_net),
        result.waveform("SUM"),
        input_edge=input_edge,
        output_edge=output_edge,
        threshold=tech.half_vdd,
        launch_after=launch_time * 0.5,
        capture_window=capture_window,
    )


def run_fig9(
    tech: Technology | None = None,
    target_gate: str = DEFAULT_TARGET_GATE,
    sites: Sequence[str] = DEFAULT_SITES,
    stage: BreakdownStage = BreakdownStage.MBD2,
    dt: float = 5e-12,
    launch_time: float = 1.5e-9,
    observation_window: float = 2.5e-9,
    capture_window: float = 2.0e-9,
) -> Fig9Result:
    """Inject each defect into *target_gate* and observe the sum output."""
    tech = tech or default_technology()
    logic = full_adder_sum()
    gate = logic.gate(target_gate)
    if gate.gate_type != GateType.NAND2:
        raise ValueError(f"target gate {target_gate!r} must be a NAND2")

    cases: dict[str, Fig9Case] = {}
    t_stop = launch_time + observation_window

    for site in sites:
        fault = ObdFault(gate.name, gate.gate_type, site)
        atpg = generate_obd_test(logic, fault)
        if not atpg.success:
            continue
        sequence = (atpg.test.first, atpg.test.second)
        waveforms = two_pattern_input_waveforms(
            logic, tech, sequence[0], sequence[1], launch_time, t_stop=t_stop
        )

        # Fault-free reference.
        expanded_ref = expand_to_transistors(logic, tech, input_waveforms=waveforms)
        record = list(logic.primary_inputs) + ["SUM", gate.output]
        ref_result = transient(expanded_ref.circuit, t_stop, dt, record_nodes=record)
        ref_measurement = _launch_measurement(
            ref_result, logic, sequence, tech, launch_time, capture_window
        )

        # Defective circuit.
        expanded = expand_to_transistors(logic, tech, input_waveforms=waveforms)
        inject_into_cell(expanded.circuit, expanded.cell(gate.name), fault.as_defect(stage))
        result = transient(expanded.circuit, t_stop, dt, record_nodes=record)
        measurement = _launch_measurement(
            result, logic, sequence, tech, launch_time, capture_window
        )

        cases[site] = Fig9Case(
            site=site,
            stage=stage,
            sequence=sequence,
            measurement=measurement,
            sum_waveform=result.waveform("SUM"),
            fault_free_measurement=ref_measurement,
        )

    return Fig9Result(tech_name=tech.name, target_gate=target_gate, cases=cases)
