"""Experiment E11: ATPG complexity parity (Section 5).

"For combinational circuits, test pattern generation for OBD defects is of
the same computational complexity as for stuck-at faults."  The experiment
runs the stuck-at and OBD fault models through identical ATPG-only
:class:`~repro.campaign.Campaign` pipelines over the same circuits and
compares fault counts, backtracks and wall-clock time per fault.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..campaign import Campaign, CampaignSpec
from ..logic.circuits import c17, full_adder, full_adder_sum, ripple_carry_adder
from ..logic.netlist import LogicCircuit


@dataclass
class AtpgRunStats:
    """Aggregate ATPG statistics for one fault model on one circuit."""

    model: str
    faults: int
    testable: int
    untestable: int
    aborted: int
    backtracks: int
    runtime: float

    @property
    def runtime_per_fault(self) -> float:
        return self.runtime / self.faults if self.faults else 0.0


@dataclass
class CircuitComplexityResult:
    """Stuck-at versus OBD ATPG on one circuit."""

    circuit_name: str
    gate_count: int
    stuck_at: AtpgRunStats
    obd: AtpgRunStats

    @property
    def runtime_ratio(self) -> float:
        """OBD runtime-per-fault divided by stuck-at runtime-per-fault."""
        if self.stuck_at.runtime_per_fault == 0.0:
            return float("inf")
        return self.obd.runtime_per_fault / self.stuck_at.runtime_per_fault


@dataclass
class AtpgComplexityResult:
    """Comparison across a set of circuits."""

    circuits: list[CircuitComplexityResult]

    def rows(self) -> list[str]:
        lines = ["=== Section 5 reproduction: ATPG complexity, stuck-at vs OBD ==="]
        lines.append(
            f"{'circuit':<12} {'gates':>6} {'SA faults':>10} {'SA ms/fault':>12} "
            f"{'OBD faults':>11} {'OBD ms/fault':>13} {'ratio':>7}"
        )
        for entry in self.circuits:
            lines.append(
                f"{entry.circuit_name:<12} {entry.gate_count:>6} "
                f"{entry.stuck_at.faults:>10} {entry.stuck_at.runtime_per_fault * 1e3:>12.3f} "
                f"{entry.obd.faults:>11} {entry.obd.runtime_per_fault * 1e3:>13.3f} "
                f"{entry.runtime_ratio:>7.2f}"
            )
        return lines

    def same_order_of_magnitude(self, factor: float = 30.0) -> bool:
        """OBD per-fault cost stays within *factor* of the stuck-at cost."""
        return all(entry.runtime_ratio <= factor for entry in self.circuits)


DEFAULT_CIRCUITS: tuple[Callable[[], LogicCircuit], ...] = (
    c17,
    full_adder_sum,
    full_adder,
    lambda: ripple_carry_adder(4),
)


def _run_model(circuit: LogicCircuit, model_name: str) -> AtpgRunStats:
    """ATPG-only campaign (no pattern phase, no compaction) for one model.

    The reported runtime is the phase's ``generation_runtime`` -- test
    generation alone, excluding universe construction and the verification
    fault-simulation of the generated tests -- so the stuck-at vs OBD
    per-fault comparison measures exactly the ATPG cost the paper's
    complexity claim is about.
    """
    spec = CampaignSpec(model=model_name, pattern_source="none", compact=False)
    result = Campaign(spec).run(circuit)
    phase = result.atpg_phase
    return AtpgRunStats(
        model_name,
        len(result.faults),
        len(phase.testable),
        len(phase.untestable),
        len(phase.aborted),
        phase.backtracks,
        phase.generation_runtime,
    )


def run_atpg_complexity(
    circuit_factories: Sequence[Callable[[], LogicCircuit]] = DEFAULT_CIRCUITS,
) -> AtpgComplexityResult:
    """Compare stuck-at and OBD ATPG cost across the benchmark circuits."""
    results = []
    for factory in circuit_factories:
        circuit = factory()
        results.append(
            CircuitComplexityResult(
                circuit_name=circuit.name,
                gate_count=len(circuit),
                stuck_at=_run_model(circuit, "stuck-at"),
                obd=_run_model(circuit, "obd"),
            )
        )
    return AtpgComplexityResult(circuits=results)
