"""Experiment E1: reproduce Table 1 (NMOS and PMOS OBD progression).

For the Figure-5 NAND harness, measure the output transition delay for every
(breakdown stage, input sequence, defect site) combination the paper
tabulates:

* falling-output sequences (01,11) and (10,11) with NMOS defects NA / NB,
  stages Fault-Free, MBD1, MBD2, MBD3, HBD;
* rising-output sequences (11,10) and (11,01) with PMOS defects PA / PB,
  stages Fault-Free, MBD1, MBD2, MBD3.

Absolute picoseconds differ from the paper's HSPICE technology; the shape
checks are (a) NMOS delay grows monotonically with stage and is roughly
independent of which input switches, (b) PMOS delay grows only in the
sequence that makes the defective transistor the sole charger, and (c) the
late stages degrade into stuck-at-like behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..cells.technology import Technology, default_technology
from ..core.breakdown import TABLE1_NMOS_STAGES, TABLE1_PMOS_STAGES, BreakdownStage
from ..core.excitation import format_sequence
from .common import DEFAULT_CAPTURE_WINDOW, DEFAULT_DT, GateDelayEntry, measure_gate_obd_delay

#: The falling-output (NMOS) sequences of Table 1: (01,11) and (10,11).
NMOS_SEQUENCES = (((0, 1), (1, 1)), ((1, 0), (1, 1)))
#: The rising-output (PMOS) sequences of Table 1: (11,10) and (11,01).
PMOS_SEQUENCES = (((1, 1), (1, 0)), ((1, 1), (0, 1)))

NMOS_SITES = ("NA", "NB")
PMOS_SITES = ("PA", "PB")

#: Paper-reported entries (picoseconds or stuck classification), used by the
#: benchmark report for side-by-side comparison.
PAPER_TABLE1_NMOS = {
    BreakdownStage.FAULT_FREE: {"(01,11)": {"NA": "96ps", "NB": "96ps"}, "(10,11)": {"NA": "96ps", "NB": "96ps"}},
    BreakdownStage.MBD1: {"(01,11)": {"NA": "118ps", "NB": "118ps"}, "(10,11)": {"NA": "118ps", "NB": "118ps"}},
    BreakdownStage.MBD2: {"(01,11)": {"NA": "156ps", "NB": "143ps"}, "(10,11)": {"NA": "144ps", "NB": "156ps"}},
    BreakdownStage.MBD3: {"(01,11)": {"NA": "190ps", "NB": "228ps"}, "(10,11)": {"NA": "230ps", "NB": "190ps"}},
    BreakdownStage.HBD: {"(01,11)": {"NA": "sa-1", "NB": "sa-1"}, "(10,11)": {"NA": "sa-1", "NB": "sa-1"}},
}
PAPER_TABLE1_PMOS = {
    BreakdownStage.FAULT_FREE: {"(11,10)": {"PA": "110ps", "PB": "110ps"}, "(11,01)": {"PA": "110ps", "PB": "110ps"}},
    BreakdownStage.MBD1: {"(11,10)": {"PA": "110ps", "PB": "360ps"}, "(11,01)": {"PA": "360ps", "PB": "110ps"}},
    BreakdownStage.MBD2: {"(11,10)": {"PA": "110ps", "PB": "736ps"}, "(11,01)": {"PA": "740ps", "PB": "110ps"}},
    BreakdownStage.MBD3: {"(11,10)": {"PA": "110ps", "PB": "sa-0"}, "(11,01)": {"PA": "sa-0", "PB": "110ps"}},
}


@dataclass
class Table1Result:
    """Measured reproduction of Table 1."""

    tech_name: str
    #: entries[stage][sequence string][site] -> GateDelayEntry
    nmos: dict[BreakdownStage, dict[str, dict[str, GateDelayEntry]]]
    pmos: dict[BreakdownStage, dict[str, dict[str, GateDelayEntry]]]
    fault_free_falling: Optional[GateDelayEntry] = None
    fault_free_rising: Optional[GateDelayEntry] = None

    def rows(self) -> list[str]:
        """Table rows formatted in the paper's layout."""
        lines = ["=== Table 1 reproduction (measured) ==="]
        header = "stage      | " + " | ".join(
            f"{format_sequence(seq)} {site}" for seq in NMOS_SEQUENCES for site in NMOS_SITES
        )
        lines.append("NMOS OBD   | " + header)
        for stage, per_seq in self.nmos.items():
            cells = []
            for seq in NMOS_SEQUENCES:
                key = format_sequence(seq)
                for site in NMOS_SITES:
                    cells.append(per_seq[key][site].table_entry)
            lines.append(f"{stage.value:<10} | " + " | ".join(f"{c:>9}" for c in cells))
        header_p = " | ".join(
            f"{format_sequence(seq)} {site}" for seq in PMOS_SEQUENCES for site in PMOS_SITES
        )
        lines.append("PMOS OBD   | " + header_p)
        for stage, per_seq in self.pmos.items():
            cells = []
            for seq in PMOS_SEQUENCES:
                key = format_sequence(seq)
                for site in PMOS_SITES:
                    cells.append(per_seq[key][site].table_entry)
            lines.append(f"{stage.value:<10} | " + " | ".join(f"{c:>9}" for c in cells))
        return lines

    def nmos_delays(self, sequence_key: str, site: str) -> list[Optional[float]]:
        """Delays (seconds) down one NMOS column, in stage order."""
        return [
            self.nmos[stage][sequence_key][site].measurement.delay
            for stage in self.nmos
        ]

    def pmos_delays(self, sequence_key: str, site: str) -> list[Optional[float]]:
        return [
            self.pmos[stage][sequence_key][site].measurement.delay
            for stage in self.pmos
        ]


def run_table1(
    tech: Technology | None = None,
    nmos_stages: Sequence[BreakdownStage] = TABLE1_NMOS_STAGES,
    pmos_stages: Sequence[BreakdownStage] = TABLE1_PMOS_STAGES,
    nmos_sites: Sequence[str] = NMOS_SITES,
    pmos_sites: Sequence[str] = PMOS_SITES,
    dt: float = DEFAULT_DT,
    capture_window: float = DEFAULT_CAPTURE_WINDOW,
) -> Table1Result:
    """Run the Table-1 characterization (optionally on a reduced stage set)."""
    tech = tech or default_technology()

    nmos: dict[BreakdownStage, dict[str, dict[str, GateDelayEntry]]] = {}
    for stage in nmos_stages:
        per_seq: dict[str, dict[str, GateDelayEntry]] = {}
        for seq in NMOS_SEQUENCES:
            per_site: dict[str, GateDelayEntry] = {}
            for site in nmos_sites:
                effective_site = None if stage == BreakdownStage.FAULT_FREE else site
                entry = measure_gate_obd_delay(
                    "NAND2", seq, effective_site, stage if effective_site else None,
                    tech=tech, dt=dt, capture_window=capture_window,
                )
                per_site[site] = entry
            per_seq[format_sequence(seq)] = per_site
        nmos[stage] = per_seq

    pmos: dict[BreakdownStage, dict[str, dict[str, GateDelayEntry]]] = {}
    for stage in pmos_stages:
        per_seq = {}
        for seq in PMOS_SEQUENCES:
            per_site = {}
            for site in pmos_sites:
                effective_site = None if stage == BreakdownStage.FAULT_FREE else site
                entry = measure_gate_obd_delay(
                    "NAND2", seq, effective_site, stage if effective_site else None,
                    tech=tech, dt=dt, capture_window=capture_window,
                )
                per_site[site] = entry
            per_seq[format_sequence(seq)] = per_site
        pmos[stage] = per_seq

    return Table1Result(tech_name=tech.name, nmos=nmos, pmos=pmos)
