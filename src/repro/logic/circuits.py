"""Library of gate-level circuits used by the experiments and tests.

The centrepiece is the paper's example circuit (Section 4.3, Figure 8): the
sum output of a full adder implemented with 2-input NAND gates and inverters,
without optimization, giving a logic depth of 9.  The paper does not publish
the exact netlist; :func:`full_adder_sum` is a documented reconstruction that
matches the two structural numbers the experiments depend on -- **14 NAND
gates** (hence 14 x 4 = 56 OBD defect sites in NAND gates) and **logic depth
9** -- and contains the kind of intentional redundancy the paper mentions.
"""

from __future__ import annotations

from .gates import GateType
from .netlist import LogicCircuit


def full_adder_sum(name: str = "fa_sum") -> LogicCircuit:
    """The paper's Figure-8 circuit: sum bit of a full adder, NAND/INV only.

    The function computed is ``sum = A xor B xor C`` expressed as the
    unoptimized sum of its four minterms::

        sum = A'B'C + A'BC' + AB'C' + ABC

    Mapping choices (a naive technology mapper without Boolean optimization):

    * each literal complement is an inverter;
    * each 3-input product is built as ``INV(NAND(l1, l2))`` followed by
      ``NAND(., l3)`` and a final inverter, i.e. two NAND2 and two INV per
      minterm;
    * each 2-input OR is ``NAND(INV(x), NAND(y, y))`` -- one input complement
      implemented with an inverter, the other with a NAND used as an
      inverter, as a redundancy-oblivious mapper would emit.

    Resulting structure: 14 NAND2 + 14 INV, logic depth 9.  (The paper quotes
    14 NAND gates and 11 inverters; the reconstruction matches the NAND count
    -- and therefore the 56 NAND defect sites -- and the logic depth exactly,
    but carries three extra inverters because the exact netlist is not
    recoverable from the paper.)
    """
    c = LogicCircuit(name)
    a, b, ci = c.add_inputs(["A", "B", "C"])
    c.add_output("SUM")

    # Literal complements.
    c.add_gate("inv_a", GateType.INV, [a], "a_n")
    c.add_gate("inv_b", GateType.INV, [b], "b_n")
    c.add_gate("inv_c", GateType.INV, [ci], "c_n")

    # Minterms: (first literal, second literal, third literal).
    minterms = {
        "m1": ("a_n", "b_n", ci),   # A' B' C
        "m2": ("a_n", b, "c_n"),    # A' B  C'
        "m3": (a, "b_n", "c_n"),    # A  B' C'
        "m4": (a, b, ci),           # A  B  C
    }
    for label, (l1, l2, l3) in minterms.items():
        c.add_gate(f"nand_{label}_ab", GateType.NAND2, [l1, l2], f"{label}_ab_n")
        c.add_gate(f"inv_{label}_ab", GateType.INV, [f"{label}_ab_n"], f"{label}_ab")
        c.add_gate(f"nand_{label}", GateType.NAND2, [f"{label}_ab", l3], f"{label}_n")
        c.add_gate(f"inv_{label}", GateType.INV, [f"{label}_n"], label)

    # OR tree: or(x, y) = NAND(INV(x), NAND(y, y)).
    def add_or(tag: str, x: str, y: str, output: str) -> None:
        c.add_gate(f"inv_{tag}", GateType.INV, [x], f"{tag}_xn")
        c.add_gate(f"nand_{tag}_self", GateType.NAND2, [y, y], f"{tag}_yn")
        c.add_gate(f"nand_{tag}", GateType.NAND2, [f"{tag}_xn", f"{tag}_yn"], output)

    add_or("or12", "m1", "m2", "z1")
    add_or("or34", "m3", "m4", "z2")
    add_or("or_final", "z1", "z2", "SUM")

    c.validate()
    return c


def full_adder(name: str = "full_adder") -> LogicCircuit:
    """A complete full adder (sum and carry) in NAND/INV form.

    Used by the wider ATPG and fault-simulation tests; the sum cone follows
    the same unoptimized construction as :func:`full_adder_sum`, the carry is
    the standard NAND-only majority implementation.
    """
    c = LogicCircuit(name)
    a, b, ci = c.add_inputs(["A", "B", "C"])
    c.add_output("SUM")
    c.add_output("COUT")

    # Sum cone (compact XOR-of-XOR NAND mapping).
    def add_xor(tag: str, x: str, y: str, output: str) -> None:
        c.add_gate(f"{tag}_n1", GateType.NAND2, [x, y], f"{tag}_t")
        c.add_gate(f"{tag}_n2", GateType.NAND2, [x, f"{tag}_t"], f"{tag}_u")
        c.add_gate(f"{tag}_n3", GateType.NAND2, [y, f"{tag}_t"], f"{tag}_v")
        c.add_gate(f"{tag}_n4", GateType.NAND2, [f"{tag}_u", f"{tag}_v"], output)

    add_xor("xor1", a, b, "axb")
    add_xor("xor2", "axb", ci, "SUM")

    # Carry = NAND(NAND(a, b), NAND(axb, c)).
    c.add_gate("carry_ab", GateType.NAND2, [a, b], "ab_n")
    c.add_gate("carry_axbc", GateType.NAND2, ["axb", ci], "axbc_n")
    c.add_gate("carry_out", GateType.NAND2, ["ab_n", "axbc_n"], "COUT")

    c.validate()
    return c


def ripple_carry_adder(bits: int, name: str | None = None) -> LogicCircuit:
    """An N-bit ripple-carry adder built from NAND/INV full adders.

    Provides a scalable combinational workload for ATPG-complexity and
    fault-simulation benchmarks.
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    c = LogicCircuit(name or f"rca{bits}")
    a_bits = c.add_inputs([f"A{i}" for i in range(bits)])
    b_bits = c.add_inputs([f"B{i}" for i in range(bits)])
    cin = c.add_input("CIN")
    for i in range(bits):
        c.add_output(f"S{i}")
    c.add_output("COUT")

    def add_xor(tag: str, x: str, y: str, output: str) -> None:
        c.add_gate(f"{tag}_n1", GateType.NAND2, [x, y], f"{tag}_t")
        c.add_gate(f"{tag}_n2", GateType.NAND2, [x, f"{tag}_t"], f"{tag}_u")
        c.add_gate(f"{tag}_n3", GateType.NAND2, [y, f"{tag}_t"], f"{tag}_v")
        c.add_gate(f"{tag}_n4", GateType.NAND2, [f"{tag}_u", f"{tag}_v"], output)

    carry = cin
    for i in range(bits):
        a, b = a_bits[i], b_bits[i]
        add_xor(f"fa{i}_x1", a, b, f"fa{i}_axb")
        add_xor(f"fa{i}_x2", f"fa{i}_axb", carry, f"S{i}")
        c.add_gate(f"fa{i}_cab", GateType.NAND2, [a, b], f"fa{i}_ab_n")
        c.add_gate(f"fa{i}_cax", GateType.NAND2, [f"fa{i}_axb", carry], f"fa{i}_ax_n")
        next_carry = "COUT" if i == bits - 1 else f"fa{i}_cout"
        c.add_gate(f"fa{i}_cout_g", GateType.NAND2, [f"fa{i}_ab_n", f"fa{i}_ax_n"], next_carry)
        carry = next_carry

    c.validate()
    return c


def c17(name: str = "c17") -> LogicCircuit:
    """The classic ISCAS-85 C17 benchmark (6 NAND2 gates).

    A small standard circuit useful for exercising ATPG and fault simulation
    against well-known results.
    """
    c = LogicCircuit(name)
    c.add_inputs(["G1", "G2", "G3", "G6", "G7"])
    c.add_output("G22")
    c.add_output("G23")
    c.add_gate("g10", GateType.NAND2, ["G1", "G3"], "G10")
    c.add_gate("g11", GateType.NAND2, ["G3", "G6"], "G11")
    c.add_gate("g16", GateType.NAND2, ["G2", "G11"], "G16")
    c.add_gate("g19", GateType.NAND2, ["G11", "G7"], "G19")
    c.add_gate("g22", GateType.NAND2, ["G10", "G16"], "G22")
    c.add_gate("g23", GateType.NAND2, ["G16", "G19"], "G23")
    c.validate()
    return c


def nand_chain(length: int, name: str | None = None) -> LogicCircuit:
    """A chain of 2-input NAND gates (second input tied to a shared enable).

    Simple deep circuit used for path-depth and propagation tests.
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    c = LogicCircuit(name or f"nand_chain{length}")
    data = c.add_input("D")
    enable = c.add_input("EN")
    c.add_output("OUT")
    previous = data
    for i in range(length):
        output = "OUT" if i == length - 1 else f"n{i}"
        c.add_gate(f"g{i}", GateType.NAND2, [previous, enable], output)
        previous = output
    c.validate()
    return c


def two_to_one_mux(name: str = "mux2") -> LogicCircuit:
    """A 2:1 multiplexer in NAND/INV form (classic redundant-free circuit)."""
    c = LogicCircuit(name)
    c.add_inputs(["D0", "D1", "S"])
    c.add_output("Y")
    c.add_gate("inv_s", GateType.INV, ["S"], "s_n")
    c.add_gate("n0", GateType.NAND2, ["D0", "s_n"], "t0")
    c.add_gate("n1", GateType.NAND2, ["D1", "S"], "t1")
    c.add_gate("n2", GateType.NAND2, ["t0", "t1"], "Y")
    c.validate()
    return c
