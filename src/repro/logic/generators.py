"""Parametric benchmark-circuit generators.

The paper's experiments run on a handful of hand-built circuits (the
full-adder reconstruction, C17, a ripple-carry adder).  This module opens
up realistic scalable workloads for the fault-simulation and campaign
layers: classic arithmetic/datapath families with known Boolean behaviour
(so tests can check them against Python integers) plus a seeded random-DAG
generator for property-based serial-vs-packed equivalence testing.

Every generator validates its size parameters and raises
:class:`~repro.logic.netlist.LogicCircuitError` on degenerate requests
(zero widths, zero gates, impossible fan-in) instead of crashing or
emitting an unusable netlist.  All families are registered in
:data:`GENERATOR_FAMILIES` so the campaign circuit registry and the
benchmark harness can enumerate them by name.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from .gates import GateType
from .netlist import LogicCircuit, LogicCircuitError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise LogicCircuitError(message)


# --------------------------------------------------------------------------- #
# Reduction-tree helpers (fixed 2/3-input gate arities).
# --------------------------------------------------------------------------- #
def _reduce_tree(
    c: LogicCircuit,
    nets: Sequence[str],
    two: GateType,
    three: GateType,
    output: str,
    tag: str,
) -> str:
    """Balanced AND/OR-style reduction of *nets* into *output*.

    Consumes the net list in chunks of three (two for the last pair) until
    one gate producing *output* remains; intermediate nets are named
    ``<tag>_t<i>``.  A single net degenerates to a BUF driving *output*.
    """
    current = list(nets)
    if len(current) == 1:
        c.add_gate(f"{tag}_buf", GateType.BUF, current, output)
        return output
    aux = 0
    while True:
        take = 3 if len(current) >= 3 and len(current) != 4 else 2
        chunk, current = current[:take], current[take:]
        gate_type = three if take == 3 else two
        if not current:
            c.add_gate(f"{tag}_t{aux}_g", gate_type, chunk, output)
            return output
        net = f"{tag}_t{aux}"
        aux += 1
        c.add_gate(f"{net}_g", gate_type, chunk, net)
        current.append(net)


def _and_tree(c: LogicCircuit, nets: Sequence[str], output: str, tag: str) -> str:
    return _reduce_tree(c, nets, GateType.AND2, GateType.AND3, output, tag)


def _or_tree(c: LogicCircuit, nets: Sequence[str], output: str, tag: str) -> str:
    return _reduce_tree(c, nets, GateType.OR2, GateType.OR3, output, tag)


def _half_adder(c: LogicCircuit, tag: str, a: str, b: str, s: str, cy: str) -> None:
    c.add_gate(f"{tag}_s", GateType.XOR2, [a, b], s)
    c.add_gate(f"{tag}_c", GateType.AND2, [a, b], cy)


def _full_adder(c: LogicCircuit, tag: str, a: str, b: str, cin: str, s: str, cy: str) -> None:
    c.add_gate(f"{tag}_x1", GateType.XOR2, [a, b], f"{tag}_ab")
    c.add_gate(f"{tag}_s", GateType.XOR2, [f"{tag}_ab", cin], s)
    c.add_gate(f"{tag}_a1", GateType.AND2, [a, b], f"{tag}_g")
    c.add_gate(f"{tag}_a2", GateType.AND2, [f"{tag}_ab", cin], f"{tag}_p")
    c.add_gate(f"{tag}_c", GateType.OR2, [f"{tag}_g", f"{tag}_p"], cy)


# --------------------------------------------------------------------------- #
# Arithmetic / datapath families.
# --------------------------------------------------------------------------- #
def parity_tree(width: int, name: str | None = None) -> LogicCircuit:
    """Balanced XOR tree computing the parity of *width* input bits.

    The classic observability workload: every input is on a reconvergence-
    free path to the single output ``PAR``, so stuck-at coverage is total
    and the tree depth grows as ``log2(width)``.
    """
    _require(width >= 2, f"parity tree needs width >= 2, got {width}")
    c = LogicCircuit(name or f"parity{width}")
    nets = c.add_inputs([f"D{i}" for i in range(width)])
    c.add_output("PAR")
    level = 0
    while len(nets) > 1:
        next_nets: list[str] = []
        for j in range(0, len(nets) - 1, 2):
            out = "PAR" if len(nets) == 2 else f"p{level}_{j // 2}"
            c.add_gate(f"x{level}_{j // 2}", GateType.XOR2, [nets[j], nets[j + 1]], out)
            next_nets.append(out)
        if len(nets) % 2:
            next_nets.append(nets[-1])
        nets = next_nets
        level += 1
    c.validate()
    return c


def carry_lookahead_adder(bits: int, name: str | None = None) -> LogicCircuit:
    """N-bit adder with fully expanded carry lookahead.

    Each carry is the two-level sum-of-products
    ``c[i+1] = g[i] + p[i]g[i-1] + ... + p[i]...p[0]c0`` built from
    AND/OR reduction trees, so the carry logic is shallow but wide -- the
    opposite structural profile of :func:`~repro.logic.circuits.
    ripple_carry_adder` and a heavy fan-out workload for the packed engine.
    """
    _require(bits >= 1, f"carry-lookahead adder needs bits >= 1, got {bits}")
    c = LogicCircuit(name or f"cla{bits}")
    a = c.add_inputs([f"A{i}" for i in range(bits)])
    b = c.add_inputs([f"B{i}" for i in range(bits)])
    cin = c.add_input("CIN")
    for i in range(bits):
        c.add_output(f"S{i}")
    c.add_output("COUT")

    for i in range(bits):
        c.add_gate(f"p{i}_g", GateType.XOR2, [a[i], b[i]], f"p{i}")
        c.add_gate(f"g{i}_g", GateType.AND2, [a[i], b[i]], f"g{i}")

    carries = [cin]
    for i in range(bits):
        # Product terms of c[i+1]: g[i], p[i]g[i-1], ..., p[i]..p[0]c0.
        terms: list[str] = [f"g{i}"]
        for j in range(i - 1, -1, -1):
            factors = [f"p{k}" for k in range(j + 1, i + 1)] + [f"g{j}"]
            terms.append(_and_tree(c, factors, f"c{i + 1}_m{j}", f"c{i + 1}_m{j}"))
        factors = [f"p{k}" for k in range(i + 1)] + [cin]
        terms.append(_and_tree(c, factors, f"c{i + 1}_mc", f"c{i + 1}_mc"))
        carry = "COUT" if i == bits - 1 else f"c{i + 1}"
        _or_tree(c, terms, carry, f"c{i + 1}_or")
        carries.append(carry)

    for i in range(bits):
        c.add_gate(f"s{i}_g", GateType.XOR2, [f"p{i}", carries[i]], f"S{i}")

    c.validate()
    return c


def array_multiplier(bits: int, name: str | None = None) -> LogicCircuit:
    """N x N array multiplier (AND partial products + carry-save adder rows).

    Produces the ``2N``-bit product ``P`` of inputs ``A`` and ``B``.  The
    quadratic gate count and long reconvergent carry chains make this the
    largest-footprint family per parameter step.
    """
    _require(bits >= 1, f"array multiplier needs bits >= 1, got {bits}")
    c = LogicCircuit(name or f"mult{bits}")
    a = c.add_inputs([f"A{i}" for i in range(bits)])
    b = c.add_inputs([f"B{i}" for i in range(bits)])
    for i in range(2 * bits):
        c.add_output(f"P{i}")

    if bits == 1:
        c.add_gate("pp_0_0", GateType.AND2, [a[0], b[0]], "P0")
        # The high product bit of a 1x1 multiply is constant zero; derive it
        # structurally so the netlist stays closed without constant nets.
        c.add_gate("p1_x", GateType.XOR2, ["P0", "P0"], "P1")
        c.validate()
        return c

    # Partial products pp[i][j] = a[j] & b[i].
    pp = [[f"pp_{i}_{j}" for j in range(bits)] for i in range(bits)]
    for i in range(bits):
        for j in range(bits):
            c.add_gate(f"pp_{i}_{j}_g", GateType.AND2, [a[j], b[i]], pp[i][j])

    # Row 0 contributes P0 directly.
    c.add_gate("p0_buf", GateType.BUF, [pp[0][0]], "P0")
    # Running sum bits s[j] hold the (j+1)-th column value after each row.
    acc = pp[0][1:]  # bits 1..N-1 of row 0
    for i in range(1, bits):
        row = pp[i]
        sums: list[str] = []
        carry: str | None = None
        for j in range(bits):
            s = f"P{i}" if j == 0 else f"r{i}_s{j}"
            tag = f"r{i}_c{j}"
            operands = [row[j]]
            if j < len(acc):
                operands.append(acc[j])
            if carry is not None:
                operands.append(carry)
            if len(operands) == 1:
                c.add_gate(f"{tag}_buf", GateType.BUF, operands, s)
                carry = None
            elif len(operands) == 2:
                _half_adder(c, tag, operands[0], operands[1], s, f"{tag}_co")
                carry = f"{tag}_co"
            else:
                _full_adder(c, tag, operands[0], operands[1], operands[2], s, f"{tag}_co")
                carry = f"{tag}_co"
            sums.append(s)
        if carry is not None:
            sums.append(carry)
        acc = sums[1:]  # drop the product bit emitted this row

    # Remaining accumulator bits are the top product bits.
    for offset, net in enumerate(acc):
        c.add_gate(f"ptop_{offset}", GateType.BUF, [net], f"P{bits + offset}")
    # Any still-missing high bits (possible when the final carry chain is
    # short) would leave outputs undriven; validate() guards against it.
    c.validate()
    return c


def magnitude_comparator(bits: int, name: str | None = None) -> LogicCircuit:
    """N-bit magnitude comparator with ``EQ``, ``GT`` and ``LT`` outputs.

    ``GT`` is the standard priority chain: A > B iff some bit position i
    has ``a[i] & ~b[i]`` while all higher positions are bit-equal.  ``LT``
    is derived as ``NOR(EQ, GT)``.
    """
    _require(bits >= 1, f"magnitude comparator needs bits >= 1, got {bits}")
    c = LogicCircuit(name or f"cmp{bits}")
    a = c.add_inputs([f"A{i}" for i in range(bits)])
    b = c.add_inputs([f"B{i}" for i in range(bits)])
    c.add_output("EQ")
    c.add_output("GT")
    c.add_output("LT")

    for i in range(bits):
        c.add_gate(f"eq{i}_g", GateType.XNOR2, [a[i], b[i]], f"eq{i}")
        c.add_gate(f"bn{i}_g", GateType.INV, [b[i]], f"bn{i}")
        c.add_gate(f"gtb{i}_g", GateType.AND2, [a[i], f"bn{i}"], f"gtb{i}")

    _and_tree(c, [f"eq{i}" for i in range(bits)], "EQ", "eq_all")
    # Per-position win terms: gtb[i] AND eq[j] for all j > i.
    terms: list[str] = []
    for i in range(bits):
        higher = [f"eq{j}" for j in range(i + 1, bits)]
        if not higher:
            terms.append(f"gtb{i}")
        else:
            terms.append(_and_tree(c, [f"gtb{i}"] + higher, f"win{i}", f"win{i}"))
    _or_tree(c, terms, "GT", "gt_all")
    c.add_gate("lt_g", GateType.NOR2, ["EQ", "GT"], "LT")

    c.validate()
    return c


def alu_slice(bits: int, name: str | None = None) -> LogicCircuit:
    """N-bit ALU slice: AND / OR / XOR / ADD selected by ``S1 S0``.

    Op encoding: ``00`` bitwise AND, ``01`` bitwise OR, ``10`` bitwise
    XOR, ``11`` ripple-carry ADD (with ``CIN`` and ``COUT``).  The 4-way
    result mux per bit is AND3/OR reduction logic, giving the family a mix
    of datapath and control structure.
    """
    _require(bits >= 1, f"ALU slice needs bits >= 1, got {bits}")
    c = LogicCircuit(name or f"alu{bits}")
    a = c.add_inputs([f"A{i}" for i in range(bits)])
    b = c.add_inputs([f"B{i}" for i in range(bits)])
    c.add_input("CIN")
    c.add_inputs(["S0", "S1"])
    for i in range(bits):
        c.add_output(f"Y{i}")
    c.add_output("COUT")

    c.add_gate("s0n_g", GateType.INV, ["S0"], "s0n")
    c.add_gate("s1n_g", GateType.INV, ["S1"], "s1n")
    c.add_gate("sel_and_g", GateType.AND2, ["s1n", "s0n"], "sel_and")
    c.add_gate("sel_or_g", GateType.AND2, ["s1n", "S0"], "sel_or")
    c.add_gate("sel_xor_g", GateType.AND2, ["S1", "s0n"], "sel_xor")
    c.add_gate("sel_add_g", GateType.AND2, ["S1", "S0"], "sel_add")

    carry = "CIN"
    for i in range(bits):
        c.add_gate(f"and{i}_g", GateType.AND2, [a[i], b[i]], f"and{i}")
        c.add_gate(f"or{i}_g", GateType.OR2, [a[i], b[i]], f"or{i}")
        c.add_gate(f"xor{i}_g", GateType.XOR2, [a[i], b[i]], f"xor{i}")
        sum_net = f"sum{i}"
        next_carry = "COUT" if i == bits - 1 else f"cy{i}"
        _full_adder(c, f"fa{i}", a[i], b[i], carry, sum_net, next_carry)
        carry = next_carry

        c.add_gate(f"m{i}_and", GateType.AND2, ["sel_and", f"and{i}"], f"m{i}_a")
        c.add_gate(f"m{i}_or", GateType.AND2, ["sel_or", f"or{i}"], f"m{i}_o")
        c.add_gate(f"m{i}_xor", GateType.AND2, ["sel_xor", f"xor{i}"], f"m{i}_x")
        c.add_gate(f"m{i}_add", GateType.AND2, ["sel_add", sum_net], f"m{i}_s")
        _or_tree(c, [f"m{i}_a", f"m{i}_o", f"m{i}_x", f"m{i}_s"], f"Y{i}", f"m{i}_or_t")

    c.validate()
    return c


#: Gate palette for the random DAG generator: every fixed-arity type with
#: at most three inputs (the full :class:`GateType` set).
DEFAULT_DAG_GATE_TYPES: tuple[GateType, ...] = (
    GateType.INV,
    GateType.AND2,
    GateType.OR2,
    GateType.NAND2,
    GateType.NOR2,
    GateType.XOR2,
    GateType.XNOR2,
    GateType.NAND3,
    GateType.NOR3,
    GateType.AOI21,
    GateType.OAI21,
)

#: NAND/NOR/INV-style palette whose every member has OBD defect sites
#: (see :data:`repro.logic.expand.EXPANDABLE_TYPES`) -- use this for
#: random DAGs feeding OBD fault-model tests.
OBD_DAG_GATE_TYPES: tuple[GateType, ...] = (
    GateType.INV,
    GateType.NAND2,
    GateType.NOR2,
    GateType.NAND3,
    GateType.NOR3,
    GateType.AOI21,
    GateType.OAI21,
)


def random_dag(
    num_gates: int,
    seed: int = 0,
    num_inputs: int = 4,
    max_depth: int | None = None,
    max_fan_in: int = 3,
    gate_types: Sequence[GateType] | None = None,
    name: str | None = None,
) -> LogicCircuit:
    """Seeded random combinational DAG with controllable depth and fan-in.

    The positional order ``(num_gates, seed, num_inputs)`` is shared with
    the campaign circuit registry (``"rdag:40,7"`` is 40 gates, seed 7), so
    the two public entry points name the same circuit the same way.

    Gates are added one at a time; each draws a type from *gate_types*
    (restricted to at most *max_fan_in* inputs) and its input nets from the
    already-available nets.  *max_depth* both caps the circuit depth (gate
    operands are drawn only from nets below the cap) and biases one operand
    of each gate toward the deepest admissible net, so requested depths are
    actually reached; without it, operands are uniform and depth grows
    logarithmically with the net pool.  Every net with no reader becomes a
    primary output, so all gates are observable.  Identical parameters
    (including *seed*) reproduce the identical netlist.
    """
    _require(num_gates >= 1, f"random DAG needs num_gates >= 1, got {num_gates}")
    _require(num_inputs >= 1, f"random DAG needs num_inputs >= 1, got {num_inputs}")
    _require(
        max_depth is None or max_depth >= 1,
        f"random DAG needs max_depth >= 1, got {max_depth}",
    )
    _require(
        1 <= max_fan_in <= 3,
        f"random DAG fan-in must be between 1 and 3, got {max_fan_in}",
    )
    palette = tuple(gate_types) if gate_types is not None else DEFAULT_DAG_GATE_TYPES
    palette = tuple(t for t in palette if t.num_inputs <= max_fan_in)
    _require(
        bool(palette),
        f"no gate types with fan-in <= {max_fan_in} in the requested palette",
    )

    rng = random.Random(seed)
    c = LogicCircuit(name or f"rdag{num_gates}g{num_inputs}i_s{seed}")
    nets = c.add_inputs([f"I{i}" for i in range(num_inputs)])
    level = {net: 0 for net in nets}

    for index in range(num_gates):
        gate_type = palette[rng.randrange(len(palette))]
        if max_depth is not None:
            # Primary inputs sit at level 0, so this is never empty.
            candidates = [n for n in nets if level[n] < max_depth]
            # Stratify the first operand by level: pick an admissible level
            # uniformly, then a net at that level.  This reaches the depth
            # cap without funnelling all fan-out onto the few deepest nets.
            chosen_level = rng.choice(sorted({level[n] for n in candidates}))
            inputs = [rng.choice([n for n in candidates if level[n] == chosen_level])]
        else:
            candidates = nets
            inputs = [rng.choice(candidates)]
        for _ in range(gate_type.num_inputs - 1):
            inputs.append(candidates[rng.randrange(len(candidates))])
        rng.shuffle(inputs)
        output = f"n{index}"
        c.add_gate(f"g{index}", gate_type, inputs, output)
        level[output] = 1 + max(level[n] for n in inputs)
        nets.append(output)

    # Every unread gate output becomes a primary output, so all gates are
    # observable.  Unread primary inputs stay plain inputs: promoting them
    # to outputs would create gateless input-to-output "paths" that the
    # path-delay universe (rightly) rejects.
    read = {net for gate in c for net in gate.inputs}
    for gate in c:
        if gate.output not in read:
            c.add_output(gate.output)
    c.validate()
    return c


#: Registered generator families: name -> builder taking one size/seed
#: signature as documented on each function.
GENERATOR_FAMILIES: dict[str, Callable[..., LogicCircuit]] = {
    "parity": parity_tree,
    "cla": carry_lookahead_adder,
    "mult": array_multiplier,
    "cmp": magnitude_comparator,
    "alu": alu_slice,
    "rdag": random_dag,
}


def generate(family: str, *args: int, **kwargs) -> LogicCircuit:
    """Build one registered family by name (``generate("mult", 4)``)."""
    try:
        builder = GENERATOR_FAMILIES[family]
    except KeyError:
        known = ", ".join(sorted(GENERATOR_FAMILIES))
        raise LogicCircuitError(f"unknown generator family {family!r}; known: {known}") from None
    return builder(*args, **kwargs)
