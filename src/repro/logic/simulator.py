"""Logic simulation: zero-delay, two-pattern, and event-driven timing modes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from .netlist import LogicCircuit, LogicCircuitError


def _check_assignment(circuit: LogicCircuit, assignment: Mapping[str, int]) -> dict[str, int]:
    values: dict[str, int] = {}
    for net in circuit.primary_inputs:
        if net not in assignment:
            raise LogicCircuitError(f"missing value for primary input {net!r}")
        bit = int(assignment[net])
        if bit not in (0, 1):
            raise LogicCircuitError(f"primary input {net!r} must be 0 or 1, got {assignment[net]!r}")
        values[net] = bit
    return values


def simulate(circuit: LogicCircuit, assignment: Mapping[str, int]) -> dict[str, int]:
    """Zero-delay simulation: values of every net for one input assignment."""
    values = _check_assignment(circuit, assignment)
    for gate in circuit.topological_order():
        values[gate.output] = gate.evaluate(values)
    return values


def simulate_pattern(circuit: LogicCircuit, pattern: Sequence[int]) -> dict[str, int]:
    """Zero-delay simulation from a positional pattern over the primary inputs."""
    inputs = circuit.primary_inputs
    if len(pattern) != len(inputs):
        raise LogicCircuitError(
            f"pattern has {len(pattern)} bits but the circuit has {len(inputs)} inputs"
        )
    return simulate(circuit, dict(zip(inputs, pattern)))


def output_values(circuit: LogicCircuit, pattern: Sequence[int]) -> tuple[int, ...]:
    """Primary-output values for a positional input pattern."""
    values = simulate_pattern(circuit, pattern)
    return tuple(values[net] for net in circuit.primary_outputs)


def simulate_two_patterns(
    circuit: LogicCircuit,
    first: Sequence[int],
    second: Sequence[int],
) -> tuple[dict[str, int], dict[str, int]]:
    """Zero-delay values of every net under both patterns of a sequence."""
    return simulate_pattern(circuit, first), simulate_pattern(circuit, second)


def transitions_between(
    circuit: LogicCircuit,
    first: Sequence[int],
    second: Sequence[int],
) -> dict[str, tuple[int, int]]:
    """Nets whose value changes between the two patterns, with (v1, v2) pairs."""
    values1, values2 = simulate_two_patterns(circuit, first, second)
    return {
        net: (values1[net], values2[net])
        for net in circuit.nets()
        if values1[net] != values2[net]
    }


# --------------------------------------------------------------------------- #
# Event-driven timing simulation.
# --------------------------------------------------------------------------- #
@dataclass
class TimingEvent:
    """A scheduled net-value change."""

    time: float
    net: str
    value: int


@dataclass
class TimingSimulationResult:
    """Net waveforms produced by the event-driven simulator."""

    #: For every net, the list of (time, value) changes, starting at t=0.
    histories: dict[str, list[tuple[float, int]]]

    def value_at(self, net: str, time: float) -> int:
        """Value of *net* at the given time."""
        history = self.histories[net]
        value = history[0][1]
        for t, v in history:
            if t <= time:
                value = v
            else:
                break
        return value

    def final_value(self, net: str) -> int:
        return self.histories[net][-1][1]

    def arrival_time(self, net: str) -> float:
        """Time of the last value change on *net* (0.0 if it never changes)."""
        history = self.histories[net]
        return history[-1][0] if len(history) > 1 else 0.0

    def toggles(self, net: str) -> int:
        """Number of value changes on *net* after time zero."""
        return len(self.histories[net]) - 1


class EventDrivenSimulator:
    """Event-driven gate-level simulator with per-gate delays.

    The delay model is a callable ``delay(gate) -> float``; the default
    assigns one time unit to every gate (unit-delay model).  Slow gates --
    e.g. a gate whose output transition is delayed by an OBD defect -- can be
    modeled by supplying a larger delay for that gate, which is how the
    gate-level surrogate of the paper's transition-fault behaviour is built.
    """

    def __init__(
        self,
        circuit: LogicCircuit,
        delay_model: Callable[[object], float] | None = None,
    ):
        self.circuit = circuit
        self.delay_model = delay_model or (lambda gate: 1.0)

    def run(
        self,
        initial_pattern: Sequence[int],
        final_pattern: Sequence[int],
        launch_time: float = 0.0,
    ) -> TimingSimulationResult:
        """Apply *initial_pattern*, settle, then switch to *final_pattern*.

        Returns the full value history of every net.  The initial state is
        the zero-delay steady state of the first pattern; input changes are
        applied at *launch_time* and propagated with per-gate delays.
        """
        circuit = self.circuit
        steady = simulate_pattern(circuit, initial_pattern)
        histories: dict[str, list[tuple[float, int]]] = {
            net: [(0.0, steady[net])] for net in circuit.nets()
        }
        current = dict(steady)

        # Seed events with the primary-input changes.
        events: list[TimingEvent] = []
        for net, bit in zip(circuit.primary_inputs, final_pattern):
            if int(bit) != current[net]:
                events.append(TimingEvent(launch_time, net, int(bit)))

        while events:
            events.sort(key=lambda e: e.time)
            event = events.pop(0)
            if current[event.net] == event.value:
                continue
            current[event.net] = event.value
            histories[event.net].append((event.time, event.value))
            for gate, _pin in circuit.loads_of(event.net):
                new_value = gate.evaluate(current)
                scheduled_time = event.time + self.delay_model(gate)
                # Compare against the value the output is already headed for
                # (last pending event), not its present value: a pending
                # transition launched by another fanin must survive a
                # re-evaluation that agrees with the current output.
                pending = [e for e in events if e.net == gate.output]
                projected = max(pending, key=lambda e: e.time).value if pending else current[gate.output]
                if new_value != projected:
                    # Only when scheduling a replacement do we cancel pending
                    # events, and only those at or after the new event's time
                    # (now stale); earlier-scheduled events stay intact.
                    events = [
                        e
                        for e in events
                        if e.net != gate.output or e.time < scheduled_time
                    ]
                    events.append(TimingEvent(scheduled_time, gate.output, new_value))
        return TimingSimulationResult(histories=histories)
