"""ISCAS-85 ``.bench`` netlist I/O.

The ``.bench`` format is the lingua franca of the ATPG literature: one
``INPUT(net)`` / ``OUTPUT(net)`` declaration per line followed by gate
assignments ``net = OP(in1, in2, ...)``.  This module maps it onto
:class:`~repro.logic.netlist.LogicCircuit` in both directions:

* :func:`parse_bench` / :func:`load_bench` -- text (or file) to circuit,
  with line-numbered :class:`~repro.logic.netlist.LogicCircuitError`
  diagnostics for malformed statements, double drivers and undriven nets,
  plus netlist-level combinational-loop rejection;
* :func:`write_bench` / :func:`save_bench` -- circuit to text, primary
  inputs and outputs first, gates in topological order.

Conventions handled:

* ``BUFF`` (and the ``BUF`` spelling some files use) maps to
  :attr:`GateType.BUF`, ``NOT`` to :attr:`GateType.INV` -- the explicit
  fan-out buffers ISCAS netlists insert at branch stems survive a round
  trip unchanged;
* gate operators are case-insensitive on input and upper-case on output;
* wide gates (``AND`` with more than three inputs, ``XOR`` with more than
  two) are decomposed on parse into trees of the fixed-arity
  :class:`GateType` members, with deterministic ``<net>__d<i>``
  intermediate nets so re-parsing the written form is stable;
* single-input ``AND``/``OR``/``XOR`` collapse to ``BUFF`` and
  single-input ``NAND``/``NOR``/``XNOR`` to ``NOT``, as the degenerate
  reductions of their Boolean functions;
* ``AOI21``/``OAI21`` have no standard ``.bench`` operator and are written
  as extension operators of the same name (the parser accepts them, other
  tools will not see them in standard benchmark files).

Round-trip fidelity is the contract the test suite enforces: for any
circuit built from fixed-arity gates, ``parse_bench(write_bench(c))`` is
structurally identical to ``c`` up to gate instance names (``.bench`` has
no gate-name column; parsed gates are named ``g_<output net>``), and
``write_bench`` of the re-parsed circuit reproduces the text byte for
byte.
"""

from __future__ import annotations

import re
from pathlib import Path

from .gates import GateType
from .netlist import LogicCircuit, LogicCircuitError

#: Fixed-arity gate types for each variadic ``.bench`` operator, keyed by
#: number of inputs.  Operators with more inputs than the largest entry are
#: decomposed; one input collapses to BUF/INV.
_SIZED_OPS: dict[str, dict[int, GateType]] = {
    "AND": {2: GateType.AND2, 3: GateType.AND3},
    "OR": {2: GateType.OR2, 3: GateType.OR3},
    "NAND": {2: GateType.NAND2, 3: GateType.NAND3},
    "NOR": {2: GateType.NOR2, 3: GateType.NOR3},
    "XOR": {2: GateType.XOR2},
    "XNOR": {2: GateType.XNOR2},
}

#: Inner (reduction) operator and inverted-ness of each variadic operator:
#: a wide NAND is an AND-reduction with an inverting final stage.
_REDUCTIONS = {
    "AND": ("AND", False),
    "OR": ("OR", False),
    "NAND": ("AND", True),
    "NOR": ("OR", True),
    "XOR": ("XOR", False),
    "XNOR": ("XOR", True),
}

#: Fixed-arity operators accepted verbatim (extension ops included).
_FIXED_OPS = {
    "BUFF": GateType.BUF,
    "BUF": GateType.BUF,
    "NOT": GateType.INV,
    "INV": GateType.INV,
    "AOI21": GateType.AOI21,
    "OAI21": GateType.OAI21,
}

#: Canonical ``.bench`` operator for each gate type on output.
_WRITE_OPS = {
    GateType.BUF: "BUFF",
    GateType.INV: "NOT",
    GateType.AND2: "AND",
    GateType.AND3: "AND",
    GateType.OR2: "OR",
    GateType.OR3: "OR",
    GateType.NAND2: "NAND",
    GateType.NAND3: "NAND",
    GateType.NOR2: "NOR",
    GateType.NOR3: "NOR",
    GateType.XOR2: "XOR",
    GateType.XNOR2: "XNOR",
    GateType.AOI21: "AOI21",
    GateType.OAI21: "OAI21",
}

_DECL_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^\s()]+)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(r"^([^\s()=]+)\s*=\s*([A-Za-z][A-Za-z0-9]*)\s*\(\s*(.*?)\s*\)$")


def _error(line_no: int, message: str) -> LogicCircuitError:
    return LogicCircuitError(f".bench line {line_no}: {message}")


def _strip(line: str) -> str:
    """Remove the comment part and surrounding whitespace of one line."""
    hash_index = line.find("#")
    if hash_index >= 0:
        line = line[:hash_index]
    return line.strip()


def _add_variadic(
    circuit: LogicCircuit,
    op: str,
    inputs: list[str],
    output: str,
) -> None:
    """Add one variadic-operator gate, decomposing wide instances.

    The reduction tree consumes inputs left to right in chunks of the
    widest available arity; intermediate nets are named ``<output>__d<i>``
    so the decomposition is deterministic and collision-checked like any
    other net.
    """
    sized = _SIZED_OPS[op]
    inner_op, inverted = _REDUCTIONS[op]
    inner_sized = _SIZED_OPS[inner_op]
    widest = max(inner_sized)
    if len(inputs) == 1:
        final_type = GateType.INV if inverted else GateType.BUF
        circuit.add_gate(f"g_{output}", final_type, inputs, output)
        return
    aux = 0
    current = list(inputs)
    # Reduce widest-arity chunks until one final gate of the original
    # operator can finish (the loop guard keeps len(current) > widest, so a
    # full chunk always leaves at least one operand for the final gate).
    while len(current) > max(sized):
        net = f"{output}__d{aux}"
        aux += 1
        circuit.add_gate(f"g_{net}", inner_sized[widest], current[:widest], net)
        current = [net] + current[widest:]
    circuit.add_gate(f"g_{output}", sized[len(current)], current, output)


def parse_bench(text: str, name: str = "") -> LogicCircuit:
    """Parse ``.bench`` source text into a validated :class:`LogicCircuit`."""
    circuit = LogicCircuit(name)
    outputs: list[tuple[int, str]] = []
    #: Source line of each gate statement, keyed by the statement's output
    #: net (decomposed aux gates map back through their ``__d`` base name).
    statement_lines: dict[str, int] = {}
    #: First line that defined each net (INPUT declaration or assignment),
    #: so redefinition errors can name both the net and its first driver.
    defined_lines: dict[str, int] = {}
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = _strip(raw)
        if not line:
            continue
        decl = _DECL_RE.match(line)
        if decl is not None:
            kind, net = decl.group(1).upper(), decl.group(2)
            try:
                if kind == "INPUT":
                    if net in defined_lines:
                        raise _error(
                            line_no,
                            f"net {net!r} redefined: first defined at line "
                            f"{defined_lines[net]}",
                        )
                    circuit.add_input(net)
                    defined_lines[net] = line_no
                else:
                    circuit.add_output(net)
                    outputs.append((line_no, net))
            except LogicCircuitError as exc:
                if str(exc).startswith(".bench line"):
                    raise
                raise _error(line_no, str(exc)) from None
            continue
        gate = _GATE_RE.match(line)
        if gate is None:
            raise _error(line_no, f"unparseable statement {line!r}")
        output, op, arg_text = gate.group(1), gate.group(2).upper(), gate.group(3)
        inputs = [a.strip() for a in arg_text.split(",")] if arg_text else []
        if any(not a for a in inputs) or not inputs:
            raise _error(line_no, f"malformed input list in {line!r}")
        if output in defined_lines:
            raise _error(
                line_no,
                f"net {output!r} is already driven (first defined at line "
                f"{defined_lines[output]})",
            )
        statement_lines[output] = line_no
        defined_lines[output] = line_no
        try:
            if op in _FIXED_OPS:
                gate_type = _FIXED_OPS[op]
                if len(inputs) != gate_type.num_inputs:
                    raise _error(
                        line_no,
                        f"{op} expects {gate_type.num_inputs} input(s), got {len(inputs)}",
                    )
                circuit.add_gate(f"g_{output}", gate_type, inputs, output)
            elif op in _SIZED_OPS:
                _add_variadic(circuit, op, inputs, output)
            else:
                raise _error(line_no, f"unknown operator {op!r}")
        except LogicCircuitError as exc:
            if str(exc).startswith(".bench line"):
                raise
            raise _error(line_no, str(exc)) from None
    # Completeness checks with source positions: gates reading undriven
    # nets and undriven primary outputs point at the offending line.
    driven = set(circuit.primary_inputs) | {g.output for g in circuit}
    for gate in circuit:
        for net in gate.inputs:
            if net not in driven:
                stmt = gate.output.rsplit("__d", 1)[0]
                raise _error(
                    statement_lines.get(stmt, statement_lines.get(gate.output, 0)),
                    f"gate output {stmt!r} reads undriven net {net!r}",
                )
    for line_no, net in outputs:
        if net not in driven:
            raise _error(line_no, f"primary output {net!r} is not driven")
    # validate() re-checks closure and rejects combinational loops (which
    # have no single offending line to point at).
    try:
        circuit.validate()
    except LogicCircuitError as exc:
        raise LogicCircuitError(f".bench netlist {name!r}: {exc}") from None
    return circuit


def load_bench(path: str | Path, name: str | None = None) -> LogicCircuit:
    """Read and parse a ``.bench`` file; the circuit is named after the file."""
    path = Path(path)
    return parse_bench(path.read_text(), name=name if name is not None else path.stem)


def write_bench(circuit: LogicCircuit, header: bool = True) -> str:
    """Render a circuit as ``.bench`` text.

    Primary inputs come first (declaration order), then primary outputs,
    then one assignment per gate in topological order.  With ``header`` a
    comment block records the circuit name and structural summary; parsers
    (including this module's) ignore it.
    """
    lines: list[str] = []
    if header:
        lines.append(f"# {circuit.name or 'circuit'}")
        s = circuit.stats()
        lines.append(
            f"# {s.num_inputs} inputs, {s.num_outputs} outputs, "
            f"{s.num_gates} gates, depth {s.depth}"
        )
    for net in circuit.primary_inputs:
        lines.append(f"INPUT({net})")
    for net in circuit.primary_outputs:
        lines.append(f"OUTPUT({net})")
    lines.append("")
    for gate in circuit.topological_order():
        op = _WRITE_OPS[gate.gate_type]
        lines.append(f"{gate.output} = {op}({', '.join(gate.inputs)})")
    return "\n".join(lines) + "\n"


def save_bench(circuit: LogicCircuit, path: str | Path, header: bool = True) -> Path:
    """Write a circuit to a ``.bench`` file and return the path."""
    path = Path(path)
    path.write_text(write_bench(circuit, header=header))
    return path


def structurally_equal(a: LogicCircuit, b: LogicCircuit) -> bool:
    """True when two circuits match up to gate instance names.

    Compares primary input/output order and, for every driven net, the
    driving gate's type and input-net tuple -- the exact information a
    ``.bench`` file carries.
    """
    if a.primary_inputs != b.primary_inputs or a.primary_outputs != b.primary_outputs:
        return False
    drivers_a = {g.output: (g.gate_type, g.inputs) for g in a}
    drivers_b = {g.output: (g.gate_type, g.inputs) for g in b}
    return drivers_a == drivers_b
