"""Gate types and Boolean evaluation.

This is the leaf module shared by the gate-level substrate
(:mod:`repro.logic`), the transistor-level cells (:mod:`repro.cells`) and the
fault/ATPG machinery: a single place that knows what each gate computes.
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence


class GateType(str, Enum):
    """Supported combinational gate types."""

    BUF = "BUF"
    INV = "INV"
    AND2 = "AND2"
    AND3 = "AND3"
    OR2 = "OR2"
    OR3 = "OR3"
    NAND2 = "NAND2"
    NAND3 = "NAND3"
    NOR2 = "NOR2"
    NOR3 = "NOR3"
    XOR2 = "XOR2"
    XNOR2 = "XNOR2"
    AOI21 = "AOI21"
    OAI21 = "OAI21"

    @property
    def num_inputs(self) -> int:
        return _NUM_INPUTS[self]

    @property
    def is_inverting(self) -> bool:
        """True when the gate output is an inverting function of its inputs."""
        return self in _INVERTING

    def evaluate(self, inputs: Sequence[int]) -> int:
        """Boolean output (0/1) for the given input bits."""
        return evaluate_gate(self, inputs)


_NUM_INPUTS = {
    GateType.BUF: 1,
    GateType.INV: 1,
    GateType.AND2: 2,
    GateType.AND3: 3,
    GateType.OR2: 2,
    GateType.OR3: 3,
    GateType.NAND2: 2,
    GateType.NAND3: 3,
    GateType.NOR2: 2,
    GateType.NOR3: 3,
    GateType.XOR2: 2,
    GateType.XNOR2: 2,
    GateType.AOI21: 3,
    GateType.OAI21: 3,
}

_INVERTING = {
    GateType.INV,
    GateType.NAND2,
    GateType.NAND3,
    GateType.NOR2,
    GateType.NOR3,
    GateType.XNOR2,
    GateType.AOI21,
    GateType.OAI21,
}


def _check_bits(gate_type: GateType, inputs: Sequence[int]) -> tuple[int, ...]:
    bits = tuple(int(b) for b in inputs)
    if len(bits) != gate_type.num_inputs:
        raise ValueError(
            f"{gate_type.value} expects {gate_type.num_inputs} inputs, got {len(bits)}"
        )
    if any(b not in (0, 1) for b in bits):
        raise ValueError(f"inputs must be 0/1 bits, got {inputs!r}")
    return bits


def evaluate_gate(gate_type: GateType | str, inputs: Sequence[int]) -> int:
    """Evaluate a gate's Boolean function on concrete 0/1 inputs."""
    gate_type = GateType(gate_type)
    bits = _check_bits(gate_type, inputs)
    if gate_type == GateType.BUF:
        return bits[0]
    if gate_type == GateType.INV:
        return 1 - bits[0]
    if gate_type in (GateType.AND2, GateType.AND3):
        return int(all(bits))
    if gate_type in (GateType.OR2, GateType.OR3):
        return int(any(bits))
    if gate_type in (GateType.NAND2, GateType.NAND3):
        return int(not all(bits))
    if gate_type in (GateType.NOR2, GateType.NOR3):
        return int(not any(bits))
    if gate_type == GateType.XOR2:
        return bits[0] ^ bits[1]
    if gate_type == GateType.XNOR2:
        return 1 - (bits[0] ^ bits[1])
    if gate_type == GateType.AOI21:
        return int(not ((bits[0] and bits[1]) or bits[2]))
    if gate_type == GateType.OAI21:
        return int(not ((bits[0] or bits[1]) and bits[2]))
    raise ValueError(f"unhandled gate type {gate_type!r}")  # pragma: no cover


def truth_table(gate_type: GateType | str) -> dict[tuple[int, ...], int]:
    """Full truth table of a gate as a dict from input tuples to output bit."""
    gate_type = GateType(gate_type)
    n = gate_type.num_inputs
    table: dict[tuple[int, ...], int] = {}
    for value in range(2**n):
        bits = tuple((value >> (n - 1 - i)) & 1 for i in range(n))
        table[bits] = evaluate_gate(gate_type, bits)
    return table


def controlling_value(gate_type: GateType | str) -> int | None:
    """The controlling input value of the gate, if it has one.

    A controlling value forces the output regardless of the other inputs
    (0 for AND/NAND, 1 for OR/NOR).  XOR-type and complex gates return None.
    """
    gate_type = GateType(gate_type)
    if gate_type in (GateType.AND2, GateType.AND3, GateType.NAND2, GateType.NAND3):
        return 0
    if gate_type in (GateType.OR2, GateType.OR3, GateType.NOR2, GateType.NOR3):
        return 1
    return None


def all_input_patterns(num_inputs: int) -> list[tuple[int, ...]]:
    """All 2**n input bit tuples in ascending binary order."""
    return [
        tuple((value >> (num_inputs - 1 - i)) & 1 for i in range(num_inputs))
        for value in range(2**num_inputs)
    ]


def all_input_transitions(num_inputs: int) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
    """All ordered two-pattern sequences (v1, v2) with v1 != v2.

    For a 3-input circuit this yields 8 * 7 = 56 ordered pairs.  Repeated
    patterns (v1 == v2) are excluded because they cannot launch a transition.
    The paper quotes "72 possible input transitions" for its 3-input
    full-adder example without defining the count; see
    ``repro.experiments.adder_stats`` for how the reproduction reports both
    numbers.
    """
    patterns = all_input_patterns(num_inputs)
    return [(v1, v2) for v1 in patterns for v2 in patterns if v1 != v2]
