"""Compiled bit-parallel circuit evaluation with per-circuit code generation.

A :class:`CompiledCircuit` levelizes a :class:`~repro.logic.netlist.LogicCircuit`
once into a flat, topologically ordered op list over dense integer net ids.
Evaluation then runs over plain Python ints used as ``word_bits``-wide
bit-vectors: bit *i* of every net word carries the value of that net under
pattern *i* of the block, so one pass simulates up to ``word_bits`` patterns
at once.  Python ints are arbitrary precision, so the block width is a free
parameter: the default of :data:`DEFAULT_WORD_BITS` packs several hundred
patterns per pass, amortizing the per-op overhead that dominates a pure-Python
engine (:data:`WORD_BITS` remains the legacy 64-bit convention of the
interpreter baseline).

Two evaluation strategies sit behind one API:

* **codegen** (default) -- at compile time the op list is turned into the
  source of one straight-line Python function (one assignment per gate over
  local variables, no list indexing, no dispatch) and ``exec``-compiled.
  Masking is fused only into the ops that need it: inputs are masked once on
  entry, AND/OR/XOR of already-masked words stay masked, and only inverting
  ops re-mask.  Forced re-simulation uses lazily compiled **per-cone
  kernels** (:meth:`CompiledCircuit.cone_diff`) that read just the cone's
  side inputs and return the output-difference word directly, instead of
  copying the full O(num_nets) value list per fault per block.
* **interpreter** (``codegen=False``) -- the original tuple-dispatch loop
  (:func:`_run_ops`), kept as the in-process baseline the generated code is
  benchmarked and tested against.

Both strategies are bit-identical for every ``word_bits``; the serial engine
in :mod:`repro.atpg.fault_sim` remains the external reference.

The helpers :func:`pack_pattern_blocks` / :func:`pack_pair_blocks` slice a
pattern (pair) sequence into word-sized blocks, and :func:`iter_bits` walks
the set bits of a detection word back to pattern indices.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from .gates import GateType
from .netlist import LogicCircuit, LogicCircuitError

#: Default number of patterns packed into one word of the engine.  Wider than
#: a machine word on purpose: per-op Python overhead, not bit-width, bounds
#: throughput, and CPython big-int bitwise ops on a few hundred bits cost
#: barely more than on 64.  512 is the measured sweet spot on the benchmark
#: workloads; past ~1024 bits the limb work starts to dominate again.
DEFAULT_WORD_BITS = 512

#: The legacy fixed block width of the interpreter engine (what a C engine
#: would use); kept as the baseline convention for benchmarks and tests.
WORD_BITS = 64

# Flat op codes; variadic gate types (AND2/AND3, ...) share one code and are
# distinguished by their input count alone.
_BUF, _INV, _AND, _OR, _NAND, _NOR, _XOR, _XNOR, _AOI21, _OAI21 = range(10)

_OPCODES: dict[GateType, int] = {
    GateType.BUF: _BUF,
    GateType.INV: _INV,
    GateType.AND2: _AND,
    GateType.AND3: _AND,
    GateType.OR2: _OR,
    GateType.OR3: _OR,
    GateType.NAND2: _NAND,
    GateType.NAND3: _NAND,
    GateType.NOR2: _NOR,
    GateType.NOR3: _NOR,
    GateType.XOR2: _XOR,
    GateType.XNOR2: _XNOR,
    GateType.AOI21: _AOI21,
    GateType.OAI21: _OAI21,
}

#: One op: (opcode, output net id, input net ids).
Op = tuple[int, int, tuple[int, ...]]


def _run_ops(ops: Sequence[Op], values: list[int], mask: int) -> None:
    """Interpreter baseline: evaluate *ops* in place over packed words."""
    for code, out, ins in ops:
        if code == _NAND:
            word = values[ins[0]]
            for index in ins[1:]:
                word &= values[index]
            word = ~word & mask
        elif code == _INV:
            word = ~values[ins[0]] & mask
        elif code == _AND:
            word = values[ins[0]]
            for index in ins[1:]:
                word &= values[index]
        elif code == _OR:
            word = values[ins[0]]
            for index in ins[1:]:
                word |= values[index]
        elif code == _NOR:
            word = values[ins[0]]
            for index in ins[1:]:
                word |= values[index]
            word = ~word & mask
        elif code == _XOR:
            word = values[ins[0]] ^ values[ins[1]]
        elif code == _XNOR:
            word = ~(values[ins[0]] ^ values[ins[1]]) & mask
        elif code == _AOI21:
            word = ~((values[ins[0]] & values[ins[1]]) | values[ins[2]]) & mask
        elif code == _OAI21:
            word = ~((values[ins[0]] | values[ins[1]]) & values[ins[2]]) & mask
        else:  # _BUF
            word = values[ins[0]]
        values[out] = word


def _op_expression(code: int, names: Sequence[str]) -> str:
    """Python expression computing one op over already-masked operand names.

    The masking invariant of the generated code: every operand name holds a
    masked word, AND/OR/XOR preserve maskedness, so only inverting ops append
    ``& mask``.
    """
    if code == _BUF:
        return names[0]
    if code == _INV:
        return f"~{names[0]} & mask"
    if code == _AND:
        return " & ".join(names)
    if code == _OR:
        return " | ".join(names)
    if code == _NAND:
        return f"~({' & '.join(names)}) & mask"
    if code == _NOR:
        return f"~({' | '.join(names)}) & mask"
    if code == _XOR:
        return f"{names[0]} ^ {names[1]}"
    if code == _XNOR:
        return f"~({names[0]} ^ {names[1]}) & mask"
    if code == _AOI21:
        return f"~(({names[0]} & {names[1]}) | {names[2]}) & mask"
    if code == _OAI21:
        return f"~(({names[0]} | {names[1]}) & {names[2]}) & mask"
    raise LogicCircuitError(f"unhandled opcode {code}")  # pragma: no cover


def _check_word_bits(word_bits: int) -> None:
    if word_bits < 1:
        raise LogicCircuitError(f"word_bits must be >= 1, got {word_bits}")


class CompiledCircuit:
    """A levelized, bit-parallel evaluator for one :class:`LogicCircuit`.

    ``word_bits`` sets the block width every evaluation of this instance
    uses; ``codegen=False`` selects the interpreter baseline instead of the
    generated straight-line code.
    """

    def __init__(
        self,
        circuit: LogicCircuit,
        word_bits: int = DEFAULT_WORD_BITS,
        codegen: bool = True,
    ):
        _check_word_bits(word_bits)
        self.circuit = circuit
        self.word_bits = word_bits
        self.codegen = codegen
        order = circuit.topological_order()

        #: Net name -> dense id; primary inputs first, then gate outputs in
        #: topological order, so evaluating ops in id order is always legal.
        self.net_index: dict[str, int] = {}
        for net in circuit.primary_inputs:
            self.net_index[net] = len(self.net_index)
        self.input_indices: tuple[int, ...] = tuple(range(len(self.net_index)))
        for gate in order:
            self.net_index[gate.output] = len(self.net_index)
        self.num_nets = len(self.net_index)
        self.net_names: tuple[str, ...] = tuple(self.net_index)

        self.ops: tuple[Op, ...] = tuple(
            (
                _OPCODES[gate.gate_type],
                self.net_index[gate.output],
                tuple(self.net_index[n] for n in gate.inputs),
            )
            for gate in order
        )
        self.output_indices: tuple[int, ...] = tuple(
            self.net_index[n] for n in circuit.primary_outputs
        )

        # Loads adjacency over op list positions, for cone extraction.
        self._loads: dict[int, list[int]] = {}
        for position, (_code, _out, ins) in enumerate(self.ops):
            for index in set(ins):
                self._loads.setdefault(index, []).append(position)
        self._cones: dict[int, tuple[tuple[Op, ...], tuple[int, ...]]] = {}
        self._eval_fn: Callable[[Sequence[int], int], list[int]] | None = (
            self._compile_evaluate() if codegen else None
        )
        self._diff_kernels: dict[int, Callable[[Sequence[int], int, int], int]] = {}

    # ------------------------------------------------------------------ #
    # Code generation.
    # ------------------------------------------------------------------ #
    def _exec(self, lines: list[str], name: str) -> Callable:
        source = "\n".join(lines)
        namespace: dict = {}
        exec(compile(source, f"<compiled {self.circuit.name}:{name}>", "exec"), {}, namespace)
        return namespace[name]

    def _compile_evaluate(self) -> Callable[[Sequence[int], int], list[int]]:
        """Straight-line full-circuit evaluator: one assignment per gate."""
        lines = ["def _evaluate(inputs, mask):"]
        for position, index in enumerate(self.input_indices):
            lines.append(f"    v{index} = inputs[{position}] & mask")
        for code, out, ins in self.ops:
            lines.append(f"    v{out} = {_op_expression(code, [f'v{i}' for i in ins])}")
        body = ", ".join(f"v{i}" for i in range(self.num_nets))
        lines.append(f"    return [{body}]")
        return self._exec(lines, "_evaluate")

    def _compile_cone_kernel(self, net_index: int) -> Callable[[Sequence[int], int, int], int]:
        """Specialized forced-resim kernel for one net's fan-out cone.

        The kernel re-evaluates only the cone's ops (side inputs read from
        the base value list, cone nets held in locals -- nothing is copied or
        written back) and returns the OR over the cone's reachable primary
        outputs of ``faulty ^ base``: the detection word, directly.
        """
        ops, outputs = self.cone(net_index)
        computed = {net_index} | {out for _code, out, _ins in ops}
        side_inputs = sorted(
            {i for _code, _out, ins in ops for i in ins if i not in computed}
        )
        lines = ["def _kernel(values, forced, mask):"]
        lines.append(f"    v{net_index} = forced & mask")
        for index in side_inputs:
            lines.append(f"    v{index} = values[{index}]")
        for code, out, ins in ops:
            lines.append(f"    v{out} = {_op_expression(code, [f'v{i}' for i in ins])}")
        terms = [f"(v{index} ^ values[{index}])" for index in outputs]
        lines.append("    return " + (" | ".join(terms) if terms else "0"))
        return self._exec(lines, "_kernel")

    # ------------------------------------------------------------------ #
    # Evaluation.
    # ------------------------------------------------------------------ #
    def evaluate(self, input_words: Sequence[int], mask: int) -> list[int]:
        """Packed good-machine evaluation of one pattern block.

        ``input_words[i]`` holds the packed values of primary input *i*;
        returns the packed value of every net, indexed by net id.
        """
        if len(input_words) != len(self.input_indices):
            raise LogicCircuitError(
                f"expected {len(self.input_indices)} input words, got {len(input_words)}"
            )
        if self._eval_fn is not None:
            return self._eval_fn(input_words, mask)
        values = [0] * self.num_nets
        for index, word in zip(self.input_indices, input_words):
            values[index] = word & mask
        _run_ops(self.ops, values, mask)
        return values

    def cone(self, net_index: int) -> tuple[tuple[Op, ...], tuple[int, ...]]:
        """Fan-out cone of a net: (ops to re-evaluate, reachable output ids).

        The op slice excludes the driver of the net itself (the net stays
        clamped during forced re-simulation) and is in topological order; the
        output ids include the net when it is itself a primary output.
        """
        cached = self._cones.get(net_index)
        if cached is not None:
            return cached
        positions: set[int] = set()
        stack = list(self._loads.get(net_index, ()))
        while stack:
            position = stack.pop()
            if position in positions:
                continue
            positions.add(position)
            stack.extend(self._loads.get(self.ops[position][1], ()))
        ops = tuple(self.ops[p] for p in sorted(positions))
        cone_nets = {net_index} | {op[1] for op in ops}
        outputs = tuple(i for i in self.output_indices if i in cone_nets)
        result = (ops, outputs)
        self._cones[net_index] = result
        return result

    def evaluate_forced(
        self,
        base_values: Sequence[int],
        net_index: int,
        forced_word: int,
        mask: int,
    ) -> list[int]:
        """Re-simulate *base_values* with one net clamped to *forced_word*.

        Only the forced net's fan-out cone is re-evaluated; nets outside the
        cone keep their base values, so callers must restrict output
        comparisons to :meth:`cone`'s reachable outputs.  This is the
        full-value-list compatibility path; the fault-simulation hot path is
        :meth:`cone_diff`.
        """
        ops, _ = self.cone(net_index)
        values = list(base_values)
        values[net_index] = forced_word & mask
        _run_ops(ops, values, mask)
        return values

    def _interp_cone_kernel(
        self, net_index: int
    ) -> Callable[[Sequence[int], int, int], int]:
        """Interpreter-mode kernel with the same calling convention: copy the
        value list, re-run the cone ops, XOR-compare the reachable outputs."""
        ops, outputs = self.cone(net_index)

        def _kernel(values: Sequence[int], forced: int, mask: int) -> int:
            faulty = list(values)
            faulty[net_index] = forced & mask
            _run_ops(ops, faulty, mask)
            diff = 0
            for index in outputs:
                diff |= faulty[index] ^ values[index]
            return diff

        return _kernel

    def cone_kernel(self, net_index: int) -> Callable[[Sequence[int], int, int], int]:
        """The forced-resim kernel for one net, compiled (or built) lazily.

        ``kernel(base_values, forced_word, mask)`` returns the detection
        word: the OR of ``faulty ^ base`` over the cone's reachable primary
        outputs when the net is clamped to *forced_word*.  Fault-simulation
        drivers fetch the kernel once per fault site and call it per block.
        """
        kernel = self._diff_kernels.get(net_index)
        if kernel is None:
            if self.codegen:
                kernel = self._compile_cone_kernel(net_index)
            else:
                kernel = self._interp_cone_kernel(net_index)
            self._diff_kernels[net_index] = kernel
        return kernel

    def cone_diff(
        self,
        base_values: Sequence[int],
        net_index: int,
        forced_word: int,
        mask: int,
    ) -> int:
        """Detection word of clamping one net: OR of ``faulty ^ base`` over
        the cone's reachable primary outputs.

        Equivalent to :meth:`evaluate_forced` followed by XOR-comparing the
        reachable outputs, but via :meth:`cone_kernel` -- the codegen kernel
        never copies the value list.
        """
        return self.cone_kernel(net_index)(base_values, forced_word, mask)


def compile_circuit(
    circuit: LogicCircuit,
    word_bits: int = DEFAULT_WORD_BITS,
    codegen: bool = True,
) -> CompiledCircuit:
    """Levelize *circuit* into a :class:`CompiledCircuit`."""
    return CompiledCircuit(circuit, word_bits=word_bits, codegen=codegen)


# --------------------------------------------------------------------------- #
# Pattern packing.
# --------------------------------------------------------------------------- #
def _pack_into(
    words: list[int],
    pattern: Sequence[int],
    bit: int,
    index: int,
    num_inputs: int,
) -> None:
    """OR one pattern into *words* at bit position *bit* (validating it)."""
    if len(pattern) != num_inputs:
        raise LogicCircuitError(
            f"pattern {index} has {len(pattern)} bits, expected {num_inputs}"
        )
    select = 1 << bit
    for position, value in enumerate(pattern):
        if value == 1:
            words[position] |= select
        elif value != 0:
            raise LogicCircuitError(
                f"pattern {index} bit {position} must be 0 or 1, got {value!r}"
            )


def pack_pattern_blocks(
    patterns: Sequence[Sequence[int]],
    num_inputs: int,
    word_bits: int = DEFAULT_WORD_BITS,
) -> Iterator[tuple[int, int, list[int]]]:
    """Slice *patterns* into packed blocks of (base index, mask, input words).

    Pattern ``base + i`` occupies bit *i* of every word; ``mask`` has one bit
    per pattern actually present in the (possibly short, final) block.
    """
    _check_word_bits(word_bits)
    for base in range(0, len(patterns), word_bits):
        block = patterns[base : base + word_bits]
        words = [0] * num_inputs
        for bit, pattern in enumerate(block):
            _pack_into(words, pattern, bit, base + bit, num_inputs)
        yield base, (1 << len(block)) - 1, words


def pack_pair_blocks(
    pairs: Sequence[tuple[Sequence[int], Sequence[int]]],
    num_inputs: int,
    word_bits: int = DEFAULT_WORD_BITS,
) -> Iterator[tuple[int, int, list[int], list[int]]]:
    """Like :func:`pack_pattern_blocks` for two-pattern sequences.

    Yields (base index, mask, first-pattern words, second-pattern words).
    Streams block-wise: only one block of pairs is touched at a time, never
    full first/second copies of the whole sequence.
    """
    _check_word_bits(word_bits)
    for base in range(0, len(pairs), word_bits):
        block = pairs[base : base + word_bits]
        words1 = [0] * num_inputs
        words2 = [0] * num_inputs
        for bit, (first, second) in enumerate(block):
            _pack_into(words1, first, bit, base + bit, num_inputs)
            _pack_into(words2, second, bit, base + bit, num_inputs)
        yield base, (1 << len(block)) - 1, words1, words2


def iter_bits(word: int) -> Iterator[int]:
    """Indices of the set bits of *word*, in ascending order."""
    while word:
        low = word & -word
        yield low.bit_length() - 1
        word ^= low


#: Per-byte set-bit offsets, for decoding detection words a byte at a time.
_BYTE_BITS: tuple[tuple[int, ...], ...] = tuple(
    tuple(bit for bit in range(8) if (value >> bit) & 1) for value in range(256)
)


def decode_into(out: list[int], word: int, base: int) -> None:
    """Append ``base + i`` to *out* for every set bit *i* of *word*, ascending.

    Equivalent to ``out.extend(base + b for b in iter_bits(word))`` but walks
    the word a byte at a time through a lookup table -- decoding detection
    words back to pattern indices is hot enough in wide-word fault simulation
    to matter.
    """
    append = out.append
    for position, byte in enumerate(word.to_bytes((word.bit_length() + 7) >> 3, "little")):
        if byte:
            offset = base + (position << 3)
            for bit in _BYTE_BITS[byte]:
                append(offset + bit)
