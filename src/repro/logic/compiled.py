"""Compiled bit-parallel circuit evaluation with per-circuit code generation.

A :class:`CompiledCircuit` levelizes a :class:`~repro.logic.netlist.LogicCircuit`
once into a flat, topologically ordered op list over dense integer net ids.
Evaluation then runs over plain Python ints used as ``word_bits``-wide
bit-vectors: bit *i* of every net word carries the value of that net under
pattern *i* of the block, so one pass simulates up to ``word_bits`` patterns
at once.  Python ints are arbitrary precision, so the block width is a free
parameter: the default of :data:`DEFAULT_WORD_BITS` packs several hundred
patterns per pass, amortizing the per-op overhead that dominates a pure-Python
engine (:data:`WORD_BITS` remains the legacy 64-bit convention of the
interpreter baseline).

The packed *word type* is abstract: the generated code only ever applies
``& | ^ ~`` to already-masked operands, so the same straight-line source runs
over two interchangeable **backends** (:data:`BACKENDS`):

* ``backend="int"`` (default) -- arbitrary-precision Python ints, the
  reference backend described above;
* ``backend="numpy"`` -- little-endian ``uint64`` NumPy arrays of
  ``ceil(word_bits / 64)`` elements, where every bitwise op is one
  vectorized ufunc call.  Per-op Python overhead is then amortized over the
  whole array instead of per big-int limb, which is what lets the numpy
  engine default to much wider blocks (:data:`DEFAULT_NUMPY_WORD_BITS`).
  Cone kernels additionally accept a *stacked* ``(g, n_words)`` forced
  array and broadcast the whole cone re-simulation across a fault group in
  one pass (PPSFP batching -- see :mod:`repro.atpg.parallel_sim`).
  NumPy is an optional dependency (``pip install repro[numpy]``); the
  backend raises :class:`LogicCircuitError` when requested without it.

Two evaluation strategies sit behind one API:

* **codegen** (default) -- at compile time the op list is turned into the
  source of one straight-line Python function (one assignment per gate over
  local variables, no list indexing, no dispatch) and ``exec``-compiled.
  Masking is fused only into the ops that need it: inputs are masked once on
  entry, AND/OR/XOR of already-masked words stay masked, and only inverting
  ops re-mask.  Forced re-simulation uses lazily compiled **per-cone
  kernels** (:meth:`CompiledCircuit.cone_diff`) that read just the cone's
  side inputs and return the output-difference word directly, instead of
  copying the full O(num_nets) value list per fault per block.
* **interpreter** (``codegen=False``) -- the original tuple-dispatch loop
  (:func:`_run_ops`), kept as the in-process baseline the generated code is
  benchmarked and tested against.

Both strategies are bit-identical for every ``word_bits``; the serial engine
in :mod:`repro.atpg.fault_sim` remains the external reference.

The helpers :func:`pack_pattern_blocks` / :func:`pack_pair_blocks` slice a
pattern (pair) sequence into word-sized blocks, and :func:`iter_bits` walks
the set bits of a detection word back to pattern indices.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from .gates import GateType
from .netlist import LogicCircuit, LogicCircuitError

try:  # Optional dependency: the "numpy" word backend.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via HAVE_NUMPY monkeypatching
    _np = None

#: Whether the optional NumPy word backend is importable in this process.
HAVE_NUMPY = _np is not None

#: Default number of patterns packed into one word of the engine.  Wider than
#: a machine word on purpose: per-op Python overhead, not bit-width, bounds
#: throughput, and CPython big-int bitwise ops on a few hundred bits cost
#: barely more than on 64.  512 is the measured sweet spot on the benchmark
#: workloads; past ~1024 bits the limb work starts to dominate again.
DEFAULT_WORD_BITS = 512

#: The legacy fixed block width of the interpreter engine (what a C engine
#: would use); kept as the baseline convention for benchmarks and tests.
WORD_BITS = 64

#: Default block width of the numpy backend.  Vectorized ufuncs have a fixed
#: per-call cost but stream the array body at near memory bandwidth, so --
#: unlike big ints, whose limb loop makes >1024-bit words a wash -- the numpy
#: sweet spot is much wider: thousands of patterns per pass.
DEFAULT_NUMPY_WORD_BITS = 16384

#: Registered packed word backends: ``"int"`` (arbitrary-precision Python
#: ints, the reference) and ``"numpy"`` (uint64 ndarrays, optional).
BACKENDS = ("int", "numpy")


def _check_backend(backend: str) -> None:
    if backend not in BACKENDS:
        raise LogicCircuitError(
            f"unknown packed word backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "numpy" and not HAVE_NUMPY:
        raise LogicCircuitError(
            "the numpy word backend requires the optional numpy dependency "
            "(pip install 'repro[numpy]'); use the int-backend engines "
            "('packed'/'interp'/'serial') without it"
        )

# Flat op codes; variadic gate types (AND2/AND3, ...) share one code and are
# distinguished by their input count alone.
_BUF, _INV, _AND, _OR, _NAND, _NOR, _XOR, _XNOR, _AOI21, _OAI21 = range(10)

_OPCODES: dict[GateType, int] = {
    GateType.BUF: _BUF,
    GateType.INV: _INV,
    GateType.AND2: _AND,
    GateType.AND3: _AND,
    GateType.OR2: _OR,
    GateType.OR3: _OR,
    GateType.NAND2: _NAND,
    GateType.NAND3: _NAND,
    GateType.NOR2: _NOR,
    GateType.NOR3: _NOR,
    GateType.XOR2: _XOR,
    GateType.XNOR2: _XNOR,
    GateType.AOI21: _AOI21,
    GateType.OAI21: _OAI21,
}

#: One op: (opcode, output net id, input net ids).
Op = tuple[int, int, tuple[int, ...]]


def _run_ops(ops: Sequence[Op], values: list, mask) -> None:
    """Interpreter baseline: evaluate *ops* in place over packed words.

    Generic over the word backend: operands only ever see ``& | ^ ~``, so the
    same loop runs over Python ints and numpy uint64 arrays.  The reductions
    deliberately rebind (``word = word & ...``) instead of augmenting in
    place, which would mutate a shared ndarray operand.
    """
    for code, out, ins in ops:
        if code == _NAND:
            word = values[ins[0]]
            for index in ins[1:]:
                word = word & values[index]
            word = ~word & mask
        elif code == _INV:
            word = ~values[ins[0]] & mask
        elif code == _AND:
            word = values[ins[0]]
            for index in ins[1:]:
                word = word & values[index]
        elif code == _OR:
            word = values[ins[0]]
            for index in ins[1:]:
                word = word | values[index]
        elif code == _NOR:
            word = values[ins[0]]
            for index in ins[1:]:
                word = word | values[index]
            word = ~word & mask
        elif code == _XOR:
            word = values[ins[0]] ^ values[ins[1]]
        elif code == _XNOR:
            word = ~(values[ins[0]] ^ values[ins[1]]) & mask
        elif code == _AOI21:
            word = ~((values[ins[0]] & values[ins[1]]) | values[ins[2]]) & mask
        elif code == _OAI21:
            word = ~((values[ins[0]] | values[ins[1]]) & values[ins[2]]) & mask
        else:  # _BUF
            word = values[ins[0]]
        values[out] = word


def _op_value(code: int, ins: tuple[int, ...], values: list, mask):
    """One op's output word, same dispatch as :func:`_run_ops`.

    Split out so :meth:`CompiledCircuit.batch_cone_detect` can interleave op
    evaluation with per-row fault clamping; the interpreter loop keeps its
    own inlined copy to avoid a per-gate call on its hot path.

    Inverting gates complement via ``word ^ mask`` rather than
    ``~word & mask``: every operand keeps its pad bits zero (the packing
    invariant), so the two are equal and the xor saves one full array pass
    per inverting op on the batched hot path.
    """
    if code == _NAND:
        word = values[ins[0]]
        for index in ins[1:]:
            word = word & values[index]
        return word ^ mask
    if code == _INV:
        return values[ins[0]] ^ mask
    if code == _AND:
        word = values[ins[0]]
        for index in ins[1:]:
            word = word & values[index]
        return word
    if code == _OR:
        word = values[ins[0]]
        for index in ins[1:]:
            word = word | values[index]
        return word
    if code == _NOR:
        word = values[ins[0]]
        for index in ins[1:]:
            word = word | values[index]
        return word ^ mask
    if code == _XOR:
        return values[ins[0]] ^ values[ins[1]]
    if code == _XNOR:
        return values[ins[0]] ^ values[ins[1]] ^ mask
    if code == _AOI21:
        return ((values[ins[0]] & values[ins[1]]) | values[ins[2]]) ^ mask
    if code == _OAI21:
        return ((values[ins[0]] | values[ins[1]]) & values[ins[2]]) ^ mask
    return values[ins[0]]  # _BUF


def _op_expression(code: int, names: Sequence[str]) -> str:
    """Python expression computing one op over already-masked operand names.

    The masking invariant of the generated code: every operand name holds a
    masked word, AND/OR/XOR preserve maskedness, so only inverting ops append
    ``& mask``.
    """
    if code == _BUF:
        return names[0]
    if code == _INV:
        return f"~{names[0]} & mask"
    if code == _AND:
        return " & ".join(names)
    if code == _OR:
        return " | ".join(names)
    if code == _NAND:
        return f"~({' & '.join(names)}) & mask"
    if code == _NOR:
        return f"~({' | '.join(names)}) & mask"
    if code == _XOR:
        return f"{names[0]} ^ {names[1]}"
    if code == _XNOR:
        return f"~({names[0]} ^ {names[1]}) & mask"
    if code == _AOI21:
        return f"~(({names[0]} & {names[1]}) | {names[2]}) & mask"
    if code == _OAI21:
        return f"~(({names[0]} | {names[1]}) & {names[2]}) & mask"
    raise LogicCircuitError(f"unhandled opcode {code}")  # pragma: no cover


def _check_word_bits(word_bits: int) -> None:
    if word_bits < 1:
        raise LogicCircuitError(f"word_bits must be >= 1, got {word_bits}")


class CompiledCircuit:
    """A levelized, bit-parallel evaluator for one :class:`LogicCircuit`.

    ``word_bits`` sets the block width every evaluation of this instance
    uses; ``codegen=False`` selects the interpreter baseline instead of the
    generated straight-line code.  ``backend`` picks the packed word type
    (:data:`BACKENDS`): the evaluator itself is backend-agnostic -- the same
    compiled source runs over ints and uint64 arrays -- but drivers use the
    declared backend to pick pack/decode helpers and mask representation, so
    a compiled instance is only valid for engines of the same backend.
    """

    def __init__(
        self,
        circuit: LogicCircuit,
        word_bits: int = DEFAULT_WORD_BITS,
        codegen: bool = True,
        backend: str = "int",
    ):
        _check_word_bits(word_bits)
        _check_backend(backend)
        self.circuit = circuit
        self.word_bits = word_bits
        self.codegen = codegen
        self.backend = backend
        #: uint64 array length holding one full ``word_bits``-wide block
        #: (ragged final blocks use shorter arrays sized to the actual mask).
        self.num_words = (word_bits + 63) >> 6
        order = circuit.topological_order()

        #: Net name -> dense id; primary inputs first, then gate outputs in
        #: topological order, so evaluating ops in id order is always legal.
        self.net_index: dict[str, int] = {}
        for net in circuit.primary_inputs:
            self.net_index[net] = len(self.net_index)
        self.input_indices: tuple[int, ...] = tuple(range(len(self.net_index)))
        for gate in order:
            self.net_index[gate.output] = len(self.net_index)
        self.num_nets = len(self.net_index)
        self.net_names: tuple[str, ...] = tuple(self.net_index)

        self.ops: tuple[Op, ...] = tuple(
            (
                _OPCODES[gate.gate_type],
                self.net_index[gate.output],
                tuple(self.net_index[n] for n in gate.inputs),
            )
            for gate in order
        )
        self.output_indices: tuple[int, ...] = tuple(
            self.net_index[n] for n in circuit.primary_outputs
        )

        # Loads adjacency over op list positions, for cone extraction.
        self._loads: dict[int, list[int]] = {}
        for position, (_code, _out, ins) in enumerate(self.ops):
            for index in set(ins):
                self._loads.setdefault(index, []).append(position)
        self._cones: dict[int, tuple[tuple[Op, ...], tuple[int, ...]]] = {}
        self._cone_positions: dict[int, tuple[int, ...]] = {}
        self._cone_masks: dict[int, int] = {}
        #: Net id -> op-list position of its driver (absent for primary inputs).
        self._driver_position: dict[int, int] = {
            out: position for position, (_code, out, _ins) in enumerate(self.ops)
        }
        self._eval_fn: Callable[[Sequence[int], int], list[int]] | None = (
            self._compile_evaluate() if codegen else None
        )
        self._diff_kernels: dict[int, Callable[[Sequence[int], int, int], int]] = {}

    # ------------------------------------------------------------------ #
    # Code generation.
    # ------------------------------------------------------------------ #
    def _exec(self, lines: list[str], name: str) -> Callable:
        source = "\n".join(lines)
        namespace: dict = {}
        exec(compile(source, f"<compiled {self.circuit.name}:{name}>", "exec"), {}, namespace)
        return namespace[name]

    def _compile_evaluate(self) -> Callable[[Sequence[int], int], list[int]]:
        """Straight-line full-circuit evaluator: one assignment per gate."""
        lines = ["def _evaluate(inputs, mask):"]
        for position, index in enumerate(self.input_indices):
            lines.append(f"    v{index} = inputs[{position}] & mask")
        for code, out, ins in self.ops:
            lines.append(f"    v{out} = {_op_expression(code, [f'v{i}' for i in ins])}")
        body = ", ".join(f"v{i}" for i in range(self.num_nets))
        lines.append(f"    return [{body}]")
        return self._exec(lines, "_evaluate")

    def _compile_cone_kernel(self, net_index: int) -> Callable[[Sequence[int], int, int], int]:
        """Specialized forced-resim kernel for one net's fan-out cone.

        The kernel re-evaluates only the cone's ops (side inputs read from
        the base value list, cone nets held in locals -- nothing is copied or
        written back) and returns the OR over the cone's reachable primary
        outputs of ``faulty ^ base``: the detection word, directly.
        """
        ops, outputs = self.cone(net_index)
        computed = {net_index} | {out for _code, out, _ins in ops}
        side_inputs = sorted(
            {i for _code, _out, ins in ops for i in ins if i not in computed}
        )
        lines = ["def _kernel(values, forced, mask):"]
        lines.append(f"    v{net_index} = forced & mask")
        for index in side_inputs:
            lines.append(f"    v{index} = values[{index}]")
        for code, out, ins in ops:
            lines.append(f"    v{out} = {_op_expression(code, [f'v{i}' for i in ins])}")
        terms = [f"(v{index} ^ values[{index}])" for index in outputs]
        lines.append("    return " + (" | ".join(terms) if terms else "0"))
        return self._exec(lines, "_kernel")

    # ------------------------------------------------------------------ #
    # Evaluation.
    # ------------------------------------------------------------------ #
    def evaluate(self, input_words: Sequence[int], mask: int) -> list[int]:
        """Packed good-machine evaluation of one pattern block.

        ``input_words[i]`` holds the packed values of primary input *i*;
        returns the packed value of every net, indexed by net id.
        """
        if len(input_words) != len(self.input_indices):
            raise LogicCircuitError(
                f"expected {len(self.input_indices)} input words, got {len(input_words)}"
            )
        if self._eval_fn is not None:
            return self._eval_fn(input_words, mask)
        values = [0] * self.num_nets
        for index, word in zip(self.input_indices, input_words):
            values[index] = word & mask
        _run_ops(self.ops, values, mask)
        return values

    def cone_positions(self, net_index: int) -> tuple[int, ...]:
        """Op-list positions of a net's fan-out cone, in topological order.

        Excludes the driver of the net itself (the net stays clamped during
        forced re-simulation).  Cached per net; :meth:`union_cone` merges
        these position tuples to batch faults on different nets.
        """
        cached = self._cone_positions.get(net_index)
        if cached is not None:
            return cached
        positions: set[int] = set()
        stack = list(self._loads.get(net_index, ()))
        while stack:
            position = stack.pop()
            if position in positions:
                continue
            positions.add(position)
            stack.extend(self._loads.get(self.ops[position][1], ()))
        result = tuple(sorted(positions))
        self._cone_positions[net_index] = result
        return result

    def cone_mask(self, net_index: int) -> int:
        """Interference bitmask of a fault site, for PPSFP row packing.

        Covers the site's cone op positions, its own driver op, and a
        site-identity bit past the op range.  Two sites may share a batch
        row in :meth:`batch_cone_detect` only when their masks are disjoint:
        then neither fault can reach, rewrite, or clamp any net the other's
        detection depends on, so one stacked row simulates both faults with
        zero interference.
        """
        cached = self._cone_masks.get(net_index)
        if cached is None:
            cached = 1 << (len(self.ops) + net_index)
            for position in self.cone_positions(net_index):
                cached |= 1 << position
            driver = self._driver_position.get(net_index)
            if driver is not None:
                cached |= 1 << driver
            self._cone_masks[net_index] = cached
        return cached

    def cone(self, net_index: int) -> tuple[tuple[Op, ...], tuple[int, ...]]:
        """Fan-out cone of a net: (ops to re-evaluate, reachable output ids).

        The op slice excludes the driver of the net itself (the net stays
        clamped during forced re-simulation) and is in topological order; the
        output ids include the net when it is itself a primary output.
        """
        cached = self._cones.get(net_index)
        if cached is not None:
            return cached
        ops = tuple(self.ops[p] for p in self.cone_positions(net_index))
        cone_nets = {net_index} | {op[1] for op in ops}
        outputs = tuple(i for i in self.output_indices if i in cone_nets)
        result = (ops, outputs)
        self._cones[net_index] = result
        return result

    def union_cone(
        self, net_indices: Iterable[int]
    ) -> tuple[tuple[Op, ...], tuple[int, ...]]:
        """Merged fan-out cone of several nets: (ops, reachable output ids).

        The op slice is the union of the per-net cones in topological order;
        outputs are every primary output any of the nets can reach.  This is
        the evaluation scope of one PPSFP batch (:meth:`batch_cone_detect`).
        """
        sites = set(net_indices)
        positions: set[int] = set()
        for index in sites:
            positions.update(self.cone_positions(index))
        ops = tuple(self.ops[p] for p in sorted(positions))
        cone_nets = sites | {op[1] for op in ops}
        outputs = tuple(i for i in self.output_indices if i in cone_nets)
        return ops, outputs

    def evaluate_forced(
        self,
        base_values: Sequence[int],
        net_index: int,
        forced_word: int,
        mask: int,
    ) -> list[int]:
        """Re-simulate *base_values* with one net clamped to *forced_word*.

        Only the forced net's fan-out cone is re-evaluated; nets outside the
        cone keep their base values, so callers must restrict output
        comparisons to :meth:`cone`'s reachable outputs.  This is the
        full-value-list compatibility path; the fault-simulation hot path is
        :meth:`cone_diff`.
        """
        ops, _ = self.cone(net_index)
        values = list(base_values)
        values[net_index] = forced_word & mask
        _run_ops(ops, values, mask)
        return values

    def _interp_cone_kernel(
        self, net_index: int
    ) -> Callable[[Sequence[int], int, int], int]:
        """Interpreter-mode kernel with the same calling convention: copy the
        value list, re-run the cone ops, XOR-compare the reachable outputs."""
        ops, outputs = self.cone(net_index)

        def _kernel(values: Sequence[int], forced: int, mask: int) -> int:
            faulty = list(values)
            faulty[net_index] = forced & mask
            _run_ops(ops, faulty, mask)
            diff = 0
            for index in outputs:
                diff |= faulty[index] ^ values[index]
            return diff

        return _kernel

    def cone_kernel(self, net_index: int) -> Callable[[Sequence[int], int, int], int]:
        """The forced-resim kernel for one net, compiled (or built) lazily.

        ``kernel(base_values, forced_word, mask)`` returns the detection
        word: the OR of ``faulty ^ base`` over the cone's reachable primary
        outputs when the net is clamped to *forced_word*.  Fault-simulation
        drivers fetch the kernel once per fault site and call it per block.
        """
        kernel = self._diff_kernels.get(net_index)
        if kernel is None:
            if self.codegen:
                kernel = self._compile_cone_kernel(net_index)
            else:
                kernel = self._interp_cone_kernel(net_index)
            self._diff_kernels[net_index] = kernel
        return kernel

    def batch_cone_detect(self, base_values, sites, forced_rows, mask, rows=None):
        """PPSFP batch detection: one union-cone pass over stacked array rows.

        Numpy-backend only.  ``sites[g]`` is the clamped net of fault *g* and
        ``forced_rows[g]`` its ``(num_words,)`` forced word; *base_values* is
        the good machine of the block (:meth:`evaluate`).  The union cone of
        every site is re-evaluated once over ``(n_rows, num_words)`` stacked
        arrays -- rows ride the ufunc batch axis, so the per-op dispatch cost
        is paid once per *batch*, not once per fault.  Each clamped net is
        re-forced after any op that rewrites it, and a row whose site lies
        outside another row's cone just reproduces the base values there.

        *rows*, when given, assigns each fault to a batch row; faults whose
        :meth:`cone_mask` bitmasks are disjoint may share a row, which is
        what keeps shallow circuits (many small non-overlapping cones) from
        paying a full union-width row per fault.  Detection is attributed
        per fault from per-output diff words -- a fault only ORs the outputs
        its *own* cone reaches, so row-mates cannot leak detections into
        each other.  Returns the ``(len(sites), num_words)`` detection
        array: row *g* = OR over fault *g*'s reachable outputs of
        ``faulty ^ base``.
        """
        num_words = len(mask)
        if rows is None:
            rows = range(len(sites))
            group = len(sites)
        else:
            group = (max(rows) + 1) if sites else 0
        detected = _np.zeros((len(sites), num_words), dtype=mask.dtype)
        if not sites:
            return detected
        ops, outputs = self.union_cone(sites)
        clamp: dict[int, tuple[list[int], list]] = {}
        for row, site, forced in zip(rows, sites, forced_rows):
            clamp_rows, words = clamp.setdefault(site, ([], []))
            clamp_rows.append(row)
            words.append(forced)
        values = list(base_values)
        for site, (clamp_rows, words) in clamp.items():
            stacked = _np.broadcast_to(values[site], (group, num_words)).copy()
            stacked[clamp_rows] = words
            values[site] = stacked
        for code, out, ins in ops:
            word = _op_value(code, ins, values, mask)
            entry = clamp.get(out)
            if entry is not None:
                # A clamped site rewritten inside another site's cone: force
                # its rows again (copy first -- the op result may alias an
                # operand, e.g. a buffer).
                clamp_rows, words = entry
                word = _np.broadcast_to(word, (group, num_words)).copy()
                word[clamp_rows] = words
            values[out] = word
        # Diff each changed union output once, then attribute: fault g ORs
        # the diffs of its own cone's outputs at its row, via one fancy
        # gather + segmented bitwise_or.reduceat pass.
        slot: dict[int, int] = {}
        diffs = []
        for index in outputs:
            word = values[index]
            if word is not base_values[index]:
                slot[index] = len(diffs)
                diffs.append(word ^ base_values[index])
        if not diffs:
            return detected
        stacked_diffs = _np.stack(diffs)
        pair_slots: list[int] = []
        pair_rows: list[int] = []
        starts: list[int] = []
        covered: list[int] = []
        for g, (site, row) in enumerate(zip(sites, rows)):
            outs = [slot[o] for o in self.cone(site)[1] if o in slot]
            if not outs:
                continue
            covered.append(g)
            starts.append(len(pair_slots))
            pair_slots.extend(outs)
            pair_rows.extend([row] * len(outs))
        if not covered:
            return detected
        gathered = stacked_diffs[pair_slots, pair_rows]
        detected[covered] = _np.bitwise_or.reduceat(gathered, starts, axis=0)
        return detected

    def cone_diff(
        self,
        base_values: Sequence[int],
        net_index: int,
        forced_word: int,
        mask: int,
    ) -> int:
        """Detection word of clamping one net: OR of ``faulty ^ base`` over
        the cone's reachable primary outputs.

        Equivalent to :meth:`evaluate_forced` followed by XOR-comparing the
        reachable outputs, but via :meth:`cone_kernel` -- the codegen kernel
        never copies the value list.
        """
        return self.cone_kernel(net_index)(base_values, forced_word, mask)


def compile_circuit(
    circuit: LogicCircuit,
    word_bits: int = DEFAULT_WORD_BITS,
    codegen: bool = True,
    backend: str = "int",
) -> CompiledCircuit:
    """Levelize *circuit* into a :class:`CompiledCircuit`."""
    return CompiledCircuit(circuit, word_bits=word_bits, codegen=codegen, backend=backend)


# --------------------------------------------------------------------------- #
# Pattern packing.
# --------------------------------------------------------------------------- #
def _pack_into(
    words: list[int],
    pattern: Sequence[int],
    bit: int,
    index: int,
    num_inputs: int,
) -> None:
    """OR one pattern into *words* at bit position *bit* (validating it)."""
    if len(pattern) != num_inputs:
        raise LogicCircuitError(
            f"pattern {index} has {len(pattern)} bits, expected {num_inputs}"
        )
    select = 1 << bit
    for position, value in enumerate(pattern):
        if value == 1:
            words[position] |= select
        elif value != 0:
            raise LogicCircuitError(
                f"pattern {index} bit {position} must be 0 or 1, got {value!r}"
            )


def pack_pattern_blocks(
    patterns: Sequence[Sequence[int]],
    num_inputs: int,
    word_bits: int = DEFAULT_WORD_BITS,
) -> Iterator[tuple[int, int, list[int]]]:
    """Slice *patterns* into packed blocks of (base index, mask, input words).

    Pattern ``base + i`` occupies bit *i* of every word; ``mask`` has one bit
    per pattern actually present in the (possibly short, final) block.
    """
    _check_word_bits(word_bits)
    for base in range(0, len(patterns), word_bits):
        block = patterns[base : base + word_bits]
        words = [0] * num_inputs
        for bit, pattern in enumerate(block):
            _pack_into(words, pattern, bit, base + bit, num_inputs)
        yield base, (1 << len(block)) - 1, words


def pack_pair_blocks(
    pairs: Sequence[tuple[Sequence[int], Sequence[int]]],
    num_inputs: int,
    word_bits: int = DEFAULT_WORD_BITS,
) -> Iterator[tuple[int, int, list[int], list[int]]]:
    """Like :func:`pack_pattern_blocks` for two-pattern sequences.

    Yields (base index, mask, first-pattern words, second-pattern words).
    Streams block-wise: only one block of pairs is touched at a time, never
    full first/second copies of the whole sequence.
    """
    _check_word_bits(word_bits)
    for base in range(0, len(pairs), word_bits):
        block = pairs[base : base + word_bits]
        words1 = [0] * num_inputs
        words2 = [0] * num_inputs
        for bit, (first, second) in enumerate(block):
            _pack_into(words1, first, bit, base + bit, num_inputs)
            _pack_into(words2, second, bit, base + bit, num_inputs)
        yield base, (1 << len(block)) - 1, words1, words2


def iter_bits(word: int) -> Iterator[int]:
    """Indices of the set bits of *word*, in ascending order."""
    while word:
        low = word & -word
        yield low.bit_length() - 1
        word ^= low


#: Per-byte set-bit offsets, for decoding detection words a byte at a time.
_BYTE_BITS: tuple[tuple[int, ...], ...] = tuple(
    tuple(bit for bit in range(8) if (value >> bit) & 1) for value in range(256)
)


def decode_into(out: list[int], word: int, base: int) -> None:
    """Append ``base + i`` to *out* for every set bit *i* of *word*, ascending.

    Equivalent to ``out.extend(base + b for b in iter_bits(word))`` but walks
    the word a byte at a time through a lookup table -- decoding detection
    words back to pattern indices is hot enough in wide-word fault simulation
    to matter.
    """
    append = out.append
    for position, byte in enumerate(word.to_bytes((word.bit_length() + 7) >> 3, "little")):
        if byte:
            offset = base + (position << 3)
            for bit in _BYTE_BITS[byte]:
                append(offset + bit)


# --------------------------------------------------------------------------- #
# NumPy backend: uint64-array words.
# --------------------------------------------------------------------------- #
# Arrays use the explicit little-endian dtype "<u8" with bit i of element j
# holding pattern ``j * 64 + i`` of the block, so an array's byte stream is
# exactly the little-endian byte stream of the equivalent big-int word --
# int_to_words / words_to_int convert by reinterpreting bytes, never by
# shifting, and the two backends' detection words are bit-identical by
# construction.

#: Little-endian uint64, the element dtype of every numpy-backend word array.
WORD_DTYPE = "<u8"


def num_words_for(mask_bits: int) -> int:
    """uint64 elements needed for a block of *mask_bits* patterns (>= 1)."""
    return max(1, (mask_bits + 63) >> 6)


def int_to_words(word: int, num_words: int) -> "Any":
    """Big-int packed word -> little-endian ``(num_words,)`` uint64 array."""
    return _np.frombuffer(
        word.to_bytes(num_words * 8, "little"), dtype=WORD_DTYPE
    ).copy()


def words_to_int(words: "Any") -> int:
    """Inverse of :func:`int_to_words`."""
    return int.from_bytes(_np.ascontiguousarray(words, dtype=WORD_DTYPE).tobytes(), "little")


def _pack_matrix(matrix: "Any", num_words: int) -> "Any":
    """Pack a ``(num_inputs, block_len)`` 0/1 uint8 matrix into word arrays.

    Returns a ``(num_inputs, num_words)`` uint64 array: row *p* is the packed
    word of primary input *p*, bit *i* of the row carrying pattern *i*.
    """
    packed = _np.packbits(matrix, axis=1, bitorder="little")
    padded = _np.zeros((matrix.shape[0], num_words * 8), dtype=_np.uint8)
    padded[:, : packed.shape[1]] = packed
    return padded.view(WORD_DTYPE)


def _block_matrix(block: Sequence[Sequence[int]], base: int, num_inputs: int) -> "Any":
    """Validate one block of patterns into a ``(num_inputs, len(block))`` matrix."""
    # Bulk-convert the whole block in one C call when it is well-formed;
    # fall back to the per-pattern loop only to localize the bad pattern in
    # the error message.
    matrix = None
    try:
        candidate = _np.asarray(block, dtype=_np.uint8)
        if candidate.ndim == 2 and candidate.shape == (len(block), num_inputs):
            matrix = candidate
    except (ValueError, TypeError, OverflowError):
        matrix = None
    if matrix is None:
        matrix = _np.empty((len(block), num_inputs), dtype=_np.uint8)
        for bit, pattern in enumerate(block):
            if len(pattern) != num_inputs:
                raise LogicCircuitError(
                    f"pattern {base + bit} has {len(pattern)} bits, expected {num_inputs}"
                )
            try:
                matrix[bit] = pattern
            except (ValueError, TypeError, OverflowError) as exc:
                raise LogicCircuitError(
                    f"pattern {base + bit} is not a 0/1 vector: {exc}"
                ) from exc
    bad = _np.argwhere(matrix > 1)
    if bad.size:
        row, position = (int(v) for v in bad[0])
        raise LogicCircuitError(
            f"pattern {base + row} bit {position} must be 0 or 1, "
            f"got {int(matrix[row, position])!r}"
        )
    return matrix.T


def mask_words(block_len: int, num_words: int) -> "Any":
    """Block mask as a word array: bits ``0..block_len-1`` set, rest clear."""
    mask = _np.zeros(num_words, dtype=WORD_DTYPE)
    full, rem = divmod(block_len, 64)
    mask[:full] = _np.uint64(0xFFFFFFFFFFFFFFFF)
    if rem:
        mask[full] = _np.uint64((1 << rem) - 1)
    return mask


def pack_pattern_blocks_array(
    patterns: Sequence[Sequence[int]],
    num_inputs: int,
    word_bits: int = DEFAULT_NUMPY_WORD_BITS,
) -> Iterator[tuple[int, "Any", "Any"]]:
    """Array counterpart of :func:`pack_pattern_blocks`.

    Yields ``(base, mask_words, input_words)`` where ``mask_words`` is the
    ``(num_words,)`` block mask and ``input_words`` a ``(num_inputs,
    num_words)`` uint64 array (row *p* = packed word of input *p*).  Ragged
    final blocks get arrays sized to the actual block, not ``word_bits``, so
    short blocks waste no lanes.
    """
    _check_word_bits(word_bits)
    _check_backend("numpy")
    for base in range(0, len(patterns), word_bits):
        block = patterns[base : base + word_bits]
        num_words = num_words_for(len(block))
        matrix = _block_matrix(block, base, num_inputs)
        yield base, mask_words(len(block), num_words), _pack_matrix(matrix, num_words)


def pack_pair_blocks_array(
    pairs: Sequence[tuple[Sequence[int], Sequence[int]]],
    num_inputs: int,
    word_bits: int = DEFAULT_NUMPY_WORD_BITS,
) -> Iterator[tuple[int, "Any", "Any", "Any"]]:
    """Array counterpart of :func:`pack_pair_blocks`.

    Yields ``(base, mask_words, first_words, second_words)``.
    """
    _check_word_bits(word_bits)
    _check_backend("numpy")
    for base in range(0, len(pairs), word_bits):
        block = pairs[base : base + word_bits]
        num_words = num_words_for(len(block))
        first = _block_matrix([pair[0] for pair in block], base, num_inputs)
        second = _block_matrix([pair[1] for pair in block], base, num_inputs)
        yield (
            base,
            mask_words(len(block), num_words),
            _pack_matrix(first, num_words),
            _pack_matrix(second, num_words),
        )


def decode_words_into(out: list[int], words: "Any", base: int) -> None:
    """Array counterpart of :func:`decode_into` for one detection word array.

    Vectorized: view the little-endian uint64 words as a byte stream, unpack
    to one bit per pattern lane, and read the set positions off in a single
    C pass -- decode cost is what separates the array backend from the
    big-int engine on dense detection words, where per-bit Python decoding
    would dominate the whole simulation.
    """
    if not _np.any(words):
        return
    bits = _np.unpackbits(
        _np.ascontiguousarray(words, dtype=WORD_DTYPE).view(_np.uint8),
        bitorder="little",
    )
    out.extend((_np.flatnonzero(bits) + base).tolist())


def first_set_bit(words: "Any") -> int:
    """Bit index of the lowest set bit of a nonzero word array."""
    position = int(_np.flatnonzero(words)[0])
    word = int(words[position])
    return (position << 6) + (word & -word).bit_length() - 1
