"""Compiled bit-parallel circuit evaluation.

A :class:`CompiledCircuit` levelizes a :class:`~repro.logic.netlist.LogicCircuit`
once into a flat, topologically ordered op list over dense integer net ids.
Evaluation then runs over plain Python ints used as :data:`WORD_BITS`-wide
bit-vectors: bit *i* of every net word carries the value of that net under
pattern *i* of the block, so one pass over the op list simulates up to 64
patterns at once.

Two extra structures make the engine suitable for fault simulation:

* :meth:`CompiledCircuit.evaluate_forced` re-simulates with one net clamped to
  an arbitrary per-pattern word (the packed analogue of
  :func:`repro.atpg.fault_sim.simulate_with_forced_net`), touching only the
  ops in the forced net's fan-out cone;
* :meth:`CompiledCircuit.cone` exposes, per net, that cone's op slice and the
  primary outputs reachable from it, so callers compare only outputs a fault
  can possibly reach.

The helpers :func:`pack_pattern_blocks` / :func:`pack_pair_blocks` slice a
pattern (pair) sequence into word-sized blocks, and :func:`iter_bits` walks
the set bits of a detection word back to pattern indices.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from .gates import GateType
from .netlist import LogicCircuit, LogicCircuitError

#: Number of patterns packed into one machine word of the engine.  Python
#: ints are arbitrary precision, so this is a block-size convention (64 keeps
#: every intermediate in one CPython "small" int limb sequence and matches
#: what a C engine would use), not a hard limit of the representation.
WORD_BITS = 64

# Flat op codes; variadic gate types (AND2/AND3, ...) share one code and are
# distinguished by their input count alone.
_BUF, _INV, _AND, _OR, _NAND, _NOR, _XOR, _XNOR, _AOI21, _OAI21 = range(10)

_OPCODES: dict[GateType, int] = {
    GateType.BUF: _BUF,
    GateType.INV: _INV,
    GateType.AND2: _AND,
    GateType.AND3: _AND,
    GateType.OR2: _OR,
    GateType.OR3: _OR,
    GateType.NAND2: _NAND,
    GateType.NAND3: _NAND,
    GateType.NOR2: _NOR,
    GateType.NOR3: _NOR,
    GateType.XOR2: _XOR,
    GateType.XNOR2: _XNOR,
    GateType.AOI21: _AOI21,
    GateType.OAI21: _OAI21,
}

#: One op: (opcode, output net id, input net ids).
Op = tuple[int, int, tuple[int, ...]]


def _run_ops(ops: Sequence[Op], values: list[int], mask: int) -> None:
    """Evaluate *ops* in place over packed words (each result masked)."""
    for code, out, ins in ops:
        if code == _NAND:
            word = values[ins[0]]
            for index in ins[1:]:
                word &= values[index]
            word = ~word & mask
        elif code == _INV:
            word = ~values[ins[0]] & mask
        elif code == _AND:
            word = values[ins[0]]
            for index in ins[1:]:
                word &= values[index]
        elif code == _OR:
            word = values[ins[0]]
            for index in ins[1:]:
                word |= values[index]
        elif code == _NOR:
            word = values[ins[0]]
            for index in ins[1:]:
                word |= values[index]
            word = ~word & mask
        elif code == _XOR:
            word = values[ins[0]] ^ values[ins[1]]
        elif code == _XNOR:
            word = ~(values[ins[0]] ^ values[ins[1]]) & mask
        elif code == _AOI21:
            word = ~((values[ins[0]] & values[ins[1]]) | values[ins[2]]) & mask
        elif code == _OAI21:
            word = ~((values[ins[0]] | values[ins[1]]) & values[ins[2]]) & mask
        else:  # _BUF
            word = values[ins[0]]
        values[out] = word


class CompiledCircuit:
    """A levelized, bit-parallel evaluator for one :class:`LogicCircuit`."""

    def __init__(self, circuit: LogicCircuit):
        self.circuit = circuit
        order = circuit.topological_order()

        #: Net name -> dense id; primary inputs first, then gate outputs in
        #: topological order, so evaluating ops in id order is always legal.
        self.net_index: dict[str, int] = {}
        for net in circuit.primary_inputs:
            self.net_index[net] = len(self.net_index)
        self.input_indices: tuple[int, ...] = tuple(range(len(self.net_index)))
        for gate in order:
            self.net_index[gate.output] = len(self.net_index)
        self.num_nets = len(self.net_index)
        self.net_names: tuple[str, ...] = tuple(self.net_index)

        self.ops: tuple[Op, ...] = tuple(
            (
                _OPCODES[gate.gate_type],
                self.net_index[gate.output],
                tuple(self.net_index[n] for n in gate.inputs),
            )
            for gate in order
        )
        self.output_indices: tuple[int, ...] = tuple(
            self.net_index[n] for n in circuit.primary_outputs
        )

        # Loads adjacency over op list positions, for cone extraction.
        self._loads: dict[int, list[int]] = {}
        for position, (_code, _out, ins) in enumerate(self.ops):
            for index in set(ins):
                self._loads.setdefault(index, []).append(position)
        self._cones: dict[int, tuple[tuple[Op, ...], tuple[int, ...]]] = {}

    # ------------------------------------------------------------------ #
    # Evaluation.
    # ------------------------------------------------------------------ #
    def evaluate(self, input_words: Sequence[int], mask: int) -> list[int]:
        """Packed good-machine evaluation of one pattern block.

        ``input_words[i]`` holds the packed values of primary input *i*;
        returns the packed value of every net, indexed by net id.
        """
        if len(input_words) != len(self.input_indices):
            raise LogicCircuitError(
                f"expected {len(self.input_indices)} input words, got {len(input_words)}"
            )
        values = [0] * self.num_nets
        for index, word in zip(self.input_indices, input_words):
            values[index] = word & mask
        _run_ops(self.ops, values, mask)
        return values

    def cone(self, net_index: int) -> tuple[tuple[Op, ...], tuple[int, ...]]:
        """Fan-out cone of a net: (ops to re-evaluate, reachable output ids).

        The op slice excludes the driver of the net itself (the net stays
        clamped during forced re-simulation) and is in topological order; the
        output ids include the net when it is itself a primary output.
        """
        cached = self._cones.get(net_index)
        if cached is not None:
            return cached
        positions: set[int] = set()
        stack = list(self._loads.get(net_index, ()))
        while stack:
            position = stack.pop()
            if position in positions:
                continue
            positions.add(position)
            stack.extend(self._loads.get(self.ops[position][1], ()))
        ops = tuple(self.ops[p] for p in sorted(positions))
        cone_nets = {net_index} | {op[1] for op in ops}
        outputs = tuple(i for i in self.output_indices if i in cone_nets)
        result = (ops, outputs)
        self._cones[net_index] = result
        return result

    def evaluate_forced(
        self,
        base_values: Sequence[int],
        net_index: int,
        forced_word: int,
        mask: int,
    ) -> list[int]:
        """Re-simulate *base_values* with one net clamped to *forced_word*.

        Only the forced net's fan-out cone is re-evaluated; nets outside the
        cone keep their base values, so callers must restrict output
        comparisons to :meth:`cone`'s reachable outputs.
        """
        ops, _ = self.cone(net_index)
        values = list(base_values)
        values[net_index] = forced_word & mask
        _run_ops(ops, values, mask)
        return values


def compile_circuit(circuit: LogicCircuit) -> CompiledCircuit:
    """Levelize *circuit* into a :class:`CompiledCircuit`."""
    return CompiledCircuit(circuit)


# --------------------------------------------------------------------------- #
# Pattern packing.
# --------------------------------------------------------------------------- #
def pack_pattern_blocks(
    patterns: Sequence[Sequence[int]],
    num_inputs: int,
) -> Iterator[tuple[int, int, list[int]]]:
    """Slice *patterns* into packed blocks of (base index, mask, input words).

    Pattern ``base + i`` occupies bit *i* of every word; ``mask`` has one bit
    per pattern actually present in the (possibly short, final) block.
    """
    for base in range(0, len(patterns), WORD_BITS):
        block = patterns[base : base + WORD_BITS]
        words = [0] * num_inputs
        for bit, pattern in enumerate(block):
            if len(pattern) != num_inputs:
                raise LogicCircuitError(
                    f"pattern {base + bit} has {len(pattern)} bits, expected {num_inputs}"
                )
            select = 1 << bit
            for position, value in enumerate(pattern):
                if value == 1:
                    words[position] |= select
                elif value != 0:
                    raise LogicCircuitError(
                        f"pattern {base + bit} bit {position} must be 0 or 1, got {value!r}"
                    )
        yield base, (1 << len(block)) - 1, words


def pack_pair_blocks(
    pairs: Sequence[tuple[Sequence[int], Sequence[int]]],
    num_inputs: int,
) -> Iterator[tuple[int, int, list[int], list[int]]]:
    """Like :func:`pack_pattern_blocks` for two-pattern sequences.

    Yields (base index, mask, first-pattern words, second-pattern words).
    """
    firsts = [pair[0] for pair in pairs]
    seconds = [pair[1] for pair in pairs]
    second_blocks = pack_pattern_blocks(seconds, num_inputs)
    for base, mask, words1 in pack_pattern_blocks(firsts, num_inputs):
        _, _, words2 = next(second_blocks)
        yield base, mask, words1, words2


def iter_bits(word: int) -> Iterator[int]:
    """Indices of the set bits of *word*, in ascending order."""
    while word:
        low = word & -word
        yield low.bit_length() - 1
        word ^= low
