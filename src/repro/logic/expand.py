"""Gate-level to transistor-level expansion and defect-site enumeration.

Two jobs:

* :func:`enumerate_obd_sites` lists every transistor-level OBD defect site of
  a gate-level netlist (the "56 distinct locations for OBD defects in the 14
  NAND gates" of Section 4.3).
* :func:`expand_to_transistors` builds the full transistor-level SPICE
  circuit of a gate-level netlist, returning the cell instances so that
  defects can be injected into any of those sites for the Figure-9 style
  full-circuit simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from ..spice.elements import PiecewiseLinearWaveform
from ..spice.netlist import Circuit
from .gates import GateType
from .netlist import LogicCircuit

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cells/core import logic)
    from ..cells.builder import CellInstance
    from ..cells.technology import Technology
    from ..core.defect import OBDDefect

#: Gate types that have a direct transistor-level cell implementation.
EXPANDABLE_TYPES = {
    GateType.INV: "INV",
    GateType.NAND2: "NAND2",
    GateType.NAND3: "NAND3",
    GateType.NOR2: "NOR2",
    GateType.NOR3: "NOR3",
    GateType.AOI21: "AOI21",
    GateType.OAI21: "OAI21",
}


@dataclass(frozen=True)
class GateDefectSite:
    """One OBD defect site of a gate-level netlist."""

    gate_name: str
    gate_type: GateType
    site: str

    @property
    def key(self) -> str:
        return f"{self.gate_name}/{self.site}"

    def as_defect(self, stage) -> "OBDDefect":
        """Build the :class:`OBDDefect` for this site at the given stage."""
        from ..core.defect import OBDDefect

        return OBDDefect(site=self.site, stage=stage, gate=self.gate_name)


def enumerate_obd_sites(
    circuit: LogicCircuit,
    gate_types: Iterable[GateType | str] | None = None,
) -> list[GateDefectSite]:
    """All transistor-level OBD defect sites of the netlist.

    ``gate_types`` restricts the enumeration (the paper counts only the NAND
    gates of its example); by default every expandable gate contributes
    ``2 * num_inputs`` sites.
    """
    from ..cells.builder import pin_names

    if gate_types is not None:
        wanted = {GateType(t) for t in gate_types}
    else:
        wanted = set(EXPANDABLE_TYPES)
    sites: list[GateDefectSite] = []
    for gate in circuit:
        if gate.gate_type not in wanted:
            continue
        if gate.gate_type not in EXPANDABLE_TYPES:
            raise ValueError(f"gate {gate.name!r} of type {gate.gate_type.value} is not expandable")
        for pin in pin_names(gate.gate_type.num_inputs):
            sites.append(GateDefectSite(gate.name, gate.gate_type, f"N{pin}"))
            sites.append(GateDefectSite(gate.name, gate.gate_type, f"P{pin}"))
    return sites


@dataclass
class ExpandedCircuit:
    """Transistor-level expansion of a gate-level netlist."""

    logic: LogicCircuit
    circuit: Circuit
    tech: "Technology"
    cells: dict[str, "CellInstance"]
    input_sources: dict[str, str]
    vdd_node: str = "vdd"

    def cell(self, gate_name: str) -> "CellInstance":
        return self.cells[gate_name]

    def net_node(self, net: str) -> str:
        """Circuit node corresponding to a logic net (identical names)."""
        return net


def expand_to_transistors(
    logic: LogicCircuit,
    tech: "Technology",
    input_waveforms: dict[str, object] | None = None,
    input_levels: dict[str, int] | None = None,
) -> ExpandedCircuit:
    """Build the transistor-level circuit of a gate-level netlist.

    Each primary input gets an ideal voltage source (DC level from
    ``input_levels`` or a time waveform from ``input_waveforms``); each gate
    becomes its transistor-level cell, sharing node names with the logic
    netlist so waveforms can be looked up by net name.
    """
    from ..cells.builder import CellInstance, build_cell

    logic.validate()
    circuit = Circuit(f"expanded-{logic.name}")
    circuit.add_voltage_source("vdd", "vdd", "0", dc=tech.vdd)

    sources: dict[str, str] = {}
    for net in logic.primary_inputs:
        source_name = f"v_{net}"
        waveform = (input_waveforms or {}).get(net)
        if waveform is not None:
            circuit.add_voltage_source(source_name, net, "0", waveform=waveform)
        else:
            level = (input_levels or {}).get(net, 0)
            circuit.add_voltage_source(source_name, net, "0", dc=tech.logic_level(level))
        sources[net] = source_name

    cells: dict[str, CellInstance] = {}
    for gate in logic.topological_order():
        if gate.gate_type not in EXPANDABLE_TYPES:
            raise ValueError(
                f"gate {gate.name!r} of type {gate.gate_type.value} has no transistor-level cell"
            )
        cells[gate.name] = build_cell(
            circuit,
            tech,
            EXPANDABLE_TYPES[gate.gate_type],
            gate.name,
            list(gate.inputs),
            gate.output,
            vdd="vdd",
            gnd="0",
        )
    return ExpandedCircuit(
        logic=logic,
        circuit=circuit,
        tech=tech,
        cells=cells,
        input_sources=sources,
    )


def two_pattern_input_waveforms(
    logic: LogicCircuit,
    tech: "Technology",
    first: Sequence[int],
    second: Sequence[int],
    launch_time: float,
    transition_time: float = 50e-12,
    t_stop: float | None = None,
) -> dict[str, PiecewiseLinearWaveform]:
    """PWL waveforms applying a two-pattern sequence at the primary inputs."""
    inputs = logic.primary_inputs
    if len(first) != len(inputs) or len(second) != len(inputs):
        raise ValueError("pattern width does not match the number of primary inputs")
    end = t_stop if t_stop is not None else launch_time * 2.0
    waveforms: dict[str, PiecewiseLinearWaveform] = {}
    for net, bit1, bit2 in zip(inputs, first, second):
        level1 = tech.logic_level(int(bit1))
        level2 = tech.logic_level(int(bit2))
        waveforms[net] = PiecewiseLinearWaveform(
            [
                (0.0, level1),
                (launch_time, level1),
                (launch_time + transition_time, level2),
                (end, level2),
            ]
        )
    return waveforms
