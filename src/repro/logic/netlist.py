"""Gate-level combinational netlists.

A :class:`LogicCircuit` is the structural substrate for fault modeling and
ATPG: named nets, primary inputs/outputs, and gates from
:class:`~repro.logic.gates.GateType`.  It also knows how to levelize itself
(the logic depth the paper quotes for the full-adder example) and how to
expand into a transistor-level circuit for SPICE experiments.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from .gates import GateType, evaluate_gate


class LogicCircuitError(Exception):
    """Raised for malformed gate-level netlists."""


@dataclass(frozen=True)
class CircuitStats:
    """Structural profile of one circuit (see :meth:`LogicCircuit.stats`)."""

    name: str
    num_inputs: int
    num_outputs: int
    num_gates: int
    num_nets: int
    depth: int
    #: Gate count per :class:`~repro.logic.gates.GateType` value, e.g.
    #: ``{"NAND2": 14, "INV": 14}``; types absent from the circuit are omitted.
    gate_counts: dict[str, int] = field(default_factory=dict)
    #: Histogram of net fan-out: ``{loads: number of nets with that many
    #: loads}``.  Primary outputs with no readers count as zero-load nets.
    fanout_histogram: dict[int, int] = field(default_factory=dict)
    #: SCOAP testability roll-up (:func:`repro.analysis_static.scoap
    #: .scoap_summary`): ``max_cc`` / ``mean_cc`` / ``max_co`` / ``mean_co``
    #: / ``unreachable``.  None unless :meth:`LogicCircuit.stats` was asked
    #: for it with ``include_scoap=True``.
    scoap: Optional[dict] = None

    @property
    def max_fanout(self) -> int:
        return max(self.fanout_histogram, default=0)

    def describe(self) -> str:
        """One-line summary used by campaign and benchmark reports."""
        gates = ", ".join(f"{count} {name}" for name, count in sorted(self.gate_counts.items()))
        return (
            f"{self.name or 'circuit'}: {self.num_inputs} in / {self.num_outputs} out, "
            f"{self.num_gates} gates ({gates}), depth {self.depth}, "
            f"max fan-out {self.max_fanout}"
        )


@dataclass(frozen=True)
class Gate:
    """One gate instance: a named, typed node of the netlist."""

    name: str
    gate_type: GateType
    inputs: tuple[str, ...]
    output: str

    def evaluate(self, values: dict[str, int]) -> int:
        """Evaluate the gate on a net-value assignment."""
        return evaluate_gate(self.gate_type, [values[n] for n in self.inputs])


class LogicCircuit:
    """A combinational gate-level netlist."""

    def __init__(self, name: str = ""):
        self.name = name
        self._inputs: list[str] = []
        self._outputs: list[str] = []
        self._gates: dict[str, Gate] = {}
        self._driver: dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # Construction.
    # ------------------------------------------------------------------ #
    def add_input(self, net: str) -> str:
        """Declare a primary input net."""
        if net in self._inputs:
            raise LogicCircuitError(f"primary input {net!r} already declared")
        if net in self._driver:
            raise LogicCircuitError(f"net {net!r} is already driven by gate {self._driver[net]!r}")
        self._inputs.append(net)
        return net

    def add_inputs(self, nets: Iterable[str]) -> list[str]:
        return [self.add_input(n) for n in nets]

    def add_output(self, net: str) -> str:
        """Declare a primary output net (must eventually be driven)."""
        if net in self._outputs:
            raise LogicCircuitError(f"primary output {net!r} already declared")
        self._outputs.append(net)
        return net

    def add_gate(
        self,
        name: str,
        gate_type: GateType | str,
        inputs: Sequence[str],
        output: str,
    ) -> Gate:
        """Add a gate; the output net must not already be driven."""
        gate_type = GateType(gate_type)
        if name in self._gates:
            raise LogicCircuitError(f"duplicate gate name {name!r}")
        if len(inputs) != gate_type.num_inputs:
            raise LogicCircuitError(
                f"gate {name!r} ({gate_type.value}) expects {gate_type.num_inputs} inputs, "
                f"got {len(inputs)}"
            )
        if output in self._driver:
            raise LogicCircuitError(
                f"net {output!r} already driven by gate {self._driver[output]!r}"
            )
        if output in self._inputs:
            raise LogicCircuitError(f"net {output!r} is a primary input and cannot be driven")
        gate = Gate(name=name, gate_type=gate_type, inputs=tuple(inputs), output=output)
        self._gates[name] = gate
        self._driver[output] = name
        return gate

    # ------------------------------------------------------------------ #
    # Introspection.
    # ------------------------------------------------------------------ #
    @property
    def primary_inputs(self) -> list[str]:
        return list(self._inputs)

    @property
    def primary_outputs(self) -> list[str]:
        return list(self._outputs)

    @property
    def gates(self) -> list[Gate]:
        return list(self._gates.values())

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates.values())

    def gate(self, name: str) -> Gate:
        try:
            return self._gates[name]
        except KeyError:
            raise LogicCircuitError(f"no gate named {name!r}") from None

    def has_gate(self, name: str) -> bool:
        return name in self._gates

    def nets(self) -> list[str]:
        """All nets: primary inputs plus every gate output."""
        nets = list(self._inputs)
        nets.extend(g.output for g in self._gates.values())
        return nets

    def driver_of(self, net: str) -> Gate | None:
        """Gate driving *net*, or None for primary inputs."""
        name = self._driver.get(net)
        return self._gates[name] if name is not None else None

    def loads_of(self, net: str) -> list[tuple[Gate, int]]:
        """(gate, input-pin index) pairs reading *net*."""
        loads = []
        for gate in self._gates.values():
            for index, inp in enumerate(gate.inputs):
                if inp == net:
                    loads.append((gate, index))
        return loads

    def fanout_nets(self, net: str) -> list[str]:
        """Output nets of the gates directly reading *net*."""
        return [gate.output for gate, _ in self.loads_of(net)]

    def gate_count(self, gate_type: GateType | str | None = None) -> int:
        """Number of gates, optionally restricted to one type."""
        if gate_type is None:
            return len(self._gates)
        gate_type = GateType(gate_type)
        return sum(1 for g in self._gates.values() if g.gate_type == gate_type)

    # ------------------------------------------------------------------ #
    # Structure checks and ordering.
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check that the netlist is a closed combinational circuit."""
        driven = set(self._inputs) | set(self._driver)
        for gate in self._gates.values():
            for net in gate.inputs:
                if net not in driven:
                    raise LogicCircuitError(
                        f"gate {gate.name!r} reads undriven net {net!r}"
                    )
        for net in self._outputs:
            if net not in driven:
                raise LogicCircuitError(f"primary output {net!r} is not driven")
        # Topological order raises on combinational loops.
        self.topological_order()

    def topological_order(self) -> list[Gate]:
        """Gates in topological (input-to-output) order.

        Kahn's algorithm over pin counts: O(gates + pins) even on deep
        chain-shaped circuits, and deterministic (declaration order breaks
        ties), so derived artifacts like ``.bench`` output are stable.
        """
        placed = set(self._inputs)
        pending: dict[str, int] = {}
        readers: dict[str, list[str]] = {}
        ready: deque[str] = deque()
        for name, gate in self._gates.items():
            unplaced = [net for net in gate.inputs if net not in placed]
            pending[name] = len(unplaced)
            for net in unplaced:
                readers.setdefault(net, []).append(name)
            if not unplaced:
                ready.append(name)
        order: list[Gate] = []
        while ready:
            gate = self._gates[ready.popleft()]
            order.append(gate)
            for reader in readers.get(gate.output, ()):
                pending[reader] -= 1
                if pending[reader] == 0:
                    ready.append(reader)
        if len(order) != len(self._gates):
            emitted = {gate.name for gate in order}
            remaining = sorted(name for name in self._gates if name not in emitted)
            raise LogicCircuitError(
                f"combinational loop or undriven nets involving gates: {remaining[:5]}"
            )
        return order

    def levelize(self) -> dict[str, int]:
        """Topological level of every net (primary inputs are level 0)."""
        levels = {net: 0 for net in self._inputs}
        for gate in self.topological_order():
            levels[gate.output] = 1 + max(levels[n] for n in gate.inputs)
        return levels

    @property
    def depth(self) -> int:
        """Logic depth: the largest primary-output level."""
        levels = self.levelize()
        if not self._outputs:
            return max(levels.values(), default=0)
        return max(levels[n] for n in self._outputs)

    # ------------------------------------------------------------------ #
    # Cones.
    # ------------------------------------------------------------------ #
    def fanin_cone(self, net: str) -> set[str]:
        """All nets in the transitive fan-in of *net* (including itself)."""
        cone: set[str] = set()
        stack = [net]
        while stack:
            current = stack.pop()
            if current in cone:
                continue
            cone.add(current)
            driver = self.driver_of(current)
            if driver is not None:
                stack.extend(driver.inputs)
        return cone

    def fanout_cone(self, net: str) -> set[str]:
        """All nets in the transitive fan-out of *net* (including itself)."""
        cone: set[str] = set()
        stack = [net]
        while stack:
            current = stack.pop()
            if current in cone:
                continue
            cone.add(current)
            stack.extend(self.fanout_nets(current))
        return cone

    def stats(self, include_scoap: bool = False) -> CircuitStats:
        """Structural profile: gate counts by type, depth, fan-out histogram.

        One pass over the gates counts loads and types; the depth adds one
        levelization, so the whole profile is linear in gates + pins.
        ``include_scoap=True`` additionally attaches the SCOAP testability
        roll-up (two more topological passes) as :attr:`CircuitStats.scoap`.
        """
        gate_counts: dict[str, int] = {}
        loads = {net: 0 for net in self.nets()}
        for gate in self._gates.values():
            gate_counts[gate.gate_type.value] = gate_counts.get(gate.gate_type.value, 0) + 1
            for net in gate.inputs:
                loads[net] = loads.get(net, 0) + 1
        fanout_histogram: dict[int, int] = {}
        for count in loads.values():
            fanout_histogram[count] = fanout_histogram.get(count, 0) + 1
        scoap = None
        if include_scoap:
            # Function-level import: analysis_static sits on top of logic.
            from ..analysis_static.scoap import scoap_summary

            scoap = scoap_summary(self)
        return CircuitStats(
            name=self.name,
            num_inputs=len(self._inputs),
            num_outputs=len(self._outputs),
            num_gates=len(self._gates),
            num_nets=len(loads),
            depth=self.depth,
            gate_counts=gate_counts,
            fanout_histogram=fanout_histogram,
            scoap=scoap,
        )

    def summary(self) -> str:
        """One-line structural summary (the numbers quoted in Section 4.3)."""
        s = self.stats()
        parts = ", ".join(f"{count} {name}" for name, count in sorted(s.gate_counts.items()))
        return (
            f"LogicCircuit {self.name!r}: {s.num_inputs} inputs, "
            f"{s.num_outputs} outputs, {s.num_gates} gates ({parts}), depth {s.depth}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<LogicCircuit {self.name!r} gates={len(self._gates)}>"
