"""Static timing on gate-level netlists: levels, paths and slack.

The paper's concurrent-testing argument (Section 4.2) is about *slack*: an
OBD-induced delay is only observable when it pushes a path's arrival time
past the capture instant.  This module provides the static-timing side of
that argument: per-gate delays, path enumeration, arrival times and slack
against a clock period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .gates import GateType
from .netlist import Gate, LogicCircuit

#: Delay model: maps a gate to its propagation delay in seconds.
DelayModel = Callable[[Gate], float]


def unit_delay_model(delay: float = 1.0) -> DelayModel:
    """Every gate has the same delay."""
    return lambda gate: delay


def per_type_delay_model(delays: dict[GateType | str, float], default: float = 1.0) -> DelayModel:
    """Delays looked up by gate type."""
    table = {GateType(k): v for k, v in delays.items()}
    return lambda gate: table.get(gate.gate_type, default)


@dataclass(frozen=True)
class PathTiming:
    """One structural path from a primary input to a primary output."""

    nets: tuple[str, ...]
    gates: tuple[str, ...]
    delay: float

    @property
    def depth(self) -> int:
        return len(self.gates)


def arrival_times(circuit: LogicCircuit, delay_model: DelayModel) -> dict[str, float]:
    """Latest arrival time of every net (primary inputs arrive at 0)."""
    arrivals = {net: 0.0 for net in circuit.primary_inputs}
    for gate in circuit.topological_order():
        arrivals[gate.output] = delay_model(gate) + max(arrivals[n] for n in gate.inputs)
    return arrivals


def critical_path_delay(circuit: LogicCircuit, delay_model: DelayModel) -> float:
    """Largest primary-output arrival time."""
    arrivals = arrival_times(circuit, delay_model)
    outputs = circuit.primary_outputs or list(arrivals)
    return max(arrivals[n] for n in outputs)


def slack(
    circuit: LogicCircuit,
    delay_model: DelayModel,
    clock_period: float,
) -> dict[str, float]:
    """Slack of every primary output against the clock period."""
    arrivals = arrival_times(circuit, delay_model)
    return {net: clock_period - arrivals[net] for net in circuit.primary_outputs}


def enumerate_paths(
    circuit: LogicCircuit,
    delay_model: DelayModel | None = None,
    output: str | None = None,
    limit: int = 10_000,
) -> list[PathTiming]:
    """All structural input-to-output paths (bounded by *limit*).

    Intended for the small circuits of the paper's experiments; the limit
    guards against exponential blow-up on larger netlists.
    """
    delay_model = delay_model or unit_delay_model()
    outputs = [output] if output is not None else circuit.primary_outputs
    paths: list[PathTiming] = []

    def _walk(net: str, nets: list[str], gates: list[str], delay: float) -> None:
        if len(paths) >= limit:
            return
        driver = circuit.driver_of(net)
        if driver is None:
            paths.append(
                PathTiming(
                    nets=tuple(reversed(nets + [net])),
                    gates=tuple(reversed(gates)),
                    delay=delay,
                )
            )
            return
        for source in driver.inputs:
            _walk(source, nets + [net], gates + [driver.name], delay + delay_model(driver))

    for out in outputs:
        _walk(out, [], [], 0.0)
    return paths


def longest_path(
    circuit: LogicCircuit,
    delay_model: DelayModel | None = None,
    output: str | None = None,
) -> PathTiming:
    """The structurally longest (largest-delay) path to an output."""
    paths = enumerate_paths(circuit, delay_model, output)
    if not paths:
        raise ValueError("circuit has no input-to-output paths")
    return max(paths, key=lambda p: p.delay)


def observable_delay_threshold(
    clock_period: float,
    path_delay: float,
    capture_margin: float = 0.0,
) -> float:
    """Minimum extra delay a defect must add on a path before it is caught.

    A defect on a path with nominal delay ``path_delay`` produces an
    observable timing failure only when its extra delay exceeds the path's
    slack (minus any capture margin provided by early-capture schemes).
    """
    return max(clock_period - capture_margin - path_delay, 0.0)
