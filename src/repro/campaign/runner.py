"""Declarative test campaigns: one pipeline for every registered fault model.

A :class:`CampaignSpec` describes the whole flow the paper argues for --
enumerate the fault universe (with optional structural collapsing), apply a
random / exhaustive / single-input-change pattern phase with fault dropping,
top up the remaining undetected faults with deterministic ATPG (faults
already detected by the pattern phase are skipped, not re-run), greedily
compact the combined test set, and report per-phase coverage -- and
:class:`Campaign` executes it for any registered
:class:`~repro.campaign.model.FaultModel`.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable, Optional, Sequence

from ..analysis_static.diagnostics import LintReport
from ..analysis_static.lint import lint_circuit
from ..analysis_static.untestable import StaticProof
from ..atpg.compaction import CompactionResult, concat_phase_reports, greedy_compaction
from ..atpg.coverage import CoverageReport, coverage_from_report
from ..atpg.fault_sim import DetectionReport, _check_engine
from ..atpg.parallel_sim import compile_for_engine
from ..atpg.podem import PodemOptions
from ..atpg.random_tpg import (
    exhaustive_pairs,
    exhaustive_patterns,
    random_pairs,
    random_patterns,
    single_input_change_pairs,
)
from ..atpg.structural import ATPG_ENGINES
from ..faults.base import FaultList
from ..logic.compiled import HAVE_NUMPY
from ..logic.netlist import CircuitStats, LogicCircuit, LogicCircuitError
from .circuits import resolve_circuit
from .errors import CampaignError
from .model import TWO_PATTERN, AtpgOutcome, FaultModel, get_model

#: Accepted ``CampaignSpec.pattern_source`` values.
PATTERN_SOURCES = ("none", "random", "exhaustive", "sic")

#: Accepted ``CampaignSpec.collapse`` values (booleans are also accepted:
#: False = no collapsing, True = "equivalence").
COLLAPSE_MODES = ("equivalence", "dominance")


@dataclass
class CampaignSpec:
    """Declarative description of one test campaign.

    ``universe_options`` is forwarded to the model's universe builder (e.g.
    ``gate_types=[GateType.NAND2]`` for OBD, ``limit=...`` for path-delay).
    ``pattern_source`` selects the optional pattern phase run before ATPG:
    ``"random"`` (``pattern_count`` tests from ``seed``), ``"exhaustive"``,
    or ``"sic"`` (single-input-change pairs; two-pattern models only).

    ``drop_detected=True`` stops simulating each fault after its first
    detection -- the right mode for large coverage-only campaigns, but it
    leaves the compactor only one candidate test per fault, so the greedy
    cover can come out larger than the true minimum.  The default keeps full
    detection lists so compaction quality is exact.

    ``circuit`` optionally names the workload instead of passing a
    :class:`LogicCircuit` to :meth:`Campaign.run`: a registered circuit
    name, a parametric reference (``"rca:8"``, ``"mult:4"``,
    ``"rdag:40,7"``) or a ``.bench`` file path -- see
    :func:`repro.campaign.circuits.resolve_circuit`.

    ``engine`` picks the fault-simulation engine (``"packed"`` generated
    code over big-int words, ``"numpy"`` generated code over uint64 ndarray
    words with PPSFP fault batching -- needs the optional numpy dependency,
    ``pip install repro[numpy]`` -- ``"interp"`` packed interpreter
    baseline, ``"serial"`` reference), and ``word_bits`` overrides its block
    width (None keeps the engine's default:
    :data:`~repro.logic.compiled.DEFAULT_WORD_BITS` for packed,
    :data:`~repro.logic.compiled.DEFAULT_NUMPY_WORD_BITS` for numpy, 64 for
    interp).  The circuit is compiled once per campaign and the same
    :class:`~repro.logic.compiled.CompiledCircuit` drives the pattern phase,
    the ATPG top-up re-simulation and everything downstream of them.

    ``shards`` is the default fault-universe partition count used by the
    multi-process executor (:class:`~repro.campaign.sharded.ShardedCampaign`);
    the single-process :class:`Campaign` ignores it.  Sharded and unsharded
    runs of the same spec produce bit-identical results.

    The spec validates itself on construction, so a bad field fails fast at
    the call site instead of mid-run.
    """

    model: str = "stuck-at"
    circuit: Optional[str] = None
    universe_options: dict = field(default_factory=dict)
    #: False = full universe, True or "equivalence" = structural equivalence
    #: collapsing, "dominance" = equivalence plus guarded dominance drops.
    collapse: bool | str = False
    pattern_source: str = "none"
    pattern_count: int = 64
    seed: int = 0
    run_atpg: bool = True
    podem_options: Optional[PodemOptions] = None
    #: Structural ATPG engine for the top-up phase: any name registered in
    #: :data:`repro.atpg.structural.ATPG_ENGINES` (``"podem"`` -- the
    #: frontier-based rewrite, the default -- ``"d-alg"``, or ``"legacy"``
    #: for the pre-rewrite two-rail PODEM).
    atpg_engine: str = "podem"
    compact: bool = True
    drop_detected: bool = False
    engine: str = "packed"
    word_bits: Optional[int] = None
    shards: int = 1
    #: Pre-simulation static phase: lint the circuit (errors abort the
    #: campaign) and record statically proven untestable faults, which are
    #: then skipped by ATPG.  On by default; set False to opt out.
    static_phase: bool = True
    # -- Robustness knobs (sharded/service execution only). ------------- #
    # None of these can change a campaign's *result* -- retried, resumed
    # and engine-degraded runs are bit-identical by construction -- so they
    # are deliberately excluded from ``as_dict()``'s spec block and from
    # ``spec_canonical_form`` (two specs differing only here share cache
    # entries, checkpoints and goldens).
    #: Extra attempts per shard task after its first failure (crash or
    #: deadline overrun).  0 = fail the campaign on the first shard error.
    max_retries: int = 0
    #: Per-shard deadline in seconds; a shard still running past it counts
    #: as hung and is retried (or failed) like a crash.  None = no deadline.
    shard_timeout: Optional[float] = None
    #: Base of the exponential retry backoff: attempt *n* sleeps
    #: ``retry_backoff * 2**n`` seconds before resubmitting.
    retry_backoff: float = 0.05
    #: After the retry budget is spent, fall back to the next slower engine
    #: (numpy -> packed -> interp -> serial; all bit-identical) with a fresh
    #: attempt budget, recording the degradation in the result's provenance.
    #: Set False to fail instead of degrading.
    allow_degraded: bool = True

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.max_retries < 0:
            raise CampaignError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise CampaignError(
                f"shard_timeout must be positive or None, got {self.shard_timeout}"
            )
        if self.retry_backoff < 0:
            raise CampaignError(f"retry_backoff must be >= 0, got {self.retry_backoff}")
        if isinstance(self.collapse, str) and self.collapse not in COLLAPSE_MODES:
            raise CampaignError(
                f"unknown collapse mode {self.collapse!r}; expected a boolean "
                f"or one of {COLLAPSE_MODES}"
            )
        if self.pattern_source not in PATTERN_SOURCES:
            raise CampaignError(
                f"unknown pattern source {self.pattern_source!r}; expected one of {PATTERN_SOURCES}"
            )
        if self.pattern_count < 0:
            raise CampaignError("pattern_count must be non-negative")
        if self.pattern_source == "none" and not self.run_atpg:
            raise CampaignError("campaign has no test phase: set pattern_source or run_atpg")
        if self.word_bits is not None and self.word_bits < 1:
            raise CampaignError(f"word_bits must be >= 1, got {self.word_bits}")
        if self.shards < 1:
            raise CampaignError(f"shards must be >= 1, got {self.shards}")
        try:
            _check_engine(self.engine)
        except ValueError as exc:
            raise CampaignError(str(exc)) from None
        if self.engine == "numpy" and not HAVE_NUMPY:
            raise CampaignError(
                "engine='numpy' requires the optional numpy dependency "
                "(pip install 'repro[numpy]'); fall back to engine='packed' "
                "for the big-int backend of the same generated-code engine"
            )
        if self.atpg_engine not in ATPG_ENGINES:
            raise CampaignError(
                f"unknown ATPG engine {self.atpg_engine!r}; expected one of "
                f"{tuple(sorted(ATPG_ENGINES))}"
            )
        try:
            model = get_model(self.model)
        except KeyError as exc:
            raise CampaignError(exc.args[0]) from None
        if self.pattern_source == "sic" and model.pattern_kind != TWO_PATTERN:
            raise CampaignError(
                f"pattern_source='sic' (single-input-change pairs) needs a "
                f"two-pattern model, but model={self.model!r} is single-pattern"
            )


@dataclass
class StaticPhaseResult:
    """Outcome of the pre-simulation static phase.

    ``proofs`` maps each statically proven untestable fault key to its
    :class:`~repro.analysis_static.untestable.StaticProof`; those faults are
    skipped by ATPG and reported as untestable with ``proven_static``
    provenance.  They deliberately *stay* in the fault-simulation universe:
    a sound proof means no test can detect them, so keeping them changes no
    detection result -- and a detection of a proven fault trips the
    soundness alarm in :func:`assemble_result`.
    """

    lint: LintReport
    proofs: dict[str, StaticProof]
    runtime: float

    @property
    def num_proven(self) -> int:
        return len(self.proofs)


@dataclass
class PatternPhaseResult:
    """Outcome of the random / exhaustive / SIC pattern phase."""

    source: str
    tests: list
    report: DetectionReport
    coverage: CoverageReport
    runtime: float


@dataclass
class AtpgPhaseResult:
    """Outcome of the deterministic ATPG top-up phase.

    ``skipped`` lists the fault keys that were already detected by an earlier
    phase and therefore never handed to the ATPG engine (cross-phase fault
    dropping); ``proven`` lists the keys the static phase proved untestable,
    which are likewise never searched; ``outcomes`` covers only the
    attempted faults.
    """

    outcomes: list[AtpgOutcome]
    skipped: tuple[str, ...]
    tests: list
    report: DetectionReport
    coverage: CoverageReport
    runtime: float
    #: Time spent in test generation alone, excluding the verification
    #: fault-simulation of the generated tests (use this for ATPG-cost
    #: comparisons such as the Section-5 complexity experiment).
    generation_runtime: float = 0.0
    #: Fault keys proven untestable by the static phase (universe order),
    #: skipped without running the search.
    proven: tuple[str, ...] = ()

    @property
    def attempted(self) -> int:
        return len(self.outcomes)

    @property
    def testable(self) -> list[AtpgOutcome]:
        return [o for o in self.outcomes if o.success]

    @property
    def untestable(self) -> list[AtpgOutcome]:
        return [o for o in self.outcomes if o.untestable]

    @property
    def aborted(self) -> list[AtpgOutcome]:
        return [o for o in self.outcomes if not o.success and o.aborted]

    @property
    def backtracks(self) -> int:
        return sum(o.backtracks for o in self.outcomes)

    @property
    def decisions(self) -> int:
        return sum(o.decisions for o in self.outcomes)

    @property
    def implications(self) -> int:
        return sum(o.implications for o in self.outcomes)


@dataclass
class CampaignResult:
    """Everything one campaign run produced.

    Test indices in :attr:`compaction` refer to the merged test list
    (:attr:`tests`): pattern-phase tests first, ATPG tests after them.
    """

    spec: CampaignSpec
    model_name: str
    circuit_name: str
    circuit_stats: CircuitStats
    faults: FaultList
    uncollapsed_faults: int
    static_phase: Optional[StaticPhaseResult]
    pattern_phase: Optional[PatternPhaseResult]
    atpg_phase: Optional[AtpgPhaseResult]
    #: All tests applied, pattern phase first, then ATPG tests; detection
    #: and compaction indices refer to this list.
    tests: list
    merged_report: DetectionReport
    compaction: Optional[CompactionResult]
    compacted_tests: Optional[list]
    runtime: float
    #: Engine-degradation provenance, set by the sharded executor when a
    #: shard fell back to a slower engine after repeated failures:
    #: ``{"engine": spec engine, "fallbacks": {shard: engine}}``.  None for
    #: a clean run, and omitted from :meth:`as_dict` then -- degradation is
    #: operational provenance, not part of the (bit-identical) result.
    degraded: Optional[dict[str, Any]] = None

    # ------------------------------------------------------------------ #
    # Merged views.
    # ------------------------------------------------------------------ #
    @property
    def detections(self) -> dict[str, list[int]]:
        """Per-fault detecting indices into the merged test list."""
        return self.merged_report.detections

    @property
    def detected_faults(self) -> list[str]:
        return self.merged_report.detected_faults

    @property
    def undetected_faults(self) -> list[str]:
        return self.merged_report.undetected_faults

    @property
    def coverage(self) -> CoverageReport:
        """Overall coverage across all phases.

        Statically proven faults count as untestable (with their own
        ``proven_static`` tally) exactly like ATPG-proven ones, so test
        efficiency is comparable with the static phase on or off.
        """
        proven = self.static_phase.num_proven if self.static_phase else 0
        untestable = (len(self.atpg_phase.untestable) if self.atpg_phase else 0) + proven
        aborted = len(self.atpg_phase.aborted) if self.atpg_phase else 0
        return CoverageReport(
            model=self.model_name,
            total_faults=len(self.faults),
            detected=len(self.detected_faults),
            untestable=untestable,
            aborted=aborted,
            num_tests=self.merged_report.num_tests,
            proven_static=proven,
        )

    @property
    def phase_coverages(self) -> list[CoverageReport]:
        phases = (self.pattern_phase, self.atpg_phase)
        return [phase.coverage for phase in phases if phase is not None]

    # ------------------------------------------------------------------ #
    # Reporting.
    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        overall = self.coverage
        lines = [
            f"circuit: {self.circuit_stats.describe()}",
            f"campaign[{self.model_name}] on {self.circuit_name or 'circuit'}: "
            f"{len(self.faults)} faults"
            + (
                f" (collapsed from {self.uncollapsed_faults})"
                if len(self.faults) != self.uncollapsed_faults
                else ""
            )
            + f", {overall.detected}/{overall.total_faults} detected "
            f"({100.0 * overall.coverage:.1f}%)"
        ]
        if self.static_phase is not None:
            s = self.static_phase
            counts = s.lint.counts()
            lines.append(
                f"  static: lint {counts['errors']} errors / {counts['warnings']} "
                f"warnings, {s.num_proven} faults proven untestable"
            )
        if self.pattern_phase is not None:
            p = self.pattern_phase
            lines.append(
                f"  patterns[{p.source}]: {len(p.tests)} tests -> "
                f"{p.coverage.detected}/{p.coverage.total_faults} detected"
            )
        if self.atpg_phase is not None:
            a = self.atpg_phase
            lines.append(
                f"  atpg: {a.attempted} attempted ({len(a.skipped)} skipped as already "
                f"detected, {len(a.proven)} proven untestable statically), "
                f"{len(a.testable)} testable, {len(a.untestable)} untestable, "
                f"{len(a.aborted)} aborted, {a.backtracks} backtracks / "
                f"{a.decisions} decisions -> {len(a.tests)} tests"
            )
        if self.compaction is not None:
            lines.append(
                f"  compaction: {self.compaction.size}/{self.merged_report.num_tests} tests "
                f"cover {len(self.compaction.covered_faults)} faults"
            )
        lines.append(f"  runtime: {self.runtime * 1e3:.1f} ms")
        return "\n".join(lines)

    def as_dict(self, include_runtime: bool = True) -> dict[str, Any]:
        """JSON-serializable summary of the campaign.

        ``include_runtime=False`` omits the wall-clock fields (``runtime_s``,
        ``generation_runtime_s``) so two runs of the same spec -- e.g. a
        sharded and an unsharded execution, or a run against a golden file --
        compare byte-identical.
        """
        spec = self.spec
        payload: dict[str, Any] = {
            "model": self.model_name,
            "circuit": self.circuit_name,
            "spec": _jsonable(
                {
                    "model": spec.model,
                    "circuit": spec.circuit,
                    "universe_options": spec.universe_options,
                    "collapse": spec.collapse,
                    "pattern_source": spec.pattern_source,
                    "pattern_count": spec.pattern_count,
                    "seed": spec.seed,
                    "run_atpg": spec.run_atpg,
                    "compact": spec.compact,
                    "drop_detected": spec.drop_detected,
                    "engine": spec.engine,
                    "atpg_engine": spec.atpg_engine,
                    "word_bits": spec.word_bits,
                    "shards": spec.shards,
                    "static_phase": spec.static_phase,
                }
            ),
            "circuit_stats": {
                "inputs": self.circuit_stats.num_inputs,
                "outputs": self.circuit_stats.num_outputs,
                "gates": self.circuit_stats.num_gates,
                "nets": self.circuit_stats.num_nets,
                "depth": self.circuit_stats.depth,
                "gate_counts": dict(self.circuit_stats.gate_counts),
                "fanout_histogram": {
                    str(k): v for k, v in sorted(self.circuit_stats.fanout_histogram.items())
                },
                "max_fanout": self.circuit_stats.max_fanout,
                "scoap": self.circuit_stats.scoap,
            },
            "faults": len(self.faults),
            "uncollapsed_faults": self.uncollapsed_faults,
            "coverage": _coverage_dict(self.coverage),
            "detections": {key: list(indices) for key, indices in self.detections.items()},
        }
        if include_runtime:
            payload["runtime_s"] = self.runtime
        if self.static_phase is not None:
            s = self.static_phase
            payload["static_phase"] = {
                "lint": s.lint.counts(),
                "proven_untestable": {
                    key: s.proofs[key].reason for key in sorted(s.proofs)
                },
            }
            if include_runtime:
                payload["static_phase"]["runtime_s"] = s.runtime
        if self.pattern_phase is not None:
            payload["pattern_phase"] = {
                "source": self.pattern_phase.source,
                "num_tests": len(self.pattern_phase.tests),
                "coverage": _coverage_dict(self.pattern_phase.coverage),
            }
            if include_runtime:
                payload["pattern_phase"]["runtime_s"] = self.pattern_phase.runtime
        if self.atpg_phase is not None:
            a = self.atpg_phase
            payload["atpg_phase"] = {
                "atpg_engine": spec.atpg_engine,
                "attempted": a.attempted,
                "skipped": len(a.skipped),
                "proven_static": len(a.proven),
                "proven_structural": len(a.untestable),
                "testable": len(a.testable),
                "untestable": len(a.untestable),
                "aborted": len(a.aborted),
                "backtracks": a.backtracks,
                "decisions": a.decisions,
                "implications": a.implications,
                "num_tests": len(a.tests),
                "outcomes": {o.fault.key: o.status for o in a.outcomes},
                "coverage": _coverage_dict(a.coverage),
            }
            if include_runtime:
                payload["atpg_phase"]["runtime_s"] = a.runtime
                payload["atpg_phase"]["generation_runtime_s"] = a.generation_runtime
        if self.compaction is not None:
            payload["compaction"] = {
                "selected_indices": list(self.compaction.selected_indices),
                "size": self.compaction.size,
                "covered_faults": len(self.compaction.covered_faults),
                "uncovered_faults": len(self.compaction.uncovered_faults),
                "tests": _jsonable(self.compacted_tests),
            }
        if self.degraded:
            payload["degraded"] = _jsonable(self.degraded)
        return payload

    def to_json(self, indent: int | None = None, include_runtime: bool = True) -> str:
        return json.dumps(self.as_dict(include_runtime=include_runtime), indent=indent)


def _coverage_dict(report: CoverageReport) -> dict[str, Any]:
    return {
        "total_faults": report.total_faults,
        "detected": report.detected,
        "untestable": report.untestable,
        "proven_static": report.proven_static,
        "aborted": report.aborted,
        "num_tests": report.num_tests,
        "coverage": report.coverage,
        "test_efficiency": report.test_efficiency,
    }


def _jsonable(value: Any) -> Any:
    """Recursively convert enums/tuples so ``json.dumps`` accepts the value."""
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


# --------------------------------------------------------------------------- #
# Pure pipeline pieces.
#
# These are module-level (hence picklable) and side-effect free so the
# multi-process sharded executor (repro.campaign.sharded) can run them in
# worker processes and still produce results bit-identical to Campaign.run.
# --------------------------------------------------------------------------- #
def resolve_campaign_circuit(
    circuit: LogicCircuit | str | os.PathLike | None,
    spec: CampaignSpec,
) -> LogicCircuit:
    """Resolve the run() argument or the spec's ``circuit`` field.

    Normalizes everything a bad circuit reference can produce (builder
    errors, malformed ``.bench`` files, unknown names) to
    :class:`CampaignError`.
    """
    if circuit is None:
        if spec.circuit is None:
            raise CampaignError("no circuit: pass one to run() or set CampaignSpec.circuit")
        circuit = spec.circuit
    try:
        return resolve_circuit(circuit)
    except (ValueError, LogicCircuitError) as exc:
        raise CampaignError(str(exc)) from None


# compile_for_engine is re-exported here for backwards compatibility: it now
# lives beside the engine-backend registry in repro.atpg.parallel_sim.


def collapse_universe(
    model: FaultModel, circuit: LogicCircuit, universe: FaultList, mode: bool | str
) -> FaultList:
    """Apply the spec's collapse mode (False / True / "equivalence" / "dominance").

    ``"dominance"`` falls back to plain equivalence for models that predate
    the ``collapse_dominance`` hook.
    """
    if not mode:
        return universe
    if mode == "dominance":
        dominance = getattr(model, "collapse_dominance", None)
        if dominance is not None:
            return dominance(circuit, universe)
    return model.collapse(circuit, universe)


def run_lint_gate(circuit: LogicCircuit) -> LintReport:
    """Lint *circuit* and abort on error-severity findings.

    An error-severity diagnostic aborts the campaign with a
    :class:`CampaignError` quoting every finding; warnings and infos are
    recorded on the report but do not block.  This runs before the circuit
    is compiled or the fault universe built, so structural defects surface
    as campaign errors with rule ids instead of engine tracebacks.
    """
    lint = lint_circuit(circuit)
    if not lint.ok:
        findings = "; ".join(d.format() for d in lint.errors)
        raise CampaignError(
            f"circuit {circuit.name or '<unnamed>'!r} failed netlist lint: {findings}"
        )
    return lint


def run_static_phase(
    model: FaultModel,
    circuit: LogicCircuit,
    faults: FaultList,
    lint: Optional[LintReport] = None,
) -> StaticPhaseResult:
    """Collect the static phase: lint gate plus untestability proofs.

    *lint* carries a report from an earlier :func:`run_lint_gate` call (the
    runner lints before compiling); when None the gate runs here.  Models
    without a ``prove_untestable`` hook simply contribute no proofs.
    """
    t0 = time.perf_counter()
    if lint is None:
        lint = run_lint_gate(circuit)
    prove = getattr(model, "prove_untestable", None)
    proofs: dict[str, StaticProof] = prove(circuit, faults) if prove is not None else {}
    return StaticPhaseResult(lint=lint, proofs=proofs, runtime=time.perf_counter() - t0)


def generate_atpg_outcomes(
    model: FaultModel,
    circuit: LogicCircuit,
    faults: Iterable,
    detected: set[str],
    options: Optional[PodemOptions] = None,
    proven: frozenset[str] = frozenset(),
    atpg_engine: str | None = None,
) -> tuple[list[AtpgOutcome], list[str], list[str]]:
    """Deterministic ATPG over *faults*, skipping already-*detected* keys.

    Keys in *proven* (statically proven untestable) are skipped without
    running the search.  *atpg_engine* names a structural engine
    (``"d-alg"`` / ``"podem"`` / ``"legacy"``); None keeps the model's
    default.  Returns (outcomes for the attempted faults, skipped fault
    keys, proven fault keys), all in universe order -- the invariant that
    makes fault-sharded generation merge back into exactly the
    single-process test list.
    """
    outcomes: list[AtpgOutcome] = []
    skipped: list[str] = []
    proven_skipped: list[str] = []
    for fault in faults:
        if fault.key in proven:
            proven_skipped.append(fault.key)
            continue
        if fault.key in detected:
            skipped.append(fault.key)
            continue
        outcomes.append(
            model.generate_test(circuit, fault, options=options, atpg_engine=atpg_engine)
        )
    return outcomes, skipped, proven_skipped


def build_atpg_phase(
    model_name: str,
    num_faults: int,
    outcomes: list[AtpgOutcome],
    skipped: Sequence[str],
    report: DetectionReport,
    runtime: float,
    generation_runtime: float,
    proven: Sequence[str] = (),
) -> AtpgPhaseResult:
    """Assemble the ATPG phase record from its parts (shared with sharding).

    The phase coverage counts the statically *proven* keys as untestable
    alongside the search-proven ones, so the phase's test efficiency is
    unchanged by moving a proof from PODEM to the static phase.
    """
    atpg_tests = [test for outcome in outcomes for test in outcome.tests]
    untestable = sum(1 for o in outcomes if o.untestable)
    aborted = sum(1 for o in outcomes if not o.success and o.aborted)
    return AtpgPhaseResult(
        outcomes=outcomes,
        skipped=tuple(skipped),
        tests=atpg_tests,
        report=report,
        coverage=CoverageReport(
            model=model_name,
            total_faults=num_faults,
            detected=len(report.detected_faults),
            untestable=untestable + len(proven),
            aborted=aborted,
            num_tests=len(atpg_tests),
            proven_static=len(proven),
        ),
        runtime=runtime,
        generation_runtime=generation_runtime,
        proven=tuple(proven),
    )


def assemble_result(
    spec: CampaignSpec,
    model: FaultModel,
    circuit: LogicCircuit,
    universe: FaultList,
    faults: FaultList,
    pattern_phase: Optional[PatternPhaseResult],
    atpg_phase: Optional[AtpgPhaseResult],
    runtime: float,
    static_phase: Optional[StaticPhaseResult] = None,
) -> CampaignResult:
    """Merge phases, compact, and build the final :class:`CampaignResult`.

    Both the single-process and the sharded executor end here, so report
    merging and compaction behave identically no matter how the phases were
    computed.  A detection of a statically proven fault means an unsound
    proof and raises :class:`CampaignError` -- by construction it cannot
    happen, and silently reporting such a fault both detected and untestable
    would corrupt every downstream count.
    """
    merged_report = concat_phase_reports(
        faults.keys(), [p.report for p in (pattern_phase, atpg_phase) if p is not None]
    )
    if static_phase is not None and static_phase.proofs:
        unsound = sorted(set(merged_report.detected_faults) & set(static_phase.proofs))
        if unsound:
            raise CampaignError(
                f"static untestability proofs are unsound: faults {unsound} were "
                f"proven untestable but detected by simulation"
            )
    merged_tests = (pattern_phase.tests if pattern_phase else []) + (
        atpg_phase.tests if atpg_phase else []
    )
    compaction = compacted_tests = None
    if spec.compact:
        compaction = greedy_compaction(merged_report)
        compacted_tests = [merged_tests[i] for i in compaction.selected_indices]
    return CampaignResult(
        spec=spec,
        model_name=model.name,
        circuit_name=circuit.name,
        circuit_stats=circuit.stats(include_scoap=spec.static_phase),
        faults=faults,
        uncollapsed_faults=len(universe),
        static_phase=static_phase,
        pattern_phase=pattern_phase,
        atpg_phase=atpg_phase,
        tests=merged_tests,
        merged_report=merged_report,
        compaction=compaction,
        compacted_tests=compacted_tests,
        runtime=runtime,
    )


class Campaign:
    """Executable form of a :class:`CampaignSpec` for any registered model."""

    def __init__(self, spec: CampaignSpec):
        # Re-validate in case the spec was mutated after construction.
        spec.validate()
        self.spec = spec
        self.model: FaultModel = get_model(spec.model)

    # ------------------------------------------------------------------ #
    # Pattern sources.
    # ------------------------------------------------------------------ #
    def patterns_for(self, circuit: LogicCircuit) -> list:
        """The pattern-phase test list dictated by the spec and model kind."""
        spec = self.spec
        pairs = self.model.pattern_kind == TWO_PATTERN
        if spec.pattern_source == "random":
            if pairs:
                return random_pairs(circuit, spec.pattern_count, seed=spec.seed)
            return random_patterns(circuit, spec.pattern_count, seed=spec.seed)
        if spec.pattern_source == "exhaustive":
            return exhaustive_pairs(circuit) if pairs else exhaustive_patterns(circuit)
        if spec.pattern_source == "sic":
            if not pairs:
                raise CampaignError(
                    f"single-input-change patterns need a two-pattern model, "
                    f"not {self.model.name!r}"
                )
            return single_input_change_pairs(circuit)
        return []

    # ------------------------------------------------------------------ #
    # Pipeline.
    # ------------------------------------------------------------------ #
    def run(self, circuit: LogicCircuit | str | None = None) -> CampaignResult:
        """Execute the full pipeline on *circuit*.

        *circuit* may be a :class:`LogicCircuit`, a circuit reference
        string (registered name, parametric ``family:args`` or ``.bench``
        path), or None to use the spec's ``circuit`` field.
        """
        spec, model = self.spec, self.model
        circuit = resolve_campaign_circuit(circuit, spec)
        start = time.perf_counter()

        # The lint gate runs before anything touches the netlist, so a
        # malformed circuit fails with rule-id diagnostics rather than a
        # compile or universe-builder traceback.
        lint = run_lint_gate(circuit) if spec.static_phase else None

        # One compile per campaign: every phase's fault simulation reuses the
        # same CompiledCircuit (codegen over big-int or ndarray words for
        # "packed"/"numpy", interpreter baseline at the legacy width for
        # "interp"; the serial engine needs none).
        compiled = compile_for_engine(circuit, spec.engine, spec.word_bits)

        universe = model.build_universe(circuit, **spec.universe_options)
        faults = collapse_universe(model, circuit, universe, spec.collapse)
        detected: set[str] = set()

        static_phase: StaticPhaseResult | None = None
        proven: frozenset[str] = frozenset()
        if spec.static_phase:
            static_phase = run_static_phase(model, circuit, faults, lint=lint)
            proven = frozenset(static_phase.proofs)

        pattern_phase: PatternPhaseResult | None = None
        if spec.pattern_source != "none":
            t0 = time.perf_counter()
            tests = self.patterns_for(circuit)
            report = model.simulate(
                circuit, tests, faults, drop_detected=spec.drop_detected,
                engine=spec.engine, compiled=compiled, word_bits=spec.word_bits,
            )
            pattern_phase = PatternPhaseResult(
                source=spec.pattern_source,
                tests=list(tests),
                report=report,
                coverage=coverage_from_report(model.name, report),
                runtime=time.perf_counter() - t0,
            )
            detected.update(report.detected_faults)

        atpg_phase: AtpgPhaseResult | None = None
        if spec.run_atpg:
            t0 = time.perf_counter()
            outcomes, skipped, proven_skipped = generate_atpg_outcomes(
                model, circuit, faults, detected, spec.podem_options, proven=proven,
                atpg_engine=spec.atpg_engine,
            )
            generation_runtime = time.perf_counter() - t0
            atpg_tests = [test for outcome in outcomes for test in outcome.tests]
            # With dropping on, faults the pattern phase already detected are
            # excluded here too, so each dropped fault keeps exactly one
            # detection index across the whole campaign; without dropping the
            # full universe is simulated so compaction sees every alternative.
            if spec.drop_detected:
                sim_faults = faults.filtered(lambda f: f.key not in detected)
            else:
                sim_faults = faults
            report = model.simulate(
                circuit, atpg_tests, sim_faults, drop_detected=spec.drop_detected,
                engine=spec.engine, compiled=compiled, word_bits=spec.word_bits,
            )
            atpg_phase = build_atpg_phase(
                model.name,
                len(faults),
                outcomes,
                skipped,
                report,
                runtime=time.perf_counter() - t0,
                generation_runtime=generation_runtime,
                proven=proven_skipped,
            )
            detected.update(report.detected_faults)

        return assemble_result(
            spec,
            model,
            circuit,
            universe,
            faults,
            pattern_phase,
            atpg_phase,
            runtime=time.perf_counter() - start,
            static_phase=static_phase,
        )


def run_campaign(
    circuit: LogicCircuit | str | None = None,
    spec: CampaignSpec | None = None,
    **spec_kwargs: Any,
) -> CampaignResult:
    """One-call convenience: build a spec (or take one) and run it.

    *circuit* accepts everything :meth:`Campaign.run` does, including a
    circuit reference string or None when the spec names the circuit.
    """
    if spec is not None and spec_kwargs:
        raise CampaignError("pass either a CampaignSpec or keyword fields, not both")
    return Campaign(spec or CampaignSpec(**spec_kwargs)).run(circuit)
