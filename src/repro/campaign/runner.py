"""Declarative test campaigns: one pipeline for every registered fault model.

A :class:`CampaignSpec` describes the whole flow the paper argues for --
enumerate the fault universe (with optional structural collapsing), apply a
random / exhaustive / single-input-change pattern phase with fault dropping,
top up the remaining undetected faults with deterministic ATPG (faults
already detected by the pattern phase are skipped, not re-run), greedily
compact the combined test set, and report per-phase coverage -- and
:class:`Campaign` executes it for any registered
:class:`~repro.campaign.model.FaultModel`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

from ..atpg.compaction import CompactionResult, greedy_compaction
from ..atpg.coverage import CoverageReport, coverage_from_report
from ..atpg.fault_sim import DetectionReport, _check_engine
from ..atpg.podem import PodemOptions
from ..atpg.random_tpg import (
    exhaustive_pairs,
    exhaustive_patterns,
    random_pairs,
    random_patterns,
    single_input_change_pairs,
)
from ..faults.base import FaultList
from ..logic.compiled import DEFAULT_WORD_BITS, WORD_BITS, CompiledCircuit, compile_circuit
from ..logic.netlist import CircuitStats, LogicCircuit, LogicCircuitError
from .circuits import resolve_circuit
from .model import TWO_PATTERN, AtpgOutcome, FaultModel, get_model

#: Accepted ``CampaignSpec.pattern_source`` values.
PATTERN_SOURCES = ("none", "random", "exhaustive", "sic")


class CampaignError(ValueError):
    """An invalid campaign specification."""


@dataclass
class CampaignSpec:
    """Declarative description of one test campaign.

    ``universe_options`` is forwarded to the model's universe builder (e.g.
    ``gate_types=[GateType.NAND2]`` for OBD, ``limit=...`` for path-delay).
    ``pattern_source`` selects the optional pattern phase run before ATPG:
    ``"random"`` (``pattern_count`` tests from ``seed``), ``"exhaustive"``,
    or ``"sic"`` (single-input-change pairs; two-pattern models only).

    ``drop_detected=True`` stops simulating each fault after its first
    detection -- the right mode for large coverage-only campaigns, but it
    leaves the compactor only one candidate test per fault, so the greedy
    cover can come out larger than the true minimum.  The default keeps full
    detection lists so compaction quality is exact.

    ``circuit`` optionally names the workload instead of passing a
    :class:`LogicCircuit` to :meth:`Campaign.run`: a registered circuit
    name, a parametric reference (``"rca:8"``, ``"mult:4"``,
    ``"rdag:40,7"``) or a ``.bench`` file path -- see
    :func:`repro.campaign.circuits.resolve_circuit`.

    ``engine`` picks the fault-simulation engine (``"packed"`` generated
    code, ``"interp"`` packed interpreter baseline, ``"serial"`` reference),
    and ``word_bits`` overrides its block width (None keeps the engine's
    default: :data:`~repro.logic.compiled.DEFAULT_WORD_BITS` for packed, 64
    for interp).  The circuit is compiled once per campaign and the same
    :class:`~repro.logic.compiled.CompiledCircuit` drives the pattern phase,
    the ATPG top-up re-simulation and everything downstream of them.
    """

    model: str = "stuck-at"
    circuit: Optional[str] = None
    universe_options: dict = field(default_factory=dict)
    collapse: bool = False
    pattern_source: str = "none"
    pattern_count: int = 64
    seed: int = 0
    run_atpg: bool = True
    podem_options: Optional[PodemOptions] = None
    compact: bool = True
    drop_detected: bool = False
    engine: str = "packed"
    word_bits: Optional[int] = None

    def validate(self) -> None:
        if self.pattern_source not in PATTERN_SOURCES:
            raise CampaignError(
                f"unknown pattern source {self.pattern_source!r}; expected one of {PATTERN_SOURCES}"
            )
        if self.pattern_count < 0:
            raise CampaignError("pattern_count must be non-negative")
        if self.pattern_source == "none" and not self.run_atpg:
            raise CampaignError("campaign has no test phase: set pattern_source or run_atpg")
        if self.word_bits is not None and self.word_bits < 1:
            raise CampaignError(f"word_bits must be >= 1, got {self.word_bits}")
        _check_engine(self.engine)


@dataclass
class PatternPhaseResult:
    """Outcome of the random / exhaustive / SIC pattern phase."""

    source: str
    tests: list
    report: DetectionReport
    coverage: CoverageReport
    runtime: float


@dataclass
class AtpgPhaseResult:
    """Outcome of the deterministic ATPG top-up phase.

    ``skipped`` lists the fault keys that were already detected by an earlier
    phase and therefore never handed to the ATPG engine (cross-phase fault
    dropping); ``outcomes`` covers only the attempted faults.
    """

    outcomes: list[AtpgOutcome]
    skipped: tuple[str, ...]
    tests: list
    report: DetectionReport
    coverage: CoverageReport
    runtime: float
    #: Time spent in test generation alone, excluding the verification
    #: fault-simulation of the generated tests (use this for ATPG-cost
    #: comparisons such as the Section-5 complexity experiment).
    generation_runtime: float = 0.0

    @property
    def attempted(self) -> int:
        return len(self.outcomes)

    @property
    def testable(self) -> list[AtpgOutcome]:
        return [o for o in self.outcomes if o.success]

    @property
    def untestable(self) -> list[AtpgOutcome]:
        return [o for o in self.outcomes if o.untestable]

    @property
    def aborted(self) -> list[AtpgOutcome]:
        return [o for o in self.outcomes if not o.success and o.aborted]

    @property
    def backtracks(self) -> int:
        return sum(o.backtracks for o in self.outcomes)


@dataclass
class CampaignResult:
    """Everything one campaign run produced.

    Test indices in :attr:`compaction` refer to the merged test list
    (:attr:`tests`): pattern-phase tests first, ATPG tests after them.
    """

    spec: CampaignSpec
    model_name: str
    circuit_name: str
    circuit_stats: CircuitStats
    faults: FaultList
    uncollapsed_faults: int
    pattern_phase: Optional[PatternPhaseResult]
    atpg_phase: Optional[AtpgPhaseResult]
    #: All tests applied, pattern phase first, then ATPG tests; detection
    #: and compaction indices refer to this list.
    tests: list
    merged_report: DetectionReport
    compaction: Optional[CompactionResult]
    compacted_tests: Optional[list]
    runtime: float

    # ------------------------------------------------------------------ #
    # Merged views.
    # ------------------------------------------------------------------ #
    @property
    def detections(self) -> dict[str, list[int]]:
        """Per-fault detecting indices into the merged test list."""
        return self.merged_report.detections

    @property
    def detected_faults(self) -> list[str]:
        return self.merged_report.detected_faults

    @property
    def undetected_faults(self) -> list[str]:
        return self.merged_report.undetected_faults

    @property
    def coverage(self) -> CoverageReport:
        """Overall coverage across all phases."""
        untestable = len(self.atpg_phase.untestable) if self.atpg_phase else 0
        aborted = len(self.atpg_phase.aborted) if self.atpg_phase else 0
        return CoverageReport(
            model=self.model_name,
            total_faults=len(self.faults),
            detected=len(self.detected_faults),
            untestable=untestable,
            aborted=aborted,
            num_tests=self.merged_report.num_tests,
        )

    @property
    def phase_coverages(self) -> list[CoverageReport]:
        phases = (self.pattern_phase, self.atpg_phase)
        return [phase.coverage for phase in phases if phase is not None]

    # ------------------------------------------------------------------ #
    # Reporting.
    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        overall = self.coverage
        lines = [
            f"circuit: {self.circuit_stats.describe()}",
            f"campaign[{self.model_name}] on {self.circuit_name or 'circuit'}: "
            f"{len(self.faults)} faults"
            + (
                f" (collapsed from {self.uncollapsed_faults})"
                if len(self.faults) != self.uncollapsed_faults
                else ""
            )
            + f", {overall.detected}/{overall.total_faults} detected "
            f"({100.0 * overall.coverage:.1f}%)"
        ]
        if self.pattern_phase is not None:
            p = self.pattern_phase
            lines.append(
                f"  patterns[{p.source}]: {len(p.tests)} tests -> "
                f"{p.coverage.detected}/{p.coverage.total_faults} detected"
            )
        if self.atpg_phase is not None:
            a = self.atpg_phase
            lines.append(
                f"  atpg: {a.attempted} attempted ({len(a.skipped)} skipped as already "
                f"detected), {len(a.testable)} testable, {len(a.untestable)} untestable, "
                f"{len(a.aborted)} aborted, {a.backtracks} backtracks -> {len(a.tests)} tests"
            )
        if self.compaction is not None:
            lines.append(
                f"  compaction: {self.compaction.size}/{self.merged_report.num_tests} tests "
                f"cover {len(self.compaction.covered_faults)} faults"
            )
        lines.append(f"  runtime: {self.runtime * 1e3:.1f} ms")
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable summary of the campaign."""
        spec = self.spec
        payload: dict[str, Any] = {
            "model": self.model_name,
            "circuit": self.circuit_name,
            "spec": _jsonable(
                {
                    "model": spec.model,
                    "circuit": spec.circuit,
                    "universe_options": spec.universe_options,
                    "collapse": spec.collapse,
                    "pattern_source": spec.pattern_source,
                    "pattern_count": spec.pattern_count,
                    "seed": spec.seed,
                    "run_atpg": spec.run_atpg,
                    "compact": spec.compact,
                    "drop_detected": spec.drop_detected,
                    "engine": spec.engine,
                    "word_bits": spec.word_bits,
                }
            ),
            "circuit_stats": {
                "inputs": self.circuit_stats.num_inputs,
                "outputs": self.circuit_stats.num_outputs,
                "gates": self.circuit_stats.num_gates,
                "nets": self.circuit_stats.num_nets,
                "depth": self.circuit_stats.depth,
                "gate_counts": dict(self.circuit_stats.gate_counts),
                "fanout_histogram": {
                    str(k): v for k, v in sorted(self.circuit_stats.fanout_histogram.items())
                },
                "max_fanout": self.circuit_stats.max_fanout,
            },
            "faults": len(self.faults),
            "uncollapsed_faults": self.uncollapsed_faults,
            "coverage": _coverage_dict(self.coverage),
            "detections": {key: list(indices) for key, indices in self.detections.items()},
            "runtime_s": self.runtime,
        }
        if self.pattern_phase is not None:
            payload["pattern_phase"] = {
                "source": self.pattern_phase.source,
                "num_tests": len(self.pattern_phase.tests),
                "coverage": _coverage_dict(self.pattern_phase.coverage),
                "runtime_s": self.pattern_phase.runtime,
            }
        if self.atpg_phase is not None:
            a = self.atpg_phase
            payload["atpg_phase"] = {
                "attempted": a.attempted,
                "skipped": len(a.skipped),
                "testable": len(a.testable),
                "untestable": len(a.untestable),
                "aborted": len(a.aborted),
                "backtracks": a.backtracks,
                "num_tests": len(a.tests),
                "coverage": _coverage_dict(a.coverage),
                "runtime_s": a.runtime,
                "generation_runtime_s": a.generation_runtime,
            }
        if self.compaction is not None:
            payload["compaction"] = {
                "selected_indices": list(self.compaction.selected_indices),
                "size": self.compaction.size,
                "covered_faults": len(self.compaction.covered_faults),
                "uncovered_faults": len(self.compaction.uncovered_faults),
                "tests": _jsonable(self.compacted_tests),
            }
        return payload

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.as_dict(), indent=indent)


def _coverage_dict(report: CoverageReport) -> dict[str, Any]:
    return {
        "total_faults": report.total_faults,
        "detected": report.detected,
        "untestable": report.untestable,
        "aborted": report.aborted,
        "num_tests": report.num_tests,
        "coverage": report.coverage,
        "test_efficiency": report.test_efficiency,
    }


def _jsonable(value: Any) -> Any:
    """Recursively convert enums/tuples so ``json.dumps`` accepts the value."""
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


class Campaign:
    """Executable form of a :class:`CampaignSpec` for any registered model."""

    def __init__(self, spec: CampaignSpec):
        spec.validate()
        self.spec = spec
        try:
            self.model: FaultModel = get_model(spec.model)
        except KeyError as exc:
            raise CampaignError(exc.args[0]) from None

    # ------------------------------------------------------------------ #
    # Pattern sources.
    # ------------------------------------------------------------------ #
    def patterns_for(self, circuit: LogicCircuit) -> list:
        """The pattern-phase test list dictated by the spec and model kind."""
        spec = self.spec
        pairs = self.model.pattern_kind == TWO_PATTERN
        if spec.pattern_source == "random":
            if pairs:
                return random_pairs(circuit, spec.pattern_count, seed=spec.seed)
            return random_patterns(circuit, spec.pattern_count, seed=spec.seed)
        if spec.pattern_source == "exhaustive":
            return exhaustive_pairs(circuit) if pairs else exhaustive_patterns(circuit)
        if spec.pattern_source == "sic":
            if not pairs:
                raise CampaignError(
                    f"single-input-change patterns need a two-pattern model, "
                    f"not {self.model.name!r}"
                )
            return single_input_change_pairs(circuit)
        return []

    # ------------------------------------------------------------------ #
    # Pipeline.
    # ------------------------------------------------------------------ #
    def run(self, circuit: LogicCircuit | str | None = None) -> CampaignResult:
        """Execute the full pipeline on *circuit*.

        *circuit* may be a :class:`LogicCircuit`, a circuit reference
        string (registered name, parametric ``family:args`` or ``.bench``
        path), or None to use the spec's ``circuit`` field.
        """
        spec, model = self.spec, self.model
        if circuit is None:
            if spec.circuit is None:
                raise CampaignError(
                    "no circuit: pass one to run() or set CampaignSpec.circuit"
                )
            circuit = spec.circuit
        try:
            circuit = resolve_circuit(circuit)
        except (ValueError, LogicCircuitError) as exc:
            # Builders raise LogicCircuitError (degenerate generator sizes,
            # malformed .bench files); normalize everything a bad circuit
            # reference can produce to the campaign's own error type.
            raise CampaignError(str(exc)) from None
        start = time.perf_counter()

        # One compile per campaign: every phase's fault simulation reuses the
        # same CompiledCircuit (codegen for "packed", interpreter baseline at
        # the legacy width for "interp"; the serial engine needs none).
        compiled: CompiledCircuit | None = None
        if spec.engine != "serial":
            codegen = spec.engine == "packed"
            word_bits = spec.word_bits or (DEFAULT_WORD_BITS if codegen else WORD_BITS)
            compiled = compile_circuit(circuit, word_bits=word_bits, codegen=codegen)

        universe = model.build_universe(circuit, **spec.universe_options)
        faults = model.collapse(circuit, universe) if spec.collapse else universe
        detected: set[str] = set()

        pattern_phase: PatternPhaseResult | None = None
        if spec.pattern_source != "none":
            t0 = time.perf_counter()
            tests = self.patterns_for(circuit)
            report = model.simulate(
                circuit, tests, faults, drop_detected=spec.drop_detected,
                engine=spec.engine, compiled=compiled,
            )
            pattern_phase = PatternPhaseResult(
                source=spec.pattern_source,
                tests=list(tests),
                report=report,
                coverage=coverage_from_report(model.name, report),
                runtime=time.perf_counter() - t0,
            )
            detected.update(report.detected_faults)

        atpg_phase: AtpgPhaseResult | None = None
        if spec.run_atpg:
            t0 = time.perf_counter()
            skipped: list[str] = []
            outcomes: list[AtpgOutcome] = []
            for fault in faults:
                if fault.key in detected:
                    skipped.append(fault.key)
                    continue
                outcomes.append(model.generate_test(circuit, fault, options=spec.podem_options))
            generation_runtime = time.perf_counter() - t0
            atpg_tests = [test for outcome in outcomes for test in outcome.tests]
            # With dropping on, faults the pattern phase already detected are
            # excluded here too, so each dropped fault keeps exactly one
            # detection index across the whole campaign; without dropping the
            # full universe is simulated so compaction sees every alternative.
            if spec.drop_detected:
                sim_faults = faults.filtered(lambda f: f.key not in detected)
            else:
                sim_faults = faults
            report = model.simulate(
                circuit, atpg_tests, sim_faults, drop_detected=spec.drop_detected,
                engine=spec.engine, compiled=compiled,
            )
            untestable = sum(1 for o in outcomes if o.untestable)
            aborted = sum(1 for o in outcomes if not o.success and o.aborted)
            atpg_phase = AtpgPhaseResult(
                outcomes=outcomes,
                skipped=tuple(skipped),
                tests=atpg_tests,
                report=report,
                coverage=CoverageReport(
                    model=model.name,
                    total_faults=len(faults),
                    detected=len(report.detected_faults),
                    untestable=untestable,
                    aborted=aborted,
                    num_tests=len(atpg_tests),
                ),
                runtime=time.perf_counter() - t0,
                generation_runtime=generation_runtime,
            )
            detected.update(report.detected_faults)

        merged_report = _merge_reports(
            faults, [p.report for p in (pattern_phase, atpg_phase) if p is not None]
        )
        merged_tests = (pattern_phase.tests if pattern_phase else []) + (
            atpg_phase.tests if atpg_phase else []
        )

        compaction = compacted_tests = None
        if spec.compact:
            compaction = greedy_compaction(merged_report)
            compacted_tests = [merged_tests[i] for i in compaction.selected_indices]

        return CampaignResult(
            spec=spec,
            model_name=model.name,
            circuit_name=circuit.name,
            circuit_stats=circuit.stats(),
            faults=faults,
            uncollapsed_faults=len(universe),
            pattern_phase=pattern_phase,
            atpg_phase=atpg_phase,
            tests=merged_tests,
            merged_report=merged_report,
            compaction=compaction,
            compacted_tests=compacted_tests,
            runtime=time.perf_counter() - start,
        )


def _merge_reports(faults: FaultList, reports: list[DetectionReport]) -> DetectionReport:
    """Concatenate per-phase reports into one index space (pattern tests first)."""
    detections: dict[str, list[int]] = {key: [] for key in faults.keys()}
    offset = 0
    for report in reports:
        for key, indices in report.detections.items():
            detections[key].extend(offset + index for index in indices)
        offset += report.num_tests
    return DetectionReport(detections=detections, num_tests=offset)


def run_campaign(
    circuit: LogicCircuit | str | None = None,
    spec: CampaignSpec | None = None,
    **spec_kwargs: Any,
) -> CampaignResult:
    """One-call convenience: build a spec (or take one) and run it.

    *circuit* accepts everything :meth:`Campaign.run` does, including a
    circuit reference string or None when the spec names the circuit.
    """
    if spec is not None and spec_kwargs:
        raise CampaignError("pass either a CampaignSpec or keyword fields, not both")
    return Campaign(spec or CampaignSpec(**spec_kwargs)).run(circuit)
