"""Multi-process sharded campaign execution.

The campaign pipeline is embarrassingly parallel across the fault universe:
every fault's pattern-phase detection list, ATPG attempt and re-simulation
result depend only on that fault (and the shared test lists), never on other
faults.  :class:`ShardedCampaign` exploits this by partitioning the
(collapsed) universe into contiguous shards and running two worker rounds in
a :class:`~concurrent.futures.ProcessPoolExecutor`:

1. **pattern + generate** -- each shard fault-simulates the shared pattern
   tests over its fault slice and runs deterministic ATPG for its still
   undetected faults;
2. **re-simulate** -- the per-shard ATPG tests are concatenated in shard
   order (identical to the single-process test list, because shards are
   contiguous in universe order) and every shard re-simulates the full
   merged ATPG test list over its fault slice.

Per-shard :class:`~repro.atpg.fault_sim.DetectionReport`\\ s are merged back
in universe order (:func:`repro.atpg.compaction.merge_fault_shards`)
**before** greedy compaction runs, so the final
:class:`~repro.campaign.runner.CampaignResult` -- coverage, detection
indices, test lists, compacted subset, JSON report -- is bit-identical to
:meth:`Campaign.run <repro.campaign.runner.Campaign.run>` for every fault
model, engine, ``drop_detected`` setting and shard count (ragged or empty
final shards included).  The property suite in ``tests/test_properties.py``
asserts exactly this.

Each worker process compiles the circuit once per campaign (keyed by a run
token) and reuses the same :class:`~repro.logic.compiled.CompiledCircuit`
for both rounds, so sharding adds one compile per worker, not per task.
Workers receive plain picklable payloads (the netlist, fault dataclasses,
test tuples); compiled circuits never cross process boundaries.
"""

from __future__ import annotations

import itertools
import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Executor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..atpg.compaction import merge_fault_shards
from ..atpg.coverage import coverage_from_report
from ..atpg.fault_sim import DetectionReport
from ..atpg.parallel_sim import packed_simulate_shard
from ..atpg.podem import PodemOptions
from ..faults.base import Fault, FaultList
from ..logic.netlist import LogicCircuit

# faultinject has no repro dependencies and service/__init__ imports it
# before service.jobs, so this cross-package hook cannot cycle; the hooks
# are no-ops unless an injection plan is installed.
from ..service.faultinject import inject
from .errors import CampaignError, ShardExecutionError
from .model import AtpgOutcome, FaultModel, get_model
from .runner import (
    Campaign,
    CampaignResult,
    CampaignSpec,
    PatternPhaseResult,
    StaticPhaseResult,
    assemble_result,
    build_atpg_phase,
    collapse_universe,
    compile_for_engine,
    generate_atpg_outcomes,
    resolve_campaign_circuit,
    run_lint_gate,
    run_static_phase,
)


class InlineExecutor(Executor):
    """Run submitted calls immediately in the calling process.

    Drop-in for :class:`~concurrent.futures.ProcessPoolExecutor` when
    process startup is not worth it (tiny circuits, tests, single-CPU
    boxes): the shard/merge pipeline is exercised unchanged, without
    pickling or forking.
    """

    def submit(self, fn, /, *args, **kwargs) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # pragma: no cover - surfaced via .result()
            future.set_exception(exc)
        return future


def partition_faults(faults: Sequence[Fault] | FaultList, shards: int) -> list[list[Fault]]:
    """Contiguous fault shards in universe order; the final shard is ragged.

    Chunks are ``ceil(n / shards)`` long, so with more shards than faults
    the trailing shards come out empty -- callers skip those.  Contiguity in
    universe order is what makes per-shard ATPG test lists concatenate into
    exactly the single-process test list.
    """
    if shards < 1:
        raise CampaignError(f"shards must be >= 1, got {shards}")
    fault_list = list(faults)
    size = -(-len(fault_list) // shards) if fault_list else 1
    return [fault_list[i * size : (i + 1) * size] for i in range(shards)]


# --------------------------------------------------------------------------- #
# Worker-side code.  Everything below runs inside pool processes; the
# per-process compiled-circuit cache means each worker pays for codegen once
# per campaign regardless of how many shard tasks it executes.
# --------------------------------------------------------------------------- #
_TOKENS = itertools.count()

#: Per-worker-process cache: (run token, engine, word bits) -> compiled
#: circuit (or None for the serial engine).  Keyed by engine as well as
#: token because retry degradation can re-run a shard of the same campaign
#: under a fallback engine -- the packed artifact must not be reused then.
#: Bounded so long-lived shared pools (CampaignSuite) do not accumulate one
#: compiled circuit per finished campaign.
_WORKER_COMPILED: dict[tuple[str, str, Optional[int]], object] = {}
_WORKER_CACHE_LIMIT = 8


def _new_token() -> str:
    """A campaign-run id that is unique across the parent process lifetime."""
    return f"{os.getpid()}:{next(_TOKENS)}"


def _worker_compiled(token: str, circuit: LogicCircuit, engine: str, word_bits: Optional[int]):
    key = (token, engine, word_bits)
    compiled = _WORKER_COMPILED.get(key, _WORKER_COMPILED)
    if compiled is _WORKER_COMPILED:  # sentinel: not cached yet (None is valid)
        compiled = compile_for_engine(circuit, engine, word_bits)
        while len(_WORKER_COMPILED) >= _WORKER_CACHE_LIMIT:
            _WORKER_COMPILED.pop(next(iter(_WORKER_COMPILED)))
        _WORKER_COMPILED[key] = compiled
    return compiled


def _simulate_shard(
    model: FaultModel,
    circuit: LogicCircuit,
    tests: Sequence,
    fault_shard: Sequence[Fault],
    engine: str,
    compiled,
    drop_detected: bool,
) -> DetectionReport:
    """One shard's simulation through the engine the spec asked for."""
    if engine == "serial":
        return model.simulate(
            circuit, tests, fault_shard, drop_detected=drop_detected, engine="serial"
        )
    return packed_simulate_shard(
        model.name, circuit, tests, fault_shard,
        compiled=compiled, drop_detected=drop_detected,
    )


def _shard_pattern_and_generate(
    token: str,
    circuit: LogicCircuit,
    model_name: str,
    engine: str,
    word_bits: Optional[int],
    tests: Optional[Sequence],
    fault_shard: Sequence[Fault],
    drop_detected: bool,
    run_atpg: bool,
    podem_options: Optional[PodemOptions],
    proven: frozenset[str] = frozenset(),
    atpg_engine: str | None = None,
    shard_index: int = -1,
) -> tuple[Optional[DetectionReport], list[AtpgOutcome], list[str], list[str], float, float]:
    """Round 1: pattern-phase simulation plus ATPG generation for one shard.

    *tests* is None when the spec has no pattern phase; *proven* carries the
    parent's static untestability proofs (computed once, never per shard).
    Returns the shard's pattern report, its ATPG outcomes, skipped keys and
    proven keys (all in universe order), and the shard's (simulation
    seconds, generation seconds).
    """
    inject("worker.round1", shard=shard_index)
    model = get_model(model_name)
    compiled = _worker_compiled(token, circuit, engine, word_bits)
    report: Optional[DetectionReport] = None
    detected: set[str] = set()
    sim_seconds = 0.0
    if tests is not None:
        t0 = time.perf_counter()
        report = _simulate_shard(
            model, circuit, tests, fault_shard, engine, compiled, drop_detected
        )
        sim_seconds = time.perf_counter() - t0
        detected.update(report.detected_faults)
    outcomes: list[AtpgOutcome] = []
    skipped: list[str] = []
    proven_skipped: list[str] = []
    gen_seconds = 0.0
    if run_atpg:
        t0 = time.perf_counter()
        outcomes, skipped, proven_skipped = generate_atpg_outcomes(
            model, circuit, fault_shard, detected, podem_options, proven=proven,
            atpg_engine=atpg_engine,
        )
        gen_seconds = time.perf_counter() - t0
    return report, outcomes, skipped, proven_skipped, sim_seconds, gen_seconds


def _shard_resimulate(
    token: str,
    circuit: LogicCircuit,
    model_name: str,
    engine: str,
    word_bits: Optional[int],
    tests: Sequence,
    fault_shard: Sequence[Fault],
    drop_detected: bool,
    shard_index: int = -1,
) -> tuple[DetectionReport, float]:
    """Round 2: re-simulate the merged ATPG test list over one fault shard."""
    inject("worker.round2", shard=shard_index)
    model = get_model(model_name)
    compiled = _worker_compiled(token, circuit, engine, word_bits)
    t0 = time.perf_counter()
    report = _simulate_shard(
        model, circuit, tests, fault_shard, engine, compiled, drop_detected
    )
    return report, time.perf_counter() - t0


# --------------------------------------------------------------------------- #
# Parent-side executor.
# --------------------------------------------------------------------------- #
#: Engine-degradation ladder: after a shard's retry budget is spent the
#: executor may fall back one rung and try again.  Every engine is
#: property-tested bit-identical to the others, so degradation can change
#: only runtime, never the result.  The numpy backend falls back to the
#: big-int backend of the same generated code, which needs no optional
#: dependency at all.
DEGRADE_FALLBACK = {"numpy": "packed", "packed": "interp", "interp": "serial"}


@dataclass
class RetryPolicy:
    """How one shard round treats failing or overdue tasks.

    ``max_retries`` extra attempts per shard (on top of the first), each
    preceded by an exponential ``backoff * 2**attempt`` sleep;
    ``timeout`` is the per-shard deadline in seconds (None = wait forever);
    ``degrade_to`` names the fallback engine granted a fresh attempt budget
    once the primary engine's budget is spent (None = fail instead).
    *sleep* is injectable so tests can assert the backoff schedule without
    real waiting.
    """

    max_retries: int = 0
    timeout: Optional[float] = None
    backoff: float = 0.05
    degrade_to: Optional[str] = None
    sleep: Callable[[float], None] = time.sleep

    @classmethod
    def for_spec(cls, spec: CampaignSpec) -> "RetryPolicy":
        return cls(
            max_retries=spec.max_retries,
            timeout=spec.shard_timeout,
            backoff=spec.retry_backoff,
            degrade_to=DEGRADE_FALLBACK.get(spec.engine) if spec.allow_degraded else None,
        )


@dataclass
class RoundStats:
    """Fault-tolerance counters accumulated across a campaign's rounds."""

    retries: int = 0
    crashes: int = 0
    timeouts: int = 0
    rebuilds: int = 0
    #: Shard index -> fallback engine, for shards that completed degraded.
    degraded: dict[int, str] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "retries": self.retries,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "rebuilds": self.rebuilds,
            "degraded_shards": len(self.degraded),
        }


def _collect_round(
    tasks: Sequence[tuple[int, Callable[..., Future]]],
    load: Optional[Callable[[int], Optional[tuple]]],
    save: Optional[Callable[[int, tuple], None]],
    *,
    policy: Optional[RetryPolicy] = None,
    stats: Optional[RoundStats] = None,
    rebuild: Optional[Callable[[], None]] = None,
) -> list[tuple]:
    """Run one shard round, mixing checkpointed and freshly computed shards.

    *tasks* pairs each shard index with a thunk that submits its worker
    task (the thunk takes an optional fallback-engine override); *load*
    returns a checkpointed record (or None) and *save* persists one -- both
    None when checkpointing is off.  Results are persisted **as they
    complete** (not at round end), so a crash mid-round loses only the
    still-running shards; if collecting a result raises, the
    already-finished shards are persisted before the exception propagates.
    The returned list is ordered by shard index, exactly as if every shard
    had been computed in submit order.

    Failure handling, governed by *policy* and tallied into *stats*:

    * A worker-side :class:`Exception` (or a shard exceeding the deadline)
      is retried with exponential backoff up to ``policy.max_retries``
      times, then retried once more on ``policy.degrade_to`` (fresh attempt
      budget), and finally raised as :class:`ShardExecutionError` with its
      taxonomy category.  Determinism makes every disposition safe: a retry
      or a degraded re-run of the same shard produces the identical record.
    * :class:`CampaignError` and ``BaseException``\\ s
      (``KeyboardInterrupt`` & co) are never retried -- deterministic
      failures cannot be fixed by running again.
    * :class:`~concurrent.futures.BrokenExecutor` (worker-side or at
      submission) invokes *rebuild* -- once per breakage wave -- before the
      affected shards are retried on the replacement pool.
    * A submit-time exception of any other type is a parent-side crash and
      propagates raw (the checkpoint store has already persisted every
      finished shard, so the campaign resumes).
    """
    policy = policy or RetryPolicy()
    stats = stats if stats is not None else RoundStats()
    results: dict[int, tuple] = {}
    written: set[int] = set()
    submits: dict[int, Callable[..., Future]] = {}
    stage_attempts: dict[int, int] = {}
    total_attempts: dict[int, int] = {}
    engines: dict[int, str] = {}
    pending: dict[Future, int] = {}
    deadlines: dict[Future, float] = {}

    def _save(index: int, record: tuple) -> None:
        if save is not None and index not in written:
            save(index, record)
            written.add(index)

    def _attempt(index: int) -> None:
        try:
            future = submits[index](engines.get(index))
        except (BrokenExecutor, OSError) as exc:
            if isinstance(exc, BrokenExecutor):
                stats.rebuilds += 1
                if rebuild is not None:
                    rebuild()
            _fail(index, exc, "crash")
            return
        pending[future] = index
        if policy.timeout is not None:
            deadlines[future] = time.monotonic() + policy.timeout

    def _fail(index: int, exc: BaseException, category: str) -> None:
        if category == "timeout":
            stats.timeouts += 1
        else:
            stats.crashes += 1
        total_attempts[index] = total_attempts.get(index, 0) + 1
        stage_attempts[index] = stage_attempts.get(index, 0) + 1
        if stage_attempts[index] <= policy.max_retries:
            stats.retries += 1
            if policy.backoff > 0:
                policy.sleep(policy.backoff * (2 ** (stage_attempts[index] - 1)))
        elif policy.degrade_to is not None and index not in engines:
            engines[index] = policy.degrade_to
            stats.degraded[index] = policy.degrade_to
            stage_attempts[index] = 0
        else:
            final = "degraded" if index in engines else category
            raise ShardExecutionError(
                index, total_attempts[index], final, f"{type(exc).__name__}: {exc}"
            ) from exc
        _attempt(index)

    try:
        for index, submit in tasks:
            record = load(index) if load is not None else None
            if record is not None:
                results[index] = record
            else:
                submits[index] = submit
                _attempt(index)
        while pending:
            timeout = None
            if deadlines:
                timeout = max(0.0, min(deadlines.values()) - time.monotonic())
            done, _ = wait(set(pending), timeout=timeout, return_when=FIRST_COMPLETED)
            rebuilt = False
            for future in done:
                index = pending.pop(future)
                deadlines.pop(future, None)
                exc = future.exception()
                if exc is None:
                    record = future.result()
                    _save(index, record)
                    results[index] = record
                elif isinstance(exc, BrokenExecutor):
                    # One breakage kills every in-flight future; rebuild the
                    # pool once per wave, then retry each shard on it.
                    if not rebuilt:
                        rebuilt = True
                        stats.rebuilds += 1
                        if rebuild is not None:
                            rebuild()
                    _fail(index, exc, "crash")
                elif isinstance(exc, CampaignError) or not isinstance(exc, Exception):
                    raise exc
                else:
                    _fail(index, exc, "crash")
            if not done:
                now = time.monotonic()
                for future in [f for f, d in deadlines.items() if d <= now]:
                    index = pending.pop(future)
                    del deadlines[future]
                    future.cancel()
                    _fail(
                        index,
                        TimeoutError(f"no result within shard_timeout={policy.timeout}s"),
                        "timeout",
                    )
    except BaseException:
        for future, index in pending.items():
            if future.done() and not future.cancelled() and future.exception() is None:
                _save(index, future.result())
        raise
    return [results[index] for index in sorted(results)]


class ShardedCampaign:
    """Fault-sharded, multi-process form of :class:`~repro.campaign.Campaign`.

    ``shards`` defaults to the spec's ``shards`` field; ``max_workers``
    defaults to ``min(shards, cpu_count)``, and ``max_workers=0`` selects
    :class:`InlineExecutor` (no processes -- same pipeline, deterministic,
    handy for tests and one-CPU machines).  Pass *pool* to reuse an external
    executor across campaigns (e.g. the shared pool of a
    :class:`~repro.campaign.suite.CampaignSuite`); it is not shut down here.

    ``checkpoint_dir`` enables crash-safe shard checkpointing through a
    :class:`~repro.service.checkpoint.CheckpointStore`: every completed
    shard task is persisted (atomically) as its result arrives, and a rerun
    pointed at the same directory loads the completed shards instead of
    recomputing them -- the deterministic universe-order merge makes the
    resumed result bit-identical to an uninterrupted run.  With ``resume``
    (the default) existing checkpoints are reused after validating the
    campaign fingerprint; ``resume=False`` clears them first.  After
    :meth:`run`, :attr:`checkpoint_summary` reports how many shard records
    each round loaded from disk vs computed.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        *,
        shards: Optional[int] = None,
        max_workers: Optional[int] = None,
        pool: Optional[Executor] = None,
        checkpoint_dir: str | os.PathLike | None = None,
        resume: bool = True,
    ):
        spec.validate()
        self.spec = spec
        self.model: FaultModel = get_model(spec.model)
        self.shards = spec.shards if shards is None else shards
        if self.shards < 1:
            raise CampaignError(f"shards must be >= 1, got {self.shards}")
        self.max_workers = max_workers
        self.pool = pool
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        #: Filled by :meth:`run` when checkpointing is on (see
        #: :meth:`repro.service.checkpoint.CheckpointStore.summary`).
        self.checkpoint_summary: Optional[dict] = None
        #: Filled by :meth:`run`: the fault-tolerance counters of the run
        #: (:meth:`RoundStats.as_dict` -- retries, crashes, timeouts, pool
        #: rebuilds, degraded shards).  All zero on a clean run.
        self.fault_tolerance: Optional[dict] = None

    def _executor(self, num_shards: int) -> tuple[Executor, bool, Optional[int]]:
        """The executor, whether this run owns (must shut down/rebuild) it,
        and the owned pool's worker count (None for external/inline)."""
        if self.pool is not None:
            return self.pool, False, None
        workers = self.max_workers
        if workers == 0:
            return InlineExecutor(), False, None
        if workers is None:
            workers = max(1, min(num_shards, os.cpu_count() or 1))
        return ProcessPoolExecutor(max_workers=workers), True, workers

    def run(self, circuit: LogicCircuit | str | None = None) -> CampaignResult:
        """Execute the sharded pipeline; the result matches ``Campaign.run``."""
        spec, model = self.spec, self.model
        circuit = resolve_campaign_circuit(circuit, spec)
        start = time.perf_counter()

        # Universe building, collapsing and the static phase stay in the
        # parent: they are cheap relative to simulation/ATPG, the contiguous
        # partition of the *collapsed* list fixes shard contents (and hence
        # merge order) once and for all, and running lint + proofs exactly
        # once keeps the proof set -- and the deterministic shard-order sum
        # of per-shard proven counts -- identical to the single-process run.
        lint = run_lint_gate(circuit) if spec.static_phase else None
        universe = model.build_universe(circuit, **spec.universe_options)
        faults = collapse_universe(model, circuit, universe, spec.collapse)
        static_phase: Optional[StaticPhaseResult] = None
        proven: frozenset[str] = frozenset()
        if spec.static_phase:
            static_phase = run_static_phase(model, circuit, faults, lint=lint)
            proven = frozenset(static_phase.proofs)
        shard_lists = [s for s in partition_faults(faults, self.shards) if s]

        tests: Optional[list] = None
        if spec.pattern_source != "none":
            tests = list(Campaign(spec).patterns_for(circuit))

        store = None
        if self.checkpoint_dir is not None:
            # Imported lazily: the service layer sits on top of this package.
            from ..service.checkpoint import CheckpointStore
            from ..service.fingerprint import campaign_fingerprint

            store = CheckpointStore(self.checkpoint_dir)
            store.prepare(
                campaign_fingerprint(circuit, spec), self.shards, resume=self.resume
            )

        token = _new_token()
        executor, owns_pool, pool_workers = self._executor(max(1, len(shard_lists)))
        policy = RetryPolicy.for_spec(spec)
        stats = RoundStats()

        def rebuild() -> None:
            # Replace a broken owned pool; the submit thunks read `executor`
            # late-bound from this scope, so retries land on the new pool.
            # External/inline executors are left alone -- retries go back to
            # the same (possibly chaos-wrapped) executor.
            nonlocal executor
            if not owns_pool or pool_workers is None:
                return
            broken = executor
            executor = ProcessPoolExecutor(max_workers=pool_workers)
            broken.shutdown(wait=False, cancel_futures=True)

        try:
            num_pattern_tests = len(tests) if tests is not None else None
            results = _collect_round(
                [
                    (
                        index,
                        lambda engine=None, shard=shard, index=index: executor.submit(
                            _shard_pattern_and_generate,
                            token, circuit, model.name, engine or spec.engine,
                            spec.word_bits, tests, shard, spec.drop_detected,
                            spec.run_atpg, spec.podem_options, proven,
                            spec.atpg_engine, index,
                        ),
                    )
                    for index, shard in enumerate(shard_lists)
                ],
                load=(
                    (
                        lambda index: store.load_round1(
                            index, shard_lists[index], model.pattern_kind,
                            num_pattern_tests,
                        )
                    )
                    if store
                    else None
                ),
                save=(
                    (lambda index, rec: store.store_round1(index, shard_lists[index], rec))
                    if store
                    else None
                ),
                policy=policy,
                stats=stats,
                rebuild=rebuild,
            )

            pattern_phase: Optional[PatternPhaseResult] = None
            detected: set[str] = set()
            if tests is not None:
                if results:
                    report = merge_fault_shards(
                        [r[0] for r in results], fault_order=faults.keys()
                    )
                else:  # empty fault universe: nothing was sharded
                    report = DetectionReport(detections={}, num_tests=len(tests))
                pattern_phase = PatternPhaseResult(
                    source=spec.pattern_source,
                    tests=tests,
                    report=report,
                    coverage=coverage_from_report(model.name, report),
                    # Aggregate worker time, comparable to the sequential
                    # phase cost (not the parallel wall time).
                    runtime=sum(r[4] for r in results),
                )
                detected.update(report.detected_faults)

            atpg_phase = None
            if spec.run_atpg:
                outcomes = [o for r in results for o in r[1]]
                skipped = [k for r in results for k in r[2]]
                # Shard-order concatenation == universe order (contiguous
                # shards), so the proven list and its count merge
                # deterministically no matter the worker schedule.
                proven_skipped = [k for r in results for k in r[3]]
                generation_runtime = sum(r[5] for r in results)
                atpg_tests = [test for outcome in outcomes for test in outcome.tests]
                if spec.drop_detected:
                    sim_faults = faults.filtered(lambda f: f.key not in detected)
                else:
                    sim_faults = faults
                resim_shards = [s for s in partition_faults(sim_faults, self.shards) if s]
                resim = _collect_round(
                    [
                        (
                            index,
                            lambda engine=None, shard=shard, index=index: executor.submit(
                                _shard_resimulate,
                                token, circuit, model.name, engine or spec.engine,
                                spec.word_bits, atpg_tests, shard,
                                spec.drop_detected, index,
                            ),
                        )
                        for index, shard in enumerate(resim_shards)
                    ],
                    load=(
                        (
                            lambda index: store.load_round2(
                                index, resim_shards[index], len(atpg_tests)
                            )
                        )
                        if store
                        else None
                    ),
                    save=(
                        (
                            lambda index, rec: store.store_round2(
                                index, resim_shards[index], rec
                            )
                        )
                        if store
                        else None
                    ),
                    policy=policy,
                    stats=stats,
                    rebuild=rebuild,
                )
                if resim:
                    report = merge_fault_shards(
                        [r[0] for r in resim], fault_order=sim_faults.keys()
                    )
                else:  # every fault already detected (or the universe is empty)
                    report = DetectionReport(detections={}, num_tests=len(atpg_tests))
                atpg_phase = build_atpg_phase(
                    model.name,
                    len(faults),
                    outcomes,
                    skipped,
                    report,
                    runtime=generation_runtime + sum(r[1] for r in resim),
                    generation_runtime=generation_runtime,
                    proven=proven_skipped,
                )
        finally:
            if store is not None:
                self.checkpoint_summary = store.summary()
            self.fault_tolerance = stats.as_dict()
            if owns_pool:
                executor.shutdown()

        result = assemble_result(
            spec,
            model,
            circuit,
            universe,
            faults,
            pattern_phase,
            atpg_phase,
            runtime=time.perf_counter() - start,
            static_phase=static_phase,
        )
        if stats.degraded:
            # Operational provenance only: the fallback engines are
            # bit-identical, so the result payload itself is unchanged.
            result.degraded = {
                "engine": spec.engine,
                "fallbacks": {str(i): eng for i, eng in sorted(stats.degraded.items())},
            }
        return result


def run_sharded_campaign(
    circuit: LogicCircuit | str | None = None,
    spec: Optional[CampaignSpec] = None,
    *,
    shards: Optional[int] = None,
    max_workers: Optional[int] = None,
    pool: Optional[Executor] = None,
    checkpoint_dir: str | os.PathLike | None = None,
    resume: bool = True,
    **spec_kwargs,
) -> CampaignResult:
    """One-call convenience mirroring :func:`~repro.campaign.run_campaign`.

    Builds a spec (or takes one), partitions the fault universe into
    *shards* (default: the spec's ``shards`` field) and runs the campaign
    across worker processes; the result is bit-identical to the
    single-process :func:`~repro.campaign.run_campaign`.  *checkpoint_dir*
    persists every completed shard so a killed run resumes where it left
    off (see :class:`ShardedCampaign`).
    """
    if spec is not None and spec_kwargs:
        raise CampaignError("pass either a CampaignSpec or keyword fields, not both")
    executor = ShardedCampaign(
        spec or CampaignSpec(**spec_kwargs),
        shards=shards,
        max_workers=max_workers,
        pool=pool,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    return executor.run(circuit)
