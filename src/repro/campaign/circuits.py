"""Circuit registry: resolve campaign circuit references to netlists.

A :class:`~repro.campaign.runner.CampaignSpec` (or any caller) can name its
workload instead of constructing it:

* a **registered name** -- the library circuits (``"c17"``,
  ``"full_adder"``, ``"fa_sum"``, ``"mux2"``);
* a **parametric reference** ``family:arg[,arg...]`` -- the scalable
  families (``"rca:8"``, ``"mult:4"``, ``"cla:8"``, ``"parity:16"``,
  ``"cmp:4"``, ``"alu:4"``, ``"rdag:40,7"`` for 40 gates with seed 7;
  the arguments are the builder's leading positional parameters);
* a ``.bench`` **file path** -- anything ending in ``.bench`` is parsed
  with :func:`repro.logic.bench.load_bench`.

:func:`resolve_circuit` is the single entry point;
:func:`register_circuit` lets applications add their own named builders.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable

from ..logic.bench import load_bench
from ..logic.circuits import (
    c17,
    full_adder,
    full_adder_sum,
    nand_chain,
    ripple_carry_adder,
    two_to_one_mux,
)
from ..logic.generators import (
    alu_slice,
    array_multiplier,
    carry_lookahead_adder,
    magnitude_comparator,
    parity_tree,
    random_dag,
)
from ..logic.netlist import LogicCircuit
from .errors import CampaignError

CircuitBuilder = Callable[..., LogicCircuit]

#: Fixed circuits resolvable by bare name.
_NAMED: dict[str, CircuitBuilder] = {}

#: Parametric families resolvable as ``family:arg[,arg...]``; values are
#: (builder, minimum argument count, maximum argument count).
_PARAMETRIC: dict[str, tuple[CircuitBuilder, int, int]] = {}


def register_circuit(
    name: str,
    builder: CircuitBuilder,
    *,
    min_args: int | None = None,
    max_args: int | None = None,
) -> None:
    """Register a circuit builder under *name*.

    Without argument bounds the builder is a fixed circuit taken with no
    arguments; with them it becomes a parametric family accepting
    ``name:arg[,arg...]`` references with that many integer arguments.
    """
    if min_args is None and max_args is None:
        _NAMED[name] = builder
    else:
        _PARAMETRIC[name] = (builder, min_args or 0, max_args or min_args or 0)


def circuit_names() -> list[str]:
    """All resolvable names: fixed first, then parametric families."""
    return sorted(_NAMED) + sorted(_PARAMETRIC)


def resolve_circuit(ref: str | os.PathLike | LogicCircuit) -> LogicCircuit:
    """Resolve a circuit reference (name, ``family:args`` or ``.bench`` path).

    A :class:`LogicCircuit` passes through unchanged, so callers can accept
    either form; ``.bench`` paths may be strings or path objects (e.g. the
    return value of :func:`~repro.logic.bench.save_bench`).  Unknown or
    malformed references raise :class:`~repro.campaign.errors.CampaignError`
    (a :class:`ValueError` subclass) with an actionable message listing the
    registered names; degenerate builder sizes (``"mult:0"``) surface the
    builder's own :class:`~repro.logic.netlist.LogicCircuitError`.  Neither
    ``FileNotFoundError`` nor a bare ``ValueError`` ever escapes.
    """
    if isinstance(ref, LogicCircuit):
        return ref
    if isinstance(ref, os.PathLike):
        ref = os.fspath(ref)
    if not isinstance(ref, str):
        raise CampaignError(f"expected a circuit name or LogicCircuit, got {type(ref).__name__}")
    if ref.endswith(".bench"):
        path = Path(ref)
        if not path.exists():
            raise CampaignError(f"no .bench file at {ref!r}")
        try:
            return load_bench(path)
        except (OSError, UnicodeDecodeError) as exc:
            # Directories, unreadable files, binary junk: keep the promise
            # that a bad circuit reference surfaces as CampaignError, never
            # a raw OSError.
            raise CampaignError(f"cannot read .bench file {ref!r}: {exc}") from None
    name, _, arg_text = ref.partition(":")
    if not arg_text:
        if name in _NAMED:
            return _NAMED[name]()
        if name in _PARAMETRIC:
            raise CampaignError(
                f"circuit family {name!r} needs arguments, e.g. {name + ':4'!r}"
            )
    else:
        if name not in _PARAMETRIC:
            raise CampaignError(f"unknown parametric circuit family {name!r}")
        builder, min_args, max_args = _PARAMETRIC[name]
        try:
            args = [int(a) for a in arg_text.split(",")]
        except ValueError:
            raise CampaignError(
                f"arguments of circuit reference {ref!r} must be integers"
            ) from None
        if not min_args <= len(args) <= max_args:
            raise CampaignError(
                f"circuit family {name!r} takes between {min_args} and {max_args} "
                f"argument(s), got {len(args)}"
            )
        return builder(*args)
    raise CampaignError(
        f"unknown circuit reference {ref!r}; registered: {', '.join(circuit_names())} "
        f"(or a path ending in .bench)"
    )


register_circuit("c17", c17)
register_circuit("full_adder", full_adder)
register_circuit("fa_sum", full_adder_sum)
register_circuit("full_adder_sum", full_adder_sum)
register_circuit("mux2", two_to_one_mux)
register_circuit("rca", ripple_carry_adder, min_args=1, max_args=1)
register_circuit("nand_chain", nand_chain, min_args=1, max_args=1)
register_circuit("parity", parity_tree, min_args=1, max_args=1)
register_circuit("cla", carry_lookahead_adder, min_args=1, max_args=1)
register_circuit("mult", array_multiplier, min_args=1, max_args=1)
register_circuit("cmp", magnitude_comparator, min_args=1, max_args=1)
register_circuit("alu", alu_slice, min_args=1, max_args=1)
# Positional args match random_dag itself: gates[, seed[, num_inputs]].
register_circuit("rdag", random_dag, min_args=1, max_args=3)
