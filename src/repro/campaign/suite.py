"""Campaign batteries: many specs, one worker pool, one consolidated report.

:class:`CampaignSuite` executes a list of :class:`~repro.campaign.runner.
CampaignSpec`\\ s (each naming its circuit) concurrently in a shared
:class:`~concurrent.futures.ProcessPoolExecutor` -- one campaign per worker
task, so a battery of small campaigns saturates the pool while every
individual result stays bit-identical to a standalone
:meth:`Campaign.run <repro.campaign.runner.Campaign.run>`.  Specs with
``shards > 1`` run their shard pipeline inline inside the worker (nested
process pools are never created).

:meth:`CampaignSuite.cross` builds the usual benchmark battery as the cross
product of circuits x models x engines, and :class:`SuiteResult` emits the
consolidated JSON / CSV report the scale benchmarks and CI artifacts
consume.

With ``cache_dir`` every entry consults the content-addressed
:class:`~repro.service.cache.ResultCache` before doing any engine work and
stores its result afterwards, so re-running a battery (or sharing the
directory across batteries and the campaign service) answers repeated
entries from disk; :attr:`SuiteEntry.cache_hit` and the consolidated
report record which entries were free.
"""

from __future__ import annotations

import csv
import io
import json
import os
import time
import traceback as traceback_module
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Iterable, Optional, Sequence

from ..ioutil import atomic_write_text
from .errors import CampaignError
from .runner import Campaign, CampaignResult, CampaignSpec
from .sharded import InlineExecutor, ShardedCampaign


def _run_suite_entry(
    index: int, spec: CampaignSpec, cache_dir: Optional[str] = None
) -> tuple[int, Optional[CampaignResult], Optional[str], float, bool, Optional[str]]:
    """Worker task: run one campaign, trapping per-entry failures.

    A failing entry (unknown circuit, degenerate builder size, ...) is
    reported in the consolidated result -- message plus full traceback for
    post-mortem debugging -- instead of poisoning the battery.  With
    *cache_dir* the result cache is consulted first and fed afterwards;
    the returned flag records whether the entry was a cache hit.
    """
    start = time.perf_counter()
    try:
        cache = key = None
        if cache_dir is not None:
            # Imported lazily: the service layer sits on top of this package.
            from ..service.cache import ResultCache

            cache = ResultCache(cache_dir)
            key, cached = cache.fetch(None, spec)
            if cached is not None:
                return index, cached, None, time.perf_counter() - start, True, None
        if spec.shards > 1:
            result = ShardedCampaign(spec, pool=InlineExecutor()).run()
        else:
            result = Campaign(spec).run()
        if cache is not None:
            cache.put(key, result)
        return index, result, None, time.perf_counter() - start, False, None
    except Exception as exc:
        return (
            index,
            None,
            f"{type(exc).__name__}: {exc}",
            time.perf_counter() - start,
            False,
            traceback_module.format_exc(),
        )


@dataclass
class SuiteEntry:
    """Outcome of one battery member: a result or an error, never both.

    Failed entries keep the full worker-side ``traceback`` text alongside
    the one-line ``error`` summary; ``cache_hit`` marks entries answered
    from the result cache without any simulation or ATPG work.
    """

    index: int
    spec: CampaignSpec
    result: Optional[CampaignResult]
    error: Optional[str]
    runtime: float
    cache_hit: bool = False
    traceback: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def row(self) -> dict[str, Any]:
        """Flat summary row for the consolidated report."""
        row: dict[str, Any] = {
            "index": self.index,
            "circuit": self.spec.circuit,
            "model": self.spec.model,
            "engine": self.spec.engine,
            "shards": self.spec.shards,
            "pattern_source": self.spec.pattern_source,
            "ok": self.ok,
            "cache_hit": self.cache_hit,
            "runtime_s": self.runtime,
        }
        if self.result is None:
            row["error"] = self.error
            row["traceback"] = self.traceback
            return row
        result = self.result
        coverage = result.coverage
        num_tests = result.merged_report.num_tests
        row.update(
            {
                "faults": len(result.faults),
                "detected": coverage.detected,
                "untestable": coverage.untestable,
                "proven_static": coverage.proven_static,
                "coverage": coverage.coverage,
                "num_tests": num_tests,
                "compacted_tests": result.compaction.size if result.compaction else None,
                "fault_tests_per_second": (
                    len(result.faults) * num_tests / self.runtime if self.runtime > 0 else None
                ),
                "error": None,
            }
        )
        return row


#: Column order of the consolidated CSV (superset of every row's keys; the
#: multi-line traceback stays JSON-only).
SUITE_CSV_COLUMNS = (
    "index", "circuit", "model", "engine", "shards", "pattern_source", "ok",
    "cache_hit", "faults", "detected", "untestable", "proven_static",
    "coverage", "num_tests", "compacted_tests", "runtime_s",
    "fault_tests_per_second", "error",
)


@dataclass
class SuiteResult:
    """Everything one battery run produced, plus the consolidated reports."""

    entries: list[SuiteEntry]
    runtime: float

    @property
    def ok(self) -> list[SuiteEntry]:
        return [e for e in self.entries if e.ok]

    @property
    def failed(self) -> list[SuiteEntry]:
        return [e for e in self.entries if not e.ok]

    def results(self) -> list[CampaignResult]:
        return [e.result for e in self.entries if e.result is not None]

    def rows(self) -> list[dict[str, Any]]:
        return [entry.row() for entry in self.entries]

    @property
    def cache_hits(self) -> list[SuiteEntry]:
        return [e for e in self.entries if e.cache_hit]

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": "repro/campaign-suite/2",
            "campaigns": len(self.entries),
            "ok": len(self.ok),
            "failed": len(self.failed),
            "cache_hits": len(self.cache_hits),
            "runtime_s": self.runtime,
            "rows": self.rows(),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def to_csv(self) -> str:
        """The consolidated report as CSV text (one row per campaign)."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=SUITE_CSV_COLUMNS, restval="")
        writer.writeheader()
        for row in self.rows():
            writer.writerow({k: row.get(k, "") for k in SUITE_CSV_COLUMNS})
        return buffer.getvalue()

    def write_report(self, directory: str | os.PathLike, stem: str = "suite_report") -> tuple[Path, Path]:
        """Write ``<stem>.json`` and ``<stem>.csv`` under *directory*.

        Both files are written atomically (temp file + ``os.replace``), so
        a battery killed mid-write never leaves a truncated report behind.
        """
        out = Path(directory)
        json_path = atomic_write_text(out / f"{stem}.json", self.to_json() + "\n")
        csv_path = atomic_write_text(out / f"{stem}.csv", self.to_csv())
        return json_path, csv_path

    def describe(self) -> str:
        lines = [
            f"suite: {len(self.ok)}/{len(self.entries)} campaigns ok "
            f"in {self.runtime:.2f} s"
        ]
        for entry in self.entries:
            row = entry.row()
            if entry.ok:
                lines.append(
                    f"  [{row['index']:3d}] {row['circuit']} x {row['model']} "
                    f"({row['engine']}, shards={row['shards']}): "
                    f"{row['detected']}/{row['faults']} detected "
                    f"({100.0 * row['coverage']:.1f}%), {row['num_tests']} tests"
                    + (
                        f" -> {row['compacted_tests']} compacted"
                        if row["compacted_tests"] is not None
                        else ""
                    )
                    + f", {row['runtime_s'] * 1e3:.0f} ms"
                    + (" [cached]" if entry.cache_hit else "")
                )
            else:
                lines.append(
                    f"  [{row['index']:3d}] {row['circuit']} x {row['model']}: "
                    f"FAILED ({row['error']})"
                )
        return "\n".join(lines)


class CampaignSuite:
    """A battery of campaigns over one shared worker pool.

    Every spec must name its circuit (``CampaignSpec.circuit``) since
    workers cannot receive live :class:`~repro.logic.netlist.LogicCircuit`
    arguments positionally through the battery API.  ``max_workers=0``
    runs the battery inline (no processes); *pool* reuses an external
    executor and leaves its lifetime to the caller.  ``cache_dir`` points
    every worker at a shared content-addressed result cache (see
    :mod:`repro.service.cache`): entries already cached are returned
    without any simulation work and fresh results are stored for the next
    battery.
    """

    def __init__(
        self,
        specs: Iterable[CampaignSpec],
        *,
        max_workers: Optional[int] = None,
        pool: Optional[Executor] = None,
        cache_dir: str | os.PathLike | None = None,
    ):
        self.specs = list(specs)
        if not self.specs:
            raise CampaignError("empty campaign suite: pass at least one CampaignSpec")
        for index, spec in enumerate(self.specs):
            spec.validate()
            if spec.circuit is None:
                raise CampaignError(
                    f"suite entry {index} ({spec.model}) has no circuit: "
                    f"set CampaignSpec.circuit to a registered name, "
                    f"family:args reference or .bench path"
                )
        self.max_workers = max_workers
        self.pool = pool
        self.cache_dir = os.fspath(cache_dir) if cache_dir is not None else None

    @classmethod
    def cross(
        cls,
        circuits: Sequence[str],
        models: Sequence[str] = ("stuck-at", "transition", "path-delay", "obd"),
        engines: Sequence[str] = ("packed",),
        *,
        base: Optional[CampaignSpec] = None,
        max_workers: Optional[int] = None,
        pool: Optional[Executor] = None,
        cache_dir: str | os.PathLike | None = None,
        **spec_kwargs: Any,
    ) -> "CampaignSuite":
        """The cross-product battery: circuits x models x engines.

        *base* (or ``**spec_kwargs``) supplies the shared pipeline settings
        -- pattern source and count, seed, collapsing, dropping, shards --
        and every combination gets its own spec via ``dataclasses.replace``.
        """
        if base is not None and spec_kwargs:
            raise CampaignError("pass either a base CampaignSpec or keyword fields, not both")
        if base is not None:
            template = base
        else:
            # Seed the template with the first battery model so cross-field
            # validation (e.g. sic needs a two-pattern model) judges a spec
            # that will actually run, not the placeholder default.
            if models:
                spec_kwargs.setdefault("model", models[0])
            template = CampaignSpec(**spec_kwargs)
        specs = [
            replace(template, circuit=circuit, model=model, engine=engine)
            for circuit in circuits
            for model in models
            for engine in engines
        ]
        return cls(specs, max_workers=max_workers, pool=pool, cache_dir=cache_dir)

    def run(self) -> SuiteResult:
        """Execute the battery; entry order in the result matches the specs."""
        start = time.perf_counter()
        own_pool = False
        executor = self.pool
        if executor is None:
            if self.max_workers == 0:
                executor = InlineExecutor()
            else:
                workers = self.max_workers or max(
                    1, min(len(self.specs), os.cpu_count() or 1)
                )
                executor = ProcessPoolExecutor(max_workers=workers)
                own_pool = True
        try:
            futures = [
                executor.submit(_run_suite_entry, index, spec, self.cache_dir)
                for index, spec in enumerate(self.specs)
            ]
            outcomes = [f.result() for f in futures]
        finally:
            if own_pool:
                executor.shutdown()
        entries = [
            SuiteEntry(
                index=i, spec=self.specs[i], result=result, error=error,
                runtime=rt, cache_hit=hit, traceback=tb,
            )
            for i, result, error, rt, hit, tb in sorted(outcomes)
        ]
        return SuiteResult(entries=entries, runtime=time.perf_counter() - start)


def run_campaign_suite(
    circuits: Sequence[str],
    models: Sequence[str] = ("stuck-at", "transition", "path-delay", "obd"),
    engines: Sequence[str] = ("packed",),
    *,
    max_workers: Optional[int] = None,
    cache_dir: str | os.PathLike | None = None,
    **spec_kwargs: Any,
) -> SuiteResult:
    """One-call cross-product battery (see :meth:`CampaignSuite.cross`)."""
    return CampaignSuite.cross(
        circuits, models, engines, max_workers=max_workers, cache_dir=cache_dir,
        **spec_kwargs,
    ).run()
