"""Campaign-layer error types.

Lives in its own module so :mod:`~repro.campaign.circuits`,
:mod:`~repro.campaign.runner`, :mod:`~repro.campaign.sharded` and
:mod:`~repro.campaign.suite` can all raise it without import cycles.

Every error carries a ``category`` -- one of the service layer's
structured failure categories (``error`` / ``crash`` / ``timeout`` /
``corruption`` / ``degraded``) -- so :class:`~repro.service.jobs.JobError`
and the chaos harness can attribute failures without string matching.
"""

from __future__ import annotations


class CampaignError(ValueError):
    """An invalid campaign specification or circuit reference.

    Subclasses :class:`ValueError` so callers that predate the campaign
    layer (and catch ``ValueError``) keep working.
    """

    #: Service-layer failure category; deterministic spec/circuit errors
    #: are plain ``error`` (retrying them cannot help).
    category = "error"


class ShardExecutionError(CampaignError):
    """A shard task kept failing after its full retry (and fallback) budget.

    ``category`` is ``crash`` when the final attempt raised, ``timeout``
    when it exceeded the per-shard deadline, and ``degraded`` when the
    engine-fallback attempt also failed.  ``attempts`` counts every try,
    retries and fallback included.
    """

    def __init__(self, shard: int, attempts: int, category: str, cause: str):
        super().__init__(
            f"shard {shard} failed after {attempts} attempt(s) [{category}]: {cause}"
        )
        self.shard = shard
        self.attempts = attempts
        self.category = category


class CorruptArtifactError(CampaignError):
    """A checkpoint/cache artifact is damaged beyond quarantine.

    Raised only when the store cannot even move the damaged artifact aside
    (e.g. the configured directory path is a regular file); routine
    corruption is quarantined and recomputed instead.
    """

    category = "corruption"
