"""Campaign-layer error type.

Lives in its own module so :mod:`~repro.campaign.circuits`,
:mod:`~repro.campaign.runner`, :mod:`~repro.campaign.sharded` and
:mod:`~repro.campaign.suite` can all raise it without import cycles.
"""

from __future__ import annotations


class CampaignError(ValueError):
    """An invalid campaign specification or circuit reference.

    Subclasses :class:`ValueError` so callers that predate the campaign
    layer (and catch ``ValueError``) keep working.
    """
