"""The four registered fault models of the reproduction.

Each adapter packages one model's universe builder, structural collapsing,
packed/serial fault-simulation hooks and deterministic ATPG behind the
:class:`~repro.campaign.model.FaultModel` protocol.  The legacy free
functions (``simulate_stuck_at``, ``run_obd_atpg``, ...) remain available as
thin wrappers over these adapters.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..analysis_static.untestable import (
    StaticProof,
    prove_stuck_at_untestable,
    prove_transition_untestable,
)
from ..atpg.fault_sim import (
    DetectionReport,
    _check_engine,
    serial_simulate_obd,
    serial_simulate_path_delay,
    serial_simulate_stuck_at,
    serial_simulate_transition,
)
from ..atpg.obd_atpg import generate_obd_test
from ..atpg.parallel_sim import (
    NUMPY_SIMULATORS,
    compile_for_engine,
    compiled_matches_engine,
    packed_simulate_obd,
    packed_simulate_path_delay,
    packed_simulate_stuck_at,
    packed_simulate_transition,
)
from ..atpg.path_delay_atpg import generate_path_delay_test
from ..atpg.podem import PodemOptions
from ..atpg.structural import get_atpg_engine
from ..atpg.two_pattern import generate_transition_test, pattern_tuple
from ..faults.base import FaultList
from ..faults.collapse import (
    collapse_stuck_at_dominance,
    collapse_stuck_at_faults,
    obd_equivalence_groups,
)
from ..faults.obd import ObdFault, obd_fault_universe
from ..faults.path_delay import PathDelayFault, path_delay_universe
from ..faults.stuck_at import StuckAtFault, stuck_at_universe
from ..faults.transition import TransitionFault, transition_fault_universe
from ..logic.compiled import CompiledCircuit
from ..logic.netlist import LogicCircuit
from .model import SINGLE_PATTERN, TWO_PATTERN, AtpgOutcome, register_model


def _dispatch(
    packed_fn, serial_fn, model_name, circuit, tests, faults, drop_detected, engine,
    compiled, word_bits,
):
    """Route one simulate() call to the right engine.

    ``"packed"``, ``"numpy"`` and ``"interp"`` all run the bit-parallel
    algorithm; the difference is the :class:`CompiledCircuit` flavor
    (backend, codegen, block width -- see
    :func:`~repro.atpg.parallel_sim.compile_for_engine`).  A caller-supplied
    *compiled* circuit is reused when its flavor matches the requested
    engine and *word_bits*, so campaigns compile exactly once; on any
    mismatch -- including a non-default *word_bits* the prebuilt circuit
    does not have -- the call recompiles rather than silently simulating at
    the wrong width or through the wrong engine.
    """
    _check_engine(engine)
    if engine == "serial":
        return serial_fn(circuit, tests, faults, drop_detected=drop_detected)
    if not compiled_matches_engine(compiled, engine, word_bits):
        compiled = compile_for_engine(circuit, engine, word_bits)
    fn = NUMPY_SIMULATORS[model_name] if engine == "numpy" else packed_fn
    return fn(circuit, tests, faults, drop_detected=drop_detected, compiled=compiled)


class _StaticHooksMixin:
    """Default static-analysis hooks: no dominance collapsing, no proofs."""

    def collapse_dominance(self, circuit: LogicCircuit, faults: FaultList) -> FaultList:
        return self.collapse(circuit, faults)

    def prove_untestable(
        self, circuit: LogicCircuit, faults: FaultList
    ) -> dict[str, StaticProof]:
        return {}


class StuckAtModel(_StaticHooksMixin):
    """Classical single stuck-at model: single patterns, PODEM ATPG."""

    name = "stuck-at"
    pattern_kind = SINGLE_PATTERN
    description = "single stuck-at faults on every net, PODEM test generation"

    def build_universe(self, circuit: LogicCircuit, **options: Any) -> FaultList:
        return stuck_at_universe(circuit, **options)

    def collapse(self, circuit: LogicCircuit, faults: FaultList) -> FaultList:
        collapsed = collapse_stuck_at_faults(circuit)
        return faults.filtered(lambda f: f in collapsed)

    def collapse_dominance(self, circuit: LogicCircuit, faults: FaultList) -> FaultList:
        collapsed = collapse_stuck_at_dominance(circuit)
        return faults.filtered(lambda f: f in collapsed)

    def prove_untestable(
        self, circuit: LogicCircuit, faults: FaultList
    ) -> dict[str, StaticProof]:
        return prove_stuck_at_untestable(circuit, faults)

    def simulate(
        self,
        circuit: LogicCircuit,
        tests: Sequence,
        faults: Iterable[StuckAtFault],
        *,
        drop_detected: bool = False,
        engine: str = "packed",
        compiled: CompiledCircuit | None = None,
        word_bits: int | None = None,
    ) -> DetectionReport:
        return _dispatch(
            packed_simulate_stuck_at,
            serial_simulate_stuck_at,
            self.name,
            circuit,
            tests,
            faults,
            drop_detected,
            engine,
            compiled,
            word_bits,
        )

    #: Structural engine used when a caller does not pick one explicitly.
    default_atpg_engine = "podem"

    def generate_test(
        self,
        circuit: LogicCircuit,
        fault: StuckAtFault,
        options: PodemOptions | None = None,
        atpg_engine: str | None = None,
    ) -> AtpgOutcome:
        engine = get_atpg_engine(atpg_engine or self.default_atpg_engine)
        result = engine.generate(circuit, fault, options)
        tests = (pattern_tuple(circuit, result.pattern),) if result.success else ()
        return AtpgOutcome(
            fault,
            result.success,
            tests,
            result.backtracks,
            result.aborted,
            decisions=result.decisions,
            implications=result.implications,
        )


class TransitionModel(_StaticHooksMixin):
    """Classical transition (slow-to-rise / slow-to-fall) model."""

    name = "transition"
    pattern_kind = TWO_PATTERN
    description = "transition faults on every net, launch/capture two-pattern ATPG"

    def build_universe(self, circuit: LogicCircuit, **options: Any) -> FaultList:
        return transition_fault_universe(circuit, **options)

    def collapse(self, circuit: LogicCircuit, faults: FaultList) -> FaultList:
        return faults

    def simulate(
        self,
        circuit: LogicCircuit,
        tests: Sequence,
        faults: Iterable[TransitionFault],
        *,
        drop_detected: bool = False,
        engine: str = "packed",
        compiled: CompiledCircuit | None = None,
        word_bits: int | None = None,
    ) -> DetectionReport:
        return _dispatch(
            packed_simulate_transition,
            serial_simulate_transition,
            self.name,
            circuit,
            tests,
            faults,
            drop_detected,
            engine,
            compiled,
            word_bits,
        )

    def prove_untestable(
        self, circuit: LogicCircuit, faults: FaultList
    ) -> dict[str, StaticProof]:
        return prove_transition_untestable(circuit, faults)

    #: Structural engine for the capture (stuck-at) half of the search.
    default_atpg_engine = "podem"

    def generate_test(
        self,
        circuit: LogicCircuit,
        fault: TransitionFault,
        options: PodemOptions | None = None,
        atpg_engine: str | None = None,
    ) -> AtpgOutcome:
        result = generate_transition_test(
            circuit, fault, options=options,
            atpg_engine=atpg_engine or self.default_atpg_engine,
        )
        tests = ((result.test.first, result.test.second),) if result.success else ()
        return AtpgOutcome(
            fault,
            result.success,
            tests,
            result.backtracks,
            result.aborted,
            decisions=result.decisions,
            implications=result.implications,
        )


class PathDelayModel(_StaticHooksMixin):
    """Path-delay model: non-robust sensitization over structural paths."""

    name = "path-delay"
    pattern_kind = TWO_PATTERN
    description = "path-delay faults along structural paths, non-robust sensitization"

    def build_universe(self, circuit: LogicCircuit, **options: Any) -> FaultList:
        return path_delay_universe(circuit, **options)

    def collapse(self, circuit: LogicCircuit, faults: FaultList) -> FaultList:
        return faults

    def simulate(
        self,
        circuit: LogicCircuit,
        tests: Sequence,
        faults: Iterable[PathDelayFault],
        *,
        drop_detected: bool = False,
        engine: str = "packed",
        compiled: CompiledCircuit | None = None,
        word_bits: int | None = None,
    ) -> DetectionReport:
        return _dispatch(
            packed_simulate_path_delay,
            serial_simulate_path_delay,
            self.name,
            circuit,
            tests,
            faults,
            drop_detected,
            engine,
            compiled,
            word_bits,
        )

    def generate_test(
        self,
        circuit: LogicCircuit,
        fault: PathDelayFault,
        options: PodemOptions | None = None,
        atpg_engine: str | None = None,
    ) -> AtpgOutcome:
        # atpg_engine is accepted for interface uniformity: the path-delay
        # search is objective-driven, not a stuck-at search to delegate.
        result = generate_path_delay_test(circuit, fault, options=options)
        tests = ((result.test.first, result.test.second),) if result.success else ()
        return AtpgOutcome(
            fault,
            result.success,
            tests,
            result.backtracks,
            result.aborted,
            decisions=result.decisions,
        )


class ObdModel(_StaticHooksMixin):
    """The paper's oxide-breakdown model with input-specific excitation."""

    name = "obd"
    pattern_kind = TWO_PATTERN
    description = "transistor-level OBD defect sites, input-specific two-pattern ATPG"

    def build_universe(self, circuit: LogicCircuit, **options: Any) -> FaultList:
        return obd_fault_universe(circuit, **options)

    def collapse(self, circuit: LogicCircuit, faults: FaultList) -> FaultList:
        """One representative per gate-local equivalence group.

        Faults in a group share identical excitation-condition sets (e.g. NA
        and NB of a NAND), so any test set covering the representative covers
        the whole group.
        """
        groups = obd_equivalence_groups(faults)
        representatives = {members[0].key for members in groups.values()}
        return faults.filtered(lambda f: f.key in representatives)

    def simulate(
        self,
        circuit: LogicCircuit,
        tests: Sequence,
        faults: Iterable[ObdFault],
        *,
        drop_detected: bool = False,
        engine: str = "packed",
        compiled: CompiledCircuit | None = None,
        word_bits: int | None = None,
    ) -> DetectionReport:
        return _dispatch(
            packed_simulate_obd,
            serial_simulate_obd,
            self.name,
            circuit,
            tests,
            faults,
            drop_detected,
            engine,
            compiled,
            word_bits,
        )

    def generate_test(
        self,
        circuit: LogicCircuit,
        fault: ObdFault,
        options: PodemOptions | None = None,
        atpg_engine: str | None = None,
    ) -> AtpgOutcome:
        # atpg_engine is accepted for interface uniformity: OBD excitation
        # cubes pin the defective gate's inputs, a constrained search the
        # structural stuck-at engines do not model.
        result = generate_obd_test(circuit, fault, options=options)
        tests = ((result.test.first, result.test.second),) if result.success else ()
        return AtpgOutcome(
            fault,
            result.success,
            tests,
            result.backtracks,
            result.aborted,
            decisions=result.decisions,
        )


STUCK_AT = register_model(StuckAtModel())
TRANSITION = register_model(TransitionModel())
PATH_DELAY = register_model(PathDelayModel())
OBD = register_model(ObdModel())
