"""Unified test campaigns over a fault-model registry.

The paper's argument is a *flow* -- enumerate defect sites, generate
input-specific two-pattern tests, fault-simulate, compact and schedule -- and
this package exposes that flow as one declarative API:

* :class:`FaultModel` / :func:`register_model` / :func:`get_model` -- the
  registry under which each fault model (stuck-at, transition, path-delay,
  OBD) packages its universe builder, pattern-source kind, ATPG routine and
  packed/serial simulation hooks.
* :class:`CampaignSpec` / :class:`Campaign` / :func:`run_campaign` -- the
  declarative pipeline runner: fault universe (with optional collapsing), a
  random / exhaustive / single-input-change pattern phase with fault
  dropping, deterministic ATPG top-up that skips already-detected faults,
  greedy compaction and a unified :class:`CampaignResult`.
* :func:`resolve_circuit` / :func:`register_circuit` -- the circuit
  registry behind ``CampaignSpec.circuit``: registered names (``"c17"``),
  parametric references (``"rca:8"``, ``"mult:4"``, ``"rdag:40,7"``) and
  ``.bench`` file paths all resolve to a
  :class:`~repro.logic.netlist.LogicCircuit` workload.
* :class:`ShardedCampaign` / :func:`run_sharded_campaign` -- the
  multi-process executor: the fault universe is partitioned into contiguous
  shards, pattern simulation and ATPG run per shard in a process pool, and
  per-shard reports merge back into a result bit-identical to
  :meth:`Campaign.run`.
* :class:`CampaignSuite` / :func:`run_campaign_suite` -- batteries of
  campaigns (e.g. the circuits x models x engines cross product) over one
  shared worker pool, with a consolidated JSON / CSV report.

The per-model free functions in :mod:`repro.atpg` (``simulate_stuck_at``,
``run_obd_atpg``, ...) remain as thin compatibility wrappers over this
registry.

>>> from repro.campaign import CampaignSpec, run_campaign
>>> from repro.logic import full_adder_sum
>>> result = run_campaign(full_adder_sum(), CampaignSpec(model="obd"))
>>> print(result.describe())          # doctest: +SKIP
"""

from .circuits import (
    circuit_names,
    register_circuit,
    resolve_circuit,
)
from .errors import CampaignError
from .model import (
    SINGLE_PATTERN,
    TWO_PATTERN,
    AtpgOutcome,
    FaultModel,
    get_model,
    register_model,
    registered_models,
)
from .models import ObdModel, PathDelayModel, StuckAtModel, TransitionModel
from .runner import (
    PATTERN_SOURCES,
    AtpgPhaseResult,
    Campaign,
    CampaignResult,
    CampaignSpec,
    PatternPhaseResult,
    run_campaign,
)
from .sharded import (
    InlineExecutor,
    ShardedCampaign,
    partition_faults,
    run_sharded_campaign,
)
from .suite import (
    CampaignSuite,
    SuiteEntry,
    SuiteResult,
    run_campaign_suite,
)

__all__ = [
    "FaultModel",
    "AtpgOutcome",
    "SINGLE_PATTERN",
    "TWO_PATTERN",
    "register_model",
    "get_model",
    "registered_models",
    "StuckAtModel",
    "TransitionModel",
    "PathDelayModel",
    "ObdModel",
    "register_circuit",
    "resolve_circuit",
    "circuit_names",
    "PATTERN_SOURCES",
    "CampaignError",
    "CampaignSpec",
    "Campaign",
    "CampaignResult",
    "PatternPhaseResult",
    "AtpgPhaseResult",
    "run_campaign",
    "ShardedCampaign",
    "InlineExecutor",
    "partition_faults",
    "run_sharded_campaign",
    "CampaignSuite",
    "SuiteEntry",
    "SuiteResult",
    "run_campaign_suite",
]
