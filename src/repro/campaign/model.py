"""The :class:`FaultModel` protocol and the fault-model registry.

A fault model packages everything the campaign runner needs to drive one
model through the full pipeline -- universe building, optional structural
collapsing, pattern-source kind (single-pattern vs. launch/capture pairs),
fault simulation (packed and serial engines) and deterministic ATPG -- behind
one uniform interface.  The four models of the reproduction (stuck-at,
transition, path-delay, OBD) register themselves in
:mod:`repro.campaign.models`; downstream code looks them up by name via
:func:`get_model` and never hard-codes per-model entry points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Protocol, Sequence, runtime_checkable

from ..atpg.fault_sim import DetectionReport
from ..atpg.podem import PodemOptions
from ..faults.base import Fault, FaultList
from ..logic.compiled import CompiledCircuit
from ..logic.netlist import LogicCircuit

#: Pattern-source kinds: one pattern per test, or launch/capture pairs.
SINGLE_PATTERN = "single"
TWO_PATTERN = "pair"


@dataclass(frozen=True)
class AtpgOutcome:
    """Uniform per-fault result of deterministic test generation.

    ``tests`` holds zero or more tests in the model's native shape (a pattern
    tuple for single-pattern models, a ``(first, second)`` pair for
    two-pattern models).
    """

    fault: Fault
    success: bool
    tests: tuple = ()
    backtracks: int = 0
    aborted: bool = False
    #: PODEM decision count (assignments tried), the second half of the
    #: classical search-effort pair alongside ``backtracks``.
    decisions: int = 0
    #: Net values derived by implication (structural engines only; the
    #: legacy two-rail PODEM reports 0 here).
    implications: int = 0

    @property
    def untestable(self) -> bool:
        """Search exhausted without aborting: the fault is proven untestable."""
        return not self.success and not self.aborted

    @property
    def status(self) -> str:
        """Three-way outcome: ``tested`` / ``proven_redundant`` / ``aborted``."""
        if self.success:
            return "tested"
        return "aborted" if self.aborted else "proven_redundant"


@runtime_checkable
class FaultModel(Protocol):
    """Everything a campaign needs to know about one fault model."""

    #: Registry name, e.g. ``"stuck-at"``.
    name: str
    #: :data:`SINGLE_PATTERN` or :data:`TWO_PATTERN`.
    pattern_kind: str
    #: One-line human description.
    description: str

    def build_universe(self, circuit: LogicCircuit, **options: Any) -> FaultList:
        """Enumerate the model's fault universe for *circuit*."""

    def collapse(self, circuit: LogicCircuit, faults: FaultList) -> FaultList:
        """Structurally collapsed equivalent of *faults* (identity if none)."""

    def simulate(
        self,
        circuit: LogicCircuit,
        tests: Sequence,
        faults: Iterable[Fault],
        *,
        drop_detected: bool = False,
        engine: str = "packed",
        compiled: CompiledCircuit | None = None,
        word_bits: int | None = None,
    ) -> DetectionReport:
        """Fault-simulate *tests* (in the model's native shape) over *faults*.

        *compiled* lets a caller (e.g. the campaign runner) reuse one
        :class:`~repro.logic.compiled.CompiledCircuit` across every phase
        instead of recompiling per call; serial simulation ignores it.
        *word_bits* overrides the engine's default block width -- a
        *compiled* circuit of a different width (or engine flavor) is
        recompiled rather than silently reused.
        """

    def generate_test(
        self,
        circuit: LogicCircuit,
        fault: Fault,
        options: PodemOptions | None = None,
        atpg_engine: str | None = None,
    ) -> AtpgOutcome:
        """Deterministic test generation for one fault.

        *atpg_engine* names a structural engine from
        :data:`repro.atpg.structural.ATPG_ENGINES` (``"d-alg"``,
        ``"podem"``, ``"legacy"``); None keeps the model's default.  Models
        whose search is not stuck-at-shaped (path-delay, OBD) accept and
        ignore it.
        """

    def collapse_dominance(self, circuit: LogicCircuit, faults: FaultList) -> FaultList:
        """Equivalence *plus* dominance collapsing (identity if unsupported)."""

    def prove_untestable(self, circuit: LogicCircuit, faults: FaultList) -> dict:
        """Statically proven untestable faults, keyed by fault key.

        Values are :class:`~repro.analysis_static.untestable.StaticProof`
        instances; models without a static prover return ``{}``.  The
        campaign runner looks these hooks up with ``getattr`` so third-party
        models registered before this protocol grew them keep working.
        """


_REGISTRY: dict[str, FaultModel] = {}


def register_model(model: FaultModel, replace: bool = False) -> FaultModel:
    """Register *model* under ``model.name``; returns the model for chaining."""
    if model.name in _REGISTRY and not replace:
        raise ValueError(
            f"fault model {model.name!r} is already registered; pass replace=True to override"
        )
    _REGISTRY[model.name] = model
    return model


def get_model(name: str) -> FaultModel:
    """Look up a registered fault model by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown fault model {name!r}; registered models: {registered_models()}"
        ) from None


def registered_models() -> tuple[str, ...]:
    """Names of all registered fault models, sorted."""
    return tuple(sorted(_REGISTRY))
