"""repro -- circuit-level modeling of gate oxide breakdown (OBD) defects.

Reproduction of Carter, Ozev & Sorin, "Circuit-Level Modeling for Concurrent
Testing of Operational Defects due to Gate Oxide Breakdown" (DATE 2005).

The package is organized as a stack of substrates:

``repro.spice``
    A from-scratch MNA-based nonlinear circuit simulator (DC operating point,
    DC sweeps, transient analysis) with Level-1 MOSFETs, diodes, resistors,
    capacitors and independent sources.

``repro.cells``
    Transistor-level CMOS standard cells (inverter, NAND, NOR, complex gates),
    the Figure-5 measurement harness and characterization routines.

``repro.core``
    The paper's contribution: the diode-resistor OBD defect model, its stage
    ladder (soft / medium / hard breakdown), defect injection, temporal
    progression and gate-level excitation / detection conditions.

``repro.logic``
    Gate-level netlists, logic simulation, the paper's full-adder sum circuit
    and transistor-site enumeration.

``repro.faults`` / ``repro.atpg``
    Classical and OBD fault models, PODEM stuck-at ATPG, two-pattern OBD and
    path-delay ATPG, fault simulation, compaction and coverage reporting.

``repro.campaign``
    The unified test-campaign API: a fault-model registry (stuck-at,
    transition, path-delay, OBD behind one ``FaultModel`` interface) and the
    declarative ``CampaignSpec``/``Campaign`` pipeline runner -- universe,
    pattern phase, ATPG top-up, compaction, unified reporting.

``repro.testing``
    Concurrent-testing support: detection window-of-opportunity analysis and
    test-interval scheduling.

``repro.experiments``
    One module per paper table / figure, driven by the ``benchmarks/`` tree.
"""

__version__ = "1.0.0"

__all__ = [
    "spice",
    "cells",
    "core",
    "logic",
    "faults",
    "atpg",
    "campaign",
    "testing",
    "analysis",
    "experiments",
]
