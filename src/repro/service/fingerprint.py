"""Content-addressed keys for campaign results and checkpoints.

A campaign's outcome is a pure function of (circuit structure, spec, code
schema): the pattern phase is seeded, fault enumeration / collapsing /
compaction are deterministic, and sharded execution merges in universe
order.  That purity is what the result cache and the checkpoint store key
on:

* :func:`circuit_fingerprint` hashes the circuit's *structural* canonical
  form -- primary input/output order plus every driven net's (gate type,
  input nets) -- exactly the information
  :func:`repro.logic.bench.structurally_equal` compares, so two circuits
  that are structurally equal always share a fingerprint regardless of how
  they were built (generator, ``.bench`` file, hand construction).
* :func:`spec_fingerprint` hashes every :class:`~repro.campaign.runner.
  CampaignSpec` field that can influence the result, including
  ``universe_options`` and ``podem_options``.
* :func:`campaign_fingerprint` combines the two with the circuit name (it
  appears verbatim in reports) and :data:`SCHEMA_VERSION`.

Bump :data:`SCHEMA_VERSION` whenever the campaign pipeline's observable
output changes (report schema, detection semantics, compaction tie-breaks,
engine codegen): the bump invalidates every cached result and checkpoint at
once, so stale artifacts from older code are never replayed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Any

from ..campaign.runner import CampaignSpec, _jsonable
from ..logic.netlist import LogicCircuit

#: Version of the campaign result/checkpoint schema.  Part of every cache
#: key and checkpoint manifest; see the module docstring for when to bump.
#:
#: v2: structural ATPG rewrite -- ``CampaignSpec.atpg_engine`` joined the
#: spec, and the ``atpg_phase`` payload grew ``atpg_engine`` /
#: ``implications`` / ``proven_structural`` / per-fault ``outcomes``.
SCHEMA_VERSION = 2


def _digest(payload: Any) -> str:
    """SHA-256 over the canonical (sorted-key) JSON form of *payload*."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def circuit_canonical_form(circuit: LogicCircuit) -> dict[str, Any]:
    """The structural identity of *circuit* as a JSON-able dict.

    Mirrors :func:`repro.logic.bench.structurally_equal`: primary
    input/output order and, for every driven net, the driving gate's type
    and input tuple.  Gate instance names and circuit names are excluded.
    """
    return {
        "inputs": list(circuit.primary_inputs),
        "outputs": list(circuit.primary_outputs),
        "drivers": {
            gate.output: [gate.gate_type.value, list(gate.inputs)] for gate in circuit
        },
    }


def circuit_fingerprint(circuit: LogicCircuit) -> str:
    """Hex digest of the circuit's structural canonical form."""
    return _digest(circuit_canonical_form(circuit))


def spec_canonical_form(spec: CampaignSpec) -> dict[str, Any]:
    """Every result-influencing spec field as a JSON-able dict.

    ``shards`` is included even though sharded and unsharded results are
    bit-identical: the spec is embedded verbatim in the JSON report, so two
    shard counts are two distinct (both correct) cacheable artifacts.
    """
    return _jsonable(
        {
            "model": spec.model,
            "circuit": spec.circuit,
            "universe_options": spec.universe_options,
            "collapse": spec.collapse,
            "pattern_source": spec.pattern_source,
            "pattern_count": spec.pattern_count,
            "seed": spec.seed,
            "run_atpg": spec.run_atpg,
            "podem_options": asdict(spec.podem_options) if spec.podem_options else None,
            "atpg_engine": spec.atpg_engine,
            "compact": spec.compact,
            "drop_detected": spec.drop_detected,
            "engine": spec.engine,
            "word_bits": spec.word_bits,
            "shards": spec.shards,
            "static_phase": spec.static_phase,
        }
    )


def spec_fingerprint(spec: CampaignSpec) -> str:
    """Hex digest of the spec's canonical form."""
    return _digest(spec_canonical_form(spec))


def campaign_fingerprint(
    circuit: LogicCircuit,
    spec: CampaignSpec,
    schema_version: int = SCHEMA_VERSION,
) -> str:
    """The content-addressed key of one (circuit, spec, schema) campaign.

    Two calls agree exactly when the campaign is guaranteed to produce the
    same :meth:`~repro.campaign.runner.CampaignResult.as_dict` payload
    (runtime fields aside): same circuit structure and name, same spec
    fields, same code schema version.
    """
    return _digest(
        {
            "schema_version": schema_version,
            "circuit_name": circuit.name,
            "circuit": circuit_canonical_form(circuit),
            "spec": spec_canonical_form(spec),
        }
    )
