"""Asynchronous campaign service: submit / status / result / cancel.

:class:`CampaignService` puts a job queue in front of the campaign
pipeline so many clients can share one worker pool:

* **FIFO-fair scheduling** -- each client gets its own FIFO queue and a
  round-robin dispatcher interleaves clients, so one client submitting a
  thousand jobs cannot starve another's single request.
* **Crash isolation** -- jobs run in pool processes behind a wrapper that
  traps every Python exception into a structured :class:`JobError` (type,
  message, full traceback); a worker process that dies outright (OOM
  killer, segfault) fails only its job, and the service transparently
  rebuilds the broken pool for the jobs behind it.
* **Result cache** -- with ``cache_dir`` every job consults the
  content-addressed :class:`~repro.service.cache.ResultCache` before doing
  any engine work, so repeated identical requests are served from disk.
* **Checkpoints** -- with ``checkpoint_root`` each job shard-checkpoints
  under a directory derived from its campaign fingerprint, so resubmitting
  a job that previously crashed resumes from its completed shards.

The synchronous entry points (:meth:`~CampaignService.result`,
:meth:`~CampaignService.wait_all`) block on per-job events; everything
else returns immediately.  ``python -m repro.service.cli`` drives a
service from a directory of JSON job specs.
"""

from __future__ import annotations

import itertools
import os
import threading
import traceback
from collections import Counter, deque
from concurrent.futures import Executor, Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Any, Optional

from ..campaign.errors import CampaignError
from ..campaign.runner import (
    Campaign,
    CampaignResult,
    CampaignSpec,
    resolve_campaign_circuit,
)
from ..campaign.sharded import InlineExecutor, ShardedCampaign
from .cache import ResultCache
from .fingerprint import SCHEMA_VERSION, campaign_fingerprint


class JobStatus(str, Enum):
    """Lifecycle of one submitted campaign job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED)


@dataclass(frozen=True)
class JobError:
    """Structured failure record of one job (never takes down the service)."""

    type: str
    message: str
    traceback: Optional[str] = None

    def as_dict(self) -> dict[str, Any]:
        return {"type": self.type, "message": self.message, "traceback": self.traceback}

    def __str__(self) -> str:
        return f"{self.type}: {self.message}"


class JobFailedError(CampaignError):
    """Raised by :meth:`CampaignService.result` for failed/cancelled jobs."""

    def __init__(self, job_id: str, status: JobStatus, error: Optional[JobError]):
        detail = f" ({error})" if error else ""
        super().__init__(f"job {job_id} {status.value}{detail}")
        self.job_id = job_id
        self.status = status
        self.error = error


@dataclass
class Job:
    """One submitted campaign and everything known about it."""

    id: str
    client: str
    spec: CampaignSpec
    status: JobStatus = JobStatus.QUEUED
    result: Optional[CampaignResult] = None
    error: Optional[JobError] = None
    cache_hit: bool = False
    #: Dispatch sequence number (order the dispatcher started the job),
    #: None while queued/cancelled.  Tests of scheduling fairness read this.
    started_seq: Optional[int] = None
    _event: threading.Event = field(default_factory=threading.Event, repr=False)

    def info(self) -> dict[str, Any]:
        """JSON-able status snapshot (no result payload)."""
        return {
            "id": self.id,
            "client": self.client,
            "circuit": self.spec.circuit,
            "model": self.spec.model,
            "status": self.status.value,
            "cache_hit": self.cache_hit,
            "error": self.error.as_dict() if self.error else None,
        }


def _execute_job(
    spec: CampaignSpec,
    cache_dir: Optional[str],
    checkpoint_root: Optional[str],
    schema_version: int,
) -> dict[str, Any]:
    """Worker-side job body: cache lookup, run, cache store -- all trapped.

    Runs inside a pool process; returns a plain dict so every outcome
    (including the failure path) pickles back to the parent.  Sharded specs
    run their shard pipeline inline -- nested process pools are never
    created -- and the checkpoint directory is derived from the campaign
    fingerprint, so a resubmitted job resumes the shards a crashed
    predecessor completed.
    """
    try:
        cache = ResultCache(cache_dir, schema_version=schema_version) if cache_dir else None
        key: Optional[str] = None
        if cache is not None:
            key, cached = cache.fetch(None, spec)
            if cached is not None:
                return {"ok": True, "result": cached, "cache_hit": True}
        checkpoint_dir = None
        if checkpoint_root is not None:
            circuit = resolve_campaign_circuit(None, spec)
            fingerprint = campaign_fingerprint(circuit, spec, schema_version=schema_version)
            checkpoint_dir = str(Path(checkpoint_root) / fingerprint[:24])
        if checkpoint_dir is not None or spec.shards > 1:
            result = ShardedCampaign(
                spec, pool=InlineExecutor(), checkpoint_dir=checkpoint_dir
            ).run()
        else:
            result = Campaign(spec).run()
        if cache is not None and key is not None:
            cache.put(key, result)
        return {"ok": True, "result": result, "cache_hit": False}
    except Exception as exc:
        return {
            "ok": False,
            "error": {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            },
        }


class CampaignService:
    """An async job front-end over one shared campaign worker pool.

    ``max_workers`` bounds concurrent jobs (default: CPU count);
    ``max_workers=0`` runs jobs inline in the dispatcher thread through
    :class:`~repro.campaign.sharded.InlineExecutor` -- deterministic and
    process-free, the right mode for tests.  With ``autostart=False`` the
    dispatcher stays parked until :meth:`start`, letting callers stage a
    burst of submissions that is then scheduled strictly fairly.

    The service is a context manager; leaving the ``with`` block drains or
    cancels the queue (``close(cancel_queued=True)`` cancels).
    """

    def __init__(
        self,
        *,
        max_workers: Optional[int] = None,
        cache_dir: str | os.PathLike | None = None,
        checkpoint_root: str | os.PathLike | None = None,
        schema_version: int = SCHEMA_VERSION,
        autostart: bool = True,
    ):
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.checkpoint_root = str(checkpoint_root) if checkpoint_root is not None else None
        self.schema_version = schema_version
        self._inline = max_workers == 0
        self._slots = 1 if self._inline else (max_workers or os.cpu_count() or 1)
        self._executor: Executor = (
            InlineExecutor() if self._inline else ProcessPoolExecutor(self._slots)
        )
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}
        self._queues: dict[str, deque[str]] = {}
        self._clients: deque[str] = deque()
        self._in_flight: set[str] = set()
        self._ids = itertools.count(1)
        self._dispatch_seq = itertools.count(1)
        self._pool_broken = False
        self._closed = False
        self._started = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="campaign-service-dispatch", daemon=True
        )
        self._dispatcher.start()
        if autostart:
            self.start()

    # ------------------------------------------------------------------ #
    # Client API.
    # ------------------------------------------------------------------ #
    def submit(self, spec: CampaignSpec, client: str = "default") -> str:
        """Enqueue one campaign; returns the job id immediately.

        The spec must name its circuit (``CampaignSpec.circuit``), exactly
        as in :class:`~repro.campaign.suite.CampaignSuite`.
        """
        spec.validate()
        if spec.circuit is None:
            raise CampaignError(
                "service jobs need CampaignSpec.circuit set to a registered "
                "name, family:args reference or .bench path"
            )
        with self._wake:
            if self._closed:
                raise CampaignError("campaign service is closed")
            job = Job(id=f"job-{next(self._ids):04d}", client=client, spec=spec)
            self._jobs[job.id] = job
            if client not in self._queues:
                self._queues[client] = deque()
                self._clients.append(client)
            self._queues[client].append(job.id)
            self._wake.notify_all()
            return job.id

    def start(self) -> None:
        """Release the dispatcher (no-op when already started)."""
        with self._wake:
            self._started = True
            self._wake.notify_all()

    def job(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise CampaignError(f"unknown job id {job_id!r}") from None

    def status(self, job_id: str) -> JobStatus:
        return self.job(job_id).status

    def result(self, job_id: str, timeout: Optional[float] = None) -> CampaignResult:
        """Block until *job_id* finishes; the result or a raised failure.

        Raises :class:`JobFailedError` for failed/cancelled jobs and
        :class:`TimeoutError` when *timeout* elapses first.
        """
        job = self.job(job_id)
        if not job._event.wait(timeout):
            raise TimeoutError(f"job {job_id} still {job.status.value} after {timeout} s")
        if job.status is not JobStatus.DONE:
            raise JobFailedError(job_id, job.status, job.error)
        assert job.result is not None
        return job.result

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; running/finished jobs are not interrupted."""
        with self._wake:
            job = self._jobs.get(job_id)
            if job is None:
                raise CampaignError(f"unknown job id {job_id!r}")
            if job.status is not JobStatus.QUEUED:
                return False
            self._queues[job.client].remove(job_id)
            job.status = JobStatus.CANCELLED
            job._event.set()
            self._wake.notify_all()
            return True

    def wait_all(self, timeout: Optional[float] = None) -> list[Job]:
        """Block until every submitted job is terminal; returns them all."""
        with self._lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            remaining = timeout  # per-job cap; total bound = timeout * jobs
            if not job._event.wait(remaining):
                raise TimeoutError(f"job {job.id} still {job.status.value}")
        return jobs

    def report(self) -> dict[str, Any]:
        """Service snapshot: job tallies per status plus cache statistics."""
        with self._lock:
            jobs = list(self._jobs.values())
        tally = Counter(job.status.value for job in jobs)
        payload: dict[str, Any] = {
            "schema": "repro/campaign-service/1",
            "jobs": len(jobs),
            "by_status": dict(sorted(tally.items())),
            "cache_hits": sum(1 for job in jobs if job.cache_hit),
        }
        if self.cache_dir is not None:
            payload["cache"] = ResultCache(
                self.cache_dir, schema_version=self.schema_version
            ).report()
        return payload

    def close(self, cancel_queued: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting jobs; cancel (default) or drain the queue, shut down."""
        with self._wake:
            if cancel_queued:
                for queue in self._queues.values():
                    while queue:
                        job = self._jobs[queue.popleft()]
                        job.status = JobStatus.CANCELLED
                        job._event.set()
            self._closed = True
            self._started = True
            self._wake.notify_all()
        self._dispatcher.join(timeout)
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "CampaignService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Dispatcher internals.
    # ------------------------------------------------------------------ #
    def _has_pending(self) -> bool:
        return any(self._queues.values())

    def _next_job_id(self) -> str:
        """Round-robin across clients: serve the head client, rotate it back."""
        while self._clients:
            client = self._clients[0]
            queue = self._queues[client]
            if not queue:
                self._clients.popleft()
                continue
            job_id = queue.popleft()
            self._clients.rotate(-1)
            return job_id
        raise AssertionError("called with no pending jobs")  # pragma: no cover

    def _dispatch_loop(self) -> None:
        while True:
            with self._wake:
                while not self._closed and not (
                    self._started
                    and self._has_pending()
                    and len(self._in_flight) < self._slots
                ):
                    self._wake.wait()
                if self._closed and not self._has_pending():
                    return
                if self._closed:
                    # Draining close: keep scheduling the remaining queue.
                    if len(self._in_flight) >= self._slots:
                        self._wake.wait()
                        continue
                job_id = self._next_job_id()
                job = self._jobs[job_id]
                job.status = JobStatus.RUNNING
                job.started_seq = next(self._dispatch_seq)
                self._in_flight.add(job_id)
                if self._pool_broken:
                    self._executor = ProcessPoolExecutor(self._slots)
                    self._pool_broken = False
            try:
                future = self._executor.submit(
                    _execute_job,
                    job.spec,
                    self.cache_dir,
                    self.checkpoint_root,
                    self.schema_version,
                )
            except Exception as exc:
                self._finish_with_error(job_id, exc)
                continue
            future.add_done_callback(
                lambda fut, job_id=job_id: self._on_job_done(job_id, fut)
            )

    def _finish_with_error(self, job_id: str, exc: BaseException) -> None:
        with self._wake:
            job = self._jobs[job_id]
            self._in_flight.discard(job_id)
            job.status = JobStatus.FAILED
            job.error = JobError(type(exc).__name__, str(exc))
            self._pool_broken = not self._inline
            job._event.set()
            self._wake.notify_all()

    def _on_job_done(self, job_id: str, future: Future) -> None:
        try:
            payload = future.result()
        except BaseException as exc:
            # The worker process died without returning (BrokenProcessPool,
            # unpicklable result, ...): fail this job, rebuild the pool for
            # the next one.
            self._finish_with_error(job_id, exc)
            return
        with self._wake:
            job = self._jobs[job_id]
            self._in_flight.discard(job_id)
            if payload["ok"]:
                job.status = JobStatus.DONE
                job.result = payload["result"]
                job.cache_hit = payload["cache_hit"]
            else:
                job.status = JobStatus.FAILED
                err = payload["error"]
                job.error = JobError(err["type"], err["message"], err["traceback"])
            job._event.set()
            self._wake.notify_all()
