"""Asynchronous campaign service: submit / status / result / cancel.

:class:`CampaignService` puts a job queue in front of the campaign
pipeline so many clients can share one worker pool:

* **FIFO-fair scheduling** -- each client gets its own FIFO queue and a
  round-robin dispatcher interleaves clients, so one client submitting a
  thousand jobs cannot starve another's single request.
* **Crash isolation** -- jobs run in pool processes behind a wrapper that
  traps every Python exception into a structured :class:`JobError` (type,
  message, full traceback); a worker process that dies outright (OOM
  killer, segfault) fails only its job, and the service transparently
  rebuilds the broken pool for the jobs behind it.
* **Result cache** -- with ``cache_dir`` every job consults the
  content-addressed :class:`~repro.service.cache.ResultCache` before doing
  any engine work, so repeated identical requests are served from disk.
* **Checkpoints** -- with ``checkpoint_root`` each job shard-checkpoints
  under a directory derived from its campaign fingerprint, so resubmitting
  a job that previously crashed resumes from its completed shards.

The synchronous entry points (:meth:`~CampaignService.result`,
:meth:`~CampaignService.wait_all`) block on per-job events; everything
else returns immediately.  ``python -m repro.service.cli`` drives a
service from a directory of JSON job specs.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import traceback
from collections import Counter, deque
from concurrent.futures import Executor, Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Any, Optional

from ..campaign.errors import CampaignError
from ..campaign.runner import (
    Campaign,
    CampaignResult,
    CampaignSpec,
    resolve_campaign_circuit,
)
from .cache import ResultCache
from .faultinject import inject
from .fingerprint import SCHEMA_VERSION, campaign_fingerprint

# NOTE: repro.campaign.sharded is imported lazily (inside functions) --
# sharded.py hooks into repro.service.faultinject at module level, so a
# top-level import here would complete the cycle campaign.sharded ->
# service.__init__ -> service.jobs -> campaign.sharded.


class JobStatus(str, Enum):
    """Lifecycle of one submitted campaign job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED)


#: JobError categories that a retry can plausibly fix: infrastructure
#: failures (dead worker, broken pool) and deadline overruns.  Everything
#: else -- deterministic spec errors, corruption beyond quarantine, a
#: degraded run that still failed -- fails the job immediately.
RETRYABLE_CATEGORIES = frozenset({"crash", "timeout"})


@dataclass(frozen=True)
class JobError:
    """Structured failure record of one job (never takes down the service).

    ``category`` is the service failure taxonomy: ``crash`` (worker died or
    raised an infrastructure error), ``timeout`` (watchdog or shard
    deadline), ``corruption`` (artifact damaged beyond quarantine),
    ``degraded`` (the engine-fallback attempt also failed) or ``error``
    (deterministic campaign/spec failure).  Exceptions advertise their own
    category via a ``category`` attribute (see
    :mod:`repro.campaign.errors`); anything else is an ``error``.
    """

    type: str
    message: str
    traceback: Optional[str] = None
    category: str = "error"

    def as_dict(self) -> dict[str, Any]:
        return {
            "type": self.type,
            "message": self.message,
            "traceback": self.traceback,
            "category": self.category,
        }

    def __str__(self) -> str:
        return f"{self.type}: {self.message}"


class JobFailedError(CampaignError):
    """Raised by :meth:`CampaignService.result` for failed/cancelled jobs."""

    def __init__(self, job_id: str, status: JobStatus, error: Optional[JobError]):
        detail = f" ({error})" if error else ""
        super().__init__(f"job {job_id} {status.value}{detail}")
        self.job_id = job_id
        self.status = status
        self.error = error


@dataclass
class Job:
    """One submitted campaign and everything known about it."""

    id: str
    client: str
    spec: CampaignSpec
    status: JobStatus = JobStatus.QUEUED
    result: Optional[CampaignResult] = None
    error: Optional[JobError] = None
    cache_hit: bool = False
    #: Dispatch sequence number (order the dispatcher started the job),
    #: None while queued/cancelled.  Tests of scheduling fairness read this.
    started_seq: Optional[int] = None
    #: Times this job has been dispatched (> 1 after crash/timeout requeues);
    #: doubles as the attempt generation that lets the service ignore a
    #: completion from a superseded attempt.
    attempts: int = 0
    #: ``time.monotonic()`` of the latest dispatch; the watchdog compares it
    #: against the service's ``job_timeout``.  None while queued.
    started_at: Optional[float] = None
    #: Engine-degradation provenance copied from the result (None normally).
    degraded: Optional[dict[str, Any]] = None
    _event: threading.Event = field(default_factory=threading.Event, repr=False)

    def info(self) -> dict[str, Any]:
        """JSON-able status snapshot (no result payload)."""
        return {
            "id": self.id,
            "client": self.client,
            "circuit": self.spec.circuit,
            "model": self.spec.model,
            "status": self.status.value,
            "cache_hit": self.cache_hit,
            "attempts": self.attempts,
            "degraded": self.degraded,
            "error": self.error.as_dict() if self.error else None,
        }


def _execute_job(
    spec: CampaignSpec,
    cache_dir: Optional[str],
    checkpoint_root: Optional[str],
    schema_version: int,
) -> dict[str, Any]:
    """Worker-side job body: cache lookup, run, cache store -- all trapped.

    Runs inside a pool process; returns a plain dict so every outcome
    (including the failure path) pickles back to the parent.  Sharded specs
    run their shard pipeline inline -- nested process pools are never
    created -- and the checkpoint directory is derived from the campaign
    fingerprint, so a resubmitted job resumes the shards a crashed
    predecessor completed.
    """
    from ..campaign.sharded import InlineExecutor, ShardedCampaign

    try:
        # Tagged by circuit reference, not call count: the hook stays
        # deterministic across pool rebuilds and worker process reuse.
        inject("job.run", tag=spec.circuit)
        cache = ResultCache(cache_dir, schema_version=schema_version) if cache_dir else None
        key: Optional[str] = None
        if cache is not None:
            key, cached = cache.fetch(None, spec)
            if cached is not None:
                return {"ok": True, "result": cached, "cache_hit": True}
        checkpoint_dir = None
        if checkpoint_root is not None:
            circuit = resolve_campaign_circuit(None, spec)
            fingerprint = campaign_fingerprint(circuit, spec, schema_version=schema_version)
            checkpoint_dir = str(Path(checkpoint_root) / fingerprint[:24])
        if checkpoint_dir is not None or spec.shards > 1:
            sharded = ShardedCampaign(
                spec, pool=InlineExecutor(), checkpoint_dir=checkpoint_dir
            )
            result = sharded.run()
        else:
            result = Campaign(spec).run()
        if cache is not None and key is not None:
            cache.put(key, result)
        return {
            "ok": True,
            "result": result,
            "cache_hit": False,
            "degraded": getattr(result, "degraded", None),
        }
    except Exception as exc:
        return {
            "ok": False,
            "error": {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
                "category": str(getattr(exc, "category", "error")),
            },
        }


class CampaignService:
    """An async job front-end over one shared campaign worker pool.

    ``max_workers`` bounds concurrent jobs (default: CPU count);
    ``max_workers=0`` runs jobs inline in the dispatcher thread through
    :class:`~repro.campaign.sharded.InlineExecutor` -- deterministic and
    process-free, the right mode for tests.  With ``autostart=False`` the
    dispatcher stays parked until :meth:`start`, letting callers stage a
    burst of submissions that is then scheduled strictly fairly.

    The service is a context manager; leaving the ``with`` block drains or
    cancels the queue (``close(cancel_queued=True)`` cancels).

    **Failure handling.**  Worker failures come back as structured
    :class:`JobError`\\ s with a taxonomy category; jobs failing with a
    retryable category (``crash``/``timeout``) are requeued up to
    ``max_job_retries`` times before failing for good.  With ``job_timeout``
    set, a watchdog thread marks any job running past the deadline as timed
    out -- requeueing or failing it, and flagging the pool for rebuild so a
    genuinely stuck worker cannot absorb a slot forever; a late completion
    from the superseded attempt is ignored.
    """

    def __init__(
        self,
        *,
        max_workers: Optional[int] = None,
        cache_dir: str | os.PathLike | None = None,
        checkpoint_root: str | os.PathLike | None = None,
        schema_version: int = SCHEMA_VERSION,
        autostart: bool = True,
        job_timeout: Optional[float] = None,
        max_job_retries: int = 0,
    ):
        from ..campaign.sharded import InlineExecutor

        if job_timeout is not None and job_timeout <= 0:
            raise CampaignError(f"job_timeout must be positive or None, got {job_timeout}")
        if max_job_retries < 0:
            raise CampaignError(f"max_job_retries must be >= 0, got {max_job_retries}")
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.checkpoint_root = str(checkpoint_root) if checkpoint_root is not None else None
        self.schema_version = schema_version
        self.job_timeout = job_timeout
        self.max_job_retries = max_job_retries
        self._inline = max_workers == 0
        self._slots = 1 if self._inline else (max_workers or os.cpu_count() or 1)
        self._executor: Executor = (
            InlineExecutor() if self._inline else ProcessPoolExecutor(self._slots)
        )
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}
        self._queues: dict[str, deque[str]] = {}
        self._clients: deque[str] = deque()
        self._in_flight: set[str] = set()
        self._ids = itertools.count(1)
        self._dispatch_seq = itertools.count(1)
        self._pool_broken = False
        self._rebuilds = 0
        self._retries = 0
        self._closed = False
        self._started = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="campaign-service-dispatch", daemon=True
        )
        self._dispatcher.start()
        self._watchdog: Optional[threading.Thread] = None
        if job_timeout is not None:
            self._watchdog_interval = max(0.02, min(1.0, job_timeout / 4))
            self._watchdog = threading.Thread(
                target=self._watchdog_loop, name="campaign-service-watchdog", daemon=True
            )
            self._watchdog.start()
        if autostart:
            self.start()

    # ------------------------------------------------------------------ #
    # Client API.
    # ------------------------------------------------------------------ #
    def submit(self, spec: CampaignSpec, client: str = "default") -> str:
        """Enqueue one campaign; returns the job id immediately.

        The spec must name its circuit (``CampaignSpec.circuit``), exactly
        as in :class:`~repro.campaign.suite.CampaignSuite`.
        """
        spec.validate()
        if spec.circuit is None:
            raise CampaignError(
                "service jobs need CampaignSpec.circuit set to a registered "
                "name, family:args reference or .bench path"
            )
        with self._wake:
            if self._closed:
                raise CampaignError("campaign service is closed")
            job = Job(id=f"job-{next(self._ids):04d}", client=client, spec=spec)
            self._jobs[job.id] = job
            if client not in self._queues:
                self._queues[client] = deque()
                self._clients.append(client)
            self._queues[client].append(job.id)
            self._wake.notify_all()
            return job.id

    def start(self) -> None:
        """Release the dispatcher (no-op when already started)."""
        with self._wake:
            self._started = True
            self._wake.notify_all()

    def job(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise CampaignError(f"unknown job id {job_id!r}") from None

    def status(self, job_id: str) -> JobStatus:
        return self.job(job_id).status

    def result(self, job_id: str, timeout: Optional[float] = None) -> CampaignResult:
        """Block until *job_id* finishes; the result or a raised failure.

        Raises :class:`JobFailedError` for failed/cancelled jobs and
        :class:`TimeoutError` when *timeout* elapses first.
        """
        job = self.job(job_id)
        if not job._event.wait(timeout):
            raise TimeoutError(f"job {job_id} still {job.status.value} after {timeout} s")
        if job.status is not JobStatus.DONE:
            raise JobFailedError(job_id, job.status, job.error)
        assert job.result is not None
        return job.result

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; running/finished jobs are not interrupted."""
        with self._wake:
            job = self._jobs.get(job_id)
            if job is None:
                raise CampaignError(f"unknown job id {job_id!r}")
            if job.status is not JobStatus.QUEUED:
                return False
            self._queues[job.client].remove(job_id)
            job.status = JobStatus.CANCELLED
            job._event.set()
            self._wake.notify_all()
            return True

    def wait_all(self, timeout: Optional[float] = None) -> list[Job]:
        """Block until every submitted job is terminal; returns them all."""
        with self._lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            remaining = timeout  # per-job cap; total bound = timeout * jobs
            if not job._event.wait(remaining):
                raise TimeoutError(f"job {job.id} still {job.status.value}")
        return jobs

    def report(self) -> dict[str, Any]:
        """Service snapshot: job tallies per status/error-category plus
        cache statistics and fault-tolerance counters."""
        with self._lock:
            jobs = list(self._jobs.values())
            retries, rebuilds = self._retries, self._rebuilds
        tally = Counter(job.status.value for job in jobs)
        errors = Counter(job.error.category for job in jobs if job.error is not None)
        payload: dict[str, Any] = {
            "schema": "repro/campaign-service/2",
            "jobs": len(jobs),
            "by_status": dict(sorted(tally.items())),
            "by_error_category": dict(sorted(errors.items())),
            "cache_hits": sum(1 for job in jobs if job.cache_hit),
            "retries": retries,
            "pool_rebuilds": rebuilds,
            "degraded_jobs": sum(1 for job in jobs if job.degraded),
        }
        if self.cache_dir is not None:
            payload["cache"] = ResultCache(
                self.cache_dir, schema_version=self.schema_version
            ).report()
        return payload

    def close(self, cancel_queued: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting jobs; cancel (default) or drain the queue, shut down."""
        with self._wake:
            if cancel_queued:
                for queue in self._queues.values():
                    while queue:
                        job = self._jobs[queue.popleft()]
                        job.status = JobStatus.CANCELLED
                        job._event.set()
            self._closed = True
            self._started = True
            self._wake.notify_all()
        self._dispatcher.join(timeout)
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "CampaignService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Dispatcher internals.
    # ------------------------------------------------------------------ #
    def _has_pending(self) -> bool:
        return any(self._queues.values())

    def _next_job_id(self) -> str:
        """Round-robin across clients: serve the head client, rotate it back."""
        while self._clients:
            client = self._clients[0]
            queue = self._queues[client]
            if not queue:
                self._clients.popleft()
                continue
            job_id = queue.popleft()
            self._clients.rotate(-1)
            return job_id
        raise AssertionError("called with no pending jobs")  # pragma: no cover

    def _dispatch_loop(self) -> None:
        while True:
            with self._wake:
                while not self._closed and not (
                    self._started
                    and self._has_pending()
                    and len(self._in_flight) < self._slots
                ):
                    self._wake.wait()
                if self._closed and not self._has_pending():
                    return
                if self._closed:
                    # Draining close: keep scheduling the remaining queue.
                    if len(self._in_flight) >= self._slots:
                        self._wake.wait()
                        continue
                job_id = self._next_job_id()
                job = self._jobs[job_id]
                job.status = JobStatus.RUNNING
                job.started_seq = next(self._dispatch_seq)
                job.attempts += 1
                job.started_at = time.monotonic()
                attempt = job.attempts
                self._in_flight.add(job_id)
                if self._pool_broken:
                    old = self._executor
                    self._executor = ProcessPoolExecutor(self._slots)
                    self._pool_broken = False
                    self._rebuilds += 1
                    # Reap the broken pool without blocking dispatch; any
                    # still-running (stuck) tasks are abandoned with it.
                    old.shutdown(wait=False, cancel_futures=True)
            try:
                future = self._executor.submit(
                    _execute_job,
                    job.spec,
                    self.cache_dir,
                    self.checkpoint_root,
                    self.schema_version,
                )
            except Exception as exc:
                self._finish_with_error(job_id, attempt, exc)
                continue
            future.add_done_callback(
                lambda fut, job_id=job_id, attempt=attempt: self._on_job_done(
                    job_id, attempt, fut
                )
            )

    def _requeue_or_fail(self, job: Job, error: JobError) -> None:
        """Failure disposition for one attempt; caller holds the lock.

        Retryable categories (``crash``/``timeout``) are requeued at the
        front of their client's queue while the attempt budget lasts;
        everything else -- and a closing service -- fails the job with its
        structured error.
        """
        self._in_flight.discard(job.id)
        job.started_at = None
        retryable = error.category in RETRYABLE_CATEGORIES
        if retryable and job.attempts <= self.max_job_retries and not self._closed:
            self._retries += 1
            job.status = JobStatus.QUEUED
            job.started_seq = None
            self._queues[job.client].appendleft(job.id)
            if job.client not in self._clients:
                self._clients.append(job.client)
        else:
            job.status = JobStatus.FAILED
            job.error = error
            job._event.set()
        self._wake.notify_all()

    def _finish_with_error(self, job_id: str, attempt: int, exc: BaseException) -> None:
        """An attempt died outside the worker wrapper (pool-level failure)."""
        with self._wake:
            job = self._jobs[job_id]
            if job.status is not JobStatus.RUNNING or job.attempts != attempt:
                return  # superseded attempt (watchdog already ruled)
            self._pool_broken = not self._inline
            category = str(getattr(exc, "category", "crash"))
            self._requeue_or_fail(
                job, JobError(type(exc).__name__, str(exc), category=category)
            )

    def _on_job_done(self, job_id: str, attempt: int, future: Future) -> None:
        try:
            payload = future.result()
        except BaseException as exc:
            # The worker process died without returning (BrokenProcessPool,
            # unpicklable result, ...): fail or requeue this job, rebuild
            # the pool for the next one.
            self._finish_with_error(job_id, attempt, exc)
            return
        with self._wake:
            job = self._jobs[job_id]
            if job.status is not JobStatus.RUNNING or job.attempts != attempt:
                # A watchdog-superseded attempt finishing late: its requeued
                # successor (or terminal ruling) already owns the job.
                return
            if payload["ok"]:
                self._in_flight.discard(job_id)
                job.status = JobStatus.DONE
                job.result = payload["result"]
                job.cache_hit = payload["cache_hit"]
                job.degraded = payload.get("degraded")
                job.started_at = None
                job._event.set()
            else:
                err = payload["error"]
                self._requeue_or_fail(
                    job,
                    JobError(
                        err["type"], err["message"], err["traceback"],
                        err.get("category", "error"),
                    ),
                )
            self._wake.notify_all()

    def _watchdog_loop(self) -> None:
        """Fail or requeue jobs stuck past ``job_timeout``; rebuild the pool."""
        while True:
            with self._wake:
                if self._closed and not self._in_flight:
                    return
                now = time.monotonic()
                for job_id in sorted(self._in_flight):
                    job = self._jobs[job_id]
                    if (
                        job.status is JobStatus.RUNNING
                        and job.started_at is not None
                        and now - job.started_at > self.job_timeout
                    ):
                        # Invalidate the attempt first so the stuck future's
                        # eventual completion is ignored, then abandon the
                        # pool it is wedged in.
                        self._pool_broken = not self._inline
                        self._requeue_or_fail(
                            job,
                            JobError(
                                "TimeoutError",
                                f"job ran longer than job_timeout={self.job_timeout}s",
                                category="timeout",
                            ),
                        )
            time.sleep(self._watchdog_interval)
