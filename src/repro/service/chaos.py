"""Seeded chaos-matrix harness: prove the fault-handling invariant end to end.

The campaign service stack promises that under injected infrastructure
failures every campaign either

* **completes bit-identically** to its fault-free run (compared through
  ``as_dict(include_runtime=False)`` JSON equality, with the ``degraded``
  provenance block -- which only a faulted run can carry -- set aside), or
* **fails with a structured error** carrying a taxonomy category
  (``crash`` / ``timeout`` / ``corruption`` / ``degraded``) -- never a raw
  traceback, never a silently wrong result.

This module turns that promise into an executable check.  :func:`run_matrix`
takes the standard crash/hang/corrupt x checkpoint/cache/pool plans from
:func:`~repro.service.faultinject.seeded_matrix`, runs each against a real
sharded campaign (plus a result-cache round trip and a checkpoint-resume
pass), and verifies the observed outcome against the :data:`EXPECTED` table.
Any deviation -- wrong bits, wrong category, an injection that never fired,
a raw exception escaping the campaign API -- is a violation, and the CLI
(``python -m repro.service.chaos``) exits nonzero.  CI runs exactly this as
its chaos-smoke job.

Scenario anatomy (everything runs on :class:`InlineExecutor` wrapped in a
:class:`~repro.service.faultinject.ChaosExecutor`, so the matrix is fast
and fully deterministic):

1. one fault-free single-process baseline (shared by all scenarios);
2. the chaos run: plan installed, campaign executed with checkpointing;
3. a cache round trip under the still-active plan (put, get, and -- when
   the entry was torn -- a second put/get proving recompute-and-overwrite);
4. a recovery run with chaos lifted, resuming from whatever checkpoint
   state the faulted run left behind (quarantined records included).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Optional

from ..campaign.errors import CampaignError
from ..campaign.runner import Campaign, CampaignSpec
from ..campaign.sharded import InlineExecutor, ShardedCampaign
from .cache import ResultCache
from .faultinject import ChaosExecutor, InjectionPlan, install, seeded_matrix

#: Spec knobs per scenario name; everything else uses ``DEFAULT_POLICY``.
#: ``corrupt-x-pool`` is the designated *failure* scenario: no retry budget
#: and no degradation, so the injected submit-time I/O errors must surface
#: as a structured ``ShardExecutionError`` instead of being absorbed.
DEFAULT_POLICY: dict[str, Any] = {
    "max_retries": 2,
    "shard_timeout": 0.75,
    "retry_backoff": 0.01,
    "allow_degraded": True,
}
POLICIES: dict[str, dict[str, Any]] = {
    "corrupt-x-pool": {
        "max_retries": 0,
        "shard_timeout": 0.75,
        "retry_backoff": 0.0,
        "allow_degraded": False,
    },
    # Retry budget of 1 against two injected crashes: the budget is spent
    # while the fault persists, forcing the engine-degradation rung (which
    # grants a fresh budget) -- the scenario the provenance check targets.
    "crash-x-engine": {
        "max_retries": 1,
        "shard_timeout": 0.75,
        "retry_backoff": 0.0,
        "allow_degraded": True,
    },
}

#: What each scenario of the standard matrix must produce.  ``outcome`` is
#: ``"ok"`` (completes bit-identically) or ``"error"`` (fails with the given
#: structured category); ``degraded`` marks scenarios whose success must
#: carry engine-degradation provenance.
EXPECTED: dict[str, dict[str, Any]] = {
    "crash-x-checkpoint": {"outcome": "ok"},
    "crash-x-cache": {"outcome": "ok"},
    "crash-x-pool": {"outcome": "ok"},
    "hang-x-checkpoint": {"outcome": "ok"},
    "hang-x-cache": {"outcome": "ok"},
    "hang-x-pool": {"outcome": "ok"},
    "corrupt-x-checkpoint": {"outcome": "ok"},
    "corrupt-x-cache": {"outcome": "ok"},
    "corrupt-x-pool": {"outcome": "error", "category": "crash"},
    "crash-x-engine": {"outcome": "ok", "degraded": True},
}


def canonical_result(result) -> str:
    """The bit-identity oracle: runtime-free JSON, degradation set aside.

    The ``degraded`` block is operational provenance (which shards fell
    back to which engine), not a result payload -- the invariant is that
    the *payload* matches the fault-free run exactly.
    """
    payload = result.as_dict(include_runtime=False)
    payload.pop("degraded", None)
    return json.dumps(payload, sort_keys=True)


def base_spec(
    circuit: str = "c17",
    *,
    shards: int = 2,
    pattern_count: int = 8,
    seed: int = 3,
    engine: str = "interp",
) -> CampaignSpec:
    """The campaign every scenario runs (policy knobs applied per scenario).

    ``drop_detected=False`` keeps the round-2 shard count fixed at
    ``shards`` regardless of round-1 coverage, so the matrix's call-indexed
    ``pool.submit`` injections always land on the submission they name.
    """
    return CampaignSpec(
        model="stuck-at",
        circuit=circuit,
        pattern_source="random",
        pattern_count=pattern_count,
        seed=seed,
        engine=engine,
        shards=shards,
        drop_detected=False,
    )


@dataclass
class ScenarioResult:
    """One scenario's observed behaviour plus its verification verdict."""

    name: str
    outcome: str = "ok"                 # "ok" | "error" | "unexpected"
    category: Optional[str] = None      # structured error category, if any
    bit_identical: Optional[bool] = None
    degraded: bool = False
    fired: int = 0
    fault_tolerance: Optional[dict] = None
    checkpoint: Optional[dict] = None
    cache_stats: Optional[dict] = None
    recovery: Optional[dict] = None     # the chaos-lifted resume pass
    violations: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "outcome": self.outcome,
            "category": self.category,
            "bit_identical": self.bit_identical,
            "degraded": self.degraded,
            "fired": self.fired,
            "fault_tolerance": self.fault_tolerance,
            "checkpoint": self.checkpoint,
            "cache_stats": self.cache_stats,
            "recovery": self.recovery,
            "violations": list(self.violations),
            "passed": self.passed,
        }


def _cache_round_trip(
    spec: CampaignSpec, result, baseline: str, workdir: Path, out: ScenarioResult
) -> None:
    """Store/load the result through a ResultCache under the active plan.

    A torn/corrupt entry must come back as a quarantined miss, after which
    a second store (the "recompute") must hit and match the baseline.
    """
    cache = ResultCache(workdir / "cache")
    key = cache.key_for(None, spec)
    cache.put(key, result)
    cached = cache.get(key)
    if cached is None:
        # The entry was damaged by the plan; prove recompute-and-overwrite.
        if cache.stats.quarantined == 0 and cache.stats.io_errors == 0:
            out.violations.append("cache miss without quarantine or I/O error")
        cache.put(key, result)
        cached = cache.get(key)
    if cached is None:
        out.violations.append("cache entry unreadable after rewrite")
    elif canonical_result(cached) != baseline:
        out.violations.append("cached result diverges from baseline")
    out.cache_stats = cache.stats.as_dict()


def run_scenario(
    plan: InjectionPlan,
    spec: CampaignSpec,
    baseline: str,
    workdir: Path,
) -> ScenarioResult:
    """Run one chaos scenario end to end and verify it against EXPECTED."""
    out = ScenarioResult(name=plan.name)
    expected = EXPECTED.get(plan.name, {"outcome": "ok"})
    ckpt = workdir / plan.name / "ckpt"
    result = None

    with install(plan) as injector:
        campaign = ShardedCampaign(
            spec,
            pool=ChaosExecutor(InlineExecutor(), injector),
            checkpoint_dir=ckpt,
        )
        try:
            result = campaign.run()
        except CampaignError as exc:
            out.outcome = "error"
            out.category = str(getattr(exc, "category", "error"))
        except Exception as exc:  # raw escape = broken error taxonomy
            out.outcome = "unexpected"
            out.category = type(exc).__name__
            out.violations.append(f"raw {type(exc).__name__} escaped the campaign API")
        out.fault_tolerance = campaign.fault_tolerance
        out.checkpoint = campaign.checkpoint_summary

        if result is not None:
            out.bit_identical = canonical_result(result) == baseline
            out.degraded = bool(getattr(result, "degraded", None))
            _cache_round_trip(spec, result, baseline, workdir / plan.name, out)
        out.fired = injector.summary()["fired"]

    # Verify the observed outcome against the contract.
    if out.fired == 0:
        out.violations.append("no injection fired; the scenario tested nothing")
    if out.outcome != expected["outcome"] and out.outcome != "unexpected":
        out.violations.append(
            f"expected outcome {expected['outcome']!r}, observed {out.outcome!r}"
        )
    if expected["outcome"] == "ok" and result is not None and not out.bit_identical:
        out.violations.append("completed run is not bit-identical to baseline")
    if expected.get("category") and out.category != expected["category"]:
        out.violations.append(
            f"expected error category {expected['category']!r}, got {out.category!r}"
        )
    if expected.get("degraded") and not out.degraded:
        out.violations.append("expected degraded-engine provenance on the result")

    # Recovery pass: chaos lifted, resuming from the (possibly damaged)
    # checkpoint state the faulted run left behind.  Must always complete
    # bit-identically -- this is what "no silent corruption" means for the
    # records the plan tore or scribbled over.
    try:
        recovered = ShardedCampaign(
            spec, pool=InlineExecutor(), checkpoint_dir=ckpt
        ).run()
    except Exception as exc:
        out.recovery = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        out.violations.append("recovery run failed after chaos was lifted")
    else:
        identical = canonical_result(recovered) == baseline
        out.recovery = {"ok": identical}
        if not identical:
            out.violations.append("recovery run is not bit-identical to baseline")
    return out


def run_matrix(
    seed: int = 0,
    *,
    circuit: str = "c17",
    shards: int = 2,
    pattern_count: int = 8,
    workdir: str | Path | None = None,
    only: Optional[str] = None,
) -> dict[str, Any]:
    """Run the seeded chaos matrix; returns the machine-readable report."""
    plans = seeded_matrix(seed)
    if only is not None:
        plans = [p for p in plans if p.name == only]
        if not plans:
            raise ValueError(f"no matrix scenario named {only!r}")

    spec = base_spec(circuit, shards=shards, pattern_count=pattern_count)
    baseline = canonical_result(Campaign(spec).run())

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        root = Path(workdir) if workdir is not None else Path(tmp)
        root.mkdir(parents=True, exist_ok=True)
        scenarios = []
        for plan in plans:
            policy = POLICIES.get(plan.name, DEFAULT_POLICY)
            scenarios.append(
                run_scenario(plan, replace(spec, **policy), baseline, root)
            )

    violations = sum(len(s.violations) for s in scenarios)
    return {
        "schema": "repro/chaos-report/1",
        "seed": seed,
        "circuit": circuit,
        "shards": shards,
        "pattern_count": pattern_count,
        "scenarios": [s.as_dict() for s in scenarios],
        "violations": violations,
        "passed": violations == 0,
    }


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.chaos",
        description="Run the seeded fault-injection matrix against the "
        "campaign service stack and verify the bit-identity-or-structured-"
        "error invariant.",
    )
    parser.add_argument("--seed", type=int, default=0, help="matrix seed")
    parser.add_argument("--circuit", default="c17", help="circuit reference")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--patterns", type=int, default=8,
                        help="random-pattern count of the campaign")
    parser.add_argument("--only", default=None, metavar="NAME",
                        help="run a single named scenario")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON report here")
    args = parser.parse_args(argv)

    try:
        report = run_matrix(
            args.seed,
            circuit=args.circuit,
            shards=args.shards,
            pattern_count=args.patterns,
            only=args.only,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    for scenario in report["scenarios"]:
        status = "ok" if scenario["passed"] else "FAIL"
        extra = f" [{scenario['category']}]" if scenario["category"] else ""
        extra += " [degraded]" if scenario["degraded"] else ""
        print(f"{status:4s} {scenario['name']:22s} outcome={scenario['outcome']}"
              f"{extra} fired={scenario['fired']}")
        for violation in scenario["violations"]:
            print(f"     violation: {violation}")

    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"report: {out}")

    print(f"{len(report['scenarios'])} scenarios, "
          f"{report['violations']} violations")
    return 0 if report["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
