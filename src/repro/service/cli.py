"""Run the campaign service against a directory of JSON job specs.

Each ``*.json`` file under ``--jobs`` describes one job: either a bare
:class:`~repro.campaign.runner.CampaignSpec` field mapping, or
``{"client": "...", "spec": {...}}`` to attribute it to a client for fair
scheduling.  Example job file::

    {"client": "alice",
     "spec": {"circuit": "mult:4", "model": "stuck-at",
              "pattern_source": "random", "pattern_count": 32, "seed": 7}}

Every job's result report lands in ``--out`` as ``<jobfile>.result.json``
(or ``<jobfile>.error.json`` with the structured error and traceback), plus
a consolidated ``service_report.json`` with per-job statuses and the cache
statistics.  Typical invocation::

    PYTHONPATH=src python -m repro.service.cli \\
        --jobs jobspecs/ --out results/ --workers 4 \\
        --cache-dir .campaign-cache --checkpoint-root .campaign-ckpt

Exit status: 0 when every job succeeded, 1 when any failed, 2 for a
malformed invocation or job file.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from ..campaign.errors import CampaignError
from ..campaign.runner import CampaignSpec
from ..ioutil import atomic_write_json
from .faultinject import PLAN_ENV, InjectionPlan
from .jobs import CampaignService, JobStatus


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.cli",
        description="Run campaign jobs from a spec directory over a shared worker pool.",
    )
    parser.add_argument("--jobs", required=True, metavar="DIR",
                        help="directory of *.json job spec files")
    parser.add_argument("--out", required=True, metavar="DIR",
                        help="directory for per-job results and service_report.json")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: CPU count; 0 = inline)")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="content-addressed result cache directory")
    parser.add_argument("--checkpoint-root", metavar="DIR",
                        help="per-job shard checkpoint root (resumable jobs)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-job wait timeout in seconds")
    parser.add_argument("--job-timeout", type=float, default=None,
                        help="watchdog deadline per job attempt; overdue jobs "
                        "are requeued (within --max-job-retries) or failed "
                        "with a structured timeout error")
    parser.add_argument("--max-job-retries", type=int, default=0,
                        help="extra attempts for jobs that crash or time out")
    parser.add_argument("--fault-plan", metavar="PATH",
                        help="fault-injection plan JSON (testing only): "
                        f"exported as {PLAN_ENV} so worker processes "
                        "inject the same plan")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-job progress lines")
    return parser


def load_job_file(path: Path) -> tuple[str, CampaignSpec]:
    """Parse one job file into (client, spec); malformed files raise."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise CampaignError(f"unreadable job file {path}: {exc}") from None
    if not isinstance(payload, dict):
        raise CampaignError(f"job file {path} must hold a JSON object")
    client = "default"
    spec_fields = payload
    if "spec" in payload:
        client = str(payload.get("client", "default"))
        spec_fields = payload["spec"]
        if not isinstance(spec_fields, dict):
            raise CampaignError(f"job file {path}: 'spec' must be an object")
    try:
        return client, CampaignSpec(**spec_fields)
    except TypeError as exc:
        raise CampaignError(f"job file {path}: {exc}") from None


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    jobs_dir = Path(args.jobs)
    job_files = sorted(jobs_dir.glob("*.json"))
    if not job_files:
        print(f"error: no *.json job files under {jobs_dir}", file=sys.stderr)
        return 2

    try:
        parsed = [(path, *load_job_file(path)) for path in job_files]
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.fault_plan:
        # Validate up front (a typo'd plan silently injecting nothing is
        # worse than an error), then hand the path to worker processes.
        try:
            InjectionPlan.load(args.fault_plan)
        except (OSError, ValueError) as exc:
            print(f"error: --fault-plan {args.fault_plan}: {exc}", file=sys.stderr)
            return 2
        os.environ[PLAN_ENV] = str(Path(args.fault_plan).resolve())

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    failures = 0
    with CampaignService(
        max_workers=args.workers,
        cache_dir=args.cache_dir,
        checkpoint_root=args.checkpoint_root,
        job_timeout=args.job_timeout,
        max_job_retries=args.max_job_retries,
        autostart=False,
    ) as service:
        submitted = []
        for path, client, spec in parsed:
            try:
                submitted.append((path, service.submit(spec, client=client)))
            except CampaignError as exc:
                print(f"error: {path.name}: {exc}", file=sys.stderr)
                return 2
        service.start()

        job_rows = []
        for path, job_id in submitted:
            job = service.job(job_id)
            job._event.wait(args.timeout)
            row = job.info()
            row["job_file"] = path.name
            if job.status is JobStatus.DONE:
                report_path = out_dir / f"{path.stem}.result.json"
                atomic_write_json(
                    report_path, job.result.as_dict(), indent=2
                )
                row["report"] = report_path.name
                if not args.quiet:
                    hit = " [cache hit]" if job.cache_hit else ""
                    print(f"{path.name}: done{hit} -> {report_path.name}")
            else:
                failures += 1
                error_path = out_dir / f"{path.stem}.error.json"
                atomic_write_json(
                    error_path,
                    {"status": job.status.value,
                     "error": job.error.as_dict() if job.error else None},
                )
                row["report"] = error_path.name
                if not args.quiet:
                    category = job.error.category if job.error else "error"
                    print(f"{path.name}: {job.status.value} [{category}] "
                          f"({job.error or 'no error detail'})")
            job_rows.append(row)

        report = service.report()
        report["job_rows"] = job_rows
    atomic_write_json(out_dir / "service_report.json", report, indent=2)
    if not args.quiet:
        by_status = report["by_status"]
        cache_line = ""
        if "cache" in report:
            cache_line = (f", cache {report['cache_hits']} hits over "
                          f"{report['cache']['entries']} entries "
                          f"({report['cache']['bytes']} bytes)")
        print(f"service: {report['jobs']} jobs {by_status}{cache_line}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
