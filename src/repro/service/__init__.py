"""Campaign-as-a-service: checkpoints, result cache, async job front-end.

This package turns the one-shot campaign pipeline into a serving stack:

* :class:`CheckpointStore` -- crash-safe per-shard checkpoints for
  :class:`~repro.campaign.sharded.ShardedCampaign` (pass
  ``checkpoint_dir=``): a killed campaign resumes from its completed
  shards, bit-identical to an uninterrupted run.
* :class:`ResultCache` -- a content-addressed cache of
  :class:`~repro.campaign.runner.CampaignResult`\\ s keyed by
  :func:`campaign_fingerprint` (circuit structural hash, spec hash, seed,
  engine/word width, code :data:`SCHEMA_VERSION`), so repeated identical
  requests -- including repeated :class:`~repro.campaign.suite.
  CampaignSuite` entries via ``cache_dir=`` -- are served from disk.
* :class:`CampaignService` -- submit / status / result / cancel over a
  shared worker pool, FIFO-fair across clients and crash-isolated per job;
  ``python -m repro.service.cli`` runs it against a directory of JSON job
  specs.
"""

# faultinject first: it has no repro dependencies, and the campaign layer's
# modules (imported transitively by everything below) hook into it at import
# time -- loading it before them keeps the import graph acyclic.
from .faultinject import (
    ChaosExecutor,
    FaultInjector,
    InjectedFault,
    Injection,
    InjectionPlan,
    inject,
    install,
    seeded_matrix,
)

from .cache import CACHE_SCHEMA, CacheStats, ResultCache
from .checkpoint import CHECKPOINT_SCHEMA, CheckpointStore
from .fingerprint import (
    SCHEMA_VERSION,
    campaign_fingerprint,
    circuit_canonical_form,
    circuit_fingerprint,
    spec_canonical_form,
    spec_fingerprint,
)
from .jobs import (
    CampaignService,
    Job,
    JobError,
    JobFailedError,
    JobStatus,
)

__all__ = [
    "ChaosExecutor",
    "FaultInjector",
    "InjectedFault",
    "Injection",
    "InjectionPlan",
    "inject",
    "install",
    "seeded_matrix",
    "SCHEMA_VERSION",
    "CACHE_SCHEMA",
    "CHECKPOINT_SCHEMA",
    "circuit_canonical_form",
    "circuit_fingerprint",
    "spec_canonical_form",
    "spec_fingerprint",
    "campaign_fingerprint",
    "CheckpointStore",
    "ResultCache",
    "CacheStats",
    "CampaignService",
    "Job",
    "JobError",
    "JobFailedError",
    "JobStatus",
]
