"""Content-addressed campaign result cache.

Campaign results are pure functions of (circuit structure + name, spec,
code schema version) -- see :mod:`repro.service.fingerprint` -- so a
repeated request can be answered from disk without touching an engine.
:class:`ResultCache` stores each :class:`~repro.campaign.runner.
CampaignResult` pickled under its campaign fingerprint, with a JSON
sidecar carrying the human-readable metadata the cache report lists.

Writes are atomic (:mod:`repro.ioutil`) and reads validate the embedded
key and schema version, so a cache directory can be shared by many worker
processes (the suite and service layers do exactly that): the worst
concurrent-access outcome is a redundant recompute, never a corrupt or
wrong result.  Hit/miss/store counters are per-instance; cross-process
layers aggregate their workers' reported flags instead.
"""

from __future__ import annotations

import json
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from ..campaign.runner import CampaignResult, CampaignSpec, resolve_campaign_circuit
from ..ioutil import atomic_write_bytes, atomic_write_json
from ..logic.netlist import LogicCircuit
from .faultinject import inject
from .fingerprint import SCHEMA_VERSION, campaign_fingerprint

#: Cache entry file-format version.
CACHE_SCHEMA = "repro/campaign-cache/1"

#: Subdirectory damaged entries are moved into (kept for forensics, excluded
#: from ``entries()``/``clear()`` accounting).
QUARANTINE_DIR = "quarantine"


@dataclass
class CacheStats:
    """Per-instance counters of one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0
    #: Damaged entries (truncated/corrupt pickle, mismatched or corrupt
    #: sidecar) moved aside on read; each also counts as a miss.
    quarantined: int = 0
    #: Transient I/O failures tolerated (read -> miss, write -> dropped).
    io_errors: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidations": self.invalidations,
            "quarantined": self.quarantined,
            "io_errors": self.io_errors,
            "hit_rate": self.hit_rate,
        }


@dataclass
class ResultCache:
    """Pickled campaign results keyed by campaign fingerprint.

    ``schema_version`` defaults to the code's
    :data:`~repro.service.fingerprint.SCHEMA_VERSION`; entries written
    under any other version never hit (the version is part of the key *and*
    revalidated on read), which is the explicit invalidation story for code
    changes -- bump the constant and every stale entry goes cold at once.
    """

    directory: str | os.PathLike
    schema_version: int = SCHEMA_VERSION
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)

    # ------------------------------------------------------------------ #
    # Keys and paths.
    # ------------------------------------------------------------------ #
    def key_for(self, circuit: LogicCircuit | str | None, spec: CampaignSpec) -> str:
        """The cache key of (*circuit*, *spec*) under this schema version.

        *circuit* accepts everything :meth:`Campaign.run` does (a live
        netlist, a reference string, or None to use ``spec.circuit``).
        """
        resolved = resolve_campaign_circuit(circuit, spec)
        return campaign_fingerprint(resolved, spec, schema_version=self.schema_version)

    def _entry_path(self, key: str) -> Path:
        return Path(self.directory) / f"{key}.pkl"

    def _meta_path(self, key: str) -> Path:
        return Path(self.directory) / f"{key}.json"

    # ------------------------------------------------------------------ #
    # Read / write.
    # ------------------------------------------------------------------ #
    def _quarantine(self, key: str) -> None:
        """Move a damaged entry (pickle + sidecar) into ``quarantine/``."""
        qdir = Path(self.directory) / QUARANTINE_DIR
        moved = False
        for path in (self._entry_path(key), self._meta_path(key)):
            if not path.exists():
                continue
            try:
                qdir.mkdir(parents=True, exist_ok=True)
                target = qdir / path.name
                suffix = 0
                while target.exists():
                    suffix += 1
                    target = qdir / f"{path.name}.{suffix}"
                os.replace(path, target)
                moved = True
            except OSError:
                self.stats.io_errors += 1
        if moved:
            self.stats.quarantined += 1

    def get(self, key: str) -> Optional[CampaignResult]:
        """The cached result for *key*, or None (counted as hit/miss).

        Never raises for a bad entry: a transient read failure is a miss, a
        truncated/corrupt pickle, foreign payload or mismatched sidecar is
        quarantined (moved aside for forensics) and reported as a miss --
        the campaign recomputes and overwrites.  Entries from a different
        ``schema_version`` are a plain miss and stay on disk (they are
        valid for the code version that wrote them, not damaged).
        """
        path = self._entry_path(key)
        try:
            inject("cache.read", path=path)
            data = path.read_bytes()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            self.stats.io_errors += 1
            self.stats.misses += 1
            return None
        try:
            payload = pickle.loads(data)
            if not isinstance(payload, dict):
                raise ValueError("cache payload is not a dict")
        except Exception:
            self._quarantine(key)
            self.stats.misses += 1
            return None
        if (
            payload.get("schema") != CACHE_SCHEMA
            or payload.get("schema_version") != self.schema_version
        ):
            self.stats.misses += 1
            return None
        result = payload.get("result")
        if payload.get("key") != key or not isinstance(result, CampaignResult):
            self._quarantine(key)
            self.stats.misses += 1
            return None
        try:
            meta = json.loads(self._meta_path(key).read_text(encoding="utf-8"))
            if not isinstance(meta, dict) or meta.get("key") != key:
                raise ValueError("sidecar key mismatch")
        except FileNotFoundError:
            pass  # sidecar is report metadata only; the entry is intact
        except ValueError:  # includes json.JSONDecodeError
            self._quarantine(key)
            self.stats.misses += 1
            return None
        except OSError:
            self.stats.io_errors += 1
        self.stats.hits += 1
        return result

    def fetch(
        self, circuit: LogicCircuit | str | None, spec: CampaignSpec
    ) -> tuple[str, Optional[CampaignResult]]:
        """Key plus cached result (or None) for one campaign request."""
        key = self.key_for(circuit, spec)
        return key, self.get(key)

    def put(self, key: str, result: CampaignResult) -> Path:
        """Store *result* under *key* (best effort); returns the entry path.

        A transient write failure drops the store -- counted in
        ``stats.io_errors`` -- rather than failing the campaign that
        produced the (already complete) result.
        """
        path = self._entry_path(key)
        try:
            self._write_entry(key, result, path)
        except OSError:
            self.stats.io_errors += 1
            return path
        self.stats.stores += 1
        return path

    def _write_entry(self, key: str, result: CampaignResult, path: Path) -> None:
        atomic_write_bytes(
            path,
            pickle.dumps(
                {
                    "schema": CACHE_SCHEMA,
                    "schema_version": self.schema_version,
                    "key": key,
                    "result": result,
                }
            ),
        )
        atomic_write_json(
            self._meta_path(key),
            {
                "schema": CACHE_SCHEMA,
                "schema_version": self.schema_version,
                "key": key,
                "model": result.model_name,
                "circuit": result.circuit_name,
                "spec_circuit": result.spec.circuit,
                "engine": result.spec.engine,
                "seed": result.spec.seed,
                "faults": len(result.faults),
                "num_tests": result.merged_report.num_tests,
                "bytes": path.stat().st_size,
            },
        )
        inject("cache.write", path=path)

    # ------------------------------------------------------------------ #
    # Invalidation and reporting.
    # ------------------------------------------------------------------ #
    def invalidate(self, key: str) -> bool:
        """Drop one entry; True when it existed."""
        existed = self._entry_path(key).exists()
        self._entry_path(key).unlink(missing_ok=True)
        self._meta_path(key).unlink(missing_ok=True)
        if existed:
            self.stats.invalidations += 1
        return existed

    def clear(self) -> int:
        """Drop every entry; returns how many results were removed."""
        removed = 0
        directory = Path(self.directory)
        if not directory.is_dir():
            return 0
        for path in directory.glob("*.pkl"):
            path.unlink(missing_ok=True)
            path.with_suffix(".json").unlink(missing_ok=True)
            removed += 1
        self.stats.invalidations += removed
        return removed

    def entries(self) -> list[dict[str, Any]]:
        """Metadata of every stored entry (from the JSON sidecars)."""
        directory = Path(self.directory)
        if not directory.is_dir():
            return []
        found = []
        for path in sorted(directory.glob("*.pkl")):
            meta_path = path.with_suffix(".json")
            try:
                found.append(json.loads(meta_path.read_text(encoding="utf-8")))
            except (OSError, json.JSONDecodeError):
                found.append({"key": path.stem, "bytes": path.stat().st_size})
        return found

    def report(self) -> dict[str, Any]:
        """Cache-stats report: counters plus the stored-entry inventory."""
        entries = self.entries()
        return {
            "schema": CACHE_SCHEMA,
            "schema_version": self.schema_version,
            "directory": str(self.directory),
            "entries": len(entries),
            "bytes": sum(e.get("bytes", 0) for e in entries),
            "stats": self.stats.as_dict(),
            "inventory": entries,
        }
