"""Per-campaign shard checkpoints: crash-safe persistence of shard reports.

:class:`CheckpointStore` gives :class:`~repro.campaign.sharded.
ShardedCampaign` a per-campaign directory where every completed shard task
is persisted the moment its result arrives in the parent -- round-1
(pattern simulation + ATPG generation) and round-2 (merged-test
re-simulation) records alike.  All writes are atomic
(:mod:`repro.ioutil`), so a campaign killed mid-run -- SIGKILL included --
leaves only complete shard files, and a resumed run loads them instead of
recomputing, recomputes only the missing shards, and merges in universe
order.  The deterministic-merge property of the sharded pipeline makes the
resumed :class:`~repro.campaign.runner.CampaignResult` bit-identical to an
uninterrupted run.

A checkpoint directory belongs to exactly one campaign: the manifest
records the :func:`~repro.service.fingerprint.campaign_fingerprint` (which
covers circuit structure and name, every spec field, and the code
:data:`~repro.service.fingerprint.SCHEMA_VERSION`) plus the effective shard
count.  Resuming against a mismatched manifest raises
:class:`~repro.campaign.errors.CampaignError` instead of silently mixing
incompatible shard files; per-shard records additionally carry a digest of
their fault keys as a defence in depth.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Optional, Sequence

from ..atpg.fault_sim import DetectionReport
from ..campaign.errors import CampaignError, CorruptArtifactError
from ..campaign.model import SINGLE_PATTERN, AtpgOutcome
from ..faults.base import Fault
from ..ioutil import atomic_write_json, atomic_write_text
from .faultinject import inject
from .fingerprint import SCHEMA_VERSION

#: Checkpoint file-format version (independent of the campaign
#: SCHEMA_VERSION, which governs *result* compatibility).  Version 3 adds
#: the per-record checksum/length trailer; v2 records fail trailer
#: validation and are quarantined + recomputed on first resume.
CHECKPOINT_SCHEMA = "repro/campaign-checkpoint/3"

MANIFEST_NAME = "manifest.json"

#: Subdirectory damaged artifacts are moved into (never deleted: they are
#: the forensic record of what the store refused to trust).
QUARANTINE_DIR = "quarantine"

_TRAILER_PREFIX = "sha256:"


def _fault_keys_digest(faults: Sequence[Fault]) -> str:
    joined = "\n".join(f.key for f in faults)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()


def _encode_record(payload: dict[str, Any]) -> str:
    """One shard record: a single JSON line plus a checksum/length trailer.

    Atomic writes already rule out torn records under POSIX rename
    semantics; the trailer is the defence for everything rename cannot
    promise -- non-POSIX filesystems, partial network-volume flushes,
    post-crash block corruption -- and for the fault-injection suite, which
    tears and scribbles records on purpose.
    """
    body = json.dumps(payload, indent=None)
    digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
    return f"{body}\n{_TRAILER_PREFIX}{digest}:{len(body.encode('utf-8'))}\n"


def _parse_record(text: str) -> dict[str, Any]:
    """Validate and decode one record; raises ``ValueError`` when damaged."""
    lines = text.split("\n")
    if len(lines) != 3 or lines[2] != "":
        raise ValueError("torn record: expected body + trailer lines")
    body, trailer = lines[0], lines[1]
    if not trailer.startswith(_TRAILER_PREFIX):
        raise ValueError("missing checksum trailer")
    digest, length = trailer[len(_TRAILER_PREFIX):].split(":")
    if int(length) != len(body.encode("utf-8")):
        raise ValueError("record length mismatch")
    if hashlib.sha256(body.encode("utf-8")).hexdigest() != digest:
        raise ValueError("record checksum mismatch")
    payload = json.loads(body)
    if not isinstance(payload, dict):
        raise ValueError("record body is not an object")
    return payload


def _encode_report(report: Optional[DetectionReport]) -> Optional[dict[str, Any]]:
    if report is None:
        return None
    return {
        "detections": {key: list(indices) for key, indices in report.detections.items()},
        "num_tests": report.num_tests,
    }


def _decode_report(payload: Optional[dict[str, Any]]) -> Optional[DetectionReport]:
    if payload is None:
        return None
    return DetectionReport(
        detections={key: list(indices) for key, indices in payload["detections"].items()},
        num_tests=payload["num_tests"],
    )


def _decode_test(payload: list, pattern_kind: str) -> tuple:
    """Restore one test to the model's native tuple shape.

    JSON flattens tuples to lists; single-pattern tests come back as an int
    tuple, two-pattern tests as a ``(first, second)`` pair of int tuples --
    exactly what the simulators and report comparisons expect.
    """
    if pattern_kind == SINGLE_PATTERN:
        return tuple(int(bit) for bit in payload)
    first, second = payload
    return (tuple(int(b) for b in first), tuple(int(b) for b in second))


class CheckpointStore:
    """Atomic per-shard checkpoint files under one campaign directory.

    Layout::

        <directory>/manifest.json     campaign fingerprint + shard count
        <directory>/round1-0003.json  pattern report + ATPG outcomes, shard 3
        <directory>/round2-0003.json  re-simulation report, shard 3

    ``loaded``/``stored`` counters (per round) let callers report how much
    of a resumed campaign came from disk.
    """

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)
        self.loaded = {1: 0, 2: 0}
        self.stored = {1: 0, 2: 0}
        #: Damaged records moved aside (and recomputed) this run.
        self.quarantined = 0
        #: Transient read failures tolerated (record treated as missing).
        self.read_errors = 0
        #: Failed checkpoint writes tolerated (the campaign continues; the
        #: shard is simply not resumable).
        self.write_errors = 0

    # ------------------------------------------------------------------ #
    # Manifest / lifecycle.
    # ------------------------------------------------------------------ #
    def _manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    def _quarantine(self, path: Path) -> None:
        """Move a damaged artifact into ``quarantine/`` (never delete it)."""
        try:
            qdir = self.directory / QUARANTINE_DIR
            qdir.mkdir(parents=True, exist_ok=True)
            target = qdir / path.name
            suffix = 0
            while target.exists():
                suffix += 1
                target = qdir / f"{path.name}.{suffix}"
            os.replace(path, target)
            self.quarantined += 1
        except OSError:
            # Cannot even move it aside; count it and leave the loader to
            # keep treating the record as missing.
            self.read_errors += 1

    def read_manifest(self) -> Optional[dict[str, Any]]:
        try:
            return json.loads(self._manifest_path().read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except ValueError:
            # A corrupt manifest (bad JSON or scribbled bytes) cannot vouch
            # for any shard record: move it aside and start the campaign
            # fresh rather than fail the resume.
            self._quarantine(self._manifest_path())
            return None
        except OSError as exc:
            raise CampaignError(
                f"unreadable checkpoint manifest {self._manifest_path()}: {exc}"
            ) from None

    def prepare(self, fingerprint: str, shards: int, resume: bool = True) -> None:
        """Bind the directory to one campaign; validate or reset prior state.

        With *resume* a matching manifest keeps every shard file for reuse;
        a mismatched fingerprint or shard count raises
        :class:`CampaignError` (the old checkpoints describe a different
        campaign and must be cleared explicitly).  Without *resume* any
        existing checkpoint state is discarded first.
        """
        if self.directory.exists() and not self.directory.is_dir():
            raise CorruptArtifactError(
                f"checkpoint path {self.directory} is a file, not a directory"
            )
        manifest = self.read_manifest()
        if manifest is not None and not resume:
            self.clear()
            manifest = None
        if manifest is not None:
            if manifest.get("schema") != CHECKPOINT_SCHEMA:
                raise CampaignError(
                    f"checkpoint directory {self.directory} uses schema "
                    f"{manifest.get('schema')!r}, expected {CHECKPOINT_SCHEMA!r}; "
                    f"clear it (or pass resume=False) to start fresh"
                )
            stale = []
            if manifest.get("fingerprint") != fingerprint:
                stale.append("campaign fingerprint")
            if manifest.get("shards") != shards:
                stale.append(f"shard count ({manifest.get('shards')} vs {shards})")
            if stale:
                raise CampaignError(
                    f"checkpoint directory {self.directory} belongs to a different "
                    f"campaign ({', '.join(stale)} changed); clear it (or pass "
                    f"resume=False) to start fresh"
                )
            return
        # No (trustworthy) manifest: any stray shard records cannot be
        # vouched for -- drop them before binding the directory afresh.
        self.clear()
        atomic_write_json(
            self._manifest_path(),
            {
                "schema": CHECKPOINT_SCHEMA,
                "schema_version": SCHEMA_VERSION,
                "fingerprint": fingerprint,
                "shards": shards,
            },
        )

    def clear(self) -> None:
        """Delete the manifest and every shard checkpoint file."""
        if not self.directory.is_dir():
            return
        for path in self.directory.iterdir():
            if path.name == MANIFEST_NAME or (
                path.suffix == ".json" and path.name.startswith(("round1-", "round2-"))
            ):
                path.unlink(missing_ok=True)

    def shard_files(self, round_no: int) -> list[Path]:
        return sorted(self.directory.glob(f"round{round_no}-*.json"))

    def summary(self) -> dict[str, int]:
        """Per-round load/store counts plus fault-tolerance counters."""
        return {
            "round1_loaded": self.loaded[1],
            "round1_stored": self.stored[1],
            "round2_loaded": self.loaded[2],
            "round2_stored": self.stored[2],
            "quarantined": self.quarantined,
            "read_errors": self.read_errors,
            "write_errors": self.write_errors,
        }

    # ------------------------------------------------------------------ #
    # Round 1: pattern report + ATPG outcomes.
    # ------------------------------------------------------------------ #
    def _shard_path(self, round_no: int, index: int) -> Path:
        return self.directory / f"round{round_no}-{index:04d}.json"

    def _load_payload(
        self, round_no: int, index: int, shard: Sequence[Fault]
    ) -> Optional[dict[str, Any]]:
        path = self._shard_path(round_no, index)
        try:
            inject("checkpoint.read", shard=index, path=path)
            data = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            # Transient read failure: treat the record as missing (the
            # shard recomputes) rather than fail the resume.
            self.read_errors += 1
            return None
        try:
            payload = _parse_record(data.decode("utf-8"))
        except ValueError:  # includes UnicodeDecodeError from scribbled bytes
            # Torn or corrupt record: only this record is discarded --
            # moved to quarantine, recomputed -- never the whole resume.
            self._quarantine(path)
            return None
        if payload.get("schema") != CHECKPOINT_SCHEMA:
            return None
        if payload.get("faults_digest") != _fault_keys_digest(shard):
            # Stale (foreign-campaign) record: recompute without quarantine
            # -- the file is intact, it just describes different faults.
            return None
        return payload

    def _store_payload(self, round_no: int, index: int, payload: dict[str, Any]) -> bool:
        """Best-effort persist: a failed write never fails the campaign."""
        path = self._shard_path(round_no, index)
        try:
            atomic_write_text(path, _encode_record(payload))
            inject("checkpoint.write", shard=index, path=path)
        except OSError:
            self.write_errors += 1
            return False
        self.stored[round_no] += 1
        return True

    def store_round1(
        self,
        index: int,
        shard: Sequence[Fault],
        record: tuple,
    ) -> None:
        """Persist one shard's ``_shard_pattern_and_generate`` result."""
        report, outcomes, skipped, proven, sim_seconds, gen_seconds = record
        self._store_payload(
            1,
            index,
            {
                "schema": CHECKPOINT_SCHEMA,
                "shard": index,
                "faults_digest": _fault_keys_digest(shard),
                "report": _encode_report(report),
                "outcomes": [
                    {
                        "fault": o.fault.key,
                        "success": o.success,
                        "tests": [list(map(list, t)) if isinstance(t[0], tuple) else list(t)
                                  for t in o.tests],
                        "backtracks": o.backtracks,
                        "aborted": o.aborted,
                        "decisions": o.decisions,
                        "implications": o.implications,
                    }
                    for o in outcomes
                ],
                "skipped": list(skipped),
                "proven": list(proven),
                "sim_seconds": sim_seconds,
                "gen_seconds": gen_seconds,
            },
        )

    def load_round1(
        self,
        index: int,
        shard: Sequence[Fault],
        pattern_kind: str,
        num_tests: Optional[int],
    ) -> Optional[tuple]:
        """Load one shard's round-1 record, or None when absent/invalid.

        *num_tests* is the current pattern-phase test count (None when the
        spec has no pattern phase); a stored report simulated against a
        different test list is rejected.
        """
        payload = self._load_payload(1, index, shard)
        if payload is None:
            return None
        report = _decode_report(payload["report"])
        if (report is None) != (num_tests is None):
            return None
        if report is not None and report.num_tests != num_tests:
            return None
        by_key = {fault.key: fault for fault in shard}
        try:
            outcomes = [
                AtpgOutcome(
                    fault=by_key[o["fault"]],
                    success=o["success"],
                    tests=tuple(_decode_test(t, pattern_kind) for t in o["tests"]),
                    backtracks=o["backtracks"],
                    aborted=o["aborted"],
                    decisions=o["decisions"],
                    implications=o["implications"],
                )
                for o in payload["outcomes"]
            ]
        except KeyError:
            return None
        self.loaded[1] += 1
        return (
            report,
            outcomes,
            list(payload["skipped"]),
            list(payload["proven"]),
            payload["sim_seconds"],
            payload["gen_seconds"],
        )

    # ------------------------------------------------------------------ #
    # Round 2: merged-ATPG-test re-simulation.
    # ------------------------------------------------------------------ #
    def store_round2(self, index: int, shard: Sequence[Fault], record: tuple) -> None:
        """Persist one shard's ``_shard_resimulate`` result."""
        report, seconds = record
        self._store_payload(
            2,
            index,
            {
                "schema": CHECKPOINT_SCHEMA,
                "shard": index,
                "faults_digest": _fault_keys_digest(shard),
                "report": _encode_report(report),
                "seconds": seconds,
            },
        )

    def load_round2(
        self, index: int, shard: Sequence[Fault], num_tests: int
    ) -> Optional[tuple]:
        """Load one shard's round-2 record, or None when absent/invalid."""
        payload = self._load_payload(2, index, shard)
        if payload is None:
            return None
        report = _decode_report(payload["report"])
        if report is None or report.num_tests != num_tests:
            return None
        self.loaded[2] += 1
        return report, payload["seconds"]
