"""Deterministic, seeded fault injection for the campaign service stack.

The serving layer (sharded executor, checkpoint store, result cache, async
job service) promises that any campaign which completes under infrastructure
failures is **bit-identical** to its fault-free run, and that any campaign
which cannot complete fails with a structured, attributable error -- never a
silent wrong result.  This module provides the machinery to *prove* that:

* :class:`Injection` -- one fault to inject: a *site* (a named hook point in
  the production code, e.g. ``"worker.round1"`` or ``"cache.write"``), a
  *kind* (``crash`` / ``hang`` / ``torn`` / ``corrupt`` / ``io_error`` /
  ``broken_pool`` / ``exit``) and selectors (shard index, call number, tag)
  that pin the fault to one deterministic point in the run.
* :class:`InjectionPlan` -- a seeded, JSON-serializable composition of
  injections; :func:`seeded_matrix` builds the standard
  crash/hang/corrupt x checkpoint/cache/pool chaos matrix from a seed.
* :class:`FaultInjector` -- executes a plan.  Production code calls
  :func:`inject` at its hook sites; with no injector installed the call is
  a cheap no-op, so the hooks cost nothing in production paths.
* :class:`ChaosExecutor` -- an :class:`~concurrent.futures.Executor`
  wrapper that injects pool-level faults (broken pool at submit, tasks that
  hang past their deadline) without touching worker code.

Injectors are installed either in-process (:func:`install`, a context
manager -- the right tool for tests) or across process boundaries via the
``REPRO_FAULT_PLAN`` environment variable naming a plan JSON file, which
worker processes pick up lazily on their first :func:`inject` call.

Everything is deterministic: file corruption offsets/lengths come from the
plan's seeded RNG, triggers count calls per (site, selector), and the
injector records every fired fault so tests can assert exactly what chaos
actually happened.

This module deliberately imports nothing from the rest of the package so
the campaign layer can hook into it without import cycles.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from concurrent.futures import BrokenExecutor, Executor, Future
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Optional

#: Injection kinds understood by :meth:`FaultInjector.fire`.
KINDS = ("crash", "hang", "torn", "corrupt", "io_error", "broken_pool", "exit")

#: Hook sites threaded through the production code.  Sites are plain
#: strings so new subsystems can add hooks without touching this module;
#: this tuple documents the ones that exist today.
SITES = (
    "worker.round1",      # sharded round-1 worker (pattern sim + ATPG), per shard
    "worker.round2",      # sharded round-2 worker (merged re-simulation), per shard
    "checkpoint.write",   # after one shard checkpoint record is written
    "checkpoint.read",    # before one shard checkpoint record is read
    "cache.write",        # after one result-cache entry is written
    "cache.read",         # before one result-cache entry is read
    "pool.submit",        # executor submission (ChaosExecutor)
    "job.run",            # service job body, worker side
)


class InjectedFault(RuntimeError):
    """An exception raised on purpose by the fault-injection layer.

    Carries the site and kind so recovery code and tests can attribute the
    failure; categorized as a ``crash`` by the service error taxonomy.
    """

    category = "crash"

    def __init__(self, site: str, kind: str, detail: str = ""):
        suffix = f": {detail}" if detail else ""
        super().__init__(f"injected {kind} at {site}{suffix}")
        self.site = site
        self.kind = kind


@dataclass(frozen=True)
class Injection:
    """One fault to inject at *site* when every given selector matches.

    ``shard`` pins the fault to one shard index (sites that pass one),
    ``call`` to the nth matching call at the site (0-based, counted per
    process), and ``tag`` to a caller-supplied context string (e.g. the
    spec's circuit reference for job-level faults -- stable across worker
    process rebuilds, unlike call counters).  ``times`` bounds how often
    the injection fires (per process); ``seconds`` is the hang duration.
    """

    site: str
    kind: str
    shard: Optional[int] = None
    call: Optional[int] = None
    tag: Optional[str] = None
    times: int = 1
    seconds: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown injection kind {self.kind!r}; expected one of {KINDS}")
        if self.times < 1:
            raise ValueError(f"injection times must be >= 1, got {self.times}")
        if self.seconds < 0:
            raise ValueError(f"injection seconds must be >= 0, got {self.seconds}")

    def matches(self, site: str, shard: Optional[int], call: int, tag: Optional[str]) -> bool:
        if site != self.site:
            return False
        if self.shard is not None and shard != self.shard:
            return False
        if self.call is not None and call != self.call:
            return False
        if self.tag is not None and tag != self.tag:
            return False
        return True

    def as_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"site": self.site, "kind": self.kind}
        for key in ("shard", "call", "tag"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        if self.times != 1:
            payload["times"] = self.times
        if self.kind == "hang":
            payload["seconds"] = self.seconds
        return payload


@dataclass(frozen=True)
class InjectionPlan:
    """A seeded, serializable set of injections (one chaos scenario)."""

    injections: tuple[Injection, ...] = ()
    seed: int = 0
    name: str = ""

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": "repro/fault-plan/1",
            "name": self.name,
            "seed": self.seed,
            "injections": [inj.as_dict() for inj in self.injections],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "InjectionPlan":
        if not isinstance(payload, dict) or not isinstance(payload.get("injections"), list):
            raise ValueError("fault plan must be an object with an 'injections' list")
        injections = tuple(
            Injection(**{k: v for k, v in entry.items()})
            for entry in payload["injections"]
        )
        return cls(
            injections=injections,
            seed=int(payload.get("seed", 0)),
            name=str(payload.get("name", "")),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "InjectionPlan":
        try:
            return cls.from_dict(json.loads(text))
        except (json.JSONDecodeError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed fault plan: {exc}") from None

    @classmethod
    def load(cls, path: str | os.PathLike) -> "InjectionPlan":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def dump(self, path: str | os.PathLike) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path


@dataclass(frozen=True)
class FiredFault:
    """One injection that actually fired (recorded for test assertions)."""

    site: str
    kind: str
    shard: Optional[int]
    call: int
    path: Optional[str] = None


class FaultInjector:
    """Executes an :class:`InjectionPlan` at the production hook sites.

    Thread-safe: the dispatcher, watchdog and worker threads of one process
    may all hit the same injector.  Call counters and per-injection fire
    counts are per-instance (hence per-process when the plan travels via
    ``REPRO_FAULT_PLAN``), and the corruption RNG is seeded from the plan,
    so a given plan always corrupts the same bytes.
    """

    def __init__(self, plan: InjectionPlan):
        self.plan = plan
        self.fired: list[FiredFault] = []
        self._calls: dict[str, int] = {}
        self._fire_counts: dict[int, int] = {}
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Matching.
    # ------------------------------------------------------------------ #
    def check(
        self,
        site: str,
        *,
        shard: Optional[int] = None,
        tag: Optional[str] = None,
        path: str | os.PathLike | None = None,
    ) -> list[Injection]:
        """Consume and record the injections matching this call (no action).

        :class:`ChaosExecutor` uses this to implement pool-level faults
        itself; :meth:`fire` layers the default actions on top.
        """
        with self._lock:
            call = self._calls.get(site, 0)
            self._calls[site] = call + 1
            matched = []
            for slot, injection in enumerate(self.plan.injections):
                if self._fire_counts.get(slot, 0) >= injection.times:
                    continue
                if injection.matches(site, shard, call, tag):
                    self._fire_counts[slot] = self._fire_counts.get(slot, 0) + 1
                    matched.append(injection)
                    self.fired.append(
                        FiredFault(
                            site=site, kind=injection.kind, shard=shard, call=call,
                            path=os.fspath(path) if path is not None else None,
                        )
                    )
            return matched

    # ------------------------------------------------------------------ #
    # Actions.
    # ------------------------------------------------------------------ #
    def _mutate_file(self, kind: str, path: str | os.PathLike) -> None:
        """Deterministically tear (truncate) or corrupt (scribble) *path*."""
        target = Path(path)
        try:
            data = target.read_bytes()
        except OSError:
            return
        if not data:
            return
        with self._lock:
            if kind == "torn":
                keep = self._rng.randrange(0, max(1, len(data) - 1)) if len(data) > 1 else 0
                target.write_bytes(data[:keep])
            else:  # corrupt: flip a seeded byte span in place
                offset = self._rng.randrange(0, len(data))
                span = min(len(data) - offset, 1 + self._rng.randrange(0, 16))
                scribble = bytes(self._rng.randrange(0, 256) for _ in range(span))
                target.write_bytes(data[:offset] + scribble + data[offset + span:])

    def fire(
        self,
        site: str,
        *,
        shard: Optional[int] = None,
        tag: Optional[str] = None,
        path: str | os.PathLike | None = None,
    ) -> None:
        """Run the default action of every injection matching this call.

        ``crash`` raises :class:`InjectedFault`; ``io_error`` raises
        :class:`OSError` (so production error handling exercises its real
        I/O-failure paths); ``hang`` sleeps; ``torn``/``corrupt`` mutate
        *path* in place; ``broken_pool`` raises
        :class:`~concurrent.futures.BrokenExecutor`; ``exit`` hard-kills
        the process (``os._exit``), simulating OOM-killer/segfault death.
        """
        for injection in self.check(site, shard=shard, tag=tag, path=path):
            kind = injection.kind
            if kind == "crash":
                raise InjectedFault(site, kind)
            if kind == "io_error":
                raise OSError(f"injected I/O error at {site}")
            if kind == "broken_pool":
                raise BrokenExecutor(f"injected broken pool at {site}")
            if kind == "hang":
                time.sleep(injection.seconds)
            elif kind == "exit":
                os._exit(13)
            elif kind in ("torn", "corrupt") and path is not None:
                self._mutate_file(kind, path)

    def summary(self) -> dict[str, Any]:
        """What actually fired, grouped for reports and assertions."""
        by_site: dict[str, int] = {}
        for fault in self.fired:
            by_site[f"{fault.site}:{fault.kind}"] = by_site.get(f"{fault.site}:{fault.kind}", 0) + 1
        return {"fired": len(self.fired), "by_site": dict(sorted(by_site.items()))}


# --------------------------------------------------------------------------- #
# Process-wide installation.
# --------------------------------------------------------------------------- #
#: Name of the environment variable pointing worker processes at a plan file.
PLAN_ENV = "REPRO_FAULT_PLAN"

_ACTIVE: Optional[FaultInjector] = None
#: Lazily loaded (path, injector) pair for the PLAN_ENV route; per-process.
_ENV_LOADED: tuple[Optional[str], Optional[FaultInjector]] = (None, None)
_ENV_LOCK = threading.Lock()


def active_injector() -> Optional[FaultInjector]:
    """The injector governing this process, or None (the production case).

    An in-process :func:`install` wins over the ``REPRO_FAULT_PLAN``
    environment route; the environment plan is parsed once per process and
    shared by every thread (counters included).
    """
    if _ACTIVE is not None:
        return _ACTIVE
    path = os.environ.get(PLAN_ENV)
    if not path:
        return None
    global _ENV_LOADED
    with _ENV_LOCK:
        loaded_path, injector = _ENV_LOADED
        if loaded_path != path:
            try:
                injector = FaultInjector(InjectionPlan.load(path))
            except (OSError, ValueError):
                injector = None
            _ENV_LOADED = (path, injector)
        return injector


def inject(
    site: str,
    *,
    shard: Optional[int] = None,
    tag: Optional[str] = None,
    path: str | os.PathLike | None = None,
) -> None:
    """Production hook: fire any active injections for *site*; else no-op."""
    injector = active_injector()
    if injector is not None:
        injector.fire(site, shard=shard, tag=tag, path=path)


@contextmanager
def install(plan: InjectionPlan | FaultInjector) -> Iterator[FaultInjector]:
    """Install *plan* for this process for the duration of the block."""
    global _ACTIVE
    injector = plan if isinstance(plan, FaultInjector) else FaultInjector(plan)
    previous = _ACTIVE
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = previous


# --------------------------------------------------------------------------- #
# Pool-level chaos.
# --------------------------------------------------------------------------- #
class ChaosExecutor(Executor):
    """Executor wrapper that injects pool-level faults at ``pool.submit``.

    ``broken_pool`` / ``crash`` raise :class:`BrokenExecutor` out of
    ``submit`` (a dead process pool), ``io_error`` raises :class:`OSError`,
    and ``hang`` swallows the task and returns a Future that never
    completes -- the deterministic stand-in for a worker stuck past its
    deadline.  Everything else passes straight through to the wrapped
    executor.
    """

    def __init__(self, inner: Executor, injector: Optional[FaultInjector] = None):
        self.inner = inner
        self.injector = injector
        #: Futures handed out for swallowed (hung) tasks.
        self.hung: list[Future] = []

    def submit(self, fn, /, *args, **kwargs) -> Future:
        injector = self.injector or active_injector()
        if injector is not None:
            for injection in injector.check("pool.submit"):
                if injection.kind in ("broken_pool", "crash"):
                    raise BrokenExecutor("injected broken pool at pool.submit")
                if injection.kind == "io_error":
                    raise OSError("injected I/O error at pool.submit")
                if injection.kind == "hang":
                    future: Future = Future()
                    self.hung.append(future)
                    return future
        return self.inner.submit(fn, *args, **kwargs)

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        self.inner.shutdown(wait=wait, cancel_futures=cancel_futures)


# --------------------------------------------------------------------------- #
# The standard chaos matrix.
# --------------------------------------------------------------------------- #
def seeded_matrix(seed: int = 0) -> list[InjectionPlan]:
    """The crash/hang/corrupt x checkpoint/cache/pool injection matrix.

    Nine seeded plans named ``<kind>-x-<target>`` (plus a tenth,
    ``crash-x-engine``, exercising the packed->interp degradation path).
    :mod:`repro.service.chaos` runs each against a hardened campaign and
    asserts the bit-identity-or-structured-error invariant; the per-plan
    seeds are derived from *seed* so two runs of the same matrix corrupt
    the same bytes.
    """
    rng = random.Random(seed)

    def plan(name: str, *injections: Injection) -> InjectionPlan:
        return InjectionPlan(injections=injections, seed=rng.randrange(2**31), name=name)

    return [
        plan("crash-x-checkpoint", Injection("worker.round1", "crash", shard=1)),
        plan("crash-x-cache", Injection("worker.round2", "crash", shard=0)),
        plan("crash-x-pool", Injection("pool.submit", "broken_pool", call=1)),
        plan("hang-x-checkpoint", Injection("pool.submit", "hang", call=2)),
        plan("hang-x-cache", Injection("pool.submit", "hang", call=1)),
        plan("hang-x-pool", Injection("pool.submit", "hang", call=0)),
        plan("corrupt-x-checkpoint",
             Injection("checkpoint.write", "torn", call=1),
             Injection("checkpoint.write", "corrupt", call=2)),
        plan("corrupt-x-cache", Injection("cache.write", "torn", call=0)),
        plan("corrupt-x-pool", Injection("pool.submit", "io_error", call=0, times=3)),
        plan("crash-x-engine", Injection("worker.round1", "crash", shard=0, times=2)),
    ]
