"""Static netlist analysis: lint/DRC, SCOAP testability, untestability proofs.

This package is the *pre-simulation* half of the ATPG story: everything in
here reasons about a :class:`~repro.logic.netlist.LogicCircuit` (or its
``.bench`` source) structurally, without ever applying a test pattern.

* :mod:`~repro.analysis_static.lint` -- a rule-registry netlist linter/DRC
  (undriven nets, multiply-driven nets, combinational cycles, dead cones,
  constant nets, tied inputs) emitting structured
  :class:`~repro.analysis_static.diagnostics.Diagnostic`\\ s.
* :mod:`~repro.analysis_static.scoap` -- SCOAP controllability /
  observability measures in one topological pass, surfaced through
  :meth:`LogicCircuit.stats() <repro.logic.netlist.LogicCircuit.stats>`.
* :mod:`~repro.analysis_static.implication` -- a ternary (0/1/X) static
  implication engine with pairwise static learning.
* :mod:`~repro.analysis_static.untestable` -- structural untestability
  proofs for stuck-at and transition faults (unexcitable / unobservable /
  dead cone), consumed by the campaign layer's static phase.

The campaign integration lives in :mod:`repro.campaign`: lint errors become
:class:`~repro.campaign.errors.CampaignError`\\ s, and statically proven
faults are recorded as untestable with ``proven_static`` provenance.
"""

from .diagnostics import Diagnostic, LintReport, Severity
from .implication import ImplicationEngine, StaticLearning, learn_implications
from .lint import LintRule, lint_bench, lint_circuit, registered_rules
from .scoap import ScoapMeasures, scoap_measures, scoap_summary
from .untestable import (
    StaticProof,
    StaticUntestabilityProver,
    prove_stuck_at_untestable,
    prove_transition_untestable,
)

__all__ = [
    "Severity",
    "Diagnostic",
    "LintReport",
    "LintRule",
    "lint_circuit",
    "lint_bench",
    "registered_rules",
    "ScoapMeasures",
    "scoap_measures",
    "scoap_summary",
    "ImplicationEngine",
    "StaticLearning",
    "learn_implications",
    "StaticProof",
    "StaticUntestabilityProver",
    "prove_stuck_at_untestable",
    "prove_transition_untestable",
]
