"""Rule-registry netlist linter / DRC over :class:`LogicCircuit` netlists.

Each check is a :class:`LintRule` instance in a module-level registry (the
analyzer-registry pattern: a rule owns an id, a severity, a one-line
description, and a ``check`` hook producing structured
:class:`~repro.analysis_static.diagnostics.Diagnostic`\\ s).  Rules run in
registration order over a shared :class:`LintContext`, which caches the
expensive derived structure (driven sets, PO-reachability, the implication
baseline) so adding a rule stays cheap.

Two front doors:

* :func:`lint_circuit` -- lint a live :class:`LogicCircuit`;
* :func:`lint_bench` -- lint ``.bench`` source text, which additionally
  catches *multiply-driven* nets (unrepresentable in a ``LogicCircuit``,
  whose constructor rejects double drivers outright) and attaches source
  line numbers to every site-ful diagnostic.

Structure-dependent rules (cycles aside) skip circuits that are not
well-formed, so one broken net yields one actionable error instead of a
cascade of follow-on noise.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Optional

from ..logic.bench import _DECL_RE, _GATE_RE, _strip, parse_bench
from ..logic.netlist import LogicCircuitError
from .diagnostics import Diagnostic, LintReport, Severity
from .implication import ImplicationEngine, learn_implications

if TYPE_CHECKING:
    from ..logic.netlist import LogicCircuit


class LintContext:
    """Shared state for one lint run: the circuit plus cached derivations."""

    def __init__(
        self,
        circuit: "LogicCircuit",
        net_lines: Mapping[str, int] | None = None,
        bench_drivers: Mapping[str, list[int]] | None = None,
    ):
        self.circuit = circuit
        #: ``.bench`` source line of each declared/driven net (if known).
        self.net_lines = dict(net_lines or {})
        #: ``.bench``-level driver lines per net (if linting source text).
        self.bench_drivers = dict(bench_drivers or {})
        self.driven = set(circuit.primary_inputs) | {g.output for g in circuit}
        self._observable: set[str] | None = None
        self._constants: dict[str, int] | None = None

    def line_of(self, net: str) -> Optional[int]:
        return self.net_lines.get(net)

    @property
    def well_formed(self) -> bool:
        """Closed and acyclic: the precondition of the structural rules."""
        try:
            self.circuit.validate()
        except LogicCircuitError:
            return False
        return True

    @property
    def observable_nets(self) -> set[str]:
        """Nets from which at least one primary output is reachable."""
        if self._observable is None:
            observable = set(self.circuit.primary_outputs)
            for gate in reversed(self.circuit.topological_order()):
                if gate.output in observable:
                    observable.update(gate.inputs)
            self._observable = observable
        return self._observable

    @property
    def constants(self) -> dict[str, int]:
        """Nets proven constant by implication plus static learning."""
        if self._constants is None:
            engine = ImplicationEngine(self.circuit)
            self._constants = learn_implications(self.circuit, engine).constants
        return self._constants


class LintRule:
    """Base class for registry rules; subclasses override :meth:`check`."""

    rule_id: str = ""
    severity: Severity = Severity.WARNING
    description: str = ""
    #: Rules that need a closed, acyclic circuit set this and are skipped
    #: (not failed) on malformed input -- the structural rules report it.
    requires_well_formed: bool = True

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        raise NotImplementedError  # pragma: no cover - abstract hook

    def diagnostic(
        self,
        context: LintContext,
        message: str,
        net: str | None = None,
        gate: str | None = None,
        line: int | None = None,
    ) -> Diagnostic:
        if line is None and net is not None:
            line = context.line_of(net)
        return Diagnostic(
            rule=self.rule_id,
            severity=self.severity,
            message=message,
            net=net,
            gate=gate,
            line=line,
        )


_RULES: dict[str, LintRule] = {}


def register_rule(rule: LintRule) -> LintRule:
    """Register *rule* under its ``rule_id``; later rules run later."""
    if not rule.rule_id:
        raise ValueError("lint rule must define a non-empty rule_id")
    if rule.rule_id in _RULES:
        raise ValueError(f"lint rule {rule.rule_id!r} is already registered")
    _RULES[rule.rule_id] = rule
    return rule


def registered_rules() -> tuple[str, ...]:
    """Ids of all registered rules, in registration (execution) order."""
    return tuple(_RULES)


# --------------------------------------------------------------------------- #
# The built-in rules.
# --------------------------------------------------------------------------- #
class UndrivenNetRule(LintRule):
    rule_id = "undriven-net"
    severity = Severity.ERROR
    description = "a gate input or primary output has no driver"
    requires_well_formed = False

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        seen: set[str] = set()
        for gate in context.circuit:
            for net in gate.inputs:
                if net not in context.driven and net not in seen:
                    seen.add(net)
                    yield self.diagnostic(
                        context,
                        f"gate {gate.name!r} reads undriven net {net!r}",
                        net=net,
                        gate=gate.name,
                    )
        for net in context.circuit.primary_outputs:
            if net not in context.driven and net not in seen:
                seen.add(net)
                yield self.diagnostic(
                    context, f"primary output {net!r} is not driven", net=net
                )


class MultiplyDrivenRule(LintRule):
    rule_id = "multiply-driven-net"
    severity = Severity.ERROR
    description = "a net has more than one driver (.bench source only)"
    requires_well_formed = False

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        # A LogicCircuit cannot represent a double driver (add_gate rejects
        # it), so this rule only fires from .bench source positions.
        for net, lines in sorted(context.bench_drivers.items()):
            if len(lines) < 2:
                continue
            first, rest = lines[0], lines[1:]
            for line in rest:
                yield self.diagnostic(
                    context,
                    f"net {net!r} is already driven (first driven at line {first})",
                    net=net,
                    line=line,
                )


class CombinationalCycleRule(LintRule):
    rule_id = "combinational-cycle"
    severity = Severity.ERROR
    description = "gates form a combinational feedback loop"
    requires_well_formed = False

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        circuit = context.circuit
        placed = set(circuit.primary_inputs)
        # Kahn over driven nets only, so undriven inputs (reported by their
        # own rule) do not masquerade as cycles here.
        pending = {
            gate.name: sum(
                1 for net in gate.inputs if net not in placed and net in context.driven
            )
            for gate in circuit
        }
        ready = [name for name, count in pending.items() if count == 0]
        readers: dict[str, list[str]] = {}
        for gate in circuit:
            for net in gate.inputs:
                if net not in placed and net in context.driven:
                    readers.setdefault(net, []).append(gate.name)
        emitted = 0
        while ready:
            gate = circuit.gate(ready.pop())
            emitted += 1
            for reader in readers.get(gate.output, ()):
                pending[reader] -= 1
                if pending[reader] == 0:
                    ready.append(reader)
        if emitted < len(circuit):
            cycle_gates = sorted(
                name for name, count in pending.items() if count > 0
            )
            for name in cycle_gates[:5]:
                gate = circuit.gate(name)
                yield self.diagnostic(
                    context,
                    f"gate {name!r} sits on a combinational cycle",
                    net=gate.output,
                    gate=name,
                )


class DeadConeRule(LintRule):
    rule_id = "dead-cone"
    severity = Severity.WARNING
    description = "logic whose fan-out cone reaches no primary output"

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        observable = context.observable_nets
        for gate in context.circuit:
            if gate.output not in observable:
                yield self.diagnostic(
                    context,
                    f"output of gate {gate.name!r} reaches no primary output",
                    net=gate.output,
                    gate=gate.name,
                )


class UnusedInputRule(LintRule):
    rule_id = "unused-input"
    severity = Severity.WARNING
    description = "a primary input drives nothing"
    requires_well_formed = False

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        circuit = context.circuit
        outputs = set(circuit.primary_outputs)
        read = {net for gate in circuit for net in gate.inputs}
        for net in circuit.primary_inputs:
            if net not in read and net not in outputs:
                yield self.diagnostic(
                    context, f"primary input {net!r} drives nothing", net=net
                )


class ConstantNetRule(LintRule):
    rule_id = "constant-net"
    severity = Severity.WARNING
    description = "a net is provably constant (implication + static learning)"

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        inputs = set(context.circuit.primary_inputs)
        for net in context.circuit.nets():
            value = context.constants.get(net)
            if value is None or net in inputs:
                continue
            driver = context.circuit.driver_of(net)
            yield self.diagnostic(
                context,
                f"net {net!r} is provably constant {value}",
                net=net,
                gate=driver.name if driver is not None else None,
            )


class TiedInputRule(LintRule):
    rule_id = "tied-input"
    severity = Severity.INFO
    description = "one net feeds several pins of the same gate"
    requires_well_formed = False

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        for gate in context.circuit:
            tied = sorted(
                {net for net in gate.inputs if gate.inputs.count(net) > 1}
            )
            for net in tied:
                yield self.diagnostic(
                    context,
                    f"net {net!r} feeds {gate.inputs.count(net)} pins of gate "
                    f"{gate.name!r} ({gate.gate_type.value})",
                    net=net,
                    gate=gate.name,
                )


for _rule in (
    UndrivenNetRule(),
    MultiplyDrivenRule(),
    CombinationalCycleRule(),
    DeadConeRule(),
    UnusedInputRule(),
    ConstantNetRule(),
    TiedInputRule(),
):
    register_rule(_rule)


# --------------------------------------------------------------------------- #
# Front doors.
# --------------------------------------------------------------------------- #
def lint_circuit(
    circuit: "LogicCircuit",
    *,
    net_lines: Mapping[str, int] | None = None,
    bench_drivers: Mapping[str, list[int]] | None = None,
    rules: Iterable[str] | None = None,
) -> LintReport:
    """Run the registered rules (or the *rules* subset) over *circuit*."""
    context = LintContext(circuit, net_lines=net_lines, bench_drivers=bench_drivers)
    selected = list(_RULES.values())
    if rules is not None:
        wanted = set(rules)
        unknown = wanted - set(_RULES)
        if unknown:
            raise ValueError(
                f"unknown lint rules {sorted(unknown)}; registered: {registered_rules()}"
            )
        selected = [rule for rule in selected if rule.rule_id in wanted]
    well_formed = context.well_formed
    diagnostics: list[Diagnostic] = []
    for rule in selected:
        if rule.requires_well_formed and not well_formed:
            continue
        diagnostics.extend(rule.check(context))
    return LintReport(circuit_name=circuit.name, diagnostics=diagnostics)


_BENCH_LINE_RE = re.compile(r"\.bench line (\d+)")


def _scan_bench(text: str) -> tuple[dict[str, list[int]], dict[str, int]]:
    """Line positions of every driver/declaration in ``.bench`` source.

    Returns ``(drivers, net_lines)``: *drivers* maps each net to the lines
    that drive it (an ``INPUT`` declaration counts as a driver), *net_lines*
    maps each mentioned net to its first relevant line for diagnostics.
    """
    drivers: dict[str, list[int]] = {}
    net_lines: dict[str, int] = {}
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = _strip(raw)
        if not line:
            continue
        decl = _DECL_RE.match(line)
        if decl is not None:
            kind, net = decl.group(1).upper(), decl.group(2)
            net_lines.setdefault(net, line_no)
            if kind == "INPUT":
                drivers.setdefault(net, []).append(line_no)
            continue
        statement = _GATE_RE.match(line)
        if statement is not None:
            output = statement.group(1)
            drivers.setdefault(output, []).append(line_no)
            net_lines[output] = line_no
    return drivers, net_lines


def lint_bench(text: str, name: str = "") -> LintReport:
    """Lint ``.bench`` source text, with line numbers on every finding.

    Multiply-driven nets are diagnosed from the raw statements (a parsed
    circuit cannot hold them); any other parse failure becomes a single
    ``parse-error`` diagnostic carrying the parser's line number, and a
    cleanly parsed netlist goes through :func:`lint_circuit` with the
    collected source positions.
    """
    drivers, net_lines = _scan_bench(text)
    multiply_driven = {net: lines for net, lines in drivers.items() if len(lines) > 1}
    if multiply_driven:
        rule = _RULES["multiply-driven-net"]
        diagnostics = []
        for net, lines in sorted(multiply_driven.items()):
            for line in lines[1:]:
                diagnostics.append(
                    Diagnostic(
                        rule=rule.rule_id,
                        severity=rule.severity,
                        message=(
                            f"net {net!r} is already driven "
                            f"(first driven at line {lines[0]})"
                        ),
                        net=net,
                        line=line,
                    )
                )
        return LintReport(circuit_name=name, diagnostics=diagnostics)
    try:
        circuit = parse_bench(text, name=name)
    except LogicCircuitError as exc:
        message = str(exc)
        match = _BENCH_LINE_RE.search(message)
        return LintReport(
            circuit_name=name,
            diagnostics=[
                Diagnostic(
                    rule="parse-error",
                    severity=Severity.ERROR,
                    message=message,
                    line=int(match.group(1)) if match else None,
                )
            ],
        )
    return lint_circuit(circuit, net_lines=net_lines, bench_drivers=drivers)
