"""Ternary (0/1/X) static implication with pairwise static learning.

The engine reasons about *necessary consequences* of partial net-value
assignments.  Every gate contributes a relation -- the set of value rows its
truth table allows over its **distinct** nets (tied pins collapse, so e.g.
``XOR2(x, x)`` only allows rows with output 0) -- and a worklist pass filters
each touched relation against the currently known values:

* if no row survives, the assignment is **contradictory** (no input vector
  produces it);
* if every surviving row agrees on a still-unknown net, that value is
  **forced** and propagates further, forward and backward alike.

Because only forced values are ever derived, the engine is *sound but
incomplete*: ``imply`` returning a value map means every complete consistent
assignment extends it, and ``imply`` returning None means the seed
assignment is unsatisfiable -- but satisfiable seeds may still come back
with few derived values.

:func:`learn_implications` adds the classical pairwise static-learning pass:
assert each single net value, record what it forces elsewhere, and keep the
contrapositives.  The learned pairs feed back into
:class:`ImplicationEngine` to strengthen later ``imply`` calls (used by the
untestability prover in :mod:`repro.analysis_static.untestable`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from functools import lru_cache
from typing import TYPE_CHECKING, Mapping, Optional

from ..logic.gates import GateType, evaluate_gate

if TYPE_CHECKING:
    from ..logic.netlist import LogicCircuit

#: A single-net assignment: ``(net, value)`` with value 0 or 1.
Literal = tuple[str, int]


@lru_cache(maxsize=8192)
def _gate_relation(
    gate_type: GateType, inputs: tuple[str, ...], output: str
) -> tuple[tuple[str, ...], tuple[tuple[int, ...], ...]]:
    """The gate's relation over its distinct nets.

    Returns ``(nets, rows)`` where ``nets`` lists the distinct input nets
    followed by the output net, and each row assigns one value per entry of
    ``nets``.  Tied pins (the same net on several inputs) are merged, so
    rows where tied pins would disagree simply do not exist -- this is what
    lets the engine prove ``XOR2(x, x)`` constant 0.
    """
    in_nets = tuple(dict.fromkeys(inputs))
    rows: list[tuple[int, ...]] = []
    for value in range(2 ** len(in_nets)):
        assign = {
            net: (value >> (len(in_nets) - 1 - i)) & 1 for i, net in enumerate(in_nets)
        }
        out = evaluate_gate(gate_type, [assign[net] for net in inputs])
        if output in assign:
            # Self-loop (only possible in cyclic netlists): keep the row
            # only when it is a fixed point of the gate function.
            if assign[output] != out:
                continue
            rows.append(tuple(assign[net] for net in in_nets))
        else:
            rows.append(tuple(assign[net] for net in in_nets) + (out,))
    nets = in_nets if output in in_nets else in_nets + (output,)
    return nets, tuple(rows)


class ImplicationEngine:
    """Worklist constant propagation over one circuit.

    ``learned`` maps a literal to the literals it is known to force (from
    :func:`learn_implications`); ``constants`` seeds extra net values proven
    elsewhere (e.g. learning-discovered constants).  Both strengthen every
    subsequent :meth:`imply` call.

    The engine computes its :attr:`baseline` -- the closure of the empty
    assignment, i.e. all structurally forced constants -- once on
    construction, and every ``imply`` starts from that baseline.
    """

    def __init__(
        self,
        circuit: "LogicCircuit",
        learned: Mapping[Literal, tuple[Literal, ...]] | None = None,
        constants: Mapping[str, int] | None = None,
    ):
        self.circuit = circuit
        self.learned: dict[Literal, tuple[Literal, ...]] = {
            key: tuple(value) for key, value in (learned or {}).items()
        }
        self._gates = list(circuit)
        self._relations = [
            _gate_relation(g.gate_type, g.inputs, g.output) for g in self._gates
        ]
        self._nets = set(circuit.nets())
        touch: dict[str, list[int]] = {}
        for index, gate in enumerate(self._gates):
            for net in {gate.output, *gate.inputs}:
                touch.setdefault(net, []).append(index)
        self._touch = touch
        baseline = self._closure(constants or {}, {}, seed_all=True)
        if baseline is None:
            raise ValueError("contradictory seed constants for implication engine")
        self.baseline: dict[str, int] = baseline

    # ------------------------------------------------------------------ #
    # Core propagation.
    # ------------------------------------------------------------------ #
    def imply(self, assignments: Mapping[str, int]) -> Optional[dict[str, int]]:
        """Closure of *assignments* (plus the baseline), or None on conflict.

        The returned map contains every net value that holds in *every*
        complete consistent assignment extending *assignments*; None means
        no complete consistent assignment exists at all.
        """
        for net in assignments:
            if net not in self._nets:
                raise ValueError(f"net {net!r} is not in the circuit")
        return self._closure(assignments, self.baseline, seed_all=False)

    def _closure(
        self,
        assignments: Mapping[str, int],
        baseline: Mapping[str, int],
        seed_all: bool,
    ) -> Optional[dict[str, int]]:
        values = dict(baseline)
        work: deque[int] = deque()
        in_work = [False] * len(self._gates)
        todo: list[Literal] = [(net, int(value)) for net, value in assignments.items()]
        if seed_all:
            work.extend(range(len(self._gates)))
            in_work = [True] * len(self._gates)

        def enqueue(net: str) -> None:
            for index in self._touch.get(net, ()):
                if not in_work[index]:
                    in_work[index] = True
                    work.append(index)

        while todo or work:
            while todo:
                net, value = todo.pop()
                current = values.get(net)
                if current is not None:
                    if current != value:
                        return None
                    continue
                values[net] = value
                todo.extend(self.learned.get((net, value), ()))
                enqueue(net)
            if not work:
                break
            index = work.popleft()
            in_work[index] = False
            nets, rows = self._relations[index]
            known = [values.get(net) for net in nets]
            consistent = [
                row
                for row in rows
                if all(k is None or k == bit for k, bit in zip(known, row))
            ]
            if not consistent:
                return None
            for position, net in enumerate(nets):
                if known[position] is None:
                    first = consistent[0][position]
                    if all(row[position] == first for row in consistent):
                        todo.append((net, first))
        return values


@dataclass(frozen=True)
class StaticLearning:
    """Result of the pairwise static-learning pass.

    ``implications`` maps each literal to the tuple of literals it forces
    (contrapositives included); ``constants`` collects every net proven to
    hold a fixed value -- structurally forced baseline constants plus nets
    whose opposite assignment was contradictory during learning.
    """

    implications: dict[Literal, tuple[Literal, ...]] = field(default_factory=dict)
    constants: dict[str, int] = field(default_factory=dict)

    @property
    def num_implications(self) -> int:
        return sum(len(v) for v in self.implications.values())


def learn_implications(
    circuit: "LogicCircuit", engine: ImplicationEngine | None = None
) -> StaticLearning:
    """Pairwise static learning: assert each net value once, record what it forces.

    For every non-constant net ``n`` and value ``v``, run ``imply({n: v})``:

    * a conflict proves ``n`` is constant at ``1 - v``;
    * every newly derived value ``m = w`` yields the learned implication
      ``(n, v) => (m, w)`` *and* its contrapositive ``(m, 1-w) => (n, 1-v)``
      (modus tollens), which is how backward-unreachable conclusions become
      usable by later forward passes.
    """
    engine = engine or ImplicationEngine(circuit)
    constants = dict(engine.baseline)
    pairs: dict[Literal, dict[Literal, None]] = {}

    def record(source: Literal, target: Literal) -> None:
        pairs.setdefault(source, {})[target] = None

    for net in circuit.nets():
        if net in constants:
            continue
        for value in (0, 1):
            result = engine.imply({net: value})
            if result is None:
                constants[net] = 1 - value
                continue
            for other, forced in result.items():
                if other == net or other in engine.baseline:
                    continue
                record((net, value), (other, forced))
                record((other, 1 - forced), (net, 1 - value))
    implications = {
        source: tuple(targets) for source, targets in pairs.items()
    }
    return StaticLearning(implications=implications, constants=constants)
