"""Structured diagnostics emitted by the netlist linter."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional


class Severity(str, Enum):
    """Diagnostic severity; only :attr:`ERROR` blocks a campaign."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding, anchored to a rule and (when known) a site.

    ``net`` / ``gate`` name the offending site inside the circuit; ``line``
    is the 1-based ``.bench`` source line when the linter was given source
    positions (:func:`~repro.analysis_static.lint.lint_bench`).
    """

    rule: str
    severity: Severity
    message: str
    net: Optional[str] = None
    gate: Optional[str] = None
    line: Optional[int] = None

    def format(self) -> str:
        """``[severity] rule: message (net ..., line ...)`` -- one line."""
        site = []
        if self.net is not None:
            site.append(f"net {self.net!r}")
        if self.gate is not None:
            site.append(f"gate {self.gate!r}")
        if self.line is not None:
            site.append(f"line {self.line}")
        suffix = f" ({', '.join(site)})" if site else ""
        return f"[{self.severity.value}] {self.rule}: {self.message}{suffix}"

    def as_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
        }
        for key in ("net", "gate", "line"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        return payload


@dataclass
class LintReport:
    """All diagnostics of one lint run, in rule-registry order."""

    circuit_name: str = ""
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def infos(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was emitted."""
        return not self.errors

    def counts(self) -> dict[str, int]:
        """Severity histogram (stable keys, JSON-safe)."""
        return {
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
        }

    def as_dict(self) -> dict[str, Any]:
        return {
            "circuit": self.circuit_name,
            **self.counts(),
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }

    def describe(self) -> str:
        name = self.circuit_name or "circuit"
        counts = self.counts()
        lines = [
            f"lint[{name}]: {counts['errors']} errors, "
            f"{counts['warnings']} warnings, {counts['infos']} infos"
        ]
        lines.extend(f"  {d.format()}" for d in self.diagnostics)
        return "\n".join(lines)
