"""SCOAP testability measures (controllability / observability).

The classical Sandia Controllability/Observability Analysis Program
(Goldstein 1979) measures, computed generically from each gate's truth
table so every :class:`~repro.logic.gates.GateType` (complex AOI/OAI cells
included) is handled by the same formulation:

* ``CC0(n)`` / ``CC1(n)`` -- combinational 0-/1-controllability: 1 for a
  primary input; for a gate output, ``1 + min`` over the input *cubes*
  guaranteeing that value of the summed controllabilities of the cube's
  specified inputs (don't-care inputs cost nothing, recovering e.g.
  ``CC0(AND2) = 1 + min(CC0(a), CC0(b))``).  Cubes range over the gate's
  *distinct* input nets, so tied pins are handled exactly (``XOR2(x, x)``
  has no cube producing 1 and ``CC1 = inf``).
* ``CO(n)`` -- combinational observability: 0 at a primary output; through
  a gate input, ``CO(output) + 1 +`` the cheapest way to set the remaining
  inputs so the output toggles with this input; at a fan-out stem, the
  minimum over the branches.

Both passes are single topological sweeps (forward for CC, reverse for CO).
Unreachable values are ``inf`` -- exactly the nets/values the static
untestability prover (:mod:`repro.analysis_static.untestable`) can reject,
and the numbers a frontier-guided ATPG backtrace would consult.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from itertools import product
from typing import TYPE_CHECKING

from .implication import _gate_relation

if TYPE_CHECKING:
    from ..logic.gates import GateType
    from ..logic.netlist import LogicCircuit

INF = math.inf


@lru_cache(maxsize=8192)
def _controllability_cubes(
    gate_type: "GateType", inputs: tuple[str, ...], output: str
) -> tuple[tuple[tuple[int | None, ...], ...], tuple[tuple[int | None, ...], ...]]:
    """Per output value, the input cubes guaranteeing it (None = don't care).

    Classical SCOAP charges only the inputs that *must* be set -- e.g.
    ``CC0(AND) = 1 + min(CC0(a), CC0(b))`` leaves the other input free -- so
    controllability minimizes over cubes, not fully specified rows.
    """
    nets, rows = _gate_relation(gate_type, inputs, output)
    arity = len(nets) - 1
    by_value: tuple[list[tuple[int | None, ...]], list[tuple[int | None, ...]]] = ([], [])
    for cube in product((None, 0, 1), repeat=arity):
        outs = {
            row[-1]
            for row in rows
            if all(want is None or want == bit for want, bit in zip(cube, row))
        }
        if len(outs) == 1:
            by_value[outs.pop()].append(cube)
    return tuple(by_value[0]), tuple(by_value[1])


@dataclass(frozen=True)
class ScoapMeasures:
    """Per-net SCOAP numbers for one circuit (``inf`` = unreachable)."""

    cc0: dict[str, float]
    cc1: dict[str, float]
    co: dict[str, float]

    def controllability(self, net: str, value: int) -> float:
        return self.cc1[net] if value else self.cc0[net]

    def sequential_depth(self, net: str) -> float:
        """Combined detect cost of the harder stuck-at fault on *net*."""
        return max(self.cc0[net], self.cc1[net]) + self.co[net]


def scoap_measures(circuit: "LogicCircuit") -> ScoapMeasures:
    """Compute CC0/CC1/CO for every net in two topological passes."""
    cc0: dict[str, float] = {}
    cc1: dict[str, float] = {}
    for net in circuit.primary_inputs:
        cc0[net] = cc1[net] = 1.0

    order = circuit.topological_order()
    for gate in order:
        nets, _ = _gate_relation(gate.gate_type, gate.inputs, gate.output)
        in_nets = nets[:-1]
        cubes = _controllability_cubes(gate.gate_type, gate.inputs, gate.output)
        best = [INF, INF]
        for value in (0, 1):
            for cube in cubes[value]:
                cost = 1.0
                for net, bit in zip(in_nets, cube):
                    if bit is not None:
                        cost += cc1[net] if bit else cc0[net]
                if cost < best[value]:
                    best[value] = cost
        cc0[gate.output], cc1[gate.output] = best[0], best[1]

    outputs = set(circuit.primary_outputs)
    co: dict[str, float] = {net: (0.0 if net in outputs else INF) for net in circuit.nets()}
    for gate in reversed(order):
        co_out = co[gate.output]
        nets, rows = _gate_relation(gate.gate_type, gate.inputs, gate.output)
        in_nets = nets[:-1]
        for position, net in enumerate(in_nets):
            best = INF
            # Cheapest side-input assignment that sensitizes this input to
            # the output: a pair of rows differing only in this net with
            # different outputs; the cost is setting the side inputs.
            for row in rows:
                if row[position] != 0:
                    continue
                flipped = row[:position] + (1,) + row[position + 1 : len(in_nets)]
                for other in rows:
                    if other[: len(in_nets)] != flipped:
                        continue
                    if other[-1] == row[-1]:
                        continue
                    cost = 1.0
                    for index, side in enumerate(in_nets):
                        if index == position:
                            continue
                        cost += cc1[side] if row[index] else cc0[side]
                    best = min(best, cost)
            candidate = co_out + best
            if candidate < co[net]:
                co[net] = candidate
    return ScoapMeasures(cc0=cc0, cc1=cc1, co=co)


def _finite(values) -> list[float]:
    return [v for v in values if v != INF]


def scoap_summary(circuit: "LogicCircuit") -> dict[str, float | int]:
    """JSON-safe roll-up of the per-net measures for reports and stats.

    ``unreachable`` counts the infinite entries across all three measures
    (values no input vector can produce, nets no output observes); the
    max/mean figures aggregate the finite entries only.
    """
    measures = scoap_measures(circuit)
    cc = _finite(measures.cc0.values()) + _finite(measures.cc1.values())
    co = _finite(measures.co.values())
    unreachable = (
        sum(1 for v in measures.cc0.values() if v == INF)
        + sum(1 for v in measures.cc1.values() if v == INF)
        + sum(1 for v in measures.co.values() if v == INF)
    )
    return {
        "max_cc": max(cc, default=0.0),
        "mean_cc": round(sum(cc) / len(cc), 3) if cc else 0.0,
        "max_co": max(co, default=0.0),
        "mean_co": round(sum(co) / len(co), 3) if co else 0.0,
        "unreachable": unreachable,
    }
