"""Command-line circuit linter: ``python -m repro.analysis_static.cli``.

Each positional argument is either a registered circuit reference
(``c17``, ``mult:3``, ``rdag:60,5``) or a path to a ``.bench`` file.
Files are linted from source text, so diagnostics carry line numbers and
multiply-driven nets are caught; registered circuits are linted as built.

Exit status is 0 when no target produced an error-severity diagnostic and
1 otherwise -- CI runs this over every generator family and the golden
netlists as a smoke gate.  ``--verbose`` prints every diagnostic instead
of just the per-target summary line.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from ..campaign.circuits import resolve_circuit
from ..campaign.errors import CampaignError
from .diagnostics import LintReport
from .lint import lint_bench, lint_circuit


def _lint_target(target: str) -> LintReport:
    if target.endswith(".bench"):
        text = Path(target).read_text(encoding="utf-8")
        return lint_bench(text, name=target)
    return lint_circuit(resolve_circuit(target))


def _summarize(target: str, report: LintReport, verbose: bool) -> str:
    counts = report.counts()
    status = "ok" if report.ok else "FAIL"
    line = (
        f"{status:4s} {target}: {counts['errors']} errors, "
        f"{counts['warnings']} warnings, {counts['infos']} infos"
    )
    if verbose and report.diagnostics:
        line += "\n" + "\n".join(f"    {d.format()}" for d in report.diagnostics)
    elif report.errors:
        line += "\n" + "\n".join(f"    {d.format()}" for d in report.errors)
    return line


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Lint netlists: registered circuit references or .bench files.",
    )
    parser.add_argument(
        "targets",
        nargs="+",
        metavar="CIRCUIT",
        help="circuit reference (e.g. c17, mult:3) or path to a .bench file",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="print every diagnostic, not just errors",
    )
    options = parser.parse_args(argv)

    failed = False
    for target in options.targets:
        try:
            report = _lint_target(target)
        except (OSError, CampaignError) as exc:
            print(f"FAIL {target}: {exc}")
            failed = True
            continue
        print(_summarize(target, report, options.verbose))
        if not report.ok:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke job
    sys.exit(main())
