"""Structural untestability proofs for stuck-at and transition faults.

A stuck-at fault ``net/sa-v`` needs a test that (a) *excites* it -- drives
``net`` to ``1-v`` in the good machine -- and (b) *observes* it -- sensitizes
a path from ``net`` to a primary output.  Each half admits a purely static
refutation:

* **dead cone**: no primary output is even reachable from ``net``;
* **unexcitable**: the implication closure of ``{net: 1-v}`` (ternary
  propagation plus learned implications, all *necessary* consequences) is
  contradictory, so no input vector sets the net to ``1-v``;
* **unobservable**: a D-propagation reachability sweep shows the
  good/faulty difference at ``net`` cannot reach any primary output.  A
  gate passes the difference only if, for some assignment of its
  difference-free side inputs consistent with the excitation implications,
  its output still depends on the difference-carrying inputs.  Side inputs
  carry equal values in both machines and the implied values are necessary
  in *every* exciting test, so a blocked frontier is a proof, not a
  heuristic.

Every check is conservative (sound, incomplete): a returned
:class:`StaticProof` is a guarantee the fault is untestable -- the property
suite cross-checks this against PODEM's search-exhausted verdicts -- while
the absence of a proof says nothing.

Transition faults reduce to the stuck-at machinery: a slow-to-rise /
slow-to-fall fault on ``net`` needs a capture pattern detecting
``net`` stuck at the launch value *and* a launch pattern setting ``net`` to
the launch value, so it is proven untestable by a stuck-at proof for the
capture fault or by the launch value being unreachable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from .implication import ImplicationEngine, _gate_relation, learn_implications

if TYPE_CHECKING:
    from ..faults.stuck_at import StuckAtFault
    from ..faults.transition import TransitionFault
    from ..logic.netlist import LogicCircuit

#: Proof reasons.
DEAD_CONE = "dead-cone"
UNEXCITABLE = "unexcitable"
UNOBSERVABLE = "unobservable"
LAUNCH_IMPOSSIBLE = "launch-impossible"


@dataclass(frozen=True)
class StaticProof:
    """A structural proof that one fault is untestable."""

    fault_key: str
    reason: str
    detail: str = ""

    def describe(self) -> str:
        suffix = f": {self.detail}" if self.detail else ""
        return f"{self.fault_key} proven untestable ({self.reason}){suffix}"


class StaticUntestabilityProver:
    """Per-circuit prover: one learning pass, then cheap per-fault checks."""

    def __init__(self, circuit: "LogicCircuit"):
        self.circuit = circuit
        learning = learn_implications(circuit)
        self.learning = learning
        self.engine = ImplicationEngine(
            circuit, learned=learning.implications, constants=learning.constants
        )
        self.order = circuit.topological_order()
        self.outputs = set(circuit.primary_outputs)
        observable = set(self.outputs)
        for gate in reversed(self.order):
            if gate.output in observable:
                observable.update(gate.inputs)
        #: Nets from which at least one primary output is reachable.
        self.observable = observable

    # ------------------------------------------------------------------ #
    # Stuck-at.
    # ------------------------------------------------------------------ #
    def prove_stuck_at(self, net: str, value: int) -> Optional[tuple[str, str]]:
        """A ``(reason, detail)`` proof for ``net/sa-value``, or None."""
        if net not in self.observable:
            return DEAD_CONE, f"no primary output in the fan-out cone of {net!r}"
        implied = self.engine.imply({net: 1 - value})
        if implied is None:
            return (
                UNEXCITABLE,
                f"implication proves net {net!r} can never be {1 - value}",
            )
        if self._propagation_blocked(net, implied):
            return (
                UNOBSERVABLE,
                f"the difference at {net!r} cannot reach a primary output",
            )
        return None

    def _propagation_blocked(self, net: str, implied: dict[str, int]) -> bool:
        """Can the good/faulty difference at *net* reach a primary output?

        Forward sweep in topological order over the over-approximate set of
        difference-carrying nets; True means every path is provably blocked
        under the (necessary) excitation implications *implied*.
        """
        if net in self.outputs:
            return False
        carrying = {net}
        for gate in self.order:
            if gate.output in carrying:
                continue
            if not any(inp in carrying for inp in gate.inputs):
                continue
            if self._gate_passes_difference(gate, carrying, implied):
                carrying.add(gate.output)
                if gate.output in self.outputs:
                    return False
        return True

    def _gate_passes_difference(self, gate, carrying, implied) -> bool:
        """Might *gate*'s output differ between the two machines?

        Group the gate's truth-table rows by the values of the
        difference-free side inputs (restricted to rows consistent with the
        implied good values on those side inputs); the difference can pass
        only if some group produces both output values.  Side inputs hold
        identical, implication-consistent values in both machines, while
        difference-carrying inputs are left free in either machine -- an
        over-approximation, hence sound for blocking claims.
        """
        nets, rows = _gate_relation(gate.gate_type, gate.inputs, gate.output)
        in_nets = nets[:-1]
        side = [
            index for index, name in enumerate(in_nets) if name not in carrying
        ]
        groups: dict[tuple[int, ...], set[int]] = {}
        for row in rows:
            consistent = True
            for index in side:
                known = implied.get(in_nets[index])
                if known is not None and known != row[index]:
                    consistent = False
                    break
            if not consistent:
                continue
            key = tuple(row[index] for index in side)
            outs = groups.setdefault(key, set())
            outs.add(row[-1])
            if len(outs) > 1:
                return True
        return False

    # ------------------------------------------------------------------ #
    # Transition.
    # ------------------------------------------------------------------ #
    def prove_transition(self, net: str, launch_value: int) -> Optional[tuple[str, str]]:
        """Proof for a transition fault launching from *launch_value* on *net*.

        The capture pattern is exactly a test for ``net`` stuck at the
        launch value; the launch pattern needs ``net = launch_value`` to be
        reachable at all.
        """
        capture = self.prove_stuck_at(net, launch_value)
        if capture is not None:
            return capture
        if self.engine.imply({net: launch_value}) is None:
            return (
                LAUNCH_IMPOSSIBLE,
                f"implication proves net {net!r} can never be {launch_value}",
            )
        return None


def prove_stuck_at_untestable(
    circuit: "LogicCircuit",
    faults: Iterable["StuckAtFault"],
    prover: StaticUntestabilityProver | None = None,
) -> dict[str, StaticProof]:
    """Proofs for every provably untestable stuck-at fault, keyed by fault key."""
    prover = prover or StaticUntestabilityProver(circuit)
    proofs: dict[str, StaticProof] = {}
    for fault in faults:
        found = prover.prove_stuck_at(fault.net, fault.value)
        if found is not None:
            reason, detail = found
            proofs[fault.key] = StaticProof(fault.key, reason, detail)
    return proofs


def prove_transition_untestable(
    circuit: "LogicCircuit",
    faults: Iterable["TransitionFault"],
    prover: StaticUntestabilityProver | None = None,
) -> dict[str, StaticProof]:
    """Proofs for every provably untestable transition fault, keyed by fault key."""
    prover = prover or StaticUntestabilityProver(circuit)
    proofs: dict[str, StaticProof] = {}
    for fault in faults:
        found = prover.prove_transition(fault.net, fault.launch_value)
        if found is not None:
            reason, detail = found
            proofs[fault.key] = StaticProof(fault.key, reason, detail)
    return proofs
