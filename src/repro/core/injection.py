"""Injection of the diode-resistor OBD model into transistor-level circuits.

The injected network follows Figure 3b of the paper:

* a resistor from the defective transistor's **gate** to an internal
  breakdown node ``X`` (the breakdown spot);
* two pn junctions between ``X`` and the **source** and **drain** diffusions,
  oriented by device polarity (for an NMOS the spot sits in the p-substrate,
  so the junction anodes are at ``X``; for a PMOS the spot sits in the n-well,
  so the junction anodes are at the p+ source/drain);
* a large resistor from ``X`` to the **bulk**, modeling the distant substrate
  connection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..cells.builder import CellInstance, TransistorSite
from ..cells.fixtures import GateHarness
from ..spice.elements import DiodeModel
from ..spice.netlist import Circuit
from .breakdown import BreakdownParameters
from .defect import OBDDefect


@dataclass(frozen=True)
class InjectedDefect:
    """Bookkeeping for a defect injected into a circuit."""

    defect: OBDDefect
    site: TransistorSite
    breakdown_node: str
    element_names: tuple[str, ...]


def inject_at_site(
    circuit: Circuit,
    site: TransistorSite,
    parameters: BreakdownParameters,
    label: str | None = None,
) -> InjectedDefect:
    """Attach the breakdown network to one transistor of *circuit*.

    Parameters
    ----------
    circuit:
        Circuit containing the transistor (the circuit is modified in place).
    site:
        The transistor to break down, as reported by the cell builders.
    parameters:
        Electrical parameters of the breakdown network.
    label:
        Optional prefix for the injected element names (defaults to
        ``obd:<element name>``).
    """
    prefix = label or f"obd:{site.element_name}"
    node_x = f"{prefix}:x"
    diode_model = DiodeModel(
        saturation_current=parameters.saturation_current,
        ideality=parameters.ideality,
    )

    names: list[str] = []

    def _add(name: str, adder: Callable[[], object]) -> None:
        adder()
        names.append(name)

    r_name = f"{prefix}:rgate"
    _add(r_name, lambda: circuit.add_resistor(r_name, site.gate, node_x, parameters.resistance))

    if site.polarity == "n":
        # Breakdown spot in the p-substrate: junctions point from X into the
        # n+ source/drain diffusions.
        ds_name = f"{prefix}:dsrc"
        dd_name = f"{prefix}:ddrn"
        _add(ds_name, lambda: circuit.add_diode(ds_name, node_x, site.source, diode_model))
        _add(dd_name, lambda: circuit.add_diode(dd_name, node_x, site.drain, diode_model))
    else:
        # Breakdown spot in the n-well: junctions point from the p+
        # source/drain diffusions into X.
        ds_name = f"{prefix}:dsrc"
        dd_name = f"{prefix}:ddrn"
        _add(ds_name, lambda: circuit.add_diode(ds_name, site.source, node_x, diode_model))
        _add(dd_name, lambda: circuit.add_diode(dd_name, site.drain, node_x, diode_model))

    rsub_name = f"{prefix}:rsub"
    _add(
        rsub_name,
        lambda: circuit.add_resistor(rsub_name, node_x, site.bulk, parameters.substrate_resistance),
    )

    return InjectedDefect(
        defect=OBDDefect(site=site.site, gate=None),
        site=site,
        breakdown_node=node_x,
        element_names=tuple(names),
    )


def inject_into_cell(
    circuit: Circuit,
    cell: CellInstance,
    defect: OBDDefect,
) -> InjectedDefect:
    """Inject *defect* into the matching transistor of a placed cell."""
    site = cell.site(defect.site)
    if site.polarity != defect.polarity:
        raise ValueError(
            f"defect {defect} polarity does not match transistor {site.element_name}"
        )
    injected = inject_at_site(circuit, site, defect.effective_parameters, label=f"obd:{cell.name}:{defect.site}")
    return InjectedDefect(
        defect=defect.in_gate(cell.name),
        site=site,
        breakdown_node=injected.breakdown_node,
        element_names=injected.element_names,
    )


def inject_into_harness(harness: GateHarness, defect: OBDDefect) -> InjectedDefect:
    """Inject *defect* into the device under test of a Figure-5 harness."""
    return inject_into_cell(harness.circuit, harness.dut, defect)


def remove_injection(circuit: Circuit, injected: InjectedDefect) -> None:
    """Remove a previously injected breakdown network from *circuit*."""
    for name in injected.element_names:
        if name in circuit:
            circuit.remove(name)


def harness_preparer(defect: OBDDefect | None) -> Callable[[GateHarness], None]:
    """A ``prepare`` callback for :func:`repro.cells.characterize.characterize_harness`.

    Passing ``None`` returns a no-op preparer (fault-free reference run).
    """

    def _prepare(harness: GateHarness) -> None:
        if defect is not None:
            inject_into_harness(harness, defect)

    return _prepare
