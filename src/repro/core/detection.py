"""Necessary-and-sufficient gate test sets for OBD defects.

Section 4.1 of the paper derives, for the 2-input NAND, that one sequence
from {(10,11), (00,11), (01,11)} together with the sequences (11,10) and
(11,01) is necessary and sufficient to detect all four OBD defects; Section 5
gives the analogous result for the NOR.  This module computes those sets for
any supported gate from the excitation analysis, and compares them with the
test requirements of intra-gate electromigration (EM) defects.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable

from ..logic.gates import GateType
from .excitation import (
    Sequence2,
    all_sequences,
    excitation_conditions,
    excited_sites,
    format_sequence,
    gate_structure,
)


@dataclass(frozen=True)
class GateTestSet:
    """Summary of the per-gate OBD (or EM) detection requirements.

    Attributes
    ----------
    gate_type:
        The gate analysed.
    mode:
        ``"obd"`` or ``"em"``.
    site_conditions:
        For every defect site, the full list of detecting sequences.
    minimal_set:
        One minimum-cardinality set of sequences covering every detectable
        site (computed exactly for these small gates).
    undetectable_sites:
        Sites with no detecting sequence at all.
    essential_groups:
        The "necessary" structure the paper reports: for each equivalence
        class of sites, the alternative sequences any covering set must pick
        one of.
    """

    gate_type: GateType
    mode: str
    site_conditions: dict[str, tuple[Sequence2, ...]]
    minimal_set: tuple[Sequence2, ...]
    undetectable_sites: tuple[str, ...]
    essential_groups: tuple[tuple[Sequence2, ...], ...]

    @property
    def minimal_size(self) -> int:
        return len(self.minimal_set)

    def detects(self, sequences: Iterable[Sequence2]) -> set[str]:
        """Sites detected by the given collection of sequences."""
        chosen = set(sequences)
        return {
            site
            for site, conditions in self.site_conditions.items()
            if chosen.intersection(conditions)
        }

    def covers_all(self, sequences: Iterable[Sequence2]) -> bool:
        """True when *sequences* detect every detectable site."""
        detectable = {s for s, c in self.site_conditions.items() if c}
        return detectable.issubset(self.detects(sequences))

    def describe(self) -> str:
        """Human-readable summary in the paper's notation."""
        lines = [f"{self.gate_type.value} {self.mode.upper()} test requirements:"]
        for site, conditions in sorted(self.site_conditions.items()):
            if not conditions:
                lines.append(f"  {site}: undetectable")
                continue
            rendered = ", ".join(format_sequence(seq) for seq in conditions)
            lines.append(f"  {site}: any of {{{rendered}}}")
        rendered_min = ", ".join(format_sequence(seq) for seq in self.minimal_set)
        lines.append(f"  minimal covering set ({self.minimal_size}): {{{rendered_min}}}")
        return "\n".join(lines)


def analyze_gate(gate_type: GateType | str, mode: str = "obd") -> GateTestSet:
    """Compute the per-site conditions and a minimum covering test set."""
    gate_type = GateType(gate_type)
    structure = gate_structure(gate_type)
    site_conditions = {
        site: tuple(excitation_conditions(gate_type, site, mode=mode))
        for site in structure.sites
    }
    detectable = {site for site, conds in site_conditions.items() if conds}
    undetectable = tuple(sorted(set(structure.sites) - detectable))

    minimal = _minimum_cover(gate_type, site_conditions, detectable, mode)
    groups = _essential_groups(site_conditions, detectable)
    return GateTestSet(
        gate_type=gate_type,
        mode=mode,
        site_conditions=site_conditions,
        minimal_set=minimal,
        undetectable_sites=undetectable,
        essential_groups=groups,
    )


def _minimum_cover(
    gate_type: GateType,
    site_conditions: dict[str, tuple[Sequence2, ...]],
    detectable: set[str],
    mode: str,
) -> tuple[Sequence2, ...]:
    """Exact minimum set cover over the gate's candidate sequences."""
    if not detectable:
        return ()
    candidates = [
        seq
        for seq in all_sequences(gate_type)
        if excited_sites(gate_type, seq, mode=mode) & detectable
    ]
    for size in range(1, len(candidates) + 1):
        for combo in combinations(candidates, size):
            covered: set[str] = set()
            for seq in combo:
                covered |= excited_sites(gate_type, seq, mode=mode)
            if detectable.issubset(covered):
                return tuple(combo)
    return tuple(candidates)


def _essential_groups(
    site_conditions: dict[str, tuple[Sequence2, ...]],
    detectable: set[str],
) -> tuple[tuple[Sequence2, ...], ...]:
    """Group sites by their exact set of detecting sequences.

    Each group's sequence list is the set of interchangeable alternatives any
    complete test set must draw at least one element from (the paper's "one
    of {(10,11), (00,11), (01,11)}" phrasing).
    """
    by_conditions: dict[tuple[Sequence2, ...], list[str]] = {}
    for site in sorted(detectable):
        key = tuple(sorted(site_conditions[site]))
        by_conditions.setdefault(key, []).append(site)
    return tuple(sorted(by_conditions.keys(), key=lambda conds: (len(conds), conds)))


# --------------------------------------------------------------------------- #
# Paper-stated reference sets (used by tests and the experiment reports).
# --------------------------------------------------------------------------- #
NAND2_PAPER_FALLING_ALTERNATIVES: tuple[Sequence2, ...] = (
    ((1, 0), (1, 1)),
    ((0, 0), (1, 1)),
    ((0, 1), (1, 1)),
)
NAND2_PAPER_PA_SEQUENCE: Sequence2 = ((1, 1), (0, 1))
NAND2_PAPER_PB_SEQUENCE: Sequence2 = ((1, 1), (1, 0))

NOR2_PAPER_RISING_ALTERNATIVES: tuple[Sequence2, ...] = (
    ((1, 0), (0, 0)),
    ((0, 1), (0, 0)),
    ((1, 1), (0, 0)),
)
NOR2_PAPER_NA_SEQUENCE: Sequence2 = ((0, 0), (1, 0))
NOR2_PAPER_NB_SEQUENCE: Sequence2 = ((0, 0), (0, 1))


def paper_nand_test_set() -> list[Sequence2]:
    """The paper's necessary-and-sufficient NAND test set (one falling choice)."""
    return [
        NAND2_PAPER_FALLING_ALTERNATIVES[0],
        NAND2_PAPER_PB_SEQUENCE,
        NAND2_PAPER_PA_SEQUENCE,
    ]


def paper_nor_test_set() -> list[Sequence2]:
    """The paper's necessary-and-sufficient NOR test set (one rising choice)."""
    return [
        NOR2_PAPER_RISING_ALTERNATIVES[0],
        NOR2_PAPER_NA_SEQUENCE,
        NOR2_PAPER_NB_SEQUENCE,
    ]


def paper_nand_em_test_set() -> list[Sequence2]:
    """The EM test set the paper quotes for the NAND (Section 5)."""
    return [
        NAND2_PAPER_PA_SEQUENCE,
        NAND2_PAPER_PB_SEQUENCE,
        NAND2_PAPER_FALLING_ALTERNATIVES[2],
    ]


@dataclass(frozen=True)
class EmObdComparison:
    """Comparison of EM-oriented and OBD-oriented test requirements."""

    gate_type: GateType
    em_minimal: tuple[Sequence2, ...]
    obd_minimal: tuple[Sequence2, ...]
    em_set_covers_obd: bool
    obd_sites_missed_by_em_minimal: tuple[str, ...]

    def describe(self) -> str:
        em = ", ".join(format_sequence(s) for s in self.em_minimal)
        obd = ", ".join(format_sequence(s) for s in self.obd_minimal)
        missed = ", ".join(self.obd_sites_missed_by_em_minimal) or "none"
        return (
            f"{self.gate_type.value}: minimal EM set {{{em}}} "
            f"({len(self.em_minimal)} seqs), minimal OBD set {{{obd}}} "
            f"({len(self.obd_minimal)} seqs); EM-minimal covers OBD: "
            f"{self.em_set_covers_obd} (missed sites: {missed})"
        )


def compare_em_and_obd(gate_type: GateType | str) -> EmObdComparison:
    """Does a minimum EM-oriented test set also detect every OBD defect?

    This quantifies the paper's Section-5 warning: because EM only needs
    current through the device while OBD needs the device to be the sole
    conducting path, a test set that is minimal for EM can miss OBD defects
    (the effect shows up on gates with parallel branches).
    """
    gate_type = GateType(gate_type)
    em = analyze_gate(gate_type, mode="em")
    obd = analyze_gate(gate_type, mode="obd")

    detectable_obd = {s for s, c in obd.site_conditions.items() if c}
    covered = set()
    for seq in em.minimal_set:
        covered |= excited_sites(gate_type, seq, mode="obd")
    missed = tuple(sorted(detectable_obd - covered))
    return EmObdComparison(
        gate_type=gate_type,
        em_minimal=em.minimal_set,
        obd_minimal=obd.minimal_set,
        em_set_covers_obd=not missed,
        obd_sites_missed_by_em_minimal=missed,
    )
