"""Oxide-breakdown defect descriptions.

An :class:`OBDDefect` identifies *where* a breakdown occurs (which transistor
of which gate) and *how far* it has progressed (its stage, or explicit
electrical parameters).  The circuit-level realization of the defect lives in
:mod:`repro.core.injection`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from .breakdown import BreakdownParameters, BreakdownStage, stage_parameters


@dataclass(frozen=True)
class OBDDefect:
    """A single oxide-breakdown defect.

    Attributes
    ----------
    site:
        Paper-style site label within the gate: polarity letter plus the
        logical input pin, e.g. ``"NA"`` (NMOS driven by input A) or ``"PB"``.
    stage:
        Breakdown stage; determines the electrical parameters unless
        *parameters* overrides them.
    gate:
        Name of the gate instance holding the defective transistor.  For
        single-gate experiments (the Figure-5 harness) this can stay None,
        meaning "the device under test".
    parameters:
        Optional explicit :class:`BreakdownParameters`; when None, the
        Table-1 ladder for the site's polarity and the chosen stage is used.
    """

    site: str
    stage: BreakdownStage = BreakdownStage.MBD1
    gate: Optional[str] = None
    parameters: Optional[BreakdownParameters] = None

    def __post_init__(self):
        label = self.site.upper()
        if len(label) < 2 or label[0] not in ("N", "P"):
            raise ValueError(
                f"site label must be a polarity letter followed by a pin, got {self.site!r}"
            )
        object.__setattr__(self, "site", label)

    # ------------------------------------------------------------------ #
    @property
    def polarity(self) -> str:
        """Device polarity implied by the site label ('n' or 'p')."""
        return self.site[0].lower()

    @property
    def input_pin(self) -> str:
        """Logical input pin driving the defective transistor."""
        return self.site[1:]

    @property
    def effective_parameters(self) -> BreakdownParameters:
        """Electrical parameters to inject (explicit or stage-derived)."""
        if self.parameters is not None:
            return self.parameters
        return stage_parameters(self.polarity, self.stage)

    def at_stage(self, stage: BreakdownStage) -> "OBDDefect":
        """Copy of the defect at a different progression stage."""
        return replace(self, stage=stage, parameters=None)

    def in_gate(self, gate: str) -> "OBDDefect":
        """Copy of the defect bound to a specific gate instance."""
        return replace(self, gate=gate)

    @property
    def key(self) -> str:
        """Stable identifier, e.g. ``"g7/PA@mbd2"``."""
        prefix = f"{self.gate}/" if self.gate else ""
        return f"{prefix}{self.site}@{self.stage.value}"

    def __str__(self) -> str:
        return self.key


def defect_sites_for_gate(num_inputs: int) -> list[str]:
    """All site labels of a simple CMOS gate with *num_inputs* inputs.

    A static CMOS NAND/NOR has one NMOS and one PMOS per input, hence
    ``2 * num_inputs`` distinct OBD defect sites -- the "4 OBD defects" of a
    2-input gate and the ``56 distinct locations for OBD defects in the 14
    NAND gates`` of the paper's full-adder example.
    """
    from ..cells.builder import pin_names

    pins = pin_names(num_inputs)
    return [f"N{p}" for p in pins] + [f"P{p}" for p in pins]
