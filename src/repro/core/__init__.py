"""The paper's contribution: the oxide-breakdown (OBD) defect model.

* :mod:`repro.core.breakdown` -- stage ladder and diode-resistor parameters
  (Table 1, Figure 3).
* :mod:`repro.core.defect` -- defect-site descriptions.
* :mod:`repro.core.injection` -- attaching the breakdown network to
  transistor-level circuits.
* :mod:`repro.core.progression` -- temporal SBD-to-HBD progression and the
  detection window of opportunity (Section 3.1, 4.2).
* :mod:`repro.core.excitation` -- gate-level excitation rules (Section 4.1, 5).
* :mod:`repro.core.detection` -- necessary-and-sufficient gate test sets and
  the EM-versus-OBD comparison.
"""

from .breakdown import (
    NMOS_STAGE_PARAMETERS,
    PMOS_STAGE_PARAMETERS,
    TABLE1_NMOS_STAGES,
    TABLE1_PMOS_STAGES,
    BreakdownParameters,
    BreakdownStage,
    stage_ladder,
    stage_parameters,
)
from .defect import OBDDefect, defect_sites_for_gate
from .detection import (
    EmObdComparison,
    GateTestSet,
    analyze_gate,
    compare_em_and_obd,
    paper_nand_em_test_set,
    paper_nand_test_set,
    paper_nor_test_set,
)
from .excitation import (
    GateStructure,
    Sequence2,
    SwitchDevice,
    all_sequences,
    excitation_conditions,
    excited_sites,
    format_sequence,
    gate_structure,
    is_excited_obd,
    is_exercised_em,
    output_switches,
    parse_sequence,
)
from .injection import (
    InjectedDefect,
    harness_preparer,
    inject_at_site,
    inject_into_cell,
    inject_into_harness,
    remove_injection,
)
from .progression import DEFAULT_SBD_TO_HBD_SECONDS, ProgressionModel

__all__ = [
    "BreakdownStage",
    "BreakdownParameters",
    "NMOS_STAGE_PARAMETERS",
    "PMOS_STAGE_PARAMETERS",
    "TABLE1_NMOS_STAGES",
    "TABLE1_PMOS_STAGES",
    "stage_parameters",
    "stage_ladder",
    "OBDDefect",
    "defect_sites_for_gate",
    "InjectedDefect",
    "inject_at_site",
    "inject_into_cell",
    "inject_into_harness",
    "remove_injection",
    "harness_preparer",
    "ProgressionModel",
    "DEFAULT_SBD_TO_HBD_SECONDS",
    "GateStructure",
    "SwitchDevice",
    "Sequence2",
    "gate_structure",
    "all_sequences",
    "is_excited_obd",
    "is_exercised_em",
    "output_switches",
    "excitation_conditions",
    "excited_sites",
    "format_sequence",
    "parse_sequence",
    "GateTestSet",
    "analyze_gate",
    "EmObdComparison",
    "compare_em_and_obd",
    "paper_nand_test_set",
    "paper_nor_test_set",
    "paper_nand_em_test_set",
]
