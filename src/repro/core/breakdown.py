"""Oxide-breakdown stages and the diode-resistor model parameters.

The paper (Section 3.2, Figure 3) models a breakdown spot as a resistive
connection from the gate to a point inside the oxide, followed by pn
junctions to the source and the drain, plus a high-resistance connection to
the substrate.  Progression of the breakdown is captured by *increasing* the
diode saturation currents and *decreasing* the series resistance; Table 1
gives the exact ladder used for the NAND experiments, which is reproduced
verbatim here.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class BreakdownStage(Enum):
    """Stages of the progressive oxide-breakdown process (Figure 1).

    ``FAULT_FREE`` is the paper's baseline row (the breakdown network is
    present but with negligible parameters); ``SBD`` is the early soft
    breakdown, ``MBD1``..``MBD3`` are the medium-breakdown points of Table 1,
    and ``HBD`` is the final hard breakdown (gate-oxide short).
    """

    FAULT_FREE = "fault_free"
    SBD = "sbd"
    MBD1 = "mbd1"
    MBD2 = "mbd2"
    MBD3 = "mbd3"
    HBD = "hbd"

    @property
    def order(self) -> int:
        """Monotonic severity index (0 = fault free, 5 = hard breakdown)."""
        return _STAGE_ORDER[self]

    def __lt__(self, other: "BreakdownStage") -> bool:
        if not isinstance(other, BreakdownStage):
            return NotImplemented
        return self.order < other.order

    @classmethod
    def progression(cls) -> list["BreakdownStage"]:
        """All stages from fault-free to hard breakdown, in order."""
        return sorted(cls, key=lambda s: s.order)

    @classmethod
    def medium_stages(cls) -> list["BreakdownStage"]:
        """The detectable window: the three medium-breakdown stages."""
        return [cls.MBD1, cls.MBD2, cls.MBD3]


_STAGE_ORDER = {
    BreakdownStage.FAULT_FREE: 0,
    BreakdownStage.SBD: 1,
    BreakdownStage.MBD1: 2,
    BreakdownStage.MBD2: 3,
    BreakdownStage.MBD3: 4,
    BreakdownStage.HBD: 5,
}


@dataclass(frozen=True)
class BreakdownParameters:
    """Electrical parameters of the Figure-3 diode-resistor breakdown model.

    Attributes
    ----------
    saturation_current:
        Saturation current of the two pn junctions, in amperes.
    resistance:
        Resistance of the gate-to-breakdown-spot path, in ohms.
    substrate_resistance:
        Resistance of the (distant) connection from the breakdown spot to the
        substrate; the paper assumes it is large.
    ideality:
        Emission coefficient of the junctions.
    """

    saturation_current: float
    resistance: float
    substrate_resistance: float = 10e6
    ideality: float = 1.0

    def __post_init__(self):
        if self.saturation_current <= 0.0:
            raise ValueError("saturation current must be > 0")
        if self.resistance <= 0.0:
            raise ValueError("breakdown resistance must be > 0")
        if self.substrate_resistance <= 0.0:
            raise ValueError("substrate resistance must be > 0")


# --------------------------------------------------------------------------- #
# Table 1 parameter ladders.
#
# NMOS columns of Table 1:      Isat        R
#   Fault Free                  1e-30       10 kOhm
#   MBD1                        2e-28       500 Ohm
#   MBD2                        1e-27       100 Ohm
#   MBD3                        5e-27       20 Ohm
#   HBD                         2e-24       0.05 Ohm
#
# PMOS columns of Table 1:      Isat        R
#   Fault Free                  1e-30       10 kOhm
#   MBD1                        1e-29       1 kOhm
#   MBD2                        1.1e-29     900 Ohm
#   MBD3                        1.2e-29     830 Ohm
#   HBD                         (not given; the paper marks it N/A)
#
# The SBD rows are not tabulated by the paper; they are geometric midpoints
# between the fault-free and MBD1 parameters, provided so that the Figure-4
# style "soft breakdown" curves can be generated.
# --------------------------------------------------------------------------- #

NMOS_STAGE_PARAMETERS: dict[BreakdownStage, BreakdownParameters] = {
    BreakdownStage.FAULT_FREE: BreakdownParameters(1e-30, 10_000.0),
    BreakdownStage.SBD: BreakdownParameters(1e-29, 2_000.0),
    BreakdownStage.MBD1: BreakdownParameters(2e-28, 500.0),
    BreakdownStage.MBD2: BreakdownParameters(1e-27, 100.0),
    BreakdownStage.MBD3: BreakdownParameters(5e-27, 20.0),
    BreakdownStage.HBD: BreakdownParameters(2e-24, 0.05),
}

PMOS_STAGE_PARAMETERS: dict[BreakdownStage, BreakdownParameters] = {
    BreakdownStage.FAULT_FREE: BreakdownParameters(1e-30, 10_000.0),
    BreakdownStage.SBD: BreakdownParameters(3e-30, 3_000.0),
    BreakdownStage.MBD1: BreakdownParameters(1e-29, 1_000.0),
    BreakdownStage.MBD2: BreakdownParameters(1.1e-29, 900.0),
    BreakdownStage.MBD3: BreakdownParameters(1.2e-29, 830.0),
    # The paper stops the PMOS ladder at MBD3 ("N/A" for HBD).  A hard
    # breakdown is a gate-oxide short for either polarity, so the NMOS HBD
    # values are reused here as a documented extrapolation.
    BreakdownStage.HBD: BreakdownParameters(2e-24, 0.05),
}

#: Stages for which the paper's Table 1 provides measured parameters.
TABLE1_NMOS_STAGES = (
    BreakdownStage.FAULT_FREE,
    BreakdownStage.MBD1,
    BreakdownStage.MBD2,
    BreakdownStage.MBD3,
    BreakdownStage.HBD,
)
TABLE1_PMOS_STAGES = (
    BreakdownStage.FAULT_FREE,
    BreakdownStage.MBD1,
    BreakdownStage.MBD2,
    BreakdownStage.MBD3,
)


def stage_parameters(polarity: str, stage: BreakdownStage) -> BreakdownParameters:
    """Table-1 breakdown parameters for the given device polarity and stage."""
    polarity = polarity.lower()
    if polarity == "n":
        return NMOS_STAGE_PARAMETERS[stage]
    if polarity == "p":
        return PMOS_STAGE_PARAMETERS[stage]
    raise ValueError(f"polarity must be 'n' or 'p', got {polarity!r}")


def stage_ladder(polarity: str) -> dict[BreakdownStage, BreakdownParameters]:
    """The full stage ladder for a device polarity (copy of the module table)."""
    polarity = polarity.lower()
    if polarity == "n":
        return dict(NMOS_STAGE_PARAMETERS)
    if polarity == "p":
        return dict(PMOS_STAGE_PARAMETERS)
    raise ValueError(f"polarity must be 'n' or 'p', got {polarity!r}")
