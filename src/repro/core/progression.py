"""Temporal progression of oxide breakdown and the detection window.

Section 3.3 / 4.2 of the paper: the time between the first soft-breakdown
event and the final hard breakdown is roughly 27 hours (for the PFET with a
15 angstrom oxide measured by Linder et al.), and the growth of the leakage
current over that interval is *exponential*.  Consequently the practical
window for detecting the defect -- after the delay becomes observable but
before hard breakdown endangers the rest of the circuit -- is much shorter
than the full interval, and fault-tolerance schemes must schedule their
test/diagnose/repair actions accordingly.

This module models that progression as an exponential interpolation of the
diode saturation current between the soft- and hard-breakdown values, with
the series resistance interpolated logarithmically as well, and maps times to
the discrete stages of Table 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .breakdown import BreakdownParameters, BreakdownStage, stage_ladder

#: SBD-to-HBD interval quoted by the paper (27 hours), in seconds.
DEFAULT_SBD_TO_HBD_SECONDS = 27.0 * 3600.0


@dataclass(frozen=True)
class ProgressionModel:
    """Exponential-growth model of a single breakdown spot.

    Attributes
    ----------
    polarity:
        Device polarity ('n' or 'p'); selects the Table-1 parameter ladder.
    time_to_hbd:
        Time from the onset of soft breakdown to hard breakdown, in seconds.
    onset_time:
        Absolute time at which soft breakdown starts (defaults to 0).
    """

    polarity: str = "n"
    time_to_hbd: float = DEFAULT_SBD_TO_HBD_SECONDS
    onset_time: float = 0.0

    def __post_init__(self):
        if self.polarity.lower() not in ("n", "p"):
            raise ValueError("polarity must be 'n' or 'p'")
        if self.time_to_hbd <= 0.0:
            raise ValueError("time_to_hbd must be > 0")

    # ------------------------------------------------------------------ #
    @property
    def ladder(self) -> dict[BreakdownStage, BreakdownParameters]:
        return stage_ladder(self.polarity)

    @property
    def hbd_time(self) -> float:
        """Absolute time of hard breakdown."""
        return self.onset_time + self.time_to_hbd

    def _log_interp(self, start: float, stop: float, fraction: float) -> float:
        return math.exp(math.log(start) + fraction * (math.log(stop) - math.log(start)))

    def saturation_current_at(self, time: float) -> float:
        """Junction saturation current at absolute *time* (exponential growth)."""
        ladder = self.ladder
        i_start = ladder[BreakdownStage.SBD].saturation_current
        i_stop = ladder[BreakdownStage.HBD].saturation_current
        if time <= self.onset_time:
            return ladder[BreakdownStage.FAULT_FREE].saturation_current
        fraction = min((time - self.onset_time) / self.time_to_hbd, 1.0)
        return self._log_interp(i_start, i_stop, fraction)

    def resistance_at(self, time: float) -> float:
        """Breakdown path resistance at absolute *time* (log interpolation)."""
        ladder = self.ladder
        r_start = ladder[BreakdownStage.SBD].resistance
        r_stop = ladder[BreakdownStage.HBD].resistance
        if time <= self.onset_time:
            return ladder[BreakdownStage.FAULT_FREE].resistance
        fraction = min((time - self.onset_time) / self.time_to_hbd, 1.0)
        return self._log_interp(r_start, r_stop, fraction)

    def parameters_at(self, time: float) -> BreakdownParameters:
        """Continuous-model breakdown parameters at absolute *time*."""
        base = self.ladder[BreakdownStage.FAULT_FREE]
        return BreakdownParameters(
            saturation_current=self.saturation_current_at(time),
            resistance=self.resistance_at(time),
            substrate_resistance=base.substrate_resistance,
            ideality=base.ideality,
        )

    # ------------------------------------------------------------------ #
    def stage_at(self, time: float) -> BreakdownStage:
        """Discrete Table-1 stage reached by absolute *time*.

        The stage is the most severe one whose saturation current has been
        reached (saturation current grows monotonically with severity for
        the NMOS ladder; for the PMOS ladder, where the tabulated currents
        are nearly constant, the resistance decrease is used instead).
        """
        if time <= self.onset_time:
            return BreakdownStage.FAULT_FREE
        if time >= self.hbd_time:
            return BreakdownStage.HBD
        isat = self.saturation_current_at(time)
        resistance = self.resistance_at(time)
        reached = BreakdownStage.SBD
        for stage in BreakdownStage.progression():
            if stage == BreakdownStage.FAULT_FREE:
                continue
            params = self.ladder[stage]
            if isat >= params.saturation_current and resistance <= params.resistance:
                reached = stage
        return reached

    def time_of_stage(self, stage: BreakdownStage) -> float:
        """Earliest absolute time at which *stage* is reached."""
        if stage == BreakdownStage.FAULT_FREE:
            return self.onset_time
        if stage == BreakdownStage.HBD:
            return self.hbd_time
        ladder = self.ladder
        i_start = ladder[BreakdownStage.SBD].saturation_current
        i_stop = ladder[BreakdownStage.HBD].saturation_current
        r_start = ladder[BreakdownStage.SBD].resistance
        r_stop = ladder[BreakdownStage.HBD].resistance
        target = ladder[stage]
        # Invert both interpolations and take the later (both must be reached).
        frac_i = _safe_log_fraction(i_start, i_stop, target.saturation_current)
        frac_r = _safe_log_fraction(r_start, r_stop, target.resistance)
        fraction = max(frac_i, frac_r)
        return self.onset_time + fraction * self.time_to_hbd

    def detection_window(
        self,
        first_detectable: BreakdownStage = BreakdownStage.MBD1,
        last_safe: BreakdownStage = BreakdownStage.HBD,
    ) -> tuple[float, float]:
        """(start, end) of the window in which the defect can and should be caught.

        The window opens when the defect reaches *first_detectable* (the first
        stage whose delay is observable by the detection mechanism) and closes
        when it reaches *last_safe* (by default hard breakdown, after which
        the paper warns the upstream driver and supply are endangered).
        """
        start = self.time_of_stage(first_detectable)
        end = self.time_of_stage(last_safe)
        if end < start:
            raise ValueError("detection window is empty (last_safe precedes first_detectable)")
        return start, end

    def window_fraction(
        self,
        first_detectable: BreakdownStage = BreakdownStage.MBD1,
        last_safe: BreakdownStage = BreakdownStage.HBD,
    ) -> float:
        """Detection window length as a fraction of the full SBD-to-HBD time."""
        start, end = self.detection_window(first_detectable, last_safe)
        return (end - start) / self.time_to_hbd


def _safe_log_fraction(start: float, stop: float, value: float) -> float:
    """Fraction f in [0, 1] with value = exp(log(start) + f*(log(stop)-log(start)))."""
    if start == stop:
        return 0.0
    fraction = (math.log(value) - math.log(start)) / (math.log(stop) - math.log(start))
    return min(max(fraction, 0.0), 1.0)
