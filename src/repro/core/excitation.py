"""Gate-level excitation analysis for oxide-breakdown defects.

Section 4.1 and Section 5 of the paper reduce the circuit-level behaviour to
a structural rule:

    "The OBD breakdown of a transistor can be detected at an output node only
    if that transistor is excited at the switching of the output node and if
    no other transistor that is connected to the defective transistor in
    parallel is excited."

This module implements that rule on a switch-level view of each gate: the
pull-up and pull-down networks are graphs of transistor "switches", a
two-pattern sequence excites a defect when the output switches, the defective
device conducts in the second pattern, and every conducting path of the
switching network runs through it (no parallel bypass).

The same machinery also evaluates the *electromigration* (EM) exercise
condition used by the Section-5 comparison: an EM defect in a transistor is
exercised whenever switching current flows through the device, i.e. it lies
on at least one conducting path -- a strictly weaker requirement.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Sequence

from ..cells.builder import build_cell, pin_names
from ..cells.technology import default_technology
from ..logic.gates import GateType, all_input_patterns, evaluate_gate
from ..spice.netlist import Circuit

#: A two-pattern sequence on a gate's inputs, e.g. ((0, 1), (1, 1)).
Sequence2 = tuple[tuple[int, ...], tuple[int, ...]]


@dataclass(frozen=True)
class SwitchDevice:
    """A transistor viewed as a switch between two network nodes."""

    site: str
    input_pin: str
    polarity: str
    node_a: str
    node_b: str

    def conducts(self, pattern: Sequence[int], pins: Sequence[str]) -> bool:
        """True when the device is turned on by the given input pattern."""
        bit = pattern[list(pins).index(self.input_pin)]
        return bit == 1 if self.polarity == "n" else bit == 0


@dataclass(frozen=True)
class GateStructure:
    """Switch-level view of one gate type."""

    gate_type: GateType
    pins: tuple[str, ...]
    output_node: str
    power_node: str
    ground_node: str
    pull_up: tuple[SwitchDevice, ...]
    pull_down: tuple[SwitchDevice, ...]

    @property
    def sites(self) -> list[str]:
        return [d.site for d in self.pull_up + self.pull_down]

    def device(self, site: str) -> SwitchDevice:
        for dev in self.pull_up + self.pull_down:
            if dev.site == site.upper():
                return dev
        raise KeyError(f"{self.gate_type.value} has no transistor site {site!r}")

    def network_of(self, site: str) -> tuple[str, tuple[SwitchDevice, ...]]:
        """Return ("pull_up"|"pull_down", devices) for the network holding *site*."""
        site = site.upper()
        if any(d.site == site for d in self.pull_up):
            return "pull_up", self.pull_up
        if any(d.site == site for d in self.pull_down):
            return "pull_down", self.pull_down
        raise KeyError(f"{self.gate_type.value} has no transistor site {site!r}")


@lru_cache(maxsize=None)
def gate_structure(gate_type: GateType | str) -> GateStructure:
    """Switch-level structure of a gate type, derived from the cell library.

    The structure is obtained by instantiating the transistor-level cell into
    a scratch circuit and reading back its transistor terminal connectivity,
    so the excitation analysis always agrees with the circuits actually
    simulated.
    """
    gate_type = GateType(gate_type)
    if gate_type in (GateType.BUF, GateType.XOR2, GateType.XNOR2, GateType.AND2, GateType.AND3, GateType.OR2, GateType.OR3):
        raise ValueError(
            f"{gate_type.value} is not a single static CMOS stage; decompose it into "
            "INV/NAND/NOR/AOI/OAI cells for OBD analysis"
        )
    pins = tuple(pin_names(gate_type.num_inputs))
    scratch = Circuit(f"structure-{gate_type.value}")
    scratch.add_voltage_source("vdd", "vdd", "0", dc=default_technology().vdd)
    cell = build_cell(
        scratch,
        default_technology(),
        gate_type.value,
        "g",
        [f"in_{p.lower()}" for p in pins],
        "out",
        vdd="vdd",
        gnd="0",
    )
    pull_up = []
    pull_down = []
    for t in cell.transistors:
        device = SwitchDevice(
            site=t.site,
            input_pin=t.input_pin,
            polarity=t.polarity,
            node_a=t.drain,
            node_b=t.source,
        )
        if t.network == "pull_up":
            pull_up.append(device)
        else:
            pull_down.append(device)
    return GateStructure(
        gate_type=gate_type,
        pins=pins,
        output_node=cell.output,
        power_node=cell.vdd,
        ground_node=cell.gnd,
        pull_up=tuple(pull_up),
        pull_down=tuple(pull_down),
    )


# --------------------------------------------------------------------------- #
# Path analysis on the conducting sub-network.
# --------------------------------------------------------------------------- #
def _conducting_paths(
    structure: GateStructure,
    network: Iterable[SwitchDevice],
    pattern: Sequence[int],
    rail: str,
) -> list[list[SwitchDevice]]:
    """All simple conducting paths from the output node to *rail*."""
    conducting = [d for d in network if d.conducts(pattern, structure.pins)]
    adjacency: dict[str, list[tuple[str, SwitchDevice]]] = {}
    for dev in conducting:
        adjacency.setdefault(dev.node_a, []).append((dev.node_b, dev))
        adjacency.setdefault(dev.node_b, []).append((dev.node_a, dev))

    paths: list[list[SwitchDevice]] = []

    def _walk(node: str, visited: set[str], used: list[SwitchDevice]) -> None:
        if node == rail:
            paths.append(list(used))
            return
        for neighbour, device in adjacency.get(node, []):
            if neighbour in visited or device in used:
                continue
            used.append(device)
            _walk(neighbour, visited | {neighbour}, used)
            used.pop()

    _walk(structure.output_node, {structure.output_node}, [])
    return paths


def _active_network(
    structure: GateStructure, output_value: int
) -> tuple[str, tuple[SwitchDevice, ...], str]:
    """Network responsible for driving the output to *output_value*."""
    if output_value == 0:
        return "pull_down", structure.pull_down, structure.ground_node
    return "pull_up", structure.pull_up, structure.power_node


def output_switches(gate_type: GateType | str, sequence: Sequence2) -> bool:
    """True when the two-pattern sequence toggles the gate output."""
    gate_type = GateType(gate_type)
    v1, v2 = sequence
    return evaluate_gate(gate_type, v1) != evaluate_gate(gate_type, v2)


def is_excited_obd(gate_type: GateType | str, site: str, sequence: Sequence2) -> bool:
    """Does *sequence* excite (make observable) the OBD defect at *site*?

    Implements the paper's rule: the output must switch, the defective
    transistor must conduct in the final pattern as part of the network that
    performs the switching, and no parallel conducting bypass may exist
    (every conducting path must run through the defective device).
    """
    structure = gate_structure(gate_type)
    site = site.upper()
    v1, v2 = sequence
    out1 = evaluate_gate(structure.gate_type, v1)
    out2 = evaluate_gate(structure.gate_type, v2)
    if out1 == out2:
        return False

    network_name, network, rail = _active_network(structure, out2)
    device = structure.device(site)
    owner, _ = structure.network_of(site)
    if owner != network_name:
        return False
    if not device.conducts(v2, structure.pins):
        return False

    paths = _conducting_paths(structure, network, v2, rail)
    if not paths:
        return False
    return all(device in path for path in paths)


def is_exercised_em(gate_type: GateType | str, site: str, sequence: Sequence2) -> bool:
    """Does *sequence* push switching current through the transistor at *site*?

    This is the (weaker) excitation requirement of intra-gate
    electromigration defects used by the Section-5 comparison: the device
    only needs to lie on *some* conducting path of the switching network.
    """
    structure = gate_structure(gate_type)
    site = site.upper()
    v1, v2 = sequence
    out1 = evaluate_gate(structure.gate_type, v1)
    out2 = evaluate_gate(structure.gate_type, v2)
    if out1 == out2:
        return False

    network_name, network, rail = _active_network(structure, out2)
    device = structure.device(site)
    owner, _ = structure.network_of(site)
    if owner != network_name:
        return False
    if not device.conducts(v2, structure.pins):
        return False

    paths = _conducting_paths(structure, network, v2, rail)
    return any(device in path for path in paths)


def all_sequences(gate_type: GateType | str) -> list[Sequence2]:
    """All ordered two-pattern sequences (v1 != v2) on the gate's inputs."""
    gate_type = GateType(gate_type)
    patterns = all_input_patterns(gate_type.num_inputs)
    return [(v1, v2) for v1 in patterns for v2 in patterns if v1 != v2]


def excitation_conditions(
    gate_type: GateType | str, site: str, mode: str = "obd"
) -> list[Sequence2]:
    """All two-pattern sequences that excite the defect at *site*.

    ``mode`` selects the OBD rule (default) or the EM rule.
    """
    predicate = is_excited_obd if mode == "obd" else is_exercised_em
    return [seq for seq in all_sequences(gate_type) if predicate(gate_type, site, seq)]


def excited_sites(gate_type: GateType | str, sequence: Sequence2, mode: str = "obd") -> set[str]:
    """All defect sites of the gate excited by *sequence*."""
    structure = gate_structure(gate_type)
    predicate = is_excited_obd if mode == "obd" else is_exercised_em
    return {site for site in structure.sites if predicate(gate_type, site, sequence)}


def format_sequence(sequence: Sequence2) -> str:
    """Render a sequence the way the paper writes it, e.g. ``(01,11)``."""
    v1, v2 = sequence
    return "({},{})".format("".join(str(b) for b in v1), "".join(str(b) for b in v2))


def parse_sequence(text: str) -> Sequence2:
    """Parse the paper's ``(01,11)`` notation into a sequence tuple."""
    body = text.strip().strip("()")
    first, second = (part.strip() for part in body.split(","))
    if len(first) != len(second):
        raise ValueError(f"pattern widths differ in {text!r}")
    v1 = tuple(int(ch) for ch in first)
    v2 = tuple(int(ch) for ch in second)
    if any(b not in (0, 1) for b in v1 + v2):
        raise ValueError(f"patterns must be binary in {text!r}")
    return v1, v2
