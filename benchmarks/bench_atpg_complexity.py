"""E11 -- Section 5: OBD ATPG has stuck-at-like computational cost."""

from __future__ import annotations

import pytest

from repro.experiments import run_atpg_complexity

from _report import report


@pytest.mark.benchmark(group="atpg-complexity")
def test_atpg_complexity_parity(benchmark):
    result = benchmark.pedantic(run_atpg_complexity, rounds=1, iterations=1)
    report(result.rows())
    assert result.same_order_of_magnitude(factor=50.0)
    for entry in result.circuits:
        assert entry.stuck_at.aborted == 0
        assert entry.obd.aborted == 0
