"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper (see the
experiment index in DESIGN.md) and prints the measured rows next to the
paper's reported values, so running ``pytest benchmarks/ --benchmark-only -s``
reproduces the evaluation section end to end.
"""

from __future__ import annotations

import os
import sys

# Make the sibling helper module importable regardless of how pytest set up
# sys.path for the rootdir.
sys.path.insert(0, os.path.dirname(__file__))


def pytest_sessionfinish(session, exitstatus):
    """Flush fault-simulation perf records to BENCH_faultsim.json."""
    from _report import write_faultsim_report

    path = write_faultsim_report()
    if path:
        print(f"\n[faultsim-bench] wrote {path}")
