"""E4 -- Figure 7: input-specific detection of PMOS OBD defects."""

from __future__ import annotations

import pytest

from repro.experiments import run_fig7

from _report import report


@pytest.mark.benchmark(group="fig7")
def test_fig7_pmos_input_specificity(benchmark):
    result = benchmark.pedantic(lambda: run_fig7(dt=6e-12), rounds=1, iterations=1)
    report(result.rows())
    assert result.input_specific()
    # The excited delay must be well above the fault-free delay for both sites.
    for site in ("PA", "PB"):
        excited = result.excited_delay(site)
        assert excited is None or excited > 1.5 * min(
            m.delay for m in result.fault_free.values()
        )
