"""E8 -- Section 5: necessary-and-sufficient OBD test set for the NOR gate."""

from __future__ import annotations

import pytest

from repro.experiments import run_nor_conditions

from _report import report


@pytest.mark.benchmark(group="gate-conditions")
def test_nor_test_set_derivation(benchmark):
    result = benchmark.pedantic(run_nor_conditions, rounds=3, iterations=1)
    report(result.rows())
    assert result.matches_paper_structure
    assert result.paper_set_covers_all
    assert result.analysis.minimal_size == 3
