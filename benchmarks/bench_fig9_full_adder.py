"""E5 -- Figure 9: propagation of OBD fault effects through the full adder.

Transistor-level simulation of the whole Figure-8 circuit with a single OBD
defect injected into a mid-depth NAND gate; the ATPG-justified input sequence
is applied at the primary inputs and the delayed transition is observed at
the sum output.
"""

from __future__ import annotations

import pytest

from repro.core import BreakdownStage
from repro.experiments import run_fig9

from _report import report

#: NA and PA keep the benchmark around a minute; pass all four sites to
#: ``run_fig9`` for the complete figure.
SITES = ("NA", "PA")


@pytest.mark.benchmark(group="fig9")
def test_fig9_full_adder_propagation(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig9(sites=SITES, stage=BreakdownStage.MBD3, dt=8e-12),
        rounds=1,
        iterations=1,
    )
    report(result.rows())
    assert set(result.cases) == set(SITES)
    assert result.all_observable()
