"""E12 -- Figure 2 motivation: hard breakdown stresses the upstream driver."""

from __future__ import annotations

import pytest

from repro.core import BreakdownStage
from repro.experiments import run_upstream_stress

from _report import report


@pytest.mark.benchmark(group="upstream-stress")
def test_upstream_driver_stress(benchmark):
    result = benchmark.pedantic(run_upstream_stress, rounds=1, iterations=1)
    report(result.rows())
    assert result.current_grows_monotonically()
    fault_free = result.supply_current[BreakdownStage.FAULT_FREE]
    hbd = result.supply_current[BreakdownStage.HBD]
    # Hard breakdown draws orders of magnitude more static current.
    assert hbd > 100.0 * max(fault_free, 1e-9)
    # ...and the defective gate's input level is visibly degraded.
    assert result.input_level[BreakdownStage.HBD] < result.input_level[BreakdownStage.FAULT_FREE]
