"""E2 -- Figure 4: inverter voltage-transfer characteristic under NMOS OBD."""

from __future__ import annotations

import pytest

from repro.core import BreakdownStage
from repro.experiments import run_fig4

from _report import report


@pytest.mark.benchmark(group="fig4")
def test_fig4_inverter_vtc(benchmark):
    result = benchmark.pedantic(lambda: run_fig4(points=67), rounds=1, iterations=1)
    report(result.rows())
    vol = result.vol_by_stage()
    voh = result.voh_by_stage()
    # Paper shape: VOL shifts upward with progression, VOH stays at VDD.
    assert vol[BreakdownStage.HBD] > vol[BreakdownStage.MBD2] > vol[BreakdownStage.FAULT_FREE]
    assert abs(voh[BreakdownStage.HBD] - voh[BreakdownStage.FAULT_FREE]) < 0.1
