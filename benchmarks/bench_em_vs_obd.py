"""E9 -- Section 5: electromigration-oriented versus OBD-oriented test sets."""

from __future__ import annotations

import pytest

from repro.experiments import run_em_comparison
from repro.logic import GateType

from _report import report


@pytest.mark.benchmark(group="em-vs-obd")
def test_em_vs_obd_requirements(benchmark):
    result = benchmark.pedantic(run_em_comparison, rounds=1, iterations=1)
    report(result.rows())
    gaps = result.gates_where_em_misses_obd()
    # The paper's warning: EM-driven test selection can miss OBD defects,
    # especially for complex gates.
    assert GateType.AOI21 in gaps or GateType.OAI21 in gaps
    for comparison in result.comparisons.values():
        assert len(comparison.obd_minimal) >= len(comparison.em_minimal)
