"""E1 -- Table 1: NMOS and PMOS OBD progression (transition delays per stage).

Run with ``pytest benchmarks/bench_table1.py --benchmark-only -s`` to see the
measured table next to the paper's values.
"""

from __future__ import annotations

import pytest

from repro.core import BreakdownStage
from repro.experiments import PAPER_TABLE1_NMOS, PAPER_TABLE1_PMOS, run_table1

from _report import report

#: Reduced stage set keeps the benchmark under ~2 minutes while preserving
#: the fault-free baseline, one medium stage and the terminal stage of each
#: polarity.  Pass the full ladders to ``run_table1`` for the complete table.
NMOS_STAGES = (
    BreakdownStage.FAULT_FREE,
    BreakdownStage.MBD1,
    BreakdownStage.MBD3,
    BreakdownStage.HBD,
)
PMOS_STAGES = (
    BreakdownStage.FAULT_FREE,
    BreakdownStage.MBD1,
    BreakdownStage.MBD3,
)


@pytest.mark.benchmark(group="table1")
def test_table1_obd_progression(benchmark):
    result = benchmark.pedantic(
        lambda: run_table1(nmos_stages=NMOS_STAGES, pmos_stages=PMOS_STAGES, dt=6e-12),
        rounds=1,
        iterations=1,
    )
    rows = result.rows()
    rows.append("--- paper-reported entries (for comparison) ---")
    for stage, per_seq in PAPER_TABLE1_NMOS.items():
        rows.append(f"paper NMOS {stage.value:<10} {per_seq}")
    for stage, per_seq in PAPER_TABLE1_PMOS.items():
        rows.append(f"paper PMOS {stage.value:<10} {per_seq}")
    report(rows)

    # Shape assertions: monotonic NMOS degradation, PMOS input specificity.
    na_delays = [d for d in result.nmos_delays("(01,11)", "NA") if d is not None]
    assert all(b >= a for a, b in zip(na_delays, na_delays[1:]))
    pa_unexcited = result.pmos_delays("(11,10)", "PA")
    assert max(d for d in pa_unexcited if d is not None) < 2.0 * min(
        d for d in pa_unexcited if d is not None
    )
