"""E6 -- Section 4.1: necessary-and-sufficient OBD test set for the NAND gate."""

from __future__ import annotations

import pytest

from repro.experiments import run_nand_conditions

from _report import report


@pytest.mark.benchmark(group="gate-conditions")
def test_nand_test_set_derivation(benchmark):
    result = benchmark.pedantic(run_nand_conditions, rounds=3, iterations=1)
    report(result.rows())
    assert result.matches_paper_structure
    assert result.paper_set_covers_all
    assert result.analysis.minimal_size == 3
