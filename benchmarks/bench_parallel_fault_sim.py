"""Bit-parallel vs. serial fault simulation on a ripple-carry adder.

The packed engine (64 patterns per word, shared good machine, fan-out-cone
re-simulation) must beat the serial reference engine by at least an order of
magnitude on a workload beyond the paper's full adder: an 8-bit ripple-carry
adder with 256 random two-pattern sequences, all four fault models.

CI smoke mode: set ``REPRO_BENCH_BITS`` / ``REPRO_BENCH_TESTS`` (e.g. 4 / 64)
to shrink the workload so perf regressions fail loudly without a long run.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.atpg import (
    packed_simulate_obd,
    packed_simulate_path_delay,
    packed_simulate_stuck_at,
    packed_simulate_transition,
    random_pairs,
    random_patterns,
    serial_simulate_obd,
    serial_simulate_path_delay,
    serial_simulate_stuck_at,
    serial_simulate_transition,
)
from repro.faults import (
    obd_fault_universe,
    path_delay_universe,
    stuck_at_universe,
    transition_fault_universe,
)
from repro.logic import ripple_carry_adder

from _report import report

BITS = int(os.environ.get("REPRO_BENCH_BITS", "8"))
NUM_TESTS = int(os.environ.get("REPRO_BENCH_TESTS", "256"))
#: Structural-path cap for the path-delay universe (keeps the serial run sane).
PATH_LIMIT = int(os.environ.get("REPRO_BENCH_PATHS", "200"))


@pytest.fixture(scope="module")
def rca8():
    return ripple_carry_adder(BITS)


def _speedup(serial_fn, packed_fn, *args):
    start = time.perf_counter()
    serial_report = serial_fn(*args)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    packed_report = packed_fn(*args)
    packed_s = time.perf_counter() - start
    assert packed_report.detections == serial_report.detections
    assert packed_report.num_tests == serial_report.num_tests
    return serial_s, packed_s, packed_report


@pytest.mark.benchmark(group="parallel-fault-sim")
def test_packed_stuck_at_speedup(rca8, benchmark):
    patterns = random_patterns(rca8, NUM_TESTS, seed=11)
    faults = list(stuck_at_universe(rca8))
    serial_s, packed_s, rep = _speedup(
        serial_simulate_stuck_at, packed_simulate_stuck_at, rca8, patterns, faults
    )
    benchmark.pedantic(
        packed_simulate_stuck_at, args=(rca8, patterns, faults), rounds=3, iterations=1
    )
    speedup = serial_s / packed_s
    report(
        [
            f"stuck-at     : {len(faults)} faults x {NUM_TESTS} patterns on rca{BITS}",
            f"  serial {serial_s * 1e3:8.1f} ms | packed {packed_s * 1e3:7.1f} ms | "
            f"speedup {speedup:6.1f}x | coverage {100 * rep.coverage:.1f}%",
        ]
    )
    assert speedup >= 10.0


@pytest.mark.benchmark(group="parallel-fault-sim")
def test_packed_transition_speedup(rca8, benchmark):
    pairs = random_pairs(rca8, NUM_TESTS, seed=12)
    faults = list(transition_fault_universe(rca8))
    serial_s, packed_s, rep = _speedup(
        serial_simulate_transition, packed_simulate_transition, rca8, pairs, faults
    )
    benchmark.pedantic(
        packed_simulate_transition, args=(rca8, pairs, faults), rounds=3, iterations=1
    )
    speedup = serial_s / packed_s
    report(
        [
            f"transition   : {len(faults)} faults x {NUM_TESTS} pairs on rca{BITS}",
            f"  serial {serial_s * 1e3:8.1f} ms | packed {packed_s * 1e3:7.1f} ms | "
            f"speedup {speedup:6.1f}x | coverage {100 * rep.coverage:.1f}%",
        ]
    )
    assert speedup >= 10.0


@pytest.mark.benchmark(group="parallel-fault-sim")
def test_packed_path_delay_speedup(rca8, benchmark):
    pairs = random_pairs(rca8, NUM_TESTS, seed=14)
    faults = list(path_delay_universe(rca8, limit=PATH_LIMIT))
    serial_s, packed_s, rep = _speedup(
        serial_simulate_path_delay, packed_simulate_path_delay, rca8, pairs, faults
    )
    benchmark.pedantic(
        packed_simulate_path_delay, args=(rca8, pairs, faults), rounds=3, iterations=1
    )
    speedup = serial_s / packed_s
    report(
        [
            f"path-delay   : {len(faults)} faults x {NUM_TESTS} pairs on rca{BITS}",
            f"  serial {serial_s * 1e3:8.1f} ms | packed {packed_s * 1e3:7.1f} ms | "
            f"speedup {speedup:6.1f}x | coverage {100 * rep.coverage:.1f}%",
        ]
    )
    assert speedup >= 10.0


@pytest.mark.benchmark(group="parallel-fault-sim")
def test_packed_obd_speedup(rca8, benchmark):
    pairs = random_pairs(rca8, NUM_TESTS, seed=13)
    faults = list(obd_fault_universe(rca8))
    serial_s, packed_s, rep = _speedup(
        serial_simulate_obd, packed_simulate_obd, rca8, pairs, faults
    )
    benchmark.pedantic(packed_simulate_obd, args=(rca8, pairs, faults), rounds=3, iterations=1)
    speedup = serial_s / packed_s
    report(
        [
            f"OBD          : {len(faults)} faults x {NUM_TESTS} pairs on rca{BITS}",
            f"  serial {serial_s * 1e3:8.1f} ms | packed {packed_s * 1e3:7.1f} ms | "
            f"speedup {speedup:6.1f}x | coverage {100 * rep.coverage:.1f}%",
        ]
    )
    assert speedup >= 10.0
