"""Fault-simulation engine benchmarks: serial vs interpreter vs generated code.

Three benchmark groups:

* ``parallel-fault-sim`` -- the packed engine (now generated code at the
  default ``word_bits``) must beat the serial reference engine by at least an
  order of magnitude on an 8-bit ripple-carry adder with 256 random tests,
  all four fault models.
* ``codegen-fault-sim`` -- the generated-code engine must beat the packed
  *interpreter* baseline (the pre-codegen engine: tuple-dispatch op loop at
  the legacy 64-bit width) by ``REPRO_BENCH_CODEGEN_MIN`` (default 5x) on
  the random-DAG and array-multiplier workloads, with detections
  bit-identical to the serial reference.
* ``numpy-fault-sim`` -- the ndarray backend (same generated code over
  uint64 arrays with PPSFP row-packing) must beat the big-int codegen
  engine by ``REPRO_BENCH_NUMPY_MIN`` (default 3x) combined stuck-at +
  transition on the same workload pair at ``REPRO_BENCH_NUMPY_TESTS``
  (default 8192) patterns, bit-identical to codegen on the full set and to
  the serial reference on a prefix.  Skipped when numpy is not installed.
* ``sharded-campaign`` -- the multi-process sharded executor must scale the
  full stuck-at campaign (pattern phase + PODEM top-up) on the random-DAG
  workload: with 4 workers, campaign throughput (patterns x faults / s over
  the merged test list) must reach ``REPRO_BENCH_SHARD_MIN_4W`` (default 2x)
  of the single-process run, with results bit-identical.  Every workers
  point is recorded to the JSON; the speedup floors are only *asserted* when
  the machine actually has that many CPUs (a 1-core container still checks
  determinism and records the axis, it just cannot prove a speedup).

Every measurement is recorded via :func:`_report.record_faultsim`, and the
session conftest writes them to ``BENCH_faultsim.json`` for CI to archive.

CI smoke mode: set ``REPRO_BENCH_BITS`` / ``REPRO_BENCH_TESTS`` (e.g. 4 / 64)
to shrink the adder workload, ``REPRO_BENCH_RDAG`` / ``REPRO_BENCH_MULT`` /
``REPRO_BENCH_CODEGEN_TESTS`` to shrink the codegen workloads, and
``REPRO_BENCH_CODEGEN_MIN`` (e.g. 1.0) to relax the speedup floor so the
smoke only fails when codegen is *slower* than the interpreter; the numpy
group has the same pair of knobs (``REPRO_BENCH_NUMPY_TESTS`` /
``REPRO_BENCH_NUMPY_MIN``) -- the array backend only wins at large pattern
counts, so a smoke that shrinks the test count must relax the floor too.  For the
sharded group, ``REPRO_BENCH_SHARDS`` picks the workers axis (e.g. ``2`` or
``2,4``), ``REPRO_BENCH_SHARD_MIN`` the floor for the largest worker count
(e.g. CI asserts 1.5x at 2 workers) and ``REPRO_BENCH_SHARD_PATTERNS`` the
pattern-phase size.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.atpg import (
    compile_for_engine,
    numpy_simulate_stuck_at,
    numpy_simulate_transition,
    packed_simulate_obd,
    packed_simulate_path_delay,
    packed_simulate_stuck_at,
    packed_simulate_transition,
    random_pairs,
    random_patterns,
    serial_simulate_obd,
    serial_simulate_path_delay,
    serial_simulate_stuck_at,
    serial_simulate_transition,
)
from repro.campaign import resolve_circuit
from repro.faults import (
    obd_fault_universe,
    path_delay_universe,
    stuck_at_universe,
    transition_fault_universe,
)
from repro.logic import WORD_BITS, compile_circuit, ripple_carry_adder

from _report import record_faultsim, report

BITS = int(os.environ.get("REPRO_BENCH_BITS", "8"))
NUM_TESTS = int(os.environ.get("REPRO_BENCH_TESTS", "256"))
#: Structural-path cap for the path-delay universe (keeps the serial run sane).
PATH_LIMIT = int(os.environ.get("REPRO_BENCH_PATHS", "200"))

#: Codegen-vs-interpreter workloads (the tentpole acceptance criterion).
RDAG_REF = os.environ.get("REPRO_BENCH_RDAG", "rdag:300,4")
MULT_REF = os.environ.get("REPRO_BENCH_MULT", "mult:6")
CODEGEN_TESTS = int(os.environ.get("REPRO_BENCH_CODEGEN_TESTS", "512"))
#: Minimum combined (stuck-at + transition) speedup of generated code over
#: the interpreter baseline; CI smoke relaxes this to 1.0.
CODEGEN_MIN = float(os.environ.get("REPRO_BENCH_CODEGEN_MIN", "5.0"))
#: Pattern-prefix length for the serial bit-identity cross-check (the serial
#: engine is orders of magnitude slower, so it checks a prefix).
SERIAL_CHECK = int(os.environ.get("REPRO_BENCH_SERIAL_CHECK", "64"))

#: Numpy-vs-codegen workload size and floor (the PR-10 tentpole criterion).
#: The array backend amortizes ufunc dispatch over thousands of patterns per
#: block, so the pattern count is deliberately much larger than the codegen
#: group's -- shrinking it in a smoke run requires relaxing the floor.
NUMPY_TESTS = int(os.environ.get("REPRO_BENCH_NUMPY_TESTS", "8192"))
NUMPY_MIN = float(os.environ.get("REPRO_BENCH_NUMPY_MIN", "3.0"))

#: Sharded-campaign workers axis (comma-separated; 1 is always measured).
SHARD_WORKERS = tuple(
    int(w) for w in os.environ.get("REPRO_BENCH_SHARDS", "2,4").split(",") if w
)
#: Speedup floor asserted at the *largest* measured worker count, provided
#: the machine has that many CPUs.  The acceptance criterion is 2x at 4
#: workers; the CI smoke asserts 1.5x at 2 workers.
SHARD_MIN = float(
    os.environ.get(
        "REPRO_BENCH_SHARD_MIN",
        "2.0" if max(SHARD_WORKERS, default=1) >= 4 else "1.5",
    )
)
#: Pattern-phase size of the sharded campaign workload (the PODEM top-up of
#: the leftover faults is what actually dominates and parallelizes).
SHARD_PATTERNS = int(os.environ.get("REPRO_BENCH_SHARD_PATTERNS", "64"))


@pytest.fixture(scope="module")
def rca8():
    return ripple_carry_adder(BITS)


def _best_of(runs, fn):
    elapsed = []
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        elapsed.append(time.perf_counter() - start)
    return min(elapsed)


def _speedup(serial_fn, packed_fn, *args):
    start = time.perf_counter()
    serial_report = serial_fn(*args)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    packed_report = packed_fn(*args)
    packed_s = time.perf_counter() - start
    assert packed_report.detections == serial_report.detections
    assert packed_report.num_tests == serial_report.num_tests
    return serial_s, packed_s, packed_report


def _record_rca(model, num_faults, serial_s, packed_s):
    circuit = f"rca:{BITS}"
    for engine, seconds in (("serial", serial_s), ("codegen", packed_s)):
        record_faultsim(
            circuit=circuit,
            family="rca",
            engine=engine,
            model=model,
            num_faults=num_faults,
            num_tests=NUM_TESTS,
            seconds=seconds,
        )


@pytest.mark.benchmark(group="parallel-fault-sim")
def test_packed_stuck_at_speedup(rca8, benchmark):
    patterns = random_patterns(rca8, NUM_TESTS, seed=11)
    faults = list(stuck_at_universe(rca8))
    serial_s, packed_s, rep = _speedup(
        serial_simulate_stuck_at, packed_simulate_stuck_at, rca8, patterns, faults
    )
    benchmark.pedantic(
        packed_simulate_stuck_at, args=(rca8, patterns, faults), rounds=3, iterations=1
    )
    speedup = serial_s / packed_s
    _record_rca("stuck-at", len(faults), serial_s, packed_s)
    report(
        [
            f"stuck-at     : {len(faults)} faults x {NUM_TESTS} patterns on rca{BITS}",
            f"  serial {serial_s * 1e3:8.1f} ms | packed {packed_s * 1e3:7.1f} ms | "
            f"speedup {speedup:6.1f}x | coverage {100 * rep.coverage:.1f}%",
        ]
    )
    assert speedup >= 10.0


@pytest.mark.benchmark(group="parallel-fault-sim")
def test_packed_transition_speedup(rca8, benchmark):
    pairs = random_pairs(rca8, NUM_TESTS, seed=12)
    faults = list(transition_fault_universe(rca8))
    serial_s, packed_s, rep = _speedup(
        serial_simulate_transition, packed_simulate_transition, rca8, pairs, faults
    )
    benchmark.pedantic(
        packed_simulate_transition, args=(rca8, pairs, faults), rounds=3, iterations=1
    )
    speedup = serial_s / packed_s
    _record_rca("transition", len(faults), serial_s, packed_s)
    report(
        [
            f"transition   : {len(faults)} faults x {NUM_TESTS} pairs on rca{BITS}",
            f"  serial {serial_s * 1e3:8.1f} ms | packed {packed_s * 1e3:7.1f} ms | "
            f"speedup {speedup:6.1f}x | coverage {100 * rep.coverage:.1f}%",
        ]
    )
    assert speedup >= 10.0


@pytest.mark.benchmark(group="parallel-fault-sim")
def test_packed_path_delay_speedup(rca8, benchmark):
    pairs = random_pairs(rca8, NUM_TESTS, seed=14)
    faults = list(path_delay_universe(rca8, limit=PATH_LIMIT))
    serial_s, packed_s, rep = _speedup(
        serial_simulate_path_delay, packed_simulate_path_delay, rca8, pairs, faults
    )
    benchmark.pedantic(
        packed_simulate_path_delay, args=(rca8, pairs, faults), rounds=3, iterations=1
    )
    speedup = serial_s / packed_s
    _record_rca("path-delay", len(faults), serial_s, packed_s)
    report(
        [
            f"path-delay   : {len(faults)} faults x {NUM_TESTS} pairs on rca{BITS}",
            f"  serial {serial_s * 1e3:8.1f} ms | packed {packed_s * 1e3:7.1f} ms | "
            f"speedup {speedup:6.1f}x | coverage {100 * rep.coverage:.1f}%",
        ]
    )
    assert speedup >= 10.0


@pytest.mark.benchmark(group="parallel-fault-sim")
def test_packed_obd_speedup(rca8, benchmark):
    pairs = random_pairs(rca8, NUM_TESTS, seed=13)
    faults = list(obd_fault_universe(rca8))
    serial_s, packed_s, rep = _speedup(
        serial_simulate_obd, packed_simulate_obd, rca8, pairs, faults
    )
    benchmark.pedantic(packed_simulate_obd, args=(rca8, pairs, faults), rounds=3, iterations=1)
    speedup = serial_s / packed_s
    _record_rca("obd", len(faults), serial_s, packed_s)
    report(
        [
            f"OBD          : {len(faults)} faults x {NUM_TESTS} pairs on rca{BITS}",
            f"  serial {serial_s * 1e3:8.1f} ms | packed {packed_s * 1e3:7.1f} ms | "
            f"speedup {speedup:6.1f}x | coverage {100 * rep.coverage:.1f}%",
        ]
    )
    assert speedup >= 10.0


# --------------------------------------------------------------------------- #
# Generated code vs. the interpreter baseline (the tentpole criterion).
# --------------------------------------------------------------------------- #
@pytest.mark.benchmark(group="codegen-fault-sim")
@pytest.mark.parametrize("ref", [RDAG_REF, MULT_REF], ids=lambda r: r.split(":")[0])
def test_codegen_speedup_over_interpreter(ref, benchmark):
    """Generated code at the default word_bits vs. the packed interpreter.

    Asserts (a) detections bit-identical between the two packed engines on
    the full workload and vs. the serial reference on a pattern prefix, and
    (b) combined stuck-at + transition speedup >= CODEGEN_MIN.
    """
    circuit = resolve_circuit(ref)
    family = ref.split(":", 1)[0]
    patterns = random_patterns(circuit, CODEGEN_TESTS, seed=41)
    pairs = random_pairs(circuit, CODEGEN_TESTS, seed=42)
    sa_faults = list(stuck_at_universe(circuit))
    tr_faults = list(transition_fault_universe(circuit))
    interp = compile_circuit(circuit, word_bits=WORD_BITS, codegen=False)
    codegen = compile_circuit(circuit)  # generated code, DEFAULT_WORD_BITS

    workloads = [
        ("stuck-at", packed_simulate_stuck_at, patterns, sa_faults, serial_simulate_stuck_at),
        ("transition", packed_simulate_transition, pairs, tr_faults, serial_simulate_transition),
    ]
    timings: dict[str, dict[str, float]] = {"interp": {}, "codegen": {}}
    for model, packed_fn, tests, faults, serial_fn in workloads:
        reports = {}
        for engine, cc in (("interp", interp), ("codegen", codegen)):
            reports[engine] = packed_fn(circuit, tests, faults, compiled=cc)  # warm
            timings[engine][model] = _best_of(
                3, lambda f=packed_fn, c=cc: f(circuit, tests, faults, compiled=c)
            )
            record_faultsim(
                circuit=ref,
                family=family,
                engine=engine,
                model=model,
                num_faults=len(faults),
                num_tests=len(tests),
                seconds=timings[engine][model],
                word_bits=cc.word_bits,
            )
        assert reports["codegen"].detections == reports["interp"].detections
        # Serial bit-identity on a prefix (the reference engine is orders of
        # magnitude slower; full-set identity is covered by the property and
        # parity suites).
        prefix = tests[:SERIAL_CHECK]
        serial_rep = serial_fn(circuit, prefix, faults)
        codegen_rep = packed_fn(circuit, prefix, faults, compiled=codegen)
        assert codegen_rep.detections == serial_rep.detections

    benchmark.pedantic(
        packed_simulate_stuck_at,
        args=(circuit, patterns, sa_faults),
        kwargs={"compiled": codegen},
        rounds=3,
        iterations=1,
    )
    interp_s = sum(timings["interp"].values())
    codegen_s = sum(timings["codegen"].values())
    speedup = interp_s / codegen_s
    rows = [
        f"codegen      : {ref} ({len(sa_faults)} sa + {len(tr_faults)} tr faults "
        f"x {CODEGEN_TESTS} tests, word_bits={codegen.word_bits})"
    ]
    for model, _fn, tests, faults, _serial in workloads:
        ti, tc = timings["interp"][model], timings["codegen"][model]
        rows.append(
            f"  {model:10s} interp {ti * 1e3:7.1f} ms | codegen {tc * 1e3:6.1f} ms | "
            f"speedup {ti / tc:5.1f}x | "
            f"{len(faults) * len(tests) / tc / 1e6:6.2f} Mfault-tests/s"
        )
    rows.append(f"  combined speedup {speedup:.1f}x (floor {CODEGEN_MIN}x)")
    report(rows)
    assert speedup >= CODEGEN_MIN


# --------------------------------------------------------------------------- #
# Numpy ndarray backend vs. big-int generated code (the PR-10 criterion).
# --------------------------------------------------------------------------- #
@pytest.mark.benchmark(group="numpy-fault-sim")
def test_numpy_speedup_over_codegen(benchmark):
    """Uint64-ndarray words + PPSFP row-packing vs. big-int generated code.

    Asserts (a) detections bit-identical between the numpy and codegen
    engines on the full workload and vs. the serial reference on a pattern
    prefix, and (b) stuck-at + transition speedup summed over the
    rdag+mult benchmark *pair* >= NUMPY_MIN (the floor is on the pair, not
    per circuit: the deep random DAG and the shallow multiplier stress the
    row-packer in opposite directions and are meant to average out).
    """
    pytest.importorskip("numpy")
    timings: dict[str, float] = {"codegen": 0.0, "numpy": 0.0}
    rows = []
    numpy_pedantic = None
    for ref in (RDAG_REF, MULT_REF):
        circuit = resolve_circuit(ref)
        family = ref.split(":", 1)[0]
        patterns = random_patterns(circuit, NUMPY_TESTS, seed=43)
        pairs = random_pairs(circuit, NUMPY_TESTS, seed=44)
        sa_faults = list(stuck_at_universe(circuit))
        tr_faults = list(transition_fault_universe(circuit))
        engines = {
            # Big-int generated code at DEFAULT_WORD_BITS vs. ndarray
            # generated code at DEFAULT_NUMPY_WORD_BITS -- each backend at
            # its own best width, exactly what ``CampaignSpec.engine``
            # selects between.
            "codegen": ("int", compile_circuit(circuit), packed_simulate_stuck_at,
                        packed_simulate_transition),
            "numpy": ("numpy", compile_for_engine(circuit, "numpy", None),
                      numpy_simulate_stuck_at, numpy_simulate_transition),
        }
        if numpy_pedantic is None:
            numpy_pedantic = (circuit, patterns, sa_faults, engines["numpy"][1])
        rows.append(
            f"numpy        : {ref} ({len(sa_faults)} sa + {len(tr_faults)} tr faults "
            f"x {NUMPY_TESTS} tests, word_bits={engines['numpy'][1].word_bits})"
        )
        workloads = [
            ("stuck-at", 0, patterns, sa_faults, serial_simulate_stuck_at),
            ("transition", 1, pairs, tr_faults, serial_simulate_transition),
        ]
        for model, slot, tests, faults, serial_fn in workloads:
            reports = {}
            seconds = {}
            for engine, (backend, cc, *fns) in engines.items():
                fn = fns[slot]
                reports[engine] = fn(circuit, tests, faults, compiled=cc)  # warm
                seconds[engine] = _best_of(
                    3, lambda f=fn, c=cc: f(circuit, tests, faults, compiled=c)
                )
                timings[engine] += seconds[engine]
                record_faultsim(
                    circuit=ref,
                    family=family,
                    engine=engine,
                    backend=backend,
                    model=model,
                    num_faults=len(faults),
                    num_tests=len(tests),
                    seconds=seconds[engine],
                    word_bits=cc.word_bits,
                )
            assert reports["numpy"].detections == reports["codegen"].detections
            assert reports["numpy"].num_tests == reports["codegen"].num_tests
            prefix = tests[:SERIAL_CHECK]
            serial_rep = serial_fn(circuit, prefix, faults)
            numpy_rep = engines["numpy"][2 + slot](
                circuit, prefix, faults, compiled=engines["numpy"][1]
            )
            assert numpy_rep.detections == serial_rep.detections
            ti, tn = seconds["codegen"], seconds["numpy"]
            rows.append(
                f"  {model:10s} codegen {ti * 1e3:7.1f} ms | numpy {tn * 1e3:6.1f} ms | "
                f"speedup {ti / tn:5.1f}x | "
                f"{len(faults) * len(tests) / tn / 1e6:6.2f} Mfault-tests/s"
            )

    circuit, patterns, sa_faults, numpy_cc = numpy_pedantic
    benchmark.pedantic(
        numpy_simulate_stuck_at,
        args=(circuit, patterns, sa_faults),
        kwargs={"compiled": numpy_cc},
        rounds=3,
        iterations=1,
    )
    speedup = timings["codegen"] / timings["numpy"]
    rows.append(
        f"  pair combined: codegen {timings['codegen'] * 1e3:.1f} ms | "
        f"numpy {timings['numpy'] * 1e3:.1f} ms | "
        f"speedup {speedup:.2f}x (floor {NUMPY_MIN}x)"
    )
    report(rows)
    assert speedup >= NUMPY_MIN


# --------------------------------------------------------------------------- #
# Sharded multi-process campaign execution (the PR-5 tentpole criterion).
# --------------------------------------------------------------------------- #
@pytest.mark.benchmark(group="sharded-campaign")
def test_sharded_campaign_speedup(benchmark):
    """Workers axis of the full stuck-at campaign on the random-DAG workload.

    Measures the single-process ``Campaign.run`` and the sharded executor at
    every worker count in ``SHARD_WORKERS``, asserts bit-identical results
    throughout, records one ``workers``-tagged entry per point, and -- when
    the host actually has enough CPUs -- asserts the speedup floor at the
    largest worker count.
    """
    from repro.campaign import Campaign, CampaignSpec, run_sharded_campaign

    spec = CampaignSpec(
        model="stuck-at",
        circuit=RDAG_REF,
        pattern_source="random",
        pattern_count=SHARD_PATTERNS,
        seed=21,
        run_atpg=True,
        compact=True,
    )
    family = RDAG_REF.split(":", 1)[0]

    start = time.perf_counter()
    base = Campaign(spec).run()
    single_s = time.perf_counter() - start
    num_faults = len(base.faults)
    num_tests = base.merged_report.num_tests
    base_payload = base.as_dict(include_runtime=False)
    single_tput = record_faultsim(
        circuit=RDAG_REF,
        family=family,
        engine="codegen",
        model="stuck-at",
        num_faults=num_faults,
        num_tests=num_tests,
        seconds=single_s,
        workers=1,
        backtracks=base.atpg_phase.backtracks,
        decisions=base.atpg_phase.decisions,
    )

    cpus = os.cpu_count() or 1
    rows = [
        f"sharded      : stuck-at campaign on {RDAG_REF} "
        f"({num_faults} faults, {SHARD_PATTERNS} patterns + ATPG top-up, {cpus} CPUs)",
        f"  workers  1: {single_s * 1e3:8.1f} ms | {single_tput / 1e3:8.1f} Kfault-tests/s "
        f"| speedup   1.00x (baseline)",
    ]
    speedups: dict[int, float] = {1: 1.0}
    for workers in SHARD_WORKERS:
        start = time.perf_counter()
        sharded = run_sharded_campaign(spec=spec, shards=workers, max_workers=workers)
        sharded_s = time.perf_counter() - start
        assert sharded.as_dict(include_runtime=False) == base_payload
        throughput = record_faultsim(
            circuit=RDAG_REF,
            family=family,
            engine="codegen",
            model="stuck-at",
            num_faults=num_faults,
            num_tests=num_tests,
            seconds=sharded_s,
            workers=workers,
            backtracks=sharded.atpg_phase.backtracks,
            decisions=sharded.atpg_phase.decisions,
        )
        speedups[workers] = single_s / sharded_s
        rows.append(
            f"  workers {workers:2d}: {sharded_s * 1e3:8.1f} ms | "
            f"{throughput / 1e3:8.1f} Kfault-tests/s | speedup {speedups[workers]:6.2f}x"
        )

    top = max(SHARD_WORKERS, default=1)
    # top == 1 means no multi-worker point was measured (REPRO_BENCH_SHARDS=1
    # or empty): nothing to assert a speedup floor against.
    if top > 1 and cpus >= top and SHARD_MIN > 0:
        rows.append(f"  floor: {SHARD_MIN}x at {top} workers")
        report(rows)
        assert speedups[top] >= SHARD_MIN, (
            f"sharded campaign at {top} workers only reached "
            f"{speedups[top]:.2f}x over single-process (floor {SHARD_MIN}x)"
        )
    else:
        if top <= 1:
            reason = "no multi-worker point measured"
        elif cpus < top:
            reason = f"{cpus} CPUs < {top} workers"
        else:
            reason = "REPRO_BENCH_SHARD_MIN=0"
        rows.append(
            f"  floor: skipped ({reason} -- axis recorded, determinism asserted)"
        )
        report(rows)

    benchmark.pedantic(
        run_sharded_campaign,
        kwargs={"spec": spec, "shards": top, "max_workers": top},
        rounds=1,
        iterations=1,
    )
