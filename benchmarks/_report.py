"""Shared report printer for the benchmark harness."""

from __future__ import annotations


def report(rows):
    """Print experiment report rows beneath the benchmark output."""
    print()
    for row in rows:
        print(row)
