"""Shared report printer and machine-readable perf-record sink.

Benchmarks call :func:`record_faultsim` with one measurement per (circuit,
engine, fault model); at the end of the pytest session the conftest hook
writes every record to ``BENCH_faultsim.json`` (override the path with
``REPRO_BENCH_JSON``) so the fault-simulation perf trajectory is tracked
across PRs -- CI uploads the file as an artifact.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Optional


def report(rows):
    """Print experiment report rows beneath the benchmark output."""
    print()
    for row in rows:
        print(row)


#: Fault-simulation perf records accumulated over one pytest session.
_FAULTSIM_RECORDS: list[dict[str, Any]] = []


def record_faultsim(
    *,
    circuit: str,
    family: str,
    engine: str,
    model: str,
    num_faults: int,
    num_tests: int,
    seconds: float,
    backend: str = "int",
    word_bits: Optional[int] = None,
    workers: Optional[int] = None,
    backtracks: Optional[int] = None,
    decisions: Optional[int] = None,
    implications: Optional[int] = None,
    tested: Optional[int] = None,
    proven_redundant: Optional[int] = None,
    aborted: Optional[int] = None,
) -> float:
    """Record one fault-simulation measurement; returns fault-tests/second.

    ``engine`` is one of ``"codegen"`` / ``"numpy"`` / ``"interp"`` /
    ``"serial"``; ``backend`` is the packed-word representation behind the
    engine (``"int"`` for arbitrary-precision integers, ``"numpy"`` for
    uint64 ndarrays), giving the JSON a backend axis now that the same
    generated code runs over more than one word type.  ``family`` is the
    circuit family (``"rdag"``, ``"mult"``, ``"rca"``, ...)
    so trend tooling can group workloads across PRs.  ``workers`` is the
    process count of a sharded-campaign measurement (None for single-process
    engine runs), giving the JSON a workers axis for the scale trajectory.
    ``backtracks`` / ``decisions`` / ``implications`` carry the total search
    effort of an ATPG measurement (None when the run had no generation
    phase), so search regressions show up in the trajectory even when
    wall-clock noise hides them.  ``tested`` / ``proven_redundant`` /
    ``aborted`` are the three-way outcome counts of a structural-ATPG
    measurement, giving the JSON a per-engine resolution axis alongside raw
    throughput.
    """
    throughput = (num_faults * num_tests / seconds) if seconds > 0 else float("inf")
    _FAULTSIM_RECORDS.append(
        {
            "circuit": circuit,
            "family": family,
            "engine": engine,
            "backend": backend,
            "model": model,
            "num_faults": num_faults,
            "num_tests": num_tests,
            "seconds": seconds,
            "fault_tests_per_second": throughput,
            "word_bits": word_bits,
            "workers": workers,
            "backtracks": backtracks,
            "decisions": decisions,
            "implications": implications,
            "tested": tested,
            "proven_redundant": proven_redundant,
            "aborted": aborted,
        }
    )
    return throughput


def write_faultsim_report(path: Optional[str] = None) -> Optional[str]:
    """Write all accumulated records as JSON; returns the path (None if empty)."""
    if not _FAULTSIM_RECORDS:
        return None
    if path is None:
        path = os.environ.get("REPRO_BENCH_JSON") or os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_faultsim.json",
        )
    payload = {
        "schema": "repro/faultsim-bench/1",
        "records": sorted(
            _FAULTSIM_RECORDS,
            key=lambda r: (
                r["family"],
                r["circuit"],
                r["model"],
                r["engine"],
                r.get("workers") or 0,
            ),
        ),
    }
    # Atomic write (temp file + os.replace): a benchmark run killed
    # mid-flush never leaves a truncated BENCH_faultsim.json behind.
    # Inlined rather than importing repro.ioutil so this helper stays
    # importable without PYTHONPATH=src.
    fd, tmp_name = tempfile.mkstemp(
        prefix=".BENCH_faultsim.", suffix=".tmp", dir=os.path.dirname(path) or "."
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path
