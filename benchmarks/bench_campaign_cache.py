"""Campaign result-cache benchmark: a warm suite must skip all engine work.

The ``campaign-cache`` group runs one :meth:`CampaignSuite.cross` battery
twice against the same content-addressed cache directory.  The cold pass
pays full simulation + ATPG cost and fills the cache; the warm pass must be
answered from disk on **every** entry (asserted via ``SuiteEntry.cache_hit``)
and finish at least ``REPRO_BENCH_CACHE_MIN`` times faster (default 10x,
the tentpole acceptance floor; CI smoke can relax it on noisy runners).
Warm results are asserted bit-identical to the cold ones, entry by entry.

Workload knobs for smoke mode: ``REPRO_BENCH_CACHE_CIRCUITS`` (space-separated
circuit refs) and ``REPRO_BENCH_CACHE_PATTERNS`` (pattern-phase size).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.campaign import CampaignSuite

from _report import record_faultsim, report

#: Space-separated circuit references (family args contain commas).
CIRCUITS = os.environ.get("REPRO_BENCH_CACHE_CIRCUITS", "rdag:200,4 mult:4 rca:6").split()
MODELS = ("stuck-at", "transition")
PATTERNS = int(os.environ.get("REPRO_BENCH_CACHE_PATTERNS", "32"))
#: Minimum cold/warm wall-time ratio for the all-hits pass.
CACHE_MIN = float(os.environ.get("REPRO_BENCH_CACHE_MIN", "10.0"))


def _run_suite(cache_dir) -> tuple:
    suite = CampaignSuite.cross(
        CIRCUITS,
        models=MODELS,
        pattern_source="random",
        pattern_count=PATTERNS,
        seed=5,
        max_workers=0,
        cache_dir=cache_dir,
    )
    start = time.perf_counter()
    result = suite.run()
    return result, time.perf_counter() - start


@pytest.mark.benchmark(group="campaign-cache")
def test_warm_suite_is_served_from_cache(benchmark, tmp_path):
    cache_dir = tmp_path / "cache"
    cold, cold_seconds = _run_suite(cache_dir)
    assert not cold.failed, [e.error for e in cold.failed]
    assert not cold.cache_hits

    warm, warm_seconds = benchmark.pedantic(
        _run_suite, args=(cache_dir,), rounds=1, iterations=1
    )
    assert not warm.failed
    assert len(warm.cache_hits) == len(warm.entries), "warm pass must hit on every entry"
    for before, after in zip(cold.entries, warm.entries):
        assert before.result.as_dict(include_runtime=False) == after.result.as_dict(
            include_runtime=False
        )

    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    rows = [
        f"campaign-cache: {len(cold.entries)} entries "
        f"cold {cold_seconds * 1e3:.1f} ms -> warm {warm_seconds * 1e3:.1f} ms "
        f"({speedup:.1f}x, floor {CACHE_MIN:.1f}x)"
    ]
    for entry in cold.entries:
        record_faultsim(
            circuit=entry.result.circuit_name,
            family="cache-suite",
            engine=entry.spec.engine,
            model=entry.spec.model,
            num_faults=len(entry.result.faults),
            num_tests=entry.result.merged_report.num_tests,
            seconds=entry.runtime,
        )
        rows.append(
            f"  {entry.spec.circuit} x {entry.spec.model}: "
            f"{entry.result.merged_report.num_tests} tests, {entry.runtime * 1e3:.1f} ms cold"
        )
    report(rows)
    assert speedup >= CACHE_MIN, (
        f"warm suite only {speedup:.1f}x faster than cold (floor {CACHE_MIN}x)"
    )
