"""E10 -- Sections 3.1/4.2: breakdown progression and the detection window."""

from __future__ import annotations

import pytest

from repro.experiments import run_progression_window

from _report import report


@pytest.mark.benchmark(group="progression")
def test_detection_window_vs_slack(benchmark):
    result = benchmark.pedantic(run_progression_window, rounds=5, iterations=1)
    report(result.rows())
    assert result.window_shrinks_with_slack()
    # Every window closes at hard breakdown (27 h after SBD onset).
    for window in result.windows.values():
        assert window.closes_at == pytest.approx(result.model.hbd_time)
