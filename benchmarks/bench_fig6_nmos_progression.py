"""E3 -- Figure 6: progression of NMOS OBD for the NAND gate (waveforms/delays)."""

from __future__ import annotations

import pytest

from repro.core import BreakdownStage
from repro.experiments import run_fig6

from _report import report

STAGES = (
    BreakdownStage.FAULT_FREE,
    BreakdownStage.MBD1,
    BreakdownStage.MBD2,
    BreakdownStage.MBD3,
    BreakdownStage.HBD,
)


@pytest.mark.benchmark(group="fig6")
def test_fig6_nmos_progression(benchmark):
    result = benchmark.pedantic(lambda: run_fig6(stages=STAGES, dt=6e-12), rounds=1, iterations=1)
    report(result.rows())
    assert result.monotonic_degradation()
    # The hard breakdown must degrade by far the most (stuck or very slow).
    hbd = result.measurements[BreakdownStage.HBD]
    nominal = result.measurements[BreakdownStage.FAULT_FREE]
    assert hbd.is_stuck or hbd.delay > 5.0 * nominal.delay
