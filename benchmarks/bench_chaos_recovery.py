"""Chaos-recovery overhead benchmark: fault tolerance must stay cheap.

Three wall-clock measurements of the same sharded campaign:

* **clean** -- no injections, retry policy armed but idle (the production
  configuration; its delta vs. a policy-free run is the cost of the hooks);
* **chaos** -- a worker crash on shard 0 plus a torn checkpoint record,
  absorbed by one retry (the recovery path exercised end to end);
* **resume** -- chaos lifted, restarting from the damaged checkpoint
  directory: the torn record is quarantined, the rest load from disk.

All three results must be bit-identical (the robustness invariant), and
with ``REPRO_BENCH_CHAOS_MAX`` > 0 the chaos run must finish within that
multiple of the clean run -- the acceptance ceiling for what one absorbed
crash may cost.  CI runs record-only (``0``): the timing trajectory lands
in ``BENCH_faultsim.json`` without flaking on noisy runners.

Workload knobs: ``REPRO_BENCH_CHAOS_CIRCUIT`` (default ``mult:3``),
``REPRO_BENCH_CHAOS_PATTERNS``, ``REPRO_BENCH_CHAOS_SHARDS``.
"""

from __future__ import annotations

import os
import time

from repro.campaign import CampaignSpec, InlineExecutor, ShardedCampaign
from repro.service import Injection, InjectionPlan, install

from _report import record_faultsim, report

CIRCUIT = os.environ.get("REPRO_BENCH_CHAOS_CIRCUIT", "mult:3")
PATTERNS = int(os.environ.get("REPRO_BENCH_CHAOS_PATTERNS", "32"))
SHARDS = int(os.environ.get("REPRO_BENCH_CHAOS_SHARDS", "4"))
#: Ceiling on chaos/clean wall-time ratio; 0 records without asserting.
CHAOS_MAX = float(os.environ.get("REPRO_BENCH_CHAOS_MAX", "3.0"))


def _spec() -> CampaignSpec:
    return CampaignSpec(
        model="stuck-at",
        circuit=CIRCUIT,
        pattern_source="random",
        pattern_count=PATTERNS,
        seed=5,
        engine="interp",
        shards=SHARDS,
        max_retries=1,
        retry_backoff=0.0,
    )


def _timed_run(spec, checkpoint_dir=None):
    campaign = ShardedCampaign(
        spec, pool=InlineExecutor(), checkpoint_dir=checkpoint_dir
    )
    start = time.perf_counter()
    result = campaign.run()
    return result, time.perf_counter() - start, campaign


def test_absorbed_crash_overhead_and_resume(tmp_path):
    spec = _spec()
    clean, clean_seconds, _ = _timed_run(spec)
    payload = clean.as_dict(include_runtime=False)

    ckpt = tmp_path / "ckpt"
    plan = InjectionPlan(
        injections=(
            Injection("worker.round1", "crash", shard=0),
            Injection("checkpoint.write", "torn", call=1),
        ),
        seed=5,
        name="bench-chaos",
    )
    with install(plan) as injector:
        chaos, chaos_seconds, campaign = _timed_run(spec, checkpoint_dir=ckpt)
    assert injector.summary()["fired"] == 2
    assert campaign.fault_tolerance["retries"] == 1
    assert chaos.as_dict(include_runtime=False) == payload

    resumed, resume_seconds, campaign = _timed_run(spec, checkpoint_dir=ckpt)
    assert resumed.as_dict(include_runtime=False) == payload
    summary = campaign.checkpoint_summary
    assert summary["quarantined"] >= 1, "the torn record must be quarantined"
    assert summary["round1_loaded"] + summary["round2_loaded"] > 0

    overhead = chaos_seconds / clean_seconds if clean_seconds > 0 else float("inf")
    for phase, seconds in (
        ("chaos-clean", clean_seconds),
        ("chaos-absorbed-crash", chaos_seconds),
        ("chaos-resume", resume_seconds),
    ):
        record_faultsim(
            circuit=clean.circuit_name,
            family=phase,
            engine=spec.engine,
            model=spec.model,
            num_faults=len(clean.faults),
            num_tests=clean.merged_report.num_tests,
            seconds=seconds,
        )
    report([
        f"chaos-recovery on {CIRCUIT} ({SHARDS} shards, {PATTERNS} patterns):",
        f"  clean  {clean_seconds * 1e3:8.1f} ms",
        f"  chaos  {chaos_seconds * 1e3:8.1f} ms "
        f"({overhead:.2f}x, ceiling {CHAOS_MAX or 'record-only'})",
        f"  resume {resume_seconds * 1e3:8.1f} ms "
        f"({summary['round1_loaded'] + summary['round2_loaded']} shard records "
        f"loaded, {summary['quarantined']} quarantined)",
    ])
    if CHAOS_MAX > 0:
        assert overhead <= CHAOS_MAX, (
            f"absorbed crash cost {overhead:.2f}x clean (ceiling {CHAOS_MAX}x)"
        )
