"""Packed-engine throughput and campaign coverage on the generated families.

The generator subsystem (:mod:`repro.logic.generators`) opens workloads well
beyond the paper's full adder; this benchmark sweeps one instance of every
family through (a) raw packed stuck-at fault simulation, reporting
fault-x-pattern throughput, and (b) the full campaign pipeline per fault
model, reporting coverage and runtime next to the circuit's structural
stats.  A serial-vs-packed cross-check on the random DAG keeps the two
engines honest inside the benchmark itself.

CI smoke mode: set ``REPRO_GENC_BITS`` / ``REPRO_GENC_TESTS`` /
``REPRO_GENC_DAG_GATES`` (e.g. 3 / 64 / 30) to shrink the sweep.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.atpg import (
    packed_simulate_stuck_at,
    random_patterns,
    serial_simulate_stuck_at,
)
from repro.campaign import CampaignSpec, resolve_circuit, run_campaign
from repro.faults import stuck_at_universe
from repro.logic import WORD_BITS, compile_circuit, random_dag

from _report import record_faultsim, report

BITS = int(os.environ.get("REPRO_GENC_BITS", "4"))
NUM_TESTS = int(os.environ.get("REPRO_GENC_TESTS", "256"))
DAG_GATES = int(os.environ.get("REPRO_GENC_DAG_GATES", "120"))

#: The family sweep: circuit references understood by the campaign registry.
FAMILY_REFS = [
    f"mult:{BITS}",
    f"cla:{2 * BITS}",
    f"parity:{4 * BITS}",
    f"cmp:{2 * BITS}",
    f"alu:{BITS}",
    f"rdag:{DAG_GATES},5",
]


@pytest.mark.benchmark(group="generated-circuits")
@pytest.mark.parametrize("engine", ["codegen", "interp"])
@pytest.mark.parametrize("ref", FAMILY_REFS)
def test_packed_throughput_per_family(ref, engine, benchmark):
    circuit = resolve_circuit(ref)
    stats = circuit.stats()
    patterns = random_patterns(circuit, NUM_TESTS, seed=21)
    faults = list(stuck_at_universe(circuit))
    if engine == "codegen":
        compiled = compile_circuit(circuit)
    else:
        compiled = compile_circuit(circuit, word_bits=WORD_BITS, codegen=False)

    rep = benchmark.pedantic(
        packed_simulate_stuck_at,
        args=(circuit, patterns, faults),
        kwargs={"compiled": compiled},
        rounds=3,
        iterations=1,
    )
    # Mean of the pedantic rounds; --benchmark-disable still returns the
    # result but records no stats, so time one extra run for the report.
    timing = getattr(benchmark, "stats", None)
    if timing is not None:
        elapsed = timing.stats.mean
    else:
        start = time.perf_counter()
        packed_simulate_stuck_at(circuit, patterns, faults, compiled=compiled)
        elapsed = time.perf_counter() - start
    throughput = record_faultsim(
        circuit=ref,
        family=ref.split(":", 1)[0],
        engine=engine,
        model="stuck-at",
        num_faults=len(faults),
        num_tests=NUM_TESTS,
        seconds=elapsed,
        word_bits=compiled.word_bits,
    )
    report(
        [
            f"  {stats.describe()}",
            f"  stuck-at[{engine}]: {len(faults)} faults x {NUM_TESTS} patterns in "
            f"{elapsed * 1e3:7.1f} ms -> {throughput / 1e6:6.2f} Mfault-patterns/s, "
            f"coverage {100 * rep.coverage:.1f}%",
        ]
    )
    assert rep.num_tests == NUM_TESTS
    assert rep.coverage > 0.5  # generated families must be mostly testable


@pytest.mark.benchmark(group="generated-circuits")
@pytest.mark.parametrize("model", ["stuck-at", "transition", "path-delay", "obd"])
def test_campaign_coverage_per_model(model, benchmark):
    """The full campaign pipeline on a generated workload, per fault model."""
    # The random DAG's default palette contains expandable (OBD-capable)
    # gates, so one workload exercises all four registered models.
    spec = CampaignSpec(
        model=model,
        circuit=f"rdag:{DAG_GATES},5",
        universe_options={"limit": 200} if model == "path-delay" else {},
        pattern_source="random",
        pattern_count=NUM_TESTS,
        seed=23,
        run_atpg=False,
        drop_detected=True,
    )
    result = benchmark.pedantic(run_campaign, kwargs={"spec": spec}, rounds=1, iterations=1)
    report(["  " + line for line in result.describe().splitlines()])
    assert result.merged_report.num_tests == NUM_TESTS
    assert len(result.faults) > 0


@pytest.mark.benchmark(group="generated-circuits")
def test_serial_packed_agree_on_generated_workload(benchmark):
    """Cross-engine equivalence inside the benchmark: same detections."""
    circuit = random_dag(max(DAG_GATES // 4, 10), seed=31, max_depth=8)
    patterns = random_patterns(circuit, min(NUM_TESTS, 64), seed=32)
    faults = list(stuck_at_universe(circuit))
    serial = serial_simulate_stuck_at(circuit, patterns, faults)
    packed = benchmark.pedantic(
        packed_simulate_stuck_at, args=(circuit, patterns, faults), rounds=1, iterations=1
    )
    assert packed.detections == serial.detections
    assert packed.num_tests == serial.num_tests
