"""E7 -- Section 4.3: OBD fault statistics of the full-adder sum circuit.

Paper: 56 sites in 14 NAND gates, 32 testable, 18 of 72 transitions
sufficient.  The reconstruction reports the same quantities on its netlist,
now computed by one declarative OBD campaign (exhaustive pattern phase +
ATPG top-up with cross-phase fault dropping + compaction).
"""

from __future__ import annotations

import pytest

from repro.experiments import run_adder_stats

from _report import report


@pytest.mark.benchmark(group="full-adder-atpg")
def test_full_adder_obd_statistics(benchmark):
    stats = benchmark.pedantic(run_adder_stats, rounds=1, iterations=1)
    report(stats.rows())
    assert stats.nand_gates == 14
    assert stats.total_sites == 56
    assert stats.testable + stats.untestable == 56
    assert stats.untestable > 0
    assert stats.compacted_test_count < stats.total_transitions
    # ATPG and exhaustive fault simulation agree on testability.
    assert stats.testable == stats.exhaustive_detected
    # The ATPG phase only attempted what the exhaustive phase left undetected.
    assert stats.atpg_skipped == stats.exhaustive_detected
    assert stats.campaign.atpg_phase.attempted == 56 - stats.atpg_skipped
