"""Structural ATPG engine benchmarks: throughput, proof counts, coverage floor.

One group, ``structural-atpg``: every registered engine (``d-alg``,
``podem``, ``legacy``) runs pure test generation over the collapsed
stuck-at universe of the random-DAG and array-multiplier workloads at the
SAME backtrack budget. Per engine and circuit the run records faults/sec
plus the three-way outcome counts (tested / proven_redundant / aborted)
and the search-effort counters to ``BENCH_faultsim.json``.

Acceptance floor: the rewritten engines must *resolve* (tested or proven,
i.e. not abort) at least as many faults as the legacy PODEM, and reach at
least its tested count -- the rewrite may not trade coverage for speed.
Vectors are cross-checked against the packed fault simulator, so the
throughput numbers can never come from unsound patterns.

CI smoke mode: ``REPRO_BENCH_ATPG_RDAG`` / ``REPRO_BENCH_ATPG_MULT``
shrink the workloads (e.g. ``rdag:80,4`` / ``mult:3``) and
``REPRO_BENCH_ATPG_BACKTRACKS`` sets the shared budget (default 5000).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.atpg import PodemOptions, get_atpg_engine, packed_simulate_stuck_at
from repro.atpg.structural import ABORTED, PROVEN_REDUNDANT, TESTED
from repro.campaign import resolve_circuit
from repro.faults.collapse import collapse_stuck_at_faults
from repro.faults.stuck_at import stuck_at_universe

from _report import record_faultsim, report

RDAG_REF = os.environ.get("REPRO_BENCH_ATPG_RDAG", "rdag:300,4")
MULT_REF = os.environ.get("REPRO_BENCH_ATPG_MULT", "mult:6")
MAX_BACKTRACKS = int(os.environ.get("REPRO_BENCH_ATPG_BACKTRACKS", "5000"))

ENGINES = ("d-alg", "podem", "legacy")


def _collapsed(circuit):
    keep = collapse_stuck_at_faults(circuit)
    return [f for f in stuck_at_universe(circuit) if f in keep]


def _run_engine(circuit, faults, name):
    engine = get_atpg_engine(name)
    options = PodemOptions(max_backtracks=MAX_BACKTRACKS)
    counts = {TESTED: 0, PROVEN_REDUNDANT: 0, ABORTED: 0}
    effort = {"backtracks": 0, "decisions": 0, "implications": 0}
    vectors = []
    t0 = time.perf_counter()
    for fault in faults:
        result = engine.generate(circuit, fault, options)
        counts[result.status] += 1
        effort["backtracks"] += result.backtracks
        effort["decisions"] += result.decisions
        effort["implications"] += result.implications
        if result.success:
            vectors.append(
                (fault, tuple(result.pattern[n] for n in circuit.primary_inputs))
            )
    seconds = time.perf_counter() - t0
    return counts, effort, vectors, seconds


@pytest.mark.benchmark(group="structural-atpg")
@pytest.mark.parametrize("ref", [RDAG_REF, MULT_REF], ids=lambda r: r.split(":")[0])
def test_structural_engines_throughput_and_coverage_floor(ref, benchmark):
    circuit = resolve_circuit(ref)
    faults = _collapsed(circuit)
    family = ref.split(":")[0]

    def run_all():
        return {name: _run_engine(circuit, faults, name) for name in ENGINES}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [f"structural ATPG on {ref} ({len(faults)} collapsed faults, "
            f"budget {MAX_BACKTRACKS} backtracks):"]
    for name in ENGINES:
        counts, effort, vectors, seconds = results[name]
        throughput = record_faultsim(
            circuit=ref,
            family=family,
            engine=name,
            model="stuck-at",
            num_faults=len(faults),
            num_tests=1,
            seconds=seconds,
            backtracks=effort["backtracks"],
            decisions=effort["decisions"],
            implications=effort["implications"],
            tested=counts[TESTED],
            proven_redundant=counts[PROVEN_REDUNDANT],
            aborted=counts[ABORTED],
        )
        rows.append(
            f"  {name:7s} {throughput:10.1f} faults/s  "
            f"tested={counts[TESTED]} proven={counts[PROVEN_REDUNDANT]} "
            f"aborted={counts[ABORTED]}  backtracks={effort['backtracks']}"
        )
        # Soundness: every vector must detect its fault under packed sim.
        if vectors:
            patterns = [p for _, p in vectors]
            packed = packed_simulate_stuck_at(circuit, patterns, [f for f, _ in vectors])
            for index, (fault, _) in enumerate(vectors):
                assert index in packed.detections[fault.key], (name, fault.key)
    report(rows)

    # Coverage floor: at the same budget the rewritten engines must do no
    # worse than the legacy PODEM, in tested faults and in total resolution.
    legacy_counts = results["legacy"][0]
    for name in ("d-alg", "podem"):
        counts = results[name][0]
        assert counts[TESTED] >= legacy_counts[TESTED], (
            f"{name} tested {counts[TESTED]} < legacy {legacy_counts[TESTED]} on {ref}"
        )
        assert counts[ABORTED] <= legacy_counts[ABORTED], (
            f"{name} aborted {counts[ABORTED]} > legacy {legacy_counts[ABORTED]} on {ref}"
        )

    # Cross-engine agreement on the resolved verdicts: the complete engines
    # may never split a fault between tested and proven_redundant.
    d_alg_counts = results["d-alg"][0]
    podem_counts = results["podem"][0]
    if d_alg_counts[ABORTED] == 0 and podem_counts[ABORTED] == 0:
        assert d_alg_counts == podem_counts
