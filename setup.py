"""Legacy setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
only so that editable installs work in offline environments that lack the
``wheel`` package (``pip install -e . --no-build-isolation`` falls back to the
legacy ``setup.py develop`` path through this shim).
"""

from setuptools import setup

setup()
