"""OBD test generation for an embedded gate (the paper's full-adder example).

The script

1. builds the Figure-8 full-adder sum circuit (14 NAND gates + inverters),
2. enumerates every transistor-level OBD defect site of the NAND gates,
3. runs the OBD-aware two-pattern ATPG and compacts the resulting test set,
4. compares coverage against classical baselines: exhaustive single-input-
   change transition patterns and random pattern pairs,
5. prints the Section-4.3 style summary,
6. cross-checks the hand-wired flow against the one-call campaign API.

Run with ``python examples/full_adder_atpg.py``.

The one-call campaign equivalent
--------------------------------

Steps 2-4 above are the universe -> ATPG -> fault-sim -> compaction pipeline
that every fault model shares, so the whole flow is also available as a
single declarative call through :mod:`repro.campaign`::

    from repro.campaign import CampaignSpec, run_campaign
    from repro.logic import GateType, full_adder_sum

    result = run_campaign(
        full_adder_sum(),
        CampaignSpec(
            model="obd",                                   # any registered model
            universe_options={"gate_types": [GateType.NAND2]},
            pattern_source="none",                         # ATPG-only flow
            drop_detected=False,
        ),
    )
    print(result.describe())          # per-phase coverage + compaction
    print(result.to_json(indent=2))   # machine-readable campaign record

Swapping ``model="obd"`` for ``"stuck-at"``, ``"transition"`` or
``"path-delay"`` runs the identical pipeline under a different fault model;
``pattern_source="sic"`` or ``"random"`` adds a pattern phase whose detected
faults the ATPG top-up then skips.  The hand-wired flow below produces
exactly the same tests, detected-fault sets and compacted subset -- the
campaign is the API, this script is the anatomy lesson.
"""

from __future__ import annotations

from repro.atpg import (
    greedy_compaction,
    random_pairs,
    run_obd_atpg,
    simulate_obd,
    single_input_change_pairs,
)
from repro.campaign import CampaignSpec, run_campaign
from repro.core import format_sequence
from repro.faults import obd_fault_universe
from repro.logic import GateType, full_adder_sum


def main() -> None:
    circuit = full_adder_sum()
    print(circuit.summary())

    faults = obd_fault_universe(circuit, gate_types=[GateType.NAND2])
    print(f"OBD defect sites in the NAND gates: {len(faults)}")

    # OBD-aware ATPG.
    summary = run_obd_atpg(circuit, faults)
    print(summary.describe())

    pairs = [(t.first, t.second) for t in summary.tests]
    report = simulate_obd(circuit, pairs, faults)
    compacted = greedy_compaction(report)
    print(
        f"ATPG test set: {len(pairs)} pattern pairs, "
        f"compacted to {compacted.size} pairs covering {len(compacted.covered_faults)} faults"
    )
    for index in compacted.selected_indices:
        first, second = pairs[index]
        print(f"  apply {format_sequence((first, second))} at inputs (A, B, C)")

    # Baseline 1: launch-on-capture style single-input-change transitions.
    sic_report = simulate_obd(circuit, single_input_change_pairs(circuit), faults)
    # Baseline 2: 20 random pattern pairs.
    random_report = simulate_obd(circuit, random_pairs(circuit, 20, seed=7), faults)

    print("\nCoverage comparison (detected / total OBD faults):")
    print(f"  OBD-aware ATPG:                {len(report.detected_faults):>3} / {len(faults)}")
    print(f"  single-input-change patterns:  {len(sic_report.detected_faults):>3} / {len(faults)}")
    print(f"  20 random pattern pairs:       {len(random_report.detected_faults):>3} / {len(faults)}")
    print(
        "\nFaults the ATPG proved untestable (circuit redundancy): "
        + ", ".join(sorted(r.fault.key for r in summary.untestable))
    )

    # The same flow as one declarative campaign call.
    campaign = run_campaign(
        circuit,
        CampaignSpec(
            model="obd",
            universe_options={"gate_types": [GateType.NAND2]},
            pattern_source="none",
            drop_detected=False,
        ),
    )
    print("\nOne-call campaign equivalent:")
    print(campaign.describe())
    assert set(campaign.detected_faults) == set(report.detected_faults)
    assert campaign.compaction.size == compacted.size
    print("campaign reproduces the hand-wired detected sets and compacted count.")


if __name__ == "__main__":
    main()
