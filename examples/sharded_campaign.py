"""CLI for the sharded multi-process campaign executor and campaign suites.

Single campaign, fault universe sharded across worker processes::

    PYTHONPATH=src python examples/sharded_campaign.py \\
        --circuit rdag:300,4 --model stuck-at --patterns 64 --shards 4

Battery mode -- the circuits x models cross product over one shared pool,
with a consolidated JSON/CSV report::

    PYTHONPATH=src python examples/sharded_campaign.py \\
        --suite --circuit rca:8 mult:4 cla:8 --model stuck-at transition \\
        --patterns 32 --report-dir campaign_reports

Sharded and unsharded runs are bit-identical; pass ``--verify`` to prove it
on the spot (the single-process pipeline is re-run and the reports are
compared field by field).

Crash-safe runs: ``--checkpoint-dir DIR`` persists each completed shard so a
killed campaign resumes from where it stopped (``--no-resume`` discards a
prior checkpoint instead).  Kill-and-resume demo, proven bit-identical by
the same ``--verify`` path::

    PYTHONPATH=src python examples/sharded_campaign.py \\
        --circuit mult:4 --shards 8 --checkpoint-dir ckpt &
    kill -9 $!          # mid-run
    PYTHONPATH=src python examples/sharded_campaign.py \\
        --circuit mult:4 --shards 8 --checkpoint-dir ckpt --verify

``--cache-dir DIR`` serves repeated identical runs (single or suite mode)
from the content-addressed result cache without re-simulating.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.campaign import (
    Campaign,
    CampaignError,
    CampaignSpec,
    CampaignSuite,
    ShardedCampaign,
    registered_models,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Run fault-sharded test campaigns across worker processes."
    )
    parser.add_argument(
        "--circuit", nargs="+", default=["rdag:300,4"],
        help="circuit reference(s): registered name, family:args or .bench path",
    )
    parser.add_argument(
        "--model", nargs="+", default=["stuck-at"], choices=registered_models(),
        help="fault model(s); multiple values imply --suite",
    )
    parser.add_argument("--engine", default="packed",
                        choices=("packed", "interp", "serial"))
    parser.add_argument("--patterns", type=int, default=64,
                        help="random pattern-phase size (0 disables the phase)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--no-atpg", action="store_true",
                        help="skip the deterministic ATPG top-up phase")
    parser.add_argument("--collapse", action="store_true",
                        help="structurally collapse the fault universe")
    parser.add_argument("--shards", type=int, default=4,
                        help="fault-universe partitions (= max worker processes)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default min(shards, cpus); 0 = inline)")
    parser.add_argument("--suite", action="store_true",
                        help="run the circuits x models battery over a shared pool")
    parser.add_argument("--verify", action="store_true",
                        help="re-run single-process and assert bit-identical results")
    parser.add_argument("--json", metavar="PATH",
                        help="write the single-campaign report JSON here")
    parser.add_argument("--report-dir", metavar="DIR",
                        help="suite mode: write suite_report.json/.csv here")
    parser.add_argument("--checkpoint-dir", metavar="DIR",
                        help="persist per-shard checkpoints here; a killed run resumes")
    parser.add_argument("--resume", action=argparse.BooleanOptionalAction, default=True,
                        help="reuse checkpoints from --checkpoint-dir (--no-resume "
                             "discards them and starts fresh)")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="serve repeated identical runs from this result cache")
    parser.add_argument("--max-retries", type=int, default=0,
                        help="extra attempts for shards that crash or time out")
    parser.add_argument("--shard-timeout", type=float, default=None,
                        help="per-shard deadline in seconds (overdue shards retry)")
    parser.add_argument("--no-degrade", action="store_true",
                        help="fail instead of falling back to a slower engine "
                             "once a shard's retry budget is spent")
    parser.add_argument("--fault-plan", metavar="PATH",
                        help="fault-injection plan JSON (testing only): inject "
                             "the plan into this run to exercise the retry/"
                             "degrade/checkpoint recovery paths")
    return parser


def spec_from_args(args: argparse.Namespace, circuit: str, model: str) -> CampaignSpec:
    return CampaignSpec(
        model=model,
        circuit=circuit,
        pattern_source="random" if args.patterns else "none",
        pattern_count=args.patterns,
        seed=args.seed,
        run_atpg=not args.no_atpg,
        collapse=args.collapse,
        engine=args.engine,
        shards=args.shards,
        max_retries=args.max_retries,
        shard_timeout=args.shard_timeout,
        allow_degraded=not args.no_degrade,
    )


def run_single(args: argparse.Namespace) -> int:
    spec = spec_from_args(args, args.circuit[0], args.model[0])
    if args.fault_plan:
        import os

        from repro.service.faultinject import PLAN_ENV, InjectionPlan

        InjectionPlan.load(args.fault_plan)  # fail fast on a malformed plan
        os.environ[PLAN_ENV] = os.path.abspath(args.fault_plan)
    cache = None
    if args.cache_dir:
        from repro.service import ResultCache

        cache = ResultCache(args.cache_dir)
    start = time.perf_counter()
    cache_key, cached = cache.fetch(None, spec) if cache else (None, None)
    if cached is not None:
        result = cached
        wall = time.perf_counter() - start
        print(result.describe())
        print(f"  served from cache in {wall * 1e3:.1f} ms ({args.cache_dir})")
    else:
        sharded = ShardedCampaign(
            spec,
            max_workers=args.workers,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
        )
        result = sharded.run()
        wall = time.perf_counter() - start
        if cache:
            cache.put(cache_key, result)
        print(result.describe())
        throughput = len(result.faults) * result.merged_report.num_tests / wall
        print(f"  sharded wall time: {wall * 1e3:.1f} ms over {spec.shards} shard(s) "
              f"({throughput / 1e3:.1f} Kfault-tests/s)")
        if sharded.checkpoint_summary:
            summary = sharded.checkpoint_summary
            loaded = summary["round1_loaded"] + summary["round2_loaded"]
            stored = summary["round1_stored"] + summary["round2_stored"]
            print(f"  checkpoint: resumed {loaded} shard record(s), "
                  f"computed {stored} ({args.checkpoint_dir})")
        tolerance = sharded.fault_tolerance
        if tolerance and any(tolerance.values()):
            print("  fault tolerance: "
                  + ", ".join(f"{k}={v}" for k, v in tolerance.items() if v))
        if result.degraded:
            print(f"  degraded shards: {result.degraded['fallbacks']} "
                  f"(primary engine {result.degraded['engine']})")
    if args.verify:
        base = Campaign(spec).run().as_dict(include_runtime=False)
        mine = result.as_dict(include_runtime=False)
        mine.pop("degraded", None)  # provenance, not payload
        same = base == mine
        print(f"  verify vs single-process: {'bit-identical' if same else 'MISMATCH'}")
        if not same:
            return 1
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(result.to_json(indent=2) + "\n")
        print(f"  report written to {args.json}")
    return 0


def run_suite(args: argparse.Namespace) -> int:
    suite = CampaignSuite.cross(
        args.circuit,
        models=tuple(args.model),
        engines=(args.engine,),
        pattern_source="random" if args.patterns else "none",
        pattern_count=args.patterns,
        seed=args.seed,
        run_atpg=not args.no_atpg,
        collapse=args.collapse,
        shards=args.shards,
        max_workers=args.workers,
        cache_dir=args.cache_dir,
    )
    result = suite.run()
    print(result.describe())
    if args.cache_dir:
        print(f"  cache hits: {len(result.cache_hits)}/{len(result.entries)} "
              f"entries ({args.cache_dir})")
    if args.verify:
        mismatches = [
            entry.spec.circuit
            for entry in result.entries
            if entry.ok
            and Campaign(entry.spec).run().as_dict(include_runtime=False)
            != entry.result.as_dict(include_runtime=False)
        ]
        print(
            "  verify vs single-process: "
            + ("bit-identical" if not mismatches else f"MISMATCH on {mismatches}")
        )
        if mismatches:
            return 1
    if args.report_dir:
        json_path, csv_path = result.write_report(args.report_dir)
        print(f"  consolidated report: {json_path} + {csv_path}")
    else:
        print(json.dumps(result.as_dict()["rows"][:3], indent=2))
    return 0 if not result.failed else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.suite or len(args.circuit) > 1 or len(args.model) > 1:
            return run_suite(args)
        return run_single(args)
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
