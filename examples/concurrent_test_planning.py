"""Concurrent-test planning from the breakdown progression model (Section 4.2).

The script characterizes a NAND gate's delay at every breakdown stage
(a single column of the reproduced Table 1), combines it with the exponential
SBD-to-HBD progression model and a sweep of capture slacks, and derives how
often a concurrent checker must run to catch the defect before hard breakdown.

Run with ``python examples/concurrent_test_planning.py``.
Use ``--fast`` to skip the transistor-level characterization and reuse the
recorded stage delays.

The concurrent test set itself (which pattern pairs the checker applies)
comes from the gate-level side: one :mod:`repro.campaign` run produces the
compacted two-pattern test set this schedule would apply at each interval --
see ``examples/full_adder_atpg.py``.
"""

from __future__ import annotations

import sys

from repro.cells import build_nand_harness, characterize_harness, default_technology
from repro.core import BreakdownStage, OBDDefect, ProgressionModel, harness_preparer
from repro.experiments.progression_window import DEFAULT_STAGE_DELAYS
from repro.testing import StageDelay, detection_window, schedule_for_window


def characterize_stage_delays() -> list[StageDelay]:
    """Measure the NA-site delay at every breakdown stage (Table-1 column)."""
    tech = default_technology()
    sequence = ((0, 1), (1, 1))
    delays: list[StageDelay] = []
    for stage in BreakdownStage.progression():
        harness = build_nand_harness(tech, sequence)
        defect = None if stage == BreakdownStage.FAULT_FREE else OBDDefect("NA", stage)
        run = characterize_harness(
            harness, prepare=harness_preparer(defect), dt=6e-12, capture_window=1.5e-9
        )
        measurement = run.measurement
        delays.append(StageDelay(stage, measurement.delay, stuck=measurement.is_stuck))
        print(f"  {stage.value:<12} {measurement.table_entry():>9}")
    return delays


def main() -> None:
    fast = "--fast" in sys.argv

    print("Stage-by-stage NAND delay characterization (NA defect):")
    if fast:
        stage_delays = list(DEFAULT_STAGE_DELAYS)
        for entry in stage_delays:
            rendered = "stuck" if entry.stuck else f"{entry.delay * 1e12:.0f}ps"
            print(f"  {entry.stage.value:<12} {rendered:>9}")
    else:
        stage_delays = characterize_stage_delays()

    nominal = next(s.delay for s in stage_delays if s.stage == BreakdownStage.FAULT_FREE)
    model = ProgressionModel("n")  # 27 h SBD-to-HBD, exponential leakage growth

    print("\nDetection windows and test schedules versus capture slack:")
    for slack in (25e-12, 100e-12, 300e-12):
        window = detection_window(model, stage_delays, nominal, slack)
        schedule = schedule_for_window(window, test_duration=10e-6, attempts=2)
        print(f"  capture slack {slack * 1e12:5.0f} ps:")
        print(f"    {window.describe()}")
        print(f"    {schedule.describe()}")

    print(
        "\nInterpretation: a looser capture instant means the defect must "
        "progress further before it is visible, which shrinks the window of "
        "opportunity and forces more frequent concurrent testing -- the "
        "quantitative form of the paper's Section 4.2 argument."
    )


if __name__ == "__main__":
    main()
