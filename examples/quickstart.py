"""Quickstart: one campaign call at the gate level, one defect at the SPICE level.

The fastest way into the codebase is the unified campaign API: pick a fault
model from the registry (``stuck-at``, ``transition``, ``path-delay`` or the
paper's ``obd``), describe the flow declaratively, and run it -- universe
enumeration, pattern phase, deterministic ATPG top-up (skipping faults the
patterns already caught), fault simulation, greedy compaction and a unified
report all happen behind one call::

    result = run_campaign(full_adder_sum(), CampaignSpec(model="obd", ...))

The legacy per-model functions (``simulate_obd``, ``run_obd_atpg``, ...)
still exist as thin wrappers over the same registry.

Part 2 shows the benchmark-circuit subsystem: parametric generator
families, ISCAS-85 ``.bench`` netlist round-trips, and campaigns that name
their workload through the circuit registry instead of building it.

Part 3 then drops below the gate level and walks the paper's core
experiment: inject the diode-resistor breakdown model into one transistor of
a real NAND gate and watch the *input-specific* delay appear -- the physical
behaviour the OBD fault model in part 1 abstracts.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.campaign import CampaignSpec, registered_models, run_campaign
from repro.cells import build_nand_harness, characterize_harness, default_technology
from repro.core import BreakdownStage, OBDDefect, harness_preparer
from repro.logic import (
    GateType,
    array_multiplier,
    full_adder_sum,
    load_bench,
    save_bench,
    write_bench,
)


def campaign_tour() -> None:
    """One declarative campaign per registered fault model."""
    circuit = full_adder_sum()
    print(f"Registered fault models: {', '.join(registered_models())}")
    print(f"Circuit: {circuit.summary()}\n")

    # The paper's flow: OBD defect sites in the NAND gates, a single-input-
    # change pattern phase, ATPG top-up for what the patterns missed.
    spec = CampaignSpec(
        model="obd",
        universe_options={"gate_types": [GateType.NAND2]},
        pattern_source="sic",
        drop_detected=False,
    )
    print(run_campaign(circuit, spec).describe())
    print()

    # The identical pipeline under the classical baselines.
    for model in ("stuck-at", "transition", "path-delay"):
        print(run_campaign(circuit, CampaignSpec(model=model, pattern_source="none")).describe())
        print()


def benchmark_circuit_tour() -> None:
    """Generators, .bench round-trips and registry-resolved campaigns."""
    # A generated workload: 4x4 array multiplier, with its structural stats.
    circuit = array_multiplier(4)
    print(f"Generated: {circuit.stats().describe()}\n")

    # Write it out as an ISCAS-85 .bench netlist and load it back.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "mult4.bench"
        save_bench(circuit, path)
        print(f"First lines of {path.name}:")
        for line in write_bench(circuit).splitlines()[:6]:
            print(f"  {line}")
        reloaded = load_bench(path)
        print(f"Reloaded: {reloaded.stats().describe()}\n")

        # Campaigns can name their circuit: a registry reference or a .bench
        # path in the spec replaces building the netlist by hand.
        print(run_campaign(path, CampaignSpec(
            model="stuck-at", pattern_source="random", pattern_count=128,
        )).describe())
        print()
    print(run_campaign(spec=CampaignSpec(
        model="transition", circuit="rdag:60,5",
        pattern_source="random", pattern_count=128, run_atpg=False,
    )).describe())
    print()


def measure(sequence, defect=None, label=""):
    """Build, (optionally) break, simulate and measure one NAND harness."""
    tech = default_technology()
    harness = build_nand_harness(tech, sequence)
    run = characterize_harness(
        harness,
        prepare=harness_preparer(defect),
        dt=4e-12,
        capture_window=1.5e-9,
    )
    print(f"  {label:<38} {run.measurement.table_entry():>8}")
    return run.measurement


def transistor_level_tour() -> None:
    """The Figure-5 harness: where the OBD model's excitation conditions come from."""
    falling = ((0, 1), (1, 1))   # output falls: excites the NMOS defects
    rising_a = ((1, 1), (0, 1))  # A switches, B held at 1: excites PA only
    rising_b = ((1, 1), (1, 0))  # B switches, A held at 1: excites PB only

    print("\nFault-free reference:")
    measure(falling, None, "falling output (01,11)")
    measure(rising_a, None, "rising output (11,01)")

    print("\nNMOS breakdown in the transistor driven by input A (site NA):")
    for stage in (BreakdownStage.MBD1, BreakdownStage.MBD2, BreakdownStage.HBD):
        measure(falling, OBDDefect("NA", stage), f"(01,11) with NA at {stage.value}")

    print("\nPMOS breakdown in the transistor driven by input A (site PA):")
    print("  (only the sequence that makes PA the sole charger shows the defect)")
    measure(rising_a, OBDDefect("PA", BreakdownStage.MBD2), "(11,01) with PA at mbd2 -- excited")
    measure(rising_b, OBDDefect("PA", BreakdownStage.MBD2), "(11,10) with PA at mbd2 -- not excited")


def main() -> None:
    print("Part 1: unified test campaigns (gate level)")
    print("=" * 60)
    campaign_tour()

    print("Part 2: benchmark circuits (.bench I/O + generators)")
    print("=" * 60)
    benchmark_circuit_tour()

    print("Part 3: oxide-breakdown physics (Figure-5 NAND harness)")
    print("=" * 60)
    transistor_level_tour()

    print("\nDone.  See examples/concurrent_test_planning.py for the")
    print("progression/window analysis and examples/full_adder_atpg.py for")
    print("the anatomy of the campaign pipeline on the paper's full adder.")


if __name__ == "__main__":
    main()
