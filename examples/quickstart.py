"""Quickstart: model an oxide-breakdown defect in a NAND gate and measure it.

This walks through the paper's core experiment in a few lines:

1. build the Figure-5 harness (a NAND gate driven by real gates),
2. inject the diode-resistor breakdown model into one transistor,
3. apply a two-pattern input sequence and measure the output delay,
4. compare against the fault-free gate and against another (non-exciting)
   input sequence.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro.cells import build_nand_harness, characterize_harness, default_technology
from repro.core import BreakdownStage, OBDDefect, harness_preparer


def measure(sequence, defect=None, label=""):
    """Build, (optionally) break, simulate and measure one NAND harness."""
    tech = default_technology()
    harness = build_nand_harness(tech, sequence)
    run = characterize_harness(
        harness,
        prepare=harness_preparer(defect),
        dt=4e-12,
        capture_window=1.5e-9,
    )
    print(f"  {label:<38} {run.measurement.table_entry():>8}")
    return run.measurement


def main() -> None:
    print("Oxide-breakdown quickstart (Figure-5 NAND harness)")
    print("=" * 60)

    falling = ((0, 1), (1, 1))   # output falls: excites the NMOS defects
    rising_a = ((1, 1), (0, 1))  # A switches, B held at 1: excites PA only
    rising_b = ((1, 1), (1, 0))  # B switches, A held at 1: excites PB only

    print("\nFault-free reference:")
    measure(falling, None, "falling output (01,11)")
    measure(rising_a, None, "rising output (11,01)")

    print("\nNMOS breakdown in the transistor driven by input A (site NA):")
    for stage in (BreakdownStage.MBD1, BreakdownStage.MBD2, BreakdownStage.HBD):
        measure(falling, OBDDefect("NA", stage), f"(01,11) with NA at {stage.value}")

    print("\nPMOS breakdown in the transistor driven by input A (site PA):")
    print("  (only the sequence that makes PA the sole charger shows the defect)")
    measure(rising_a, OBDDefect("PA", BreakdownStage.MBD2), "(11,01) with PA at mbd2 -- excited")
    measure(rising_b, OBDDefect("PA", BreakdownStage.MBD2), "(11,10) with PA at mbd2 -- not excited")

    print("\nDone.  See examples/concurrent_test_planning.py for the")
    print("progression/window analysis and examples/full_adder_atpg.py for")
    print("circuit-level test generation.")


if __name__ == "__main__":
    main()
