"""Tests for the gate-level substrate: gates, netlists, simulation, circuits,
timing and transistor-level expansion."""

from __future__ import annotations

from itertools import product

import pytest

from repro.logic import (
    EventDrivenSimulator,
    GateType,
    LogicCircuit,
    LogicCircuitError,
    all_input_patterns,
    all_input_transitions,
    arrival_times,
    controlling_value,
    critical_path_delay,
    enumerate_obd_sites,
    enumerate_paths,
    evaluate_gate,
    expand_to_transistors,
    longest_path,
    nand_chain,
    output_values,
    per_type_delay_model,
    simulate,
    simulate_pattern,
    slack,
    transitions_between,
    truth_table,
    two_to_one_mux,
    unit_delay_model,
)
from repro.spice import operating_point


class TestGateEvaluation:
    @pytest.mark.parametrize(
        "gate,inputs,expected",
        [
            (GateType.INV, (0,), 1),
            (GateType.INV, (1,), 0),
            (GateType.NAND2, (1, 1), 0),
            (GateType.NAND2, (0, 1), 1),
            (GateType.NOR2, (0, 0), 1),
            (GateType.NOR2, (1, 0), 0),
            (GateType.XOR2, (1, 0), 1),
            (GateType.XOR2, (1, 1), 0),
            (GateType.AOI21, (1, 1, 0), 0),
            (GateType.AOI21, (0, 1, 0), 1),
            (GateType.OAI21, (0, 0, 1), 1),
            (GateType.OAI21, (1, 0, 1), 0),
            (GateType.NAND3, (1, 1, 1), 0),
            (GateType.NOR3, (0, 0, 0), 1),
        ],
    )
    def test_truth_values(self, gate, inputs, expected):
        assert evaluate_gate(gate, inputs) == expected

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            evaluate_gate(GateType.NAND2, (1,))

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            evaluate_gate(GateType.INV, (2,))

    def test_truth_table_completeness(self):
        table = truth_table(GateType.NAND2)
        assert len(table) == 4
        assert table[(1, 1)] == 0

    def test_controlling_values(self):
        assert controlling_value(GateType.NAND2) == 0
        assert controlling_value(GateType.NOR3) == 1
        assert controlling_value(GateType.XOR2) is None

    def test_pattern_helpers(self):
        assert len(all_input_patterns(3)) == 8
        assert len(all_input_transitions(3)) == 56
        assert all(v1 != v2 for v1, v2 in all_input_transitions(2))


class TestLogicCircuit:
    def test_duplicate_gate_rejected(self):
        c = LogicCircuit("t")
        c.add_input("a")
        c.add_gate("g1", GateType.INV, ["a"], "x")
        with pytest.raises(LogicCircuitError):
            c.add_gate("g1", GateType.INV, ["a"], "y")

    def test_double_driver_rejected(self):
        c = LogicCircuit("t")
        c.add_input("a")
        c.add_gate("g1", GateType.INV, ["a"], "x")
        with pytest.raises(LogicCircuitError):
            c.add_gate("g2", GateType.INV, ["a"], "x")

    def test_validate_catches_undriven_nets(self):
        c = LogicCircuit("t")
        c.add_input("a")
        c.add_gate("g1", GateType.NAND2, ["a", "floating"], "x")
        c.add_output("x")
        with pytest.raises(LogicCircuitError):
            c.validate()

    def test_levelization_and_depth(self, fa_sum):
        levels = fa_sum.levelize()
        assert levels["A"] == 0
        assert fa_sum.depth == 9

    def test_driver_and_loads(self, c17_circuit):
        gate = c17_circuit.driver_of("G22")
        assert gate is not None and gate.name == "g22"
        loads = c17_circuit.loads_of("G11")
        assert {g.name for g, _ in loads} == {"g16", "g19"}

    def test_fanin_fanout_cones(self, c17_circuit):
        assert "G1" in c17_circuit.fanin_cone("G22")
        assert "G22" in c17_circuit.fanout_cone("G10")

    def test_gate_count_by_type(self, fa_sum):
        assert fa_sum.gate_count(GateType.NAND2) == 14
        assert fa_sum.gate_count() == 28


class TestLogicSimulation:
    def test_full_adder_sum_function(self, fa_sum):
        for bits in product((0, 1), repeat=3):
            expected = bits[0] ^ bits[1] ^ bits[2]
            assert output_values(fa_sum, bits) == (expected,)

    def test_full_adder_complete(self, fa_full):
        for bits in product((0, 1), repeat=3):
            s, cout = output_values(fa_full, bits)
            assert s == bits[0] ^ bits[1] ^ bits[2]
            assert cout == int(sum(bits) >= 2)

    def test_ripple_carry_adder_arithmetic(self, rca4):
        for a, b, ci in [(3, 5, 0), (15, 15, 1), (9, 6, 1), (0, 0, 0)]:
            pattern = [(a >> i) & 1 for i in range(4)] + [(b >> i) & 1 for i in range(4)] + [ci]
            outs = output_values(rca4, pattern)
            total = sum(bit << i for i, bit in enumerate(outs[:4])) + (outs[4] << 4)
            assert total == a + b + ci

    def test_c17_known_vector(self, c17_circuit):
        values = simulate(c17_circuit, {"G1": 1, "G2": 1, "G3": 0, "G6": 1, "G7": 0})
        assert values["G22"] in (0, 1) and values["G23"] in (0, 1)

    def test_missing_input_rejected(self, c17_circuit):
        with pytest.raises(LogicCircuitError):
            simulate(c17_circuit, {"G1": 1})

    def test_wrong_pattern_width(self, c17_circuit):
        with pytest.raises(LogicCircuitError):
            simulate_pattern(c17_circuit, (1, 0))

    def test_transitions_between(self, fa_sum):
        changed = transitions_between(fa_sum, (0, 1, 1), (1, 1, 1))
        assert changed["A"] == (0, 1)
        assert "SUM" in changed  # 011 -> sum 0, 111 -> sum 1

    def test_mux_function(self):
        mux = two_to_one_mux()
        for d0, d1, s in product((0, 1), repeat=3):
            expected = d1 if s else d0
            assert output_values(mux, (d0, d1, s)) == (expected,)

    def test_event_driven_final_values_match_zero_delay(self, fa_sum):
        sim = EventDrivenSimulator(fa_sum)
        for first, second in [((0, 0, 0), (1, 0, 0)), ((1, 1, 0), (1, 1, 1))]:
            result = sim.run(first, second)
            steady = simulate_pattern(fa_sum, second)
            assert result.final_value("SUM") == steady["SUM"]

    def test_event_driven_arrival_reflects_depth(self):
        chain = nand_chain(5)
        sim = EventDrivenSimulator(chain)
        result = sim.run((0, 1), (1, 1))
        assert result.arrival_time("OUT") == pytest.approx(5.0)

    def test_event_driven_keeps_in_flight_transition(self):
        """Regression: a pending output event launched by one fanin must not
        be cancelled when a later change on another fanin re-evaluates to the
        *current* output value (the old scheduler dropped the whole glitch)."""
        c = LogicCircuit("glitch")
        c.add_inputs(["A", "B"])
        c.add_output("OUT")
        c.add_gate("g_buf", GateType.BUF, ["B"], "bb")
        c.add_gate("g_or", GateType.OR2, ["A", "bb"], "OUT")
        c.validate()
        delays = {"g_buf": 0.3, "g_or": 1.0}
        sim = EventDrivenSimulator(c, delay_model=lambda gate: delays[gate.name])
        # A falls at t=0, bb rises at t=0.3: transport-delay OR output must
        # fall at t=1.0 and rise back at t=1.3 (a real 0.3-wide glitch).
        result = sim.run((1, 0), (0, 1))
        assert result.toggles("OUT") == 2
        assert result.value_at("OUT", 1.1) == 0
        assert result.final_value("OUT") == 1

    def test_event_driven_cancels_stale_later_events(self):
        """A replacement event still supersedes pending events at or after
        its own time instead of leaving stale values in the queue."""
        chain = nand_chain(3)
        sim = EventDrivenSimulator(chain)
        result = sim.run((0, 1), (1, 1))
        for net in ("n0", "n1", "OUT"):
            times = [t for t, _v in result.histories[net]]
            assert times == sorted(times)
            # Each internal net switches exactly once for a single launch.
            assert result.toggles(net) == 1


class TestTiming:
    def test_unit_delay_critical_path(self, fa_sum):
        assert critical_path_delay(fa_sum, unit_delay_model()) == pytest.approx(9.0)

    def test_per_type_delays(self, fa_sum):
        model = per_type_delay_model({GateType.NAND2: 2.0, GateType.INV: 1.0})
        assert critical_path_delay(fa_sum, model) > critical_path_delay(fa_sum, unit_delay_model())

    def test_arrival_times_monotone_with_level(self, fa_sum):
        arrivals = arrival_times(fa_sum, unit_delay_model())
        levels = fa_sum.levelize()
        for net, level in levels.items():
            assert arrivals[net] >= level * 0.0

    def test_slack_positive_for_long_clock(self, fa_sum):
        margins = slack(fa_sum, unit_delay_model(), clock_period=20.0)
        assert margins["SUM"] == pytest.approx(11.0)

    def test_longest_path_depth(self, fa_sum):
        path = longest_path(fa_sum, unit_delay_model())
        assert path.depth == 9
        assert path.nets[-1] == "SUM"

    def test_enumerate_paths_limit(self, fa_sum):
        paths = enumerate_paths(fa_sum, limit=5)
        assert len(paths) == 5


class TestExpansion:
    def test_site_enumeration_counts(self, fa_sum):
        nand_sites = enumerate_obd_sites(fa_sum, gate_types=[GateType.NAND2])
        assert len(nand_sites) == 56
        all_sites = enumerate_obd_sites(fa_sum)
        assert len(all_sites) == 56 + 2 * 14  # NANDs + inverters

    def test_site_keys_unique(self, fa_sum):
        sites = enumerate_obd_sites(fa_sum)
        keys = [s.key for s in sites]
        assert len(keys) == len(set(keys))

    def test_expand_static_levels_match_logic(self, fa_sum, tech):
        pattern = (1, 0, 1)
        expanded = expand_to_transistors(
            fa_sum, tech, input_levels=dict(zip(fa_sum.primary_inputs, pattern))
        )
        op = operating_point(expanded.circuit)
        steady = simulate_pattern(fa_sum, pattern)
        for net in ("SUM", "m1", "z1"):
            voltage = op.voltage(net)
            expected = steady[net]
            assert (voltage > 0.8 * tech.vdd) == bool(expected), net

    def test_expand_counts_cells(self, fa_sum, tech):
        expanded = expand_to_transistors(fa_sum, tech)
        assert len(expanded.cells) == len(fa_sum.gates)
        assert len(expanded.circuit.mosfets()) == 14 * 4 + 14 * 2
