"""Tests for the netlist static-analysis subsystem.

Covers the lint/DRC rule registry (circuit- and ``.bench``-source), the
SCOAP testability measures, the ternary implication engine with static
learning, the structural untestability prover (cross-checked against
exhaustive PODEM search), the campaign static phase, and the
collapse-preserves-coverage property for equivalence and dominance fault
collapsing.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis_static import (
    ImplicationEngine,
    Severity,
    learn_implications,
    lint_bench,
    lint_circuit,
    prove_stuck_at_untestable,
    prove_transition_untestable,
    registered_rules,
    scoap_measures,
    scoap_summary,
)
from repro.analysis_static.cli import main as lint_cli_main
from repro.analysis_static.untestable import (
    DEAD_CONE,
    LAUNCH_IMPOSSIBLE,
    UNEXCITABLE,
    UNOBSERVABLE,
)
from repro.atpg import (
    generate_stuck_at_test,
    generate_transition_test,
    simulate_stuck_at,
    simulate_transition,
)
from repro.campaign import (
    CampaignError,
    CampaignSpec,
    resolve_circuit,
    run_campaign,
    run_sharded_campaign,
)
from repro.faults import stuck_at_universe, transition_fault_universe
from repro.logic import GateType, LogicCircuit, random_dag, write_bench


# --------------------------------------------------------------------- #
# Small purpose-built circuits.
# --------------------------------------------------------------------- #
def and2_circuit() -> LogicCircuit:
    c = LogicCircuit("and2")
    c.add_inputs(["a", "b"])
    c.add_gate("g", GateType.AND2, ["a", "b"], "y")
    c.add_output("y")
    return c


def xor_tied_circuit() -> LogicCircuit:
    """y = XOR(x, x): constant 0, with a tied gate input."""
    c = LogicCircuit("xorxx")
    c.add_input("x")
    c.add_gate("g", GateType.XOR2, ["x", "x"], "y")
    c.add_output("y")
    return c


def reconvergent_buffer_circuit() -> LogicCircuit:
    """y = AND(x, BUFF(x)): faults on the internal net ``b`` are blocked."""
    c = LogicCircuit("rebuf")
    c.add_input("x")
    c.add_gate("g1", GateType.BUF, ["x"], "b")
    c.add_gate("g2", GateType.AND2, ["x", "b"], "y")
    c.add_output("y")
    return c


def dead_cone_circuit() -> LogicCircuit:
    """Gate ``g2`` drives net ``z`` that reaches no primary output."""
    c = LogicCircuit("deadcone")
    c.add_inputs(["a", "b"])
    c.add_gate("g1", GateType.INV, ["a"], "y")
    c.add_gate("g2", GateType.INV, ["b"], "z")
    c.add_output("y")
    return c


# --------------------------------------------------------------------- #
# Lint rules over in-memory circuits.
# --------------------------------------------------------------------- #
class TestLintRules:
    def test_registry_is_deterministic_and_complete(self):
        rules = registered_rules()
        assert rules == (
            "undriven-net",
            "multiply-driven-net",
            "combinational-cycle",
            "dead-cone",
            "unused-input",
            "constant-net",
            "tied-input",
        )

    def test_clean_circuit_has_no_diagnostics(self):
        report = lint_circuit(resolve_circuit("c17"))
        assert report.ok
        assert report.diagnostics == []
        assert report.counts() == {"errors": 0, "warnings": 0, "infos": 0}

    def test_undriven_net_is_an_error(self):
        c = LogicCircuit("broken")
        c.add_input("a")
        c.add_gate("g", GateType.NAND2, ["a", "ghost"], "y")
        c.add_output("y")
        report = lint_circuit(c)
        assert not report.ok
        (diag,) = [d for d in report.errors if d.rule == "undriven-net"]
        assert diag.net == "ghost"
        assert diag.severity is Severity.ERROR

    def test_combinational_cycle_is_an_error(self):
        c = LogicCircuit("cyclic")
        c.add_input("a")
        c.add_gate("g1", GateType.AND2, ["a", "z"], "y")
        c.add_gate("g2", GateType.INV, ["y"], "z")
        c.add_output("y")
        report = lint_circuit(c)
        assert any(d.rule == "combinational-cycle" for d in report.errors)

    def test_dead_cone_and_unused_input_warnings(self):
        report = lint_circuit(dead_cone_circuit())
        assert report.ok  # warnings only
        rules = {d.rule for d in report.warnings}
        assert "dead-cone" in rules
        assert "unused-input" not in rules  # b drives a gate, it is just dead
        dead = [d for d in report.warnings if d.rule == "dead-cone"]
        assert {d.net for d in dead} == {"z"}

    def test_truly_unused_input_warns(self):
        c = LogicCircuit("unused")
        c.add_inputs(["a", "b"])
        c.add_gate("g", GateType.INV, ["a"], "y")
        c.add_output("y")
        report = lint_circuit(c)
        assert any(d.rule == "unused-input" and d.net == "b" for d in report.warnings)

    def test_constant_net_and_tied_input(self):
        report = lint_circuit(xor_tied_circuit())
        assert any(d.rule == "constant-net" and d.net == "y" for d in report.warnings)
        assert any(d.rule == "tied-input" for d in report.infos)

    def test_rule_subset_selection(self):
        report = lint_circuit(xor_tied_circuit(), rules=["tied-input"])
        assert {d.rule for d in report.diagnostics} == {"tied-input"}

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown lint rules"):
            lint_circuit(and2_circuit(), rules=["no-such-rule"])

    def test_diagnostic_format_names_the_site(self):
        report = lint_circuit(dead_cone_circuit())
        (diag,) = [d for d in report.warnings if d.rule == "dead-cone"]
        assert "net 'z'" in diag.format()
        assert diag.as_dict()["severity"] == "warning"


class TestLintBench:
    def test_multiply_driven_net_reports_both_lines(self):
        text = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)\n"
        report = lint_bench(text, name="dup")
        (diag,) = [d for d in report.errors if d.rule == "multiply-driven-net"]
        assert diag.net == "y"
        assert diag.line == 4
        assert "line 3" in diag.message

    def test_parse_error_fallback_carries_line_number(self):
        text = "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n"
        report = lint_bench(text, name="bad-op")
        assert not report.ok
        (diag,) = report.errors
        assert diag.rule == "parse-error"
        assert diag.line == 3

    def test_structural_findings_carry_source_lines(self):
        text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a)\nz = NOT(b)\n"
        report = lint_bench(text, name="dead")
        (diag,) = [d for d in report.warnings if d.rule == "dead-cone"]
        assert diag.line == 5

    def test_round_tripped_circuit_is_clean(self):
        report = lint_bench(write_bench(resolve_circuit("c17")), name="c17")
        assert report.ok and not report.diagnostics


# --------------------------------------------------------------------- #
# SCOAP testability measures.
# --------------------------------------------------------------------- #
class TestScoap:
    def test_and2_classical_values(self):
        m = scoap_measures(and2_circuit())
        assert m.cc0["a"] == m.cc1["a"] == 1.0
        assert m.cc0["y"] == 2.0  # cheapest 0 via one controlling input
        assert m.cc1["y"] == 3.0  # both inputs must be 1
        assert m.co["y"] == 0.0
        assert m.co["a"] == 2.0  # CO(y) + CC1(b) + 1
        assert m.controllability("y", 0) == 2.0
        assert m.controllability("y", 1) == 3.0

    def test_inverter_chain_accumulates(self):
        c = LogicCircuit("chain")
        c.add_input("a")
        c.add_gate("g1", GateType.INV, ["a"], "n1")
        c.add_gate("g2", GateType.INV, ["n1"], "n2")
        c.add_output("n2")
        m = scoap_measures(c)
        assert m.cc0["n1"] == 2.0 and m.cc1["n1"] == 2.0
        assert m.cc0["n2"] == 3.0 and m.cc1["n2"] == 3.0
        assert m.co["a"] == 2.0

    def test_unreachable_value_is_infinite(self):
        c = xor_tied_circuit()
        m = scoap_measures(c)
        # y is constant 0: setting it to 0 needs no input, only the gate hop.
        assert m.cc0["y"] == 1.0
        assert math.isinf(m.cc1["y"])
        assert math.isinf(m.co["x"])  # x never propagates through XOR(x, x)
        assert scoap_summary(c)["unreachable"] >= 1

    def test_c17_summary(self):
        summary = scoap_summary(resolve_circuit("c17"))
        assert summary["max_cc"] == 5.0
        assert summary["max_co"] == 7.0
        assert summary["unreachable"] == 0
        assert summary["mean_cc"] == pytest.approx(2.318, abs=1e-3)
        assert summary["mean_co"] == pytest.approx(3.909, abs=1e-3)

    def test_stats_attaches_scoap_on_demand(self):
        c = resolve_circuit("c17")
        assert c.stats().scoap is None
        stats = c.stats(include_scoap=True)
        assert stats.scoap is not None
        assert stats.scoap["max_cc"] == 5.0


# --------------------------------------------------------------------- #
# Ternary implication engine + static learning.
# --------------------------------------------------------------------- #
class TestImplication:
    def test_backward_and_forward_implication(self):
        engine = ImplicationEngine(and2_circuit())
        implied = engine.imply({"y": 1})
        assert implied is not None
        assert implied["a"] == 1 and implied["b"] == 1
        implied = engine.imply({"a": 0})
        assert implied is not None and implied["y"] == 0

    def test_contradiction_detected(self):
        engine = ImplicationEngine(xor_tied_circuit())
        assert engine.imply({"y": 1}) is None

    def test_baseline_constants(self):
        assert ImplicationEngine(xor_tied_circuit()).baseline.get("y") == 0
        assert ImplicationEngine(resolve_circuit("c17")).baseline == {}

    def test_static_learning_finds_constants(self):
        learning = learn_implications(xor_tied_circuit())
        assert learning.constants.get("y") == 0

    def test_static_learning_on_reconvergence(self):
        learning = learn_implications(reconvergent_buffer_circuit())
        # b tracks x, so x=0 must force y=0 (and the contrapositive y=1 -> x=1).
        forced = dict(learning.implications).get(("x", 0), ())
        assert ("y", 0) in forced or ("b", 0) in forced


# --------------------------------------------------------------------- #
# Static untestability proofs.
# --------------------------------------------------------------------- #
class TestStaticProofs:
    def test_dead_cone_fault_is_proven(self):
        c = dead_cone_circuit()
        proofs = prove_stuck_at_untestable(c, stuck_at_universe(c))
        assert proofs["z/sa0"].reason == DEAD_CONE
        assert proofs["z/sa1"].reason == DEAD_CONE

    def test_constant_net_fault_is_unexcitable(self):
        c = xor_tied_circuit()
        proofs = prove_stuck_at_untestable(c, stuck_at_universe(c))
        assert proofs["y/sa0"].reason == UNEXCITABLE
        assert "y/sa1" not in proofs  # a constant-0 output stuck at 1 is testable

    def test_blocked_propagation_is_unobservable(self):
        c = reconvergent_buffer_circuit()
        proofs = prove_stuck_at_untestable(c, stuck_at_universe(c))
        assert "b/sa1" in proofs
        assert proofs["b/sa1"].reason in (UNOBSERVABLE, UNEXCITABLE)

    def test_impossible_launch_is_proven_for_transitions(self):
        c = xor_tied_circuit()
        proofs = prove_transition_untestable(c, transition_fault_universe(c))
        # y never reaches 1, so the 1->0 launch of a slow-to-fall is impossible.
        assert "y/stf" in proofs
        assert proofs["y/stf"].reason == LAUNCH_IMPOSSIBLE

    @pytest.mark.parametrize("ref", ["rdag:60,5", "rdag:120,7", "mult:3", "alu:3"])
    def test_stuck_at_proofs_are_podem_confirmed(self, ref):
        """Acceptance: every statically proven fault is PODEM-proven untestable
        with the search exhausted, never aborted."""
        circuit = resolve_circuit(ref)
        faults = stuck_at_universe(circuit)
        proofs = prove_stuck_at_untestable(circuit, faults)
        if ref == "rdag:60,5":
            assert len(proofs) == 15  # known redundancy count; guards vacuity
        by_key = {f.key: f for f in faults}
        for key in proofs:
            result = generate_stuck_at_test(circuit, by_key[key])
            assert not result.aborted, f"{ref}: search aborted for {key}"
            assert result.untestable, f"{ref}: PODEM found a test for proven {key}"

    @pytest.mark.parametrize("ref", ["rdag:60,5", "mult:3"])
    def test_transition_proofs_are_podem_confirmed(self, ref):
        circuit = resolve_circuit(ref)
        faults = transition_fault_universe(circuit)
        proofs = prove_transition_untestable(circuit, faults)
        if ref == "rdag:60,5":
            assert len(proofs) == 23
        by_key = {f.key: f for f in faults}
        for key in proofs:
            result = generate_transition_test(circuit, by_key[key])
            assert not result.aborted, f"{ref}: search aborted for {key}"
            assert result.untestable, f"{ref}: PODEM found a test for proven {key}"


# --------------------------------------------------------------------- #
# Campaign integration.
# --------------------------------------------------------------------- #
class TestCampaignStaticPhase:
    def _spec(self, **overrides) -> CampaignSpec:
        base = dict(
            circuit="rdag:60,5",
            pattern_source="random",
            pattern_count=16,
            seed=7,
            run_atpg=True,
        )
        base.update(overrides)
        return CampaignSpec(**base)

    def test_static_phase_on_by_default(self):
        result = run_campaign(spec=self._spec())
        phase = result.static_phase
        assert phase is not None
        assert phase.lint.ok
        assert phase.num_proven == 15
        assert result.coverage.proven_static == 15
        assert result.coverage.aborted == 0
        # Proven faults are skipped by ATPG and recorded as untestable.
        assert set(result.atpg_phase.proven) == set(phase.proofs)
        assert result.coverage.untestable >= phase.num_proven

    def test_as_dict_payload(self):
        payload = run_campaign(spec=self._spec()).as_dict()
        assert payload["spec"]["static_phase"] is True
        static = payload["static_phase"]
        assert static["lint"]["errors"] == 0
        assert len(static["proven_untestable"]) == 15
        assert "scoap" in payload["circuit_stats"]

    def test_opt_out_disables_the_phase(self):
        result = run_campaign(spec=self._spec(static_phase=False))
        assert result.static_phase is None
        assert result.coverage.proven_static == 0
        assert "static_phase" not in result.as_dict()

    @pytest.mark.parametrize("model", ["stuck-at", "transition"])
    def test_pruning_on_equals_off(self, model):
        """Static pruning must not change what the campaign detects."""
        on = run_campaign(spec=self._spec(model=model))
        off = run_campaign(spec=self._spec(model=model, static_phase=False))
        assert on.coverage.aborted == off.coverage.aborted == 0
        assert set(on.detected_faults) == set(off.detected_faults)
        assert on.coverage.detected == off.coverage.detected
        assert on.coverage.untestable == off.coverage.untestable
        assert on.coverage.total_faults == off.coverage.total_faults

    def test_lint_errors_abort_the_campaign(self):
        c = LogicCircuit("broken")
        c.add_input("a")
        c.add_gate("g", GateType.NAND2, ["a", "ghost"], "y")
        c.add_output("y")
        with pytest.raises(CampaignError, match="undriven-net"):
            run_campaign(c, spec=self._spec(circuit=None))

    def test_sharded_run_is_bit_identical(self):
        spec = self._spec()
        base = run_campaign(spec=spec)
        sharded = run_sharded_campaign(spec=spec, shards=3, max_workers=0)
        assert sharded.as_dict(include_runtime=False) == base.as_dict(include_runtime=False)

    def test_dominance_collapse_mode(self):
        full = run_campaign(spec=self._spec(collapse=False))
        equiv = run_campaign(spec=self._spec(collapse="equivalence"))
        dom = run_campaign(spec=self._spec(collapse="dominance"))
        assert len(dom.faults) <= len(equiv.faults) < len(full.faults)
        with pytest.raises(CampaignError, match="unknown collapse mode"):
            CampaignSpec(collapse="bogus")


class TestLintCli:
    def test_clean_targets_exit_zero(self, capsys):
        assert lint_cli_main(["c17", "mult:3"]) == 0
        out = capsys.readouterr().out
        assert out.count("ok") == 2

    def test_bad_bench_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.bench"
        bad.write_text("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)\n")
        assert lint_cli_main([str(bad)]) == 1
        assert "multiply-driven-net" in capsys.readouterr().out


# --------------------------------------------------------------------- #
# Collapse preserves fault coverage (satellite property test).
# --------------------------------------------------------------------- #
class TestCollapsePreservesCoverage:
    """Equivalence- and dominance-collapsed campaigns must produce test sets
    that detect exactly the same faults of the FULL universe as an
    uncollapsed campaign -- the classical collapse-preservation guarantee."""

    @pytest.mark.parametrize("seed", [5, 11])
    @pytest.mark.parametrize("engine", ["packed", "interp", "serial"])
    @pytest.mark.parametrize("model", ["stuck-at", "transition"])
    @pytest.mark.parametrize("drop_detected", [False, True])
    def test_collapsed_tests_cover_full_universe(self, seed, engine, model, drop_detected):
        circuit = random_dag(40, seed=seed)
        if model == "stuck-at":
            universe = stuck_at_universe(circuit)
            simulate = simulate_stuck_at
        else:
            universe = transition_fault_universe(circuit)
            simulate = simulate_transition
        full_keys = {f.key for f in universe}

        def run(collapse):
            return run_campaign(
                circuit,
                model=model,
                collapse=collapse,
                pattern_source="random",
                pattern_count=8,
                seed=3,
                run_atpg=True,
                drop_detected=drop_detected,
                engine=engine,
                compact=False,
            )

        reference = run(False)
        assert reference.coverage.aborted == 0
        ref_detected = set(
            simulate(circuit, reference.tests, universe, engine=engine).detected_faults
        )

        for mode in ("equivalence", "dominance"):
            result = run(mode)
            assert result.coverage.aborted == 0
            assert {f.key for f in result.faults} <= full_keys
            assert len(result.faults) <= len(reference.faults)
            detected = set(
                simulate(circuit, result.tests, universe, engine=engine).detected_faults
            )
            assert detected == ref_detected, (
                f"collapse={mode} changed full-universe coverage "
                f"({len(detected)} vs {len(ref_detected)} detected)"
            )
