"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cells import default_technology
from repro.logic import c17, full_adder, full_adder_sum, ripple_carry_adder


@pytest.fixture(scope="session")
def tech():
    """The default 3.3 V technology used by all circuit-level tests."""
    return default_technology()


@pytest.fixture(scope="session")
def fa_sum():
    """The paper's full-adder sum circuit (reconstruction)."""
    return full_adder_sum()


@pytest.fixture(scope="session")
def fa_full():
    """Complete full adder (sum + carry)."""
    return full_adder()


@pytest.fixture(scope="session")
def c17_circuit():
    """ISCAS-85 C17 benchmark."""
    return c17()


@pytest.fixture(scope="session")
def rca4():
    """4-bit ripple-carry adder."""
    return ripple_carry_adder(4)
