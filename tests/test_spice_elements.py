"""Unit tests for the SPICE element models."""

from __future__ import annotations

import math

import pytest

from repro.spice import Circuit, CircuitError
from repro.spice.elements import (
    THERMAL_VOLTAGE,
    Capacitor,
    Diode,
    DiodeModel,
    Mosfet,
    MosfetModel,
    PiecewiseLinearWaveform,
    PulseWaveform,
    Resistor,
    StampContext,
    Stamper,
    VoltageSource,
    is_ground,
    two_pattern_waveform,
)


class TestResistor:
    def test_conductance(self):
        r = Resistor("r1", "a", "b", 2000.0)
        assert r.conductance == pytest.approx(5e-4)

    def test_current_direction(self):
        r = Resistor("r1", "a", "b", 100.0)
        assert r.current(1.0, 0.0) == pytest.approx(0.01)
        assert r.current(0.0, 1.0) == pytest.approx(-0.01)

    @pytest.mark.parametrize("bad", [0.0, -10.0])
    def test_rejects_nonpositive_resistance(self, bad):
        with pytest.raises(ValueError):
            Resistor("r1", "a", "b", bad)

    def test_stamp_symmetry(self):
        r = Resistor("r1", "a", "b", 1000.0)
        r.assign_indices((0, 1))
        stamper = Stamper(2)
        r.stamp(stamper, StampContext())
        g = 1e-3
        assert stamper.matrix[0, 0] == pytest.approx(g)
        assert stamper.matrix[1, 1] == pytest.approx(g)
        assert stamper.matrix[0, 1] == pytest.approx(-g)
        assert stamper.matrix[1, 0] == pytest.approx(-g)

    def test_stamp_to_ground_drops_row(self):
        r = Resistor("r1", "a", "0", 1000.0)
        r.assign_indices((0, -1))
        stamper = Stamper(1)
        r.stamp(stamper, StampContext())
        assert stamper.matrix[0, 0] == pytest.approx(1e-3)


class TestCapacitor:
    def test_rejects_negative_capacitance(self):
        with pytest.raises(ValueError):
            Capacitor("c1", "a", "b", -1e-15)

    def test_open_in_dc(self):
        c = Capacitor("c1", "a", "b", 1e-12)
        c.assign_indices((0, 1))
        stamper = Stamper(2)
        c.stamp(stamper, StampContext(mode="dc"))
        assert stamper.matrix[0, 0] == 0.0

    def test_backward_euler_companion(self):
        import numpy as np

        c = Capacitor("c1", "a", "0", 1e-12)
        c.assign_indices((0, -1))
        stamper = Stamper(1)
        ctx = StampContext(mode="tran", dt=1e-12, x_prev=np.array([2.0]), method="backward_euler")
        c.stamp(stamper, ctx)
        geq = 1e-12 / 1e-12
        assert stamper.matrix[0, 0] == pytest.approx(geq)
        # RHS injects geq * v_prev into node a.
        assert stamper.rhs[0] == pytest.approx(geq * 2.0)

    def test_trapezoidal_uses_stored_current(self):
        import numpy as np

        c = Capacitor("c1", "a", "0", 1e-12)
        c.assign_indices((0, -1))
        ctx = StampContext(
            mode="tran", dt=1e-12, x_prev=np.array([1.0]), method="trapezoidal",
            state={"c1": {"current": 5e-3}},
        )
        stamper = Stamper(1)
        c.stamp(stamper, ctx)
        geq = 2e-12 / 1e-12
        assert stamper.matrix[0, 0] == pytest.approx(geq)
        assert stamper.rhs[0] == pytest.approx(geq * 1.0 + 5e-3)


class TestDiode:
    def test_forward_current_matches_shockley(self):
        model = DiodeModel(saturation_current=1e-14)
        d = Diode("d1", "a", "c", model)
        vd = 0.6
        current, conductance = d.evaluate(vd)
        expected = 1e-14 * (math.exp(vd / THERMAL_VOLTAGE) - 1.0)
        assert current == pytest.approx(expected, rel=1e-9)
        assert conductance > 0.0

    def test_reverse_current_saturates(self):
        d = Diode("d1", "a", "c", DiodeModel(saturation_current=1e-14))
        current, _ = d.evaluate(-2.0)
        assert current == pytest.approx(-1e-14, rel=1e-6)

    def test_linearized_above_critical_voltage(self):
        model = DiodeModel(saturation_current=1e-30)
        d = Diode("d1", "a", "c", model)
        vcrit = model.critical_voltage
        i_below, g_below = d.evaluate(vcrit - 0.01)
        i_above, g_above = d.evaluate(vcrit + 0.5)
        # Above vcrit the conductance stops growing exponentially.
        assert g_above == pytest.approx(d.evaluate(vcrit + 1.0)[1], rel=1e-9)
        assert i_above > i_below

    def test_monotonic_current(self):
        d = Diode("d1", "a", "c", DiodeModel(saturation_current=1e-29))
        voltages = [-1.0, 0.0, 0.5, 1.0, 1.5, 2.0, 3.0]
        currents = [d.evaluate(v)[0] for v in voltages]
        assert all(b >= a for a, b in zip(currents, currents[1:]))

    @pytest.mark.parametrize("isat,ideality", [(-1e-15, 1.0), (1e-15, 0.0)])
    def test_model_validation(self, isat, ideality):
        with pytest.raises(ValueError):
            DiodeModel(saturation_current=isat, ideality=ideality)


class TestMosfet:
    @pytest.fixture
    def nmos(self):
        return MosfetModel(polarity="n", vto=0.6, kp=120e-6, lambda_=0.0, gamma=0.0)

    @pytest.fixture
    def pmos(self):
        return MosfetModel(polarity="p", vto=-0.7, kp=40e-6, lambda_=0.0, gamma=0.0)

    def test_cutoff(self, nmos):
        m = Mosfet("m1", "d", "g", "s", "b", nmos, 1e-6, 0.35e-6)
        op = m.evaluate(vd=3.3, vg=0.0, vs=0.0, vb=0.0)
        assert op.region == "cutoff"
        assert op.ids == 0.0

    def test_saturation_square_law(self, nmos):
        m = Mosfet("m1", "d", "g", "s", "b", nmos, 1e-6, 0.35e-6)
        vgs, vds = 2.0, 3.0
        op = m.evaluate(vd=vds, vg=vgs, vs=0.0, vb=0.0)
        beta = 120e-6 * (1e-6 / 0.35e-6)
        expected = 0.5 * beta * (vgs - 0.6) ** 2
        assert op.region == "saturation"
        assert op.ids == pytest.approx(expected, rel=1e-9)

    def test_linear_region(self, nmos):
        m = Mosfet("m1", "d", "g", "s", "b", nmos, 1e-6, 0.35e-6)
        op = m.evaluate(vd=0.1, vg=3.3, vs=0.0, vb=0.0)
        beta = 120e-6 * (1e-6 / 0.35e-6)
        expected = beta * ((3.3 - 0.6) * 0.1 - 0.5 * 0.1**2)
        assert op.region == "linear"
        assert op.ids == pytest.approx(expected, rel=1e-9)

    def test_source_drain_swap(self, nmos):
        m = Mosfet("m1", "d", "g", "s", "b", nmos, 1e-6, 0.35e-6)
        forward = m.drain_current(vd=1.0, vg=3.3, vs=0.0, vb=0.0)
        reverse = m.drain_current(vd=0.0, vg=3.3, vs=1.0, vb=1.0)
        assert forward > 0.0
        assert reverse == pytest.approx(-forward, rel=1e-6)

    def test_pmos_current_sign(self, pmos):
        m = Mosfet("m1", "d", "g", "s", "b", pmos, 2e-6, 0.35e-6)
        # PMOS with source at 3.3 V, gate at 0, drain at 0: conducts, current
        # flows out of the drain terminal (negative drain current).
        current = m.drain_current(vd=0.0, vg=0.0, vs=3.3, vb=3.3)
        assert current < 0.0

    def test_pmos_cutoff(self, pmos):
        m = Mosfet("m1", "d", "g", "s", "b", pmos, 2e-6, 0.35e-6)
        op = m.evaluate(vd=0.0, vg=3.3, vs=3.3, vb=3.3)
        assert op.region == "cutoff"

    def test_body_effect_raises_threshold(self):
        model = MosfetModel(polarity="n", vto=0.6, kp=120e-6, gamma=0.5, phi=0.7, lambda_=0.0)
        m = Mosfet("m1", "d", "g", "s", "b", model, 1e-6, 0.35e-6)
        with_body = m.evaluate(vd=3.3, vg=2.5, vs=1.0, vb=0.0)
        without_body = m.evaluate(vd=3.3, vg=2.5, vs=1.0, vb=1.0)
        assert with_body.ids < without_body.ids

    def test_capacitances_scale_with_area(self):
        model = MosfetModel()
        small = model.capacitances(1e-6, 0.35e-6)
        large = model.capacitances(2e-6, 0.35e-6)
        assert large["cgs"] > small["cgs"]
        assert set(small) == {"cgs", "cgd", "cgb", "cdb", "csb"}

    def test_invalid_geometry_rejected(self, nmos):
        with pytest.raises(ValueError):
            Mosfet("m1", "d", "g", "s", "b", nmos, -1e-6, 0.35e-6)

    def test_invalid_polarity_rejected(self):
        with pytest.raises(ValueError):
            MosfetModel(polarity="x")


class TestSources:
    def test_dc_value(self):
        v = VoltageSource("v1", "a", "0", dc=2.5)
        assert v.value(0.0) == 2.5
        assert v.value(1e-9) == 2.5

    def test_pwl_interpolation(self):
        wf = PiecewiseLinearWaveform([(0, 0.0), (1e-9, 0.0), (2e-9, 3.3)])
        assert wf(0.5e-9) == pytest.approx(0.0)
        assert wf(1.5e-9) == pytest.approx(1.65)
        assert wf(5e-9) == pytest.approx(3.3)

    def test_pwl_rejects_decreasing_times(self):
        with pytest.raises(ValueError):
            PiecewiseLinearWaveform([(1e-9, 0.0), (0.5e-9, 1.0)])

    def test_pulse_waveform_shape(self):
        wf = PulseWaveform(0.0, 3.3, delay=1e-9, rise=0.1e-9, fall=0.1e-9, width=1e-9, period=4e-9)
        assert wf(0.0) == 0.0
        assert wf(1.05e-9) == pytest.approx(1.65, rel=0.1)
        assert wf(1.5e-9) == pytest.approx(3.3)
        assert wf(2.5e-9) == pytest.approx(0.0)
        # Periodic repetition.
        assert wf(5.5e-9) == pytest.approx(3.3)

    def test_two_pattern_waveform(self):
        wf = two_pattern_waveform(0.0, 3.3, switch_time=2e-9, transition_time=0.1e-9)
        assert wf(1e-9) == 0.0
        assert wf(3e-9) == pytest.approx(3.3)

    def test_waveform_overrides_dc(self):
        wf = PiecewiseLinearWaveform([(0, 1.0)])
        v = VoltageSource("v1", "a", "0", dc=9.9, waveform=wf)
        assert v.value(0.0) == 1.0


class TestCircuitContainer:
    def test_duplicate_names_rejected(self):
        c = Circuit("t")
        c.add_resistor("r1", "a", "b", 100.0)
        with pytest.raises(CircuitError):
            c.add_resistor("r1", "a", "b", 100.0)

    def test_nodes_exclude_ground(self):
        c = Circuit("t")
        c.add_resistor("r1", "a", "0", 100.0)
        c.add_resistor("r2", "a", "gnd", 100.0)
        assert c.nodes() == ["a"]

    def test_remove_element(self):
        c = Circuit("t")
        c.add_resistor("r1", "a", "b", 100.0)
        c.remove("r1")
        assert "r1" not in c
        with pytest.raises(CircuitError):
            c.remove("r1")

    def test_clone_is_independent(self):
        c = Circuit("t")
        c.add_resistor("r1", "a", "b", 100.0)
        clone = c.clone()
        clone.remove("r1")
        assert "r1" in c and "r1" not in clone

    def test_add_mosfet_adds_parasitic_caps(self, tech):
        c = Circuit("t")
        c.add_mosfet("m1", "d", "g", "s", "b", tech.nmos, 1e-6, 0.35e-6)
        assert "m1:cgs" in c
        assert "m1:cgd" in c

    def test_add_mosfet_without_caps(self, tech):
        c = Circuit("t")
        c.add_mosfet("m1", "d", "g", "s", "b", tech.nmos, 1e-6, 0.35e-6, with_caps=False)
        assert "m1:cgs" not in c

    def test_summary_counts(self):
        c = Circuit("demo")
        c.add_resistor("r1", "a", "0", 100.0)
        c.add_voltage_source("v1", "a", "0", dc=1.0)
        text = c.summary()
        assert "Resistor" in text and "VoltageSource" in text

    def test_is_ground_names(self):
        assert is_ground("0") and is_ground("gnd") and is_ground("GND")
        assert not is_ground("out")
