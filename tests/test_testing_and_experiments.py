"""Tests for the concurrent-testing layer and (fast) experiment smoke tests."""

from __future__ import annotations

import pytest

from repro.core import BreakdownStage, ProgressionModel
from repro.experiments import (
    run_adder_stats,
    run_atpg_complexity,
    run_em_comparison,
    run_fig4,
    run_nand_conditions,
    run_nor_conditions,
    run_progression_window,
    run_upstream_stress,
)
from repro.logic import c17
from repro.testing import (
    CaptureModel,
    StageDelay,
    attempts_with_period,
    detectability_threshold,
    detection_window,
    first_detectable_stage,
    maximum_test_period,
    required_periods,
    schedule_for_window,
    window_versus_slack,
)

STAGE_DELAYS = (
    StageDelay(BreakdownStage.FAULT_FREE, 70e-12),
    StageDelay(BreakdownStage.SBD, 80e-12),
    StageDelay(BreakdownStage.MBD1, 150e-12),
    StageDelay(BreakdownStage.MBD2, 250e-12),
    StageDelay(BreakdownStage.MBD3, 330e-12),
    StageDelay(BreakdownStage.HBD, None, stuck=True),
)


class TestDetectionWindow:
    def test_threshold(self):
        assert detectability_threshold(70e-12, 30e-12) == pytest.approx(100e-12)
        with pytest.raises(ValueError):
            detectability_threshold(-1.0, 0.0)

    def test_first_detectable_stage_depends_on_slack(self):
        tight = first_detectable_stage(STAGE_DELAYS, 70e-12, 20e-12)
        loose = first_detectable_stage(STAGE_DELAYS, 70e-12, 200e-12)
        assert tight == BreakdownStage.MBD1
        assert loose == BreakdownStage.MBD3
        assert tight.order < loose.order

    def test_stuck_stage_always_detectable(self):
        stage = first_detectable_stage(STAGE_DELAYS, 70e-12, 10.0)
        assert stage == BreakdownStage.HBD

    def test_window_shrinks_with_slack(self):
        model = ProgressionModel("n")
        windows = window_versus_slack(model, STAGE_DELAYS, 70e-12, [20e-12, 100e-12, 200e-12])
        durations = [windows[s].duration for s in sorted(windows)]
        assert all(b <= a for a, b in zip(durations, durations[1:]))

    def test_window_description(self):
        model = ProgressionModel("n")
        window = detection_window(model, STAGE_DELAYS, 70e-12, 50e-12)
        assert window.exists
        assert "window opens" in window.describe()

    def test_empty_window_when_never_observable(self):
        delays = (StageDelay(BreakdownStage.MBD1, 71e-12),)
        model = ProgressionModel("n")
        window = detection_window(model, delays, 70e-12, 10.0)
        assert not window.exists
        assert window.duration == 0.0


class TestScheduler:
    def _window(self):
        model = ProgressionModel("n")
        return detection_window(model, STAGE_DELAYS, 70e-12, 50e-12)

    def test_maximum_period(self):
        window = self._window()
        assert maximum_test_period(window, attempts=1) == pytest.approx(window.duration)
        assert maximum_test_period(window, attempts=4) == pytest.approx(window.duration / 4)
        with pytest.raises(ValueError):
            maximum_test_period(window, attempts=0)

    def test_schedule_overhead(self):
        schedule = schedule_for_window(self._window(), test_duration=1e-3, attempts=2)
        assert 0.0 < schedule.overhead < 1.0
        assert "test every" in schedule.describe()

    def test_attempts_with_period(self):
        window = self._window()
        assert attempts_with_period(window, window.duration / 3.5) == 3
        with pytest.raises(ValueError):
            attempts_with_period(window, 0.0)

    def test_required_periods_takes_minimum(self):
        window = self._window()
        assert required_periods([window, window], attempts=2) == pytest.approx(window.duration / 2)


class TestCaptureModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            CaptureModel(clock_period=0.0)
        with pytest.raises(ValueError):
            CaptureModel(clock_period=1e-9, capture_fraction=1.5)

    def test_early_capture_sees_earlier_stage(self):
        late = CaptureModel(clock_period=1e-9, capture_fraction=1.0)
        early = CaptureModel(clock_period=1e-9, capture_fraction=0.2)
        late_stage = late.first_observable_stage(STAGE_DELAYS, 70e-12)
        early_stage = early.first_observable_stage(STAGE_DELAYS, 70e-12)
        assert early_stage is not None
        assert late_stage is None or early_stage.order <= late_stage.order

    def test_observes(self):
        capture = CaptureModel(clock_period=1e-9, capture_fraction=0.5)
        assert capture.observes(400e-12, 200e-12)
        assert not capture.observes(100e-12, 100e-12)
        assert capture.slack_for_path(400e-12) == pytest.approx(100e-12)


class TestExperimentsFast:
    """Smoke tests of the experiment drivers (analytical / coarse settings)."""

    def test_nand_conditions_match_paper(self):
        result = run_nand_conditions()
        assert result.paper_set_covers_all
        assert result.matches_paper_structure

    def test_nor_conditions_match_paper(self):
        result = run_nor_conditions()
        assert result.paper_set_covers_all
        assert result.matches_paper_structure

    def test_adder_stats_headline_numbers(self):
        stats = run_adder_stats()
        assert stats.nand_gates == 14
        assert stats.total_sites == 56
        assert stats.untestable > 0  # redundancy makes some faults untestable
        assert stats.testable + stats.untestable == 56
        assert stats.compacted_test_count < stats.total_transitions
        assert len(stats.rows()) >= 6

    def test_em_comparison_flags_gaps(self):
        result = run_em_comparison(gates=["NAND2", "AOI21"])
        assert result.gates_where_em_misses_obd()

    def test_progression_window_report(self):
        result = run_progression_window()
        assert result.window_shrinks_with_slack()
        assert any("window opens" in row for row in result.rows())

    def test_atpg_complexity_small(self):
        result = run_atpg_complexity(circuit_factories=[c17])
        entry = result.circuits[0]
        assert entry.stuck_at.testable == entry.stuck_at.faults
        assert entry.obd.faults == 6 * 4
        assert result.same_order_of_magnitude(factor=100.0)

    @pytest.mark.slow
    def test_fig4_vol_shift(self):
        result = run_fig4(points=23)
        vol = result.vol_by_stage()
        assert vol[BreakdownStage.HBD] > vol[BreakdownStage.SBD] >= vol[BreakdownStage.FAULT_FREE]
        voh = result.voh_by_stage()
        assert voh[BreakdownStage.HBD] == pytest.approx(voh[BreakdownStage.FAULT_FREE], abs=0.05)

    @pytest.mark.slow
    def test_upstream_stress_monotonic(self):
        result = run_upstream_stress(
            stages=[BreakdownStage.FAULT_FREE, BreakdownStage.MBD2, BreakdownStage.HBD]
        )
        assert result.current_grows_monotonically()
        assert result.supply_current[BreakdownStage.HBD] > 1e-4
